/**
 * @file
 * Ablation: device recovery strategies (paper section 4 + 5.3).
 *
 * Sweeps the three strategies across both testbeds and load classes,
 * reporting what each costs on the save and restore paths and whether
 * the save fits the residual window. The strawman (ACPI suspend on
 * the save path) must fail everywhere; restart-on-restore is fast but
 * incomplete for non-PnP devices; virtualized replay recovers
 * everything at a restore-path cost.
 */

#include "bench/bench_util.h"
#include "core/system.h"

using namespace wsp;

namespace {

struct Outcome
{
    bool saveCompleted = false;
    double saveMs = 0.0;
    double restoreS = 0.0;
    bool usedWsp = false;
    size_t replayed = 0;
    size_t unsupported = 0;
};

Outcome
run(DevicePolicy policy, bool intel, bool busy)
{
    SystemConfig config;
    config.platform = intel ? platformIntelC5528() : platformAmd4180();
    config.psu = intel ? psuPresetIntel1050W() : psuPresetAmd400W();
    config.devices = intel ? deviceSetIntel() : deviceSetAmd();
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.wsp.devicePolicy = policy;
    config.load = busy ? LoadClass::Busy : LoadClass::Idle;
    WspSystem system(config);
    system.start();
    if (busy) {
        system.devices().startBusyAll();
        system.runFor(fromMillis(20.0));
    }
    auto result = system.powerFailAndRestore(fromMillis(10.0),
                                             fromSeconds(30.0));
    Outcome outcome;
    outcome.saveCompleted = result.save.has_value();
    outcome.saveMs =
        outcome.saveCompleted ? toMillis(result.save->duration()) : 0.0;
    outcome.restoreS = toSeconds(result.restore.duration());
    outcome.usedWsp = result.restore.usedWsp;
    outcome.replayed = result.restore.deviceReport.opsReplayed;
    outcome.unsupported = result.restore.deviceReport.devicesUnsupported;
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("ablation_devices", argc, argv);
    Table table("Device recovery strategies across testbeds");
    table.setHeader({"testbed", "load", "policy", "save path",
                     "restore (s)", "recovered", "replayed",
                     "unsupported"});

    ShapeCheck check("ablation: device recovery strategies");
    for (bool intel : {false, true}) {
        for (bool busy : {false, true}) {
            for (DevicePolicy policy :
                 {DevicePolicy::AcpiSuspendOnSave,
                  DevicePolicy::PnpRestartOnRestore,
                  DevicePolicy::VirtualizedReplay}) {
                const Outcome outcome = run(policy, intel, busy);
                table.addRow({
                    intel ? "Intel" : "AMD",
                    busy ? "Busy" : "Idle",
                    devicePolicyName(policy),
                    outcome.saveCompleted
                        ? formatDouble(outcome.saveMs, 2) + " ms"
                        : "DIED",
                    formatDouble(outcome.restoreS, 2),
                    outcome.usedWsp ? "WSP" : "back end",
                    std::to_string(outcome.replayed),
                    std::to_string(outcome.unsupported),
                });

                const std::string tag =
                    std::string(intel ? "Intel" : "AMD") + "/" +
                    (busy ? "busy" : "idle") + " " +
                    devicePolicyName(policy);
                if (policy == DevicePolicy::AcpiSuspendOnSave) {
                    check.expectTrue(tag + ": save cannot fit the window",
                                     !outcome.saveCompleted);
                    check.expectTrue(tag + ": falls back to the back end",
                                     !outcome.usedWsp);
                } else {
                    check.expectTrue(tag + ": save completes",
                                     outcome.saveCompleted);
                    check.expectTrue(tag + ": WSP recovery",
                                     outcome.usedWsp);
                }
                if (policy == DevicePolicy::PnpRestartOnRestore) {
                    check.expectTrue(
                        tag + ": legacy + paging devices unsupported",
                        outcome.unsupported == 2);
                }
                if (policy == DevicePolicy::VirtualizedReplay && busy) {
                    check.expectTrue(tag + ": outstanding I/O replayed",
                                     outcome.replayed > 0);
                }
            }
        }
    }
    table.print();
    return bench::finish(check);
}
