/**
 * @file
 * Table 2: worst-case cache flush times by instruction.
 *
 * Paper (all cache lines dirty):
 *
 *                 wbinvd   clflush  theoretical best
 *   2 x C5528     2.8 ms   2.3 ms   0.79 ms
 *   AMD 4180      1.3 ms   1.6 ms   0.65 ms
 *
 * The model runs with every line of the platform's largest caches
 * dirty; wbinvd proceeds per socket in parallel, the clflush loop is
 * one software loop over every line (software cannot know which are
 * dirty), and the theoretical best is cache size over measured memory
 * bandwidth.
 */

#include "bench/bench_util.h"
#include "machine/machine.h"
#include "nvram/nvdimm.h"
#include "nvram/nvram_space.h"

using namespace wsp;

namespace {

struct Row
{
    std::string name;
    double wbinvd_ms;
    double clflush_ms;
    double best_ms;
};

Row
measure(const PlatformSpec &spec)
{
    EventQueue queue;
    NvdimmConfig dimm_config;
    dimm_config.capacityBytes = 4 * spec.cachePerSocket * spec.sockets;
    NvdimmModule dimm(queue, "d", dimm_config);
    NvramSpace space;
    space.addModule(dimm);
    MachineModel machine(queue, spec, space);

    // Worst case: every line of every socket cache dirty.
    Rng rng(1);
    machine.fillCachesDirty(spec.cachePerSocket, rng);

    // wbinvd: per-socket, in parallel -> the slowest socket.
    Tick wbinvd = 0;
    for (unsigned socket = 0; socket < machine.socketCount(); ++socket)
        wbinvd = std::max(wbinvd, machine.socketCache(socket).wbinvdCost());

    // clflush: a single software loop over every line of every cache.
    const uint64_t total_lines =
        machine.totalCacheBytes() / CacheModel::kLineSize;
    const Tick clflush =
        machine.socketCache(0).clflushLoopCost(total_lines);

    // Theoretical best: per-socket write-back at full bandwidth,
    // sockets in parallel.
    const Tick best = machine.socketCache(0).theoreticalBestCost();

    return Row{spec.name, toMillis(wbinvd), toMillis(clflush),
               toMillis(best)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("table2_flush_instr", argc, argv);
    const Row intel = measure(platformIntelC5528());
    const Row amd = measure(platformAmd4180());

    Table table("Table 2. Cache flush times using different instructions");
    table.setHeader({"", "wbinvd", "clflush", "Theoretical best",
                     "paper (wbinvd/clflush/best)"});
    table.addRow({"2 x Intel C5528",
                  formatDouble(intel.wbinvd_ms, 2) + " ms",
                  formatDouble(intel.clflush_ms, 2) + " ms",
                  formatDouble(intel.best_ms, 2) + " ms",
                  "2.8 / 2.3 / 0.79 ms"});
    table.addRow({"AMD 4180", formatDouble(amd.wbinvd_ms, 2) + " ms",
                  formatDouble(amd.clflush_ms, 2) + " ms",
                  formatDouble(amd.best_ms, 2) + " ms",
                  "1.3 / 1.6 / 0.65 ms"});
    table.print();

    ShapeCheck check("Table 2 (flush instruction comparison)");
    check.expectBetween("C5528 wbinvd ~2.8 ms", intel.wbinvd_ms, 2.5, 3.1);
    check.expectBetween("C5528 clflush ~2.3 ms", intel.clflush_ms, 2.0,
                        2.6);
    check.expectBetween("C5528 theoretical ~0.79 ms", intel.best_ms, 0.7,
                        0.9);
    check.expectBetween("AMD wbinvd ~1.3 ms", amd.wbinvd_ms, 1.1, 1.5);
    check.expectBetween("AMD clflush ~1.6 ms", amd.clflush_ms, 1.4, 1.8);
    check.expectBetween("AMD theoretical ~0.65 ms", amd.best_ms, 0.55,
                        0.75);
    // The orderings the paper highlights: clflush beats wbinvd on the
    // big 2-socket machine but not on the small one; both are well
    // above the theoretical floor.
    check.expectGreater("C5528: wbinvd slower than clflush",
                        intel.wbinvd_ms, intel.clflush_ms);
    check.expectGreater("AMD: clflush slower than wbinvd", amd.clflush_ms,
                        amd.wbinvd_ms);
    check.expectGreater("wbinvd above theoretical floor (Intel)",
                        intel.wbinvd_ms, intel.best_ms);
    check.expectGreater("wbinvd above theoretical floor (AMD)",
                        amd.wbinvd_ms, amd.best_ms);
    return bench::finish(check);
}
