/**
 * @file
 * Event-engine A/B microbench: slab-heap EventQueue vs the
 * std::priority_queue + tombstone-set baseline it replaced.
 *
 * Three workloads, each measuring sustained events/sec:
 *
 *  - dispatch mix: a steady-state self-rescheduling ladder (every
 *    fired event schedules a successor at a random offset) where each
 *    fired event also re-arms the deadline timers of the components
 *    it touched — the PSU pending-failure and device-watchdog pattern
 *    (cancel the old deadline, schedule a new one; see
 *    psu.cc) — at fleet scale, four timers per event. Callbacks
 *    capture a state pointer plus two 64-bit words, representative of
 *    model closures and past std::function's two-word inline buffer
 *    but well inside EventFn's. Measurement starts only after the
 *    first timer deadlines pass, i.e. in steady state, where the
 *    baseline's lazy cancellation is actually purging tombstones the
 *    way a long fleet run would. This is the acceptance metric: the
 *    slab heap must clear 10x the baseline.
 *  - cancel-heavy: every iteration schedules two live events, cancels
 *    one of them, and dispatches one — the retry/timeout pattern.
 *    The baseline pays two tombstone-set round trips per event; the
 *    slab heap does one O(log n) indexed removal.
 *  - same-tick burst: hundreds of events on one tick, exercising the
 *    FIFO (seq-ordered) contract that seeded determinism rests on;
 *    the bench also verifies the dispatch order outright.
 *
 * The baseline lives behind --queue= (fast|baseline|both, default
 * both) so the A/B stays reproducible per-PR; results land in
 * BENCH_sim_engine.json for tools/bench_summary trajectories.
 */

#include <chrono>
#include <cstring>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "sim/event_queue.h"
#include "trace/stat_registry.h"
#include "util/rng.h"

using namespace wsp;

namespace {

/**
 * The pre-slab engine, kept verbatim as the A/B baseline: a
 * std::priority_queue of (tick, seq, std::function) entries plus
 * live/cancelled tombstone sets purged lazily at pop time.
 */
class BaselineEventQueue
{
  public:
    using Id = uint64_t;

    Tick now() const { return now_; }

    Id schedule(Tick when, std::function<void()> fn)
    {
        if (when < now_)
            when = now_;
        const Id id = nextId_++;
        queue_.push(Entry{when, nextSeq_++, id, std::move(fn)});
        live_.insert(id);
        return id;
    }

    Id scheduleAfter(Tick delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    bool cancel(Id id)
    {
        if (live_.erase(id) == 0)
            return false;
        cancelled_.insert(id);
        return true;
    }

    size_t pending() const { return live_.size(); }

    bool step()
    {
        purgeCancelledTop();
        if (queue_.empty())
            return false;
        Entry entry = queue_.top();
        queue_.pop();
        now_ = entry.when;
        live_.erase(entry.id);
        entry.fn();
        return true;
    }

    Tick run()
    {
        while (step()) {
        }
        return now_;
    }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Id id;
        std::function<void()> fn;

        bool operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void purgeCancelledTop()
    {
        while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
            cancelled_.erase(queue_.top().id);
            queue_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_set<Id> live_;
    std::unordered_set<Id> cancelled_;
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    Id nextId_ = 1;
};

/** Devices in the dispatch-mix ladder. */
constexpr uint64_t kLadderWidth = 4096;
/** Deadline timers re-armed per fired ladder event. */
constexpr uint32_t kTimersPerEvent = 4;
/** Deadline distance; tombstones in the baseline live this long. */
constexpr Tick kDeadline = 16384;
/** Mean gap between a device's consecutive events (offset 1..1024). */
constexpr uint64_t kMeanGap = 512;

/** Self-rescheduling ladder state shared by all pending events. */
template <typename Queue>
struct LadderState
{
    Queue &queue;
    Rng rng;
    uint64_t remaining = 0; ///< successors still to schedule
    uint64_t fired = 0;
    uint64_t warmup = 0;  ///< fired count at which timing starts
    uint64_t measure = 0; ///< events in the timed window
    uint64_t sink = 0;    ///< keeps the payload math observable
    uint64_t deadlinesHit = 0;
    std::vector<uint64_t> timers{}; ///< timer ids, per device x timer
    std::chrono::steady_clock::time_point windowBegin{}, windowEnd{};
};

template <typename Queue>
void
pump(LadderState<Queue> *state, uint32_t device, uint64_t arg_a,
     uint64_t arg_b)
{
    ++state->fired;
    if (state->fired == state->warmup)
        state->windowBegin = std::chrono::steady_clock::now();
    else if (state->fired == state->warmup + state->measure)
        state->windowEnd = std::chrono::steady_clock::now();
    state->sink ^= arg_a + (arg_b << 1);
    // Re-arm the deadline timers of the components this event touched
    // (the psu.cc pendingFailure_ pattern): cancel the old deadline,
    // schedule the fresh one. In the baseline each re-arm strands a
    // tombstone until the old deadline surfaces at the top.
    for (uint32_t t = 0; t < kTimersPerEvent; ++t) {
        const uint32_t timer = device * kTimersPerEvent + t;
        if (state->timers[timer])
            state->queue.cancel(state->timers[timer]);
        const Tick deadline = state->queue.now() + kDeadline + t;
        state->timers[timer] =
            state->queue.schedule(deadline, [state, timer, deadline] {
                state->deadlinesHit += deadline != 0;
                state->timers[timer] = 0;
            });
    }
    if (state->remaining == 0)
        return;
    --state->remaining;
    const uint64_t a = state->rng();
    const uint64_t b = a ^ 0x9e3779b97f4a7c15ull;
    // 24 bytes of capture: one pointer, index, one argument.
    state->queue.schedule(state->queue.now() + 1 + (a & 1023),
                          [state, device, a] { pump(state, device, a, a); });
    (void)b;
}

/** Steady-state schedule+cancel+dispatch mix; returns events/sec over
 *  a timed window that starts after the warm-up ramp. */
template <typename Queue>
double
dispatchMix(uint64_t total_events, uint64_t seed)
{
    Queue queue;
    LadderState<Queue> state{.queue = queue, .rng = Rng(seed)};
    // Steady state begins once the earliest deadlines pass now(): from
    // then on the baseline's purge path runs at its sustained rate.
    state.warmup = kDeadline * kLadderWidth / kMeanGap + kLadderWidth;
    state.measure = total_events;
    state.remaining = state.warmup + state.measure;
    state.timers.assign(kLadderWidth * kTimersPerEvent, 0);
    for (uint64_t i = 0; i < kLadderWidth; ++i) {
        const uint64_t a = state.rng();
        LadderState<Queue> *st = &state;
        const uint32_t device = static_cast<uint32_t>(i);
        queue.schedule(1 + (a & 1023),
                       [st, device, a] { pump(st, device, a, a); });
    }
    queue.run();
    WSP_CHECK(state.fired >= state.warmup + state.measure);
    const double seconds = std::chrono::duration<double>(
                               state.windowEnd - state.windowBegin)
                               .count();
    return static_cast<double>(state.measure) / seconds;
}

/** Schedule two, cancel one live, fire one; returns events/sec over
 *  all schedule+cancel+dispatch operations. */
template <typename Queue>
double
cancelHeavy(uint64_t iterations, uint64_t seed)
{
    Queue queue;
    Rng rng(seed);
    uint64_t fired = 0;
    const auto fire = [&fired] { ++fired; };
    // Warm the queue so dispatches never run dry mid-measurement.
    constexpr uint64_t kWarm = 1024;
    for (uint64_t i = 0; i < kWarm; ++i)
        queue.schedule(1 + rng.next(1024), fire);
    bench::Stopwatch watch;
    for (uint64_t i = 0; i < iterations; ++i) {
        const Tick base = queue.now() + 1;
        const auto a = queue.schedule(base + rng.next(1024), fire);
        const auto b = queue.schedule(base + rng.next(1024), fire);
        WSP_CHECK(queue.cancel((rng() & 1) != 0 ? a : b));
        queue.step();
    }
    const double seconds = watch.seconds();
    // 4 queue operations per iteration (2 schedules, 1 cancel, 1 step).
    return static_cast<double>(iterations * 4) / seconds;
}

/** Same-tick bursts; verifies FIFO order, returns events/sec. */
template <typename Queue>
double
sameTickBurst(uint64_t rounds, uint64_t burst, bool *fifo_ok)
{
    Queue queue;
    uint64_t expected = 0;
    bool in_order = true;
    bench::Stopwatch watch;
    for (uint64_t round = 0; round < rounds; ++round) {
        const Tick when = queue.now() + 10;
        for (uint64_t i = 0; i < burst; ++i) {
            const uint64_t tag = round * burst + i;
            queue.schedule(when, [&expected, &in_order, tag] {
                in_order = in_order && tag == expected;
                ++expected;
            });
        }
        queue.run();
    }
    const double seconds = watch.seconds();
    *fifo_ok = in_order && expected == rounds * burst;
    return static_cast<double>(rounds * burst) / seconds;
}

struct WorkloadRates
{
    double dispatch = 0.0;
    double cancel = 0.0;
    double burst = 0.0;
    bool fifoOk = true;
};

template <typename Queue>
WorkloadRates
runWorkloads(uint64_t events, uint64_t seed, unsigned repeat)
{
    WorkloadRates rates;
    rates.dispatch = bench::minOf(
        repeat, [&] { return dispatchMix<Queue>(events, seed); });
    rates.cancel = bench::minOf(
        repeat, [&] { return cancelHeavy<Queue>(events / 4, seed + 1); });
    rates.burst = bench::minOf(repeat, [&] {
        bool ok = true;
        const double rate = sameTickBurst<Queue>(events / 1024, 256, &ok);
        rates.fifoOk = rates.fifoOk && ok;
        return rate;
    });
    return rates;
}

std::string
mops(double rate)
{
    return formatDouble(rate / 1e6, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-specific --queue= flag before the shared parser
    // sees (and warns about) it.
    const char *mode = "both";
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--queue=", 8) == 0)
            mode = argv[i] + 8;
        else
            passthrough.push_back(argv[i]);
    }
    bench::init("sim_engine", static_cast<int>(passthrough.size()),
                passthrough.data());
    const bool run_fast = std::strcmp(mode, "baseline") != 0;
    const bool run_baseline = std::strcmp(mode, "fast") != 0;

    const uint64_t seed = bench::rngSeed(20260808);
    const uint64_t events = bench::fullRuns() ? 8u << 20 : 1u << 20;
    const unsigned repeat = bench::repeat();

    WorkloadRates fast;
    WorkloadRates baseline;
    if (run_fast)
        fast = runWorkloads<EventQueue>(events, seed, repeat);
    if (run_baseline)
        baseline = runWorkloads<BaselineEventQueue>(events, seed, repeat);

    Table table("Event engine throughput (Mevents/sec, min of --repeat)");
    table.setHeader({"workload", "slab heap", "baseline", "speedup"});
    const auto row = [&](const char *name, double f, double b) {
        table.addRow({name, run_fast ? mops(f) : "-",
                      run_baseline ? mops(b) : "-",
                      run_fast && run_baseline && b > 0.0
                          ? formatDouble(f / b, 1) + "x"
                          : "-"});
    };
    row("dispatch mix", fast.dispatch, baseline.dispatch);
    row("cancel-heavy", fast.cancel, baseline.cancel);
    row("same-tick burst", fast.burst, baseline.burst);
    table.print();
    std::printf("\n");

    auto &stats = trace::StatRegistry::instance();
    if (run_fast) {
        stats.gauge("sim_engine.fast.dispatch_per_sec").set(fast.dispatch);
        stats.gauge("sim_engine.fast.cancel_per_sec").set(fast.cancel);
        stats.gauge("sim_engine.fast.burst_per_sec").set(fast.burst);
    }
    if (run_baseline) {
        stats.gauge("sim_engine.baseline.dispatch_per_sec")
            .set(baseline.dispatch);
        stats.gauge("sim_engine.baseline.cancel_per_sec")
            .set(baseline.cancel);
        stats.gauge("sim_engine.baseline.burst_per_sec")
            .set(baseline.burst);
    }
    if (run_fast && run_baseline && baseline.dispatch > 0.0) {
        stats.gauge("sim_engine.speedup.dispatch")
            .set(fast.dispatch / baseline.dispatch);
        stats.gauge("sim_engine.speedup.cancel")
            .set(fast.cancel / baseline.cancel);
        stats.gauge("sim_engine.speedup.burst")
            .set(fast.burst / baseline.burst);
    }

    ShapeCheck check("Event engine");
    if (run_fast) {
        check.expectTrue("slab heap preserves same-tick FIFO order",
                         fast.fifoOk);
        check.expectGreater("slab heap dispatch rate positive",
                            fast.dispatch, 0.0);
    }
    if (run_baseline) {
        check.expectTrue("baseline preserves same-tick FIFO order",
                         baseline.fifoOk);
    }
    if (run_fast && run_baseline) {
        // The tentpole acceptance gate: >=10x event-dispatch
        // throughput over the priority_queue + tombstone baseline.
        check.expectGreater("dispatch mix speedup >= 10x",
                            fast.dispatch, 10.0 * baseline.dispatch);
        // Secondary gates: structural wins, not headline numbers.
        // Typical ratios are 3.5x/3.7x but they swing with machine
        // noise far more than the dispatch mix; 2x keeps the gate
        // meaningful without tripping on a loaded host.
        check.expectGreater("cancel-heavy speedup >= 2x", fast.cancel,
                            2.0 * baseline.cancel);
        check.expectGreater("same-tick burst speedup >= 2x", fast.burst,
                            2.0 * baseline.burst);
    }
    return bench::finish(check);
}
