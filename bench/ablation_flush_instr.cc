/**
 * @file
 * Ablation: which flush mechanism should the save routine use?
 *
 * DESIGN.md design choice: the paper uses wbinvd because software
 * cannot track dirty-line locations ("it is not practical to track
 * the location of dirty cache lines in software"). This ablation
 * quantifies the alternative: a clflush loop over the whole cache
 * costs the same regardless of dirt, while a hypothetical
 * dirty-tracking clflush would win only at low dirty ratios — and on
 * the big 2-socket machine the full clflush walk actually beats
 * wbinvd, matching Table 2.
 */

#include "bench/bench_util.h"
#include "core/system.h"

using namespace wsp;

namespace {

double
saveTime(const PlatformSpec &spec, FlushMethod method,
         uint64_t dirty_per_socket)
{
    SystemConfig config;
    config.platform = spec;
    config.devices.clear();
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.wsp.flushMethod = method;
    WspSystem system(config);
    system.start();
    Rng rng(3);
    if (dirty_per_socket > 0)
        system.machine().fillCachesDirty(dirty_per_socket, rng);
    auto outcome = system.powerFailAndRestore(fromMillis(1.0),
                                              fromSeconds(30.0));
    return outcome.save ? toMillis(outcome.save->duration()) : -1.0;
}

/** Hypothetical dirty-tracking clflush: only dirty lines flushed. */
double
trackedClflushMs(const PlatformSpec &spec, uint64_t dirty_per_socket)
{
    EventQueue queue;
    NvdimmConfig dimm_config;
    dimm_config.capacityBytes = 64 * kMiB;
    NvdimmModule dimm(queue, "d", dimm_config);
    NvramSpace space;
    space.addModule(dimm);
    CacheModel cache("c", spec.cachePerSocket, spec.cacheTiming, space);
    return toMillis(
        cache.clflushLoopCost(dirty_per_socket / CacheModel::kLineSize));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("ablation_flush_instr", argc, argv);
    ShapeCheck check("ablation: save-path flush mechanism");

    for (const PlatformSpec &spec :
         {platformIntelC5528(), platformAmd4180()}) {
        Table table("Save time by flush mechanism: " + spec.name + " (ms)");
        table.setHeader({"dirty/socket", "wbinvd", "clflush (full walk)",
                         "clflush (tracked, hypothetical)"});
        for (double frac : {0.01, 0.25, 0.5, 1.0}) {
            const auto dirty = static_cast<uint64_t>(
                frac * static_cast<double>(spec.cachePerSocket));
            const double wbinvd =
                saveTime(spec, FlushMethod::Wbinvd, dirty);
            const double walk =
                saveTime(spec, FlushMethod::ClflushLoop, dirty);
            const double tracked = trackedClflushMs(spec, dirty);
            table.addRow({formatDouble(100.0 * frac, 0) + "%",
                          formatDouble(wbinvd, 3),
                          formatDouble(walk, 3),
                          formatDouble(tracked, 3)});
            if (frac == 0.01) {
                check.expectGreater(
                    spec.name + ": tracked clflush would win when "
                                "almost nothing is dirty",
                    wbinvd, tracked);
            }
        }
        table.print();
        std::printf("\n");
    }

    // The full-walk-vs-wbinvd ordering differs by platform, exactly
    // as Table 2 shows.
    const double intel_wbinvd =
        saveTime(platformIntelC5528(), FlushMethod::Wbinvd,
                 platformIntelC5528().cachePerSocket);
    const double intel_walk =
        saveTime(platformIntelC5528(), FlushMethod::ClflushLoop,
                 platformIntelC5528().cachePerSocket);
    const double amd_wbinvd =
        saveTime(platformAmd4180(), FlushMethod::Wbinvd,
                 platformAmd4180().cachePerSocket);
    const double amd_walk =
        saveTime(platformAmd4180(), FlushMethod::ClflushLoop,
                 platformAmd4180().cachePerSocket);
    check.expectGreater("C5528: full clflush walk beats wbinvd",
                        intel_wbinvd, intel_walk);
    check.expectGreater("AMD 4180: wbinvd beats the clflush walk",
                        amd_walk, amd_wbinvd);
    std::printf("conclusion: wbinvd is the robust choice — no dirty "
                "tracking needed, bounded by cache size, and within\n"
                "the residual window everywhere; tracked clflush would "
                "need hardware support that does not exist.\n\n");
    return bench::finish(check);
}
