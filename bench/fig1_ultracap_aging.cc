/**
 * @file
 * Figure 1: effect of charge-discharge cycles on ultracapacitors.
 *
 * Paper (source: AgigA Tech): ultracapacitors keep ~90% or more of
 * their capacitance after 100,000 cycles at elevated temperature and
 * voltage, while rechargeable batteries sustain only a few hundred
 * cycles before capacity degrades sharply — the reason battery-free
 * NVDIMMs are viable and battery-backed NVRAM stayed niche.
 */

#include "bench/bench_util.h"
#include "power/ultracapacitor.h"
#include "util/stats.h"

using namespace wsp;

int
main(int argc, char **argv)
{
    bench::init("fig1_ultracap_aging", argc, argv);
    const AgingCurve curves[] = {AgingCurve::BestCase,
                                 AgingCurve::DataSheet,
                                 AgingCurve::WorstCase,
                                 AgingCurve::LiIonBattery};

    AsciiChart chart("Figure 1. Capacitance vs charge/discharge cycles",
                     "cycles (x1000)", "% of rated capacitance");
    Table table("Figure 1 data (% capacitance remaining)");
    table.setHeader({"cycles", "best case", "data sheet", "worst case",
                     "li-ion battery"});

    std::vector<Series> series;
    for (AgingCurve curve : curves)
        series.push_back(Series{agingCurveName(curve), {}, {}});

    for (uint64_t cycles = 0; cycles <= 100000; cycles += 5000) {
        std::vector<std::string> row{std::to_string(cycles)};
        for (size_t i = 0; i < 4; ++i) {
            const double pct = 100.0 * agingFraction(curves[i], cycles);
            series[i].add(static_cast<double>(cycles) / 1000.0, pct);
            row.push_back(formatDouble(pct, 1));
        }
        table.addRow(row);
    }
    for (const Series &s : series)
        chart.addSeries(s);
    table.print();
    std::printf("\n");
    chart.print();

    ShapeCheck check("Figure 1 (ultracapacitor aging)");
    check.expectBetween("best case >= ~95% at 100k cycles",
                        series[0].ys.back(), 95.0, 100.0);
    check.expectBetween("data sheet ~90% at 100k cycles",
                        series[1].ys.back(), 88.0, 92.0);
    check.expectBetween("worst case ~88-90% at 100k cycles",
                        series[2].ys.back(), 85.0, 91.0);
    check.expectTrue("battery collapses after a few hundred cycles",
                     agingFraction(AgingCurve::LiIonBattery, 1000) < 0.1);
    check.expectGreater("battery fine at 100 cycles",
                        agingFraction(AgingCurve::LiIonBattery, 100), 0.9);
    // Ordering: best >= datasheet >= worst at every sampled point.
    bool ordered = true;
    for (size_t i = 0; i < series[0].size(); ++i) {
        ordered = ordered && series[0].ys[i] >= series[1].ys[i] - 1e-9 &&
                  series[1].ys[i] >= series[2].ys[i] - 3.0;
    }
    check.expectTrue("curve ordering best >= datasheet >= worst",
                     ordered);
    return bench::finish(check);
}
