/**
 * @file
 * Figure 7: residual energy windows across PSU and load configurations.
 *
 * Paper (worst of 3 runs, ms):
 *
 *              AMD 400W   AMD 525W   Intel 750W   Intel 1050W
 *   Busy       346        22         10           33
 *   Idle       392        71         10           33
 *
 * Each configuration is measured from oscilloscope-style traces (the
 * paper's 95%-for-250us droop rule), three runs with run-to-run
 * jitter, worst (lowest) reported. The section-5.4 appendix check —
 * that a <$2, 0.5 F supercapacitor holds enough energy to power a
 * worst-case save — is verified at the end.
 */

#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "power/load_model.h"
#include "power/psu.h"
#include "power/signal_tracer.h"
#include "power/ultracapacitor.h"

using namespace wsp;

namespace {

/** One traced measurement of a PSU's window, in ms. */
double
measureWindow(const PsuPreset &preset, double load_watts, uint64_t seed)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, preset, Rng(seed));
    psu.setLoadWatts(load_watts);

    SignalTracer tracer(queue, fromMicros(10.0));
    tracer.addChannel("PWR_OK", [&] { return psu.pwrOk() ? 5.0 : 0.0; });
    tracer.addChannel("12V", [&] { return psu.railVoltage(Rail::V12); });
    tracer.start();

    psu.failInputAt(fromMillis(5.0));
    queue.runUntil(fromMillis(600.0));
    tracer.stop();
    queue.run();

    Tick pwr_ok = 0;
    Tick droop = 0;
    if (!tracer.firstDroop("PWR_OK", 5.0, 0.95, fromMicros(250.0),
                           &pwr_ok) ||
        !tracer.firstDroop("12V", 12.0, 0.95, fromMicros(250.0),
                           &droop)) {
        return 0.0;
    }
    return toMillis(droop - pwr_ok);
}

/** Worst (lowest) of three runs, like the paper reports. */
double
worstOfThree(const PsuPreset &preset, double load_watts, uint64_t seed0)
{
    double worst = 1e18;
    for (uint64_t run = 0; run < 3; ++run)
        worst = std::min(worst,
                         measureWindow(preset, load_watts, seed0 + run));
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("fig7_residual_windows", argc, argv);
    struct Config
    {
        PsuPreset preset;
        SystemLoad load;
        double paperBusy;
        double paperIdle;
    };
    const std::vector<Config> configs = {
        {psuPresetAmd400W(), loadAmdTestbed(), 346.0, 392.0},
        {psuPresetAmd525W(), loadAmdTestbed(), 22.0, 71.0},
        {psuPresetIntel750W(), loadIntelTestbed(), 10.0, 10.0},
        {psuPresetIntel1050W(), loadIntelTestbed(), 33.0, 33.0},
    };

    Table table("Figure 7. Residual energy windows across configurations "
                "(worst of 3 runs, ms)");
    table.setHeader({"PSU", "testbed", "Busy", "Idle", "paper busy/idle"});

    ShapeCheck check("Figure 7 (residual energy windows)");
    std::vector<double> all;
    const uint64_t base_seed = bench::rngSeed(42);
    for (const Config &config : configs) {
        const double busy = worstOfThree(
            config.preset, config.load.watts(LoadClass::Busy),
            base_seed);
        const double idle = worstOfThree(
            config.preset, config.load.watts(LoadClass::Idle),
            base_seed + 35);
        all.push_back(busy);
        all.push_back(idle);
        table.addRow({config.preset.name, config.load.name,
                      formatDouble(busy, 0), formatDouble(idle, 0),
                      formatDouble(config.paperBusy, 0) + " / " +
                          formatDouble(config.paperIdle, 0)});
        check.expectBetween(config.preset.name + " busy near paper",
                            busy, 0.7 * config.paperBusy,
                            1.5 * config.paperBusy + 10.0);
        check.expectBetween(config.preset.name + " idle near paper",
                            idle, 0.7 * config.paperIdle,
                            1.5 * config.paperIdle + 10.0);
        check.expectTrue(config.preset.name + " idle >= busy",
                         idle >= busy - 2.0);
    }
    table.print();

    // Range claim: windows span 10-400 ms across configurations.
    double lo = all[0];
    double hi = all[0];
    for (double w : all) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    std::printf("\nobserved window range: %.0f-%.0f ms "
                "(paper: 10-~400 ms)\n", lo, hi);
    check.expectBetween("smallest window ~10 ms", lo, 8.0, 20.0);
    check.expectBetween("largest window ~400 ms", hi, 300.0, 500.0);

    // Section 5.4: a 0.5 F supercapacitor (< US$2) can power the save.
    UltracapConfig supercap;
    supercap.ratedCapacitanceF = 0.5;
    supercap.maxVoltage = 12.0;
    supercap.minUsableVoltage = 6.0;
    Ultracapacitor cap(supercap);
    const double save_power = loadIntelTestbed().busyWatts;
    const Tick supply = cap.supplyTime(save_power);
    std::printf("0.5 F supercap at 12 V: %.1f J usable -> powers the "
                "full %0.f W system for %s (save needs ~3 ms)\n",
                cap.usableEnergy(), save_power,
                formatTime(supply).c_str());
    check.expectGreater("0.5 F supercap covers a worst-case 5 ms save",
                        toSeconds(supply), 0.005);

    // And the inverse provisioning question (section 5.4 / 6): what
    // capacitance would a worst-case save need, and what does it cost?
    const double needed = requiredCapacitance(
        save_power, fromMillis(5.0), 12.0, 6.0, /*margin=*/2.0);
    std::printf("provisioning: a %.0f W save of 5 ms (2x margin) needs "
                "%.3f F (~$%.2f) — 0.5 F is ample\n",
                save_power, needed, ultracapCostUsd(0.5, 12.0));
    check.expectBetween("required capacitance well under 0.5 F", needed,
                        0.0, 0.5);
    check.expectBetween("0.5 F bank costs under US$2 (paper 5.4)",
                        ultracapCostUsd(0.5, 12.0), 0.0, 2.0);
    return bench::finish(check);
}
