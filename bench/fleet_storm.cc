/**
 * @file
 * Fleet recovery storm: client tail latency and time-to-full-capacity
 * for WSP-local recovery vs backend refill vs the degraded read-only
 * tier (paper sections 1-2 motivation plus the section 6 replica
 * tradeoff, at fleet scale).
 *
 * A replicated serving fleet (rendezvous placement, quorum writes,
 * 256 GiB modelled state per node) takes a correlated outage that
 * kills every node mid-save. Each recovery policy then brings the
 * fleet back while sampled client traffic keeps hammering it:
 *
 *  - wsp-local: every node restores its own NVDIMMs in parallel and
 *    anti-entropy streams only the missed updates,
 *  - backend-refill: every node discards NVRAM and refills its full
 *    state over the shared back end (the storm regime — bandwidth
 *    divides across victims),
 *  - degraded-tier: WSP restore, but nodes serve stale reads from a
 *    read-only tier while repair certifies them.
 *
 * Gates: WSP-local must reach full capacity at least 5x faster than
 * the refill storm, no acknowledged write may be client-visibly lost
 * under any policy, and the degraded tier must actually serve reads
 * during the storm. The BENCH_fleet_storm.json record carries the
 * fleet shape (nodes, replication) as first-class fields.
 */

#include "bench/bench_util.h"
#include "fleet/fleet.h"
#include "fleet/fleet_sweep.h"

using namespace wsp;
using namespace wsp::fleet;

namespace {

struct PolicyOutcome
{
    StormOutcome storm;
    RequestStats stats;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    size_t violations = 0;
};

PolicyOutcome
runPolicy(RecoveryPolicy policy, unsigned nodes, unsigned replication,
          uint64_t seed, unsigned pre_traffic)
{
    FleetConfig config;
    config.nodes = nodes;
    config.replication = replication;
    config.seed = seed;
    config.policy = policy;
    config.keyUniverse = 512;
    // The paper's serving tier: 256 GiB of modelled state per node on
    // a shared 2 GB/s back end.
    config.memoryPerServer = 256ull * kGiB;
    config.trafficSpacing = fromMillis(50.0);

    Fleet fleet(config);
    fleet.runTraffic(pre_traffic, 0.6);

    PolicyOutcome outcome;
    outcome.storm =
        fleet.runStorm(/*mask=*/0, fromSeconds(2.0), fleet.config().killWindow,
                       0.5);
    fleet.runTraffic(pre_traffic / 4 + 1, 0.5);
    fleet.settle();

    outcome.stats = fleet.stats();
    const Histogram latency = fleet.fleetLatency();
    outcome.p50 = latency.percentile(50);
    outcome.p95 = latency.percentile(95);
    outcome.p99 = latency.percentile(99);
    outcome.violations = noReplicaDivergence(fleet).size();
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("fleet_storm", argc, argv);
    const bool full = bench::fullRuns();
    const unsigned nodes = full ? 12 : 6;
    const unsigned replication = 3;
    const unsigned pre_traffic = full ? 400 : 150;
    const uint64_t seed = bench::rngSeed(0x53544f524dull); // "STORM"

    bench::recordField("nodes", nodes);
    bench::recordField("replication", replication);

    Table table("Fleet storm: " + std::to_string(nodes) + " nodes, R=" +
                std::to_string(replication) +
                ", 256 GiB/node, correlated kill of every node");
    table.setHeader({"policy", "time to full capacity", "p50 (ms)",
                     "p99 (ms)", "degraded reads", "acked lost"});

    PolicyOutcome results[3];
    const RecoveryPolicy policies[3] = {RecoveryPolicy::WspLocal,
                                        RecoveryPolicy::BackendRefill,
                                        RecoveryPolicy::DegradedTier};
    for (int i = 0; i < 3; ++i) {
        results[i] = runPolicy(policies[i], nodes, replication, seed,
                               pre_traffic);
        table.addRow(
            {recoveryPolicyName(policies[i]),
             formatTime(results[i].storm.timeToFullCapacity),
             formatDouble(results[i].p50, 3),
             formatDouble(results[i].p99, 3),
             std::to_string(results[i].stats.degradedReads),
             std::to_string(results[i].violations)});
    }
    table.print();

    const PolicyOutcome &wsp_local = results[0];
    const PolicyOutcome &refill = results[1];
    const PolicyOutcome &degraded = results[2];
    const double wsp_s = toSeconds(wsp_local.storm.timeToFullCapacity);
    const double refill_s = toSeconds(refill.storm.timeToFullCapacity);
    std::printf("WSP-local reaches full capacity %.1fx faster than the "
                "backend-refill storm\n\n",
                wsp_s > 0 ? refill_s / wsp_s : 0.0);

    bench::recordField(
        "wsp_full_capacity_ms",
        static_cast<uint64_t>(toMillis(wsp_local.storm.timeToFullCapacity)));
    bench::recordField(
        "refill_full_capacity_ms",
        static_cast<uint64_t>(toMillis(refill.storm.timeToFullCapacity)));
    bench::recordField("degraded_reads", degraded.stats.degradedReads);

    ShapeCheck check("Fleet recovery storm");
    check.expectGreater("WSP-local >= 5x faster to full capacity",
                        wsp_s > 0 ? refill_s / wsp_s : 0.0, 5.0);
    check.expectBetween("no acked write lost under wsp-local",
                        static_cast<double>(wsp_local.violations), 0.0,
                        0.0);
    check.expectBetween("no acked write lost under backend-refill",
                        static_cast<double>(refill.violations), 0.0, 0.0);
    check.expectBetween("no acked write lost under degraded-tier",
                        static_cast<double>(degraded.violations), 0.0,
                        0.0);
    check.expectGreater("every victim recovered via WSP restore",
                        static_cast<double>(
                            wsp_local.storm.wspRecoveries +
                            wsp_local.storm.salvageBoots) +
                            0.5,
                        static_cast<double>(nodes));
    check.expectGreater("degraded tier served reads during the storm",
                        static_cast<double>(
                            degraded.stats.degradedReads) +
                            0.5,
                        0.5);
    check.expectGreater("clients saw tail latency during the storm",
                        results[0].p99 + results[1].p99, 0.0);
    return bench::finish(check);
}
