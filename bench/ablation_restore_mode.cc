/**
 * @file
 * Ablation: whole-system resume vs process persistence (paper §6).
 *
 * Process persistence (Otherworld / Drawbridge direction) keeps the
 * same flush-on-fail save path but boots a fresh kernel on restore
 * and re-attaches applications to their surviving memory, instead of
 * resuming the old OS image. The tradeoff: a clean kernel (no stale
 * driver state, tolerates OS-image damage) at the cost of a full
 * kernel boot and losing running thread continuity.
 */

#include "apps/kv_store.h"
#include "bench/bench_util.h"
#include "core/system.h"

using namespace wsp;

namespace {

struct Outcome
{
    bool usedWsp = false;
    bool contextsRestored = false;
    bool appStateIntact = false;
    double restoreSeconds = 0.0;
};

Outcome
run(RestoreMode mode)
{
    SystemConfig config;
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.devices.clear();
    config.wsp.restoreMode = mode;
    config.wsp.firmwareBootLatency = fromSeconds(5.0);
    WspSystem system(config);
    system.start();

    apps::KvStore store(system.cache(), 0, 1024);
    Rng rng(21);
    for (uint64_t i = 1; i <= 500; ++i)
        store.put(i, rng());
    const uint64_t checksum = store.checksum();
    Rng ctx_rng(5);
    system.machine().randomizeContexts(ctx_rng);
    const CpuContext before = system.machine().core(1).context;

    auto result = system.powerFailAndRestore(fromMillis(10.0),
                                             fromSeconds(30.0));
    Outcome outcome;
    outcome.usedWsp = result.restore.usedWsp;
    outcome.contextsRestored =
        result.restore.contextsRestored &&
        system.machine().core(1).context == before;
    auto attached = apps::KvStore::attach(system.cache(), 0);
    outcome.appStateIntact =
        attached.has_value() && attached->checksum() == checksum;
    outcome.restoreSeconds = toSeconds(result.restore.duration());
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("ablation_restore_mode", argc, argv);
    const Outcome whole = run(RestoreMode::WholeSystem);
    const Outcome process = run(RestoreMode::ProcessOnly);

    Table table("Restore modes after an identical power failure");
    table.setHeader({"mode", "recovered", "thread contexts",
                     "app memory", "boot-to-running"});
    table.addRow({restoreModeName(RestoreMode::WholeSystem),
                  whole.usedWsp ? "WSP" : "back end",
                  whole.contextsRestored ? "resumed" : "lost",
                  whole.appStateIntact ? "intact" : "lost",
                  formatDouble(whole.restoreSeconds, 2) + " s"});
    table.addRow({restoreModeName(RestoreMode::ProcessOnly),
                  process.usedWsp ? "WSP" : "back end",
                  process.contextsRestored ? "resumed" : "fresh",
                  process.appStateIntact ? "intact" : "lost",
                  formatDouble(process.restoreSeconds, 2) + " s"});
    table.print();

    std::printf("\nProcess persistence trades a fresh-kernel boot "
                "(+%.0f s here) for isolation from stale OS/driver\n"
                "state; application memory survives either way "
                "(paper section 6).\n\n",
                process.restoreSeconds - whole.restoreSeconds);

    ShapeCheck check("ablation: restore mode (process persistence)");
    check.expectTrue("whole-system: WSP recovery", whole.usedWsp);
    check.expectTrue("whole-system: contexts resumed exactly",
                     whole.contextsRestored);
    check.expectTrue("whole-system: app memory intact",
                     whole.appStateIntact);
    check.expectTrue("process-only: WSP recovery", process.usedWsp);
    check.expectTrue("process-only: contexts deliberately fresh",
                     !process.contextsRestored);
    check.expectTrue("process-only: app memory still intact",
                     process.appStateIntact);
    check.expectGreater("process-only pays the fresh kernel boot",
                        process.restoreSeconds, whole.restoreSeconds);
    return bench::finish(check);
}
