/**
 * @file
 * Recovery storm (paper sections 1-2, motivation): correlated outage
 * recovery time, shared back end vs WSP local restore.
 *
 * Reproduces the quantitative claims behind the introduction: reading
 * 256 GB at 0.5 GB/s takes more than 8 minutes even for a single
 * server with dedicated storage; a correlated outage across 10s-100s
 * of servers divides the shared back end's bandwidth and stretches
 * recovery to hours (the Facebook 2010 outage: 2.5 h), while WSP
 * servers restore locally and in parallel.
 */

#include "apps/backend_store.h"
#include "apps/cluster.h"
#include "bench/bench_util.h"

using namespace wsp;
using namespace wsp::apps;

int
main(int argc, char **argv)
{
    bench::init("recovery_storm", argc, argv);
    // Claim 1: single-server recovery is minutes even at full stream
    // bandwidth.
    BackendConfig stream;
    stream.perStreamBandwidth = 0.5e9;
    stream.aggregateBandwidth = 1e15;
    BackendStore single(stream);
    const Tick single_256gb =
        single.recoveryTime(256ull * 1000 * 1000 * 1000, 1);
    std::printf("single server, 256 GB at 0.5 GB/s: %s "
                "(paper: > 8 min)\n\n",
                formatTime(single_256gb).c_str());

    // Claim 2: the storm.
    Table table("Recovery storm: shared back end vs WSP local restore");
    table.setHeader({"servers", "back end (storm)", "WSP local",
                     "speedup"});
    double speedup100 = 0.0;
    Tick wsp100 = 0;
    Tick storm100 = 0;
    for (unsigned servers : {1u, 10u, 50u, 100u, 500u}) {
        ClusterConfig config;
        config.servers = servers;
        config.memoryPerServer = 256ull * 1024 * 1024 * 1024;
        config.nvdimm.capacityBytes = 8 * kGiB;
        const StormReport report = correlatedOutage(config);
        if (servers == 100) {
            speedup100 = report.speedup;
            wsp100 = report.wspRecovery;
            storm100 = report.backendRecovery;
        }
        table.addRow({std::to_string(servers),
                      formatTime(report.backendRecovery),
                      formatTime(report.wspRecovery),
                      formatDouble(report.speedup, 0) + "x"});
    }
    table.print();

    // Claim 3 (section 6, "Long outages"): with replication, waiting
    // for a WSP server beats immediate re-replication for any outage
    // shorter than the break-even point.
    ReplicationConfig replication;
    replication.stateBytes = 256ull * 1024 * 1024 * 1024;
    replication.wspRecoveryTime = fromSeconds(15.0);
    const Tick rereplicate = reReplicationTime(replication);
    const Tick break_even = breakEvenOutage(replication);
    Table tradeoff("Replica management: wait for WSP vs re-replicate "
                   "(256 GB replica, 10 GbE)");
    tradeoff.setHeader({"outage", "wait for WSP + catch up",
                        "re-replicate now", "winner"});
    for (double outage_s : {10.0, 60.0, 150.0, 300.0}) {
        const Tick outage = fromSeconds(outage_s);
        const Tick wait = wspCatchupTime(replication, outage);
        tradeoff.addRow({formatTime(outage), formatTime(wait),
                         formatTime(rereplicate),
                         wait < rereplicate ? "wait (WSP)"
                                            : "re-replicate"});
    }
    tradeoff.print();
    std::printf("break-even outage: %s — shorter outages favour "
                "waiting for the WSP server\n\n",
                formatTime(break_even).c_str());

    ShapeCheck check("Recovery storm (sections 1-2 motivation)");
    check.expectGreater("break-even outage is substantial (> 1 min)",
                        toSeconds(break_even), 60.0);
    check.expectGreater(
        "waiting wins for a short outage",
        toSeconds(rereplicate),
        toSeconds(wspCatchupTime(replication, fromSeconds(10.0))));
    check.expectGreater("256 GB at 0.5 GB/s exceeds 8 minutes",
                        toSeconds(single_256gb), 8 * 60.0);
    check.expectGreater("100-server storm takes hours",
                        toSeconds(storm100), 3600.0);
    check.expectBetween("WSP local restore under a minute",
                        toSeconds(wsp100), 1.0, 60.0);
    check.expectGreater("WSP speedup at 100 servers exceeds 100x",
                        speedup100, 100.0);
    return bench::finish(check);
}
