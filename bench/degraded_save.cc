/**
 * @file
 * Degraded-save fault storm: tiered flush-on-fail saves and
 * checksummed per-region salvage under NVDIMM media faults.
 *
 * Sweeps the salvage regime over a grid of degraded tier cuts x
 * injected flash media faults x a pre-drained ultracapacitor bank,
 * running each schedule end to end through the crash explorer
 * (workload, AC failure, image capture with faults, fresh-chassis
 * boot, invariant evaluation). The table reports the recovery mode
 * and per-region salvage fates for every cell; the shape check
 * requires zero invariant violations across the storm, both whole
 * resume and salvage-mode boots to occur, and every quarantined
 * region to be rebuilt by its recovery hook.
 */

#include "bench/bench_util.h"
#include "crashsim/crash_explorer.h"

using namespace wsp;
using namespace wsp::crashsim;

namespace {

CrashSchedule
stormSchedule(uint64_t seed)
{
    CrashSchedule schedule;
    schedule.seed = seed;
    schedule.ops = 48;
    schedule.window = fromMillis(200.0);
    schedule.outage = fromMillis(500.0);
    schedule.salvage = true;
    return schedule;
}

const char *
recoveryMode(const CrashPointResult &result)
{
    if (result.restore.usedWsp)
        return "whole resume";
    if (result.restore.salvageMode)
        return "salvage";
    return "back end";
}

std::string
cellLabel(int tier, unsigned faults, bool drained)
{
    std::string label =
        tier < 0 ? "full save" : tier == 0 ? "tier Core" : "tier Meta";
    label += ", faults=" + std::to_string(faults);
    if (drained)
        label += ", drained cap";
    return label;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("degraded_save", argc, argv);
    const uint64_t seed = bench::rngSeed(0x64677264); // "dgrd"

    Table table("Degraded-save fault storm: tier cut x media faults "
                "(salvage regime, 48-op KV workload)");
    table.setHeader({"config", "recovery", "salvaged", "quarantined",
                     "recovered", "violations"});

    size_t runs = 0;
    size_t whole_resumes = 0;
    size_t salvage_boots = 0;
    size_t backend_boots = 0;
    size_t violations = 0;
    unsigned salvaged = 0;
    unsigned quarantined = 0;
    unsigned recovered = 0;

    const std::vector<unsigned> fault_counts =
        bench::fullRuns() ? std::vector<unsigned>{0u, 1u, 3u, 6u}
                          : std::vector<unsigned>{0u, 1u, 3u};
    for (int tier : {-1, 0, 1}) {
        for (unsigned faults : fault_counts) {
            for (bool drained : {false, true}) {
                CrashSchedule schedule = stormSchedule(seed + runs);
                schedule.degradeTier = tier;
                schedule.mediaFaults = faults;
                schedule.mediaFaultSeed = seed ^ (runs * 0x9e3779b9ull);
                if (drained) {
                    schedule.drainModule = 0;
                    schedule.drainVoltage = 5.0;
                }
                const CrashPointResult result =
                    CrashExplorer::runSchedule(schedule);
                ++runs;
                whole_resumes += result.restore.usedWsp;
                salvage_boots += result.restore.salvageMode;
                backend_boots += result.backendRan;
                violations += result.violations.size();
                salvaged += result.restore.regionsSalvaged;
                quarantined += result.restore.regionsQuarantined;
                recovered += result.restore.regionsRecovered;
                table.addRow(
                    {cellLabel(tier, faults, drained),
                     recoveryMode(result),
                     std::to_string(result.restore.regionsSalvaged),
                     std::to_string(result.restore.regionsQuarantined),
                     std::to_string(result.restore.regionsRecovered),
                     std::to_string(result.violations.size())});
            }
        }
    }
    table.print();
    std::printf("%zu storm runs: %zu whole resumes, %zu salvage "
                "boots, %zu back-end boots; %u regions salvaged, "
                "%u quarantined, %u recovered\n\n",
                runs, whole_resumes, salvage_boots, backend_boots,
                salvaged, quarantined, recovered);

    ShapeCheck check("Degraded-save fault storm (flush-on-fail "
                     "robustness)");
    check.expectTrue("no invariant violations across the storm",
                     violations == 0);
    check.expectGreater("whole resumes occurred (intact images)",
                        static_cast<double>(whole_resumes), 0.0);
    check.expectGreater("salvage boots occurred (degraded images)",
                        static_cast<double>(salvage_boots), 0.0);
    check.expectGreater("media faults forced quarantines",
                        static_cast<double>(quarantined), 0.0);
    check.expectTrue("every quarantined region was rebuilt",
                     recovered == quarantined);
    check.expectGreater("intact regions were salvaged",
                        static_cast<double>(salvaged), 0.0);
    return bench::finish(check);
}
