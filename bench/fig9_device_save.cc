/**
 * @file
 * Figure 9: device state save time (the ACPI strawman).
 *
 * Paper: putting all devices into D3 on the save path takes ~5.3-6.6
 * seconds on both testbeds (means of 5 runs), busy or idle, dominated
 * by the GPU, the disk, and the NIC — far beyond any residual energy
 * window, which is why device state must be recovered on the restore
 * path instead.
 */

#include "bench/bench_util.h"
#include "devices/device_manager.h"
#include "power/load_model.h"
#include "util/stats.h"

using namespace wsp;

namespace {

/** One suspend-all measurement, in seconds. */
double
measure(const std::vector<DeviceConfig> &set, bool busy, uint64_t seed)
{
    EventQueue queue;
    DeviceManager manager(queue);
    Rng rng(seed);
    for (const DeviceConfig &config : set)
        manager.addDevice(config, rng.fork(config.name.size()));
    if (busy) {
        manager.startBusyAll();
        queue.runUntil(fromMillis(50.0));
    }
    Tick total = 0;
    manager.suspendAll([&](Tick t) { total = t; });
    queue.run();
    return toSeconds(total);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("fig9_device_save", argc, argv);
    struct Config
    {
        const char *testbed;
        std::vector<DeviceConfig> set;
        LoadClass load;
        double paperSeconds;
    };
    const std::vector<Config> configs = {
        {"AMD", deviceSetAmd(), LoadClass::Busy, 5.6},
        {"AMD", deviceSetAmd(), LoadClass::Idle, 5.3},
        {"Intel", deviceSetIntel(), LoadClass::Busy, 6.6},
        {"Intel", deviceSetIntel(), LoadClass::Idle, 6.3},
    };

    Table table("Figure 9. Device state save time (means of 5 runs)");
    table.setHeader({"testbed", "load", "save time", "(stddev)",
                     "paper approx."});

    ShapeCheck check("Figure 9 (device state save time)");
    double amd_busy = 0.0;
    double amd_idle = 0.0;
    double intel_busy = 0.0;
    double intel_idle = 0.0;
    Histogram dist(0.0, 10.0, 200); // all suspend-all samples, seconds
    for (const Config &config : configs) {
        RunningStat stat;
        for (uint64_t run = 0; run < 5; ++run) {
            const double s = measure(config.set,
                                     config.load == LoadClass::Busy,
                                     run * 13 + 7);
            stat.add(s);
            dist.add(s);
        }
        table.addRow({config.testbed, loadClassName(config.load),
                      formatDouble(stat.mean(), 2) + " s",
                      formatDouble(stat.stddev(), 3),
                      formatDouble(config.paperSeconds, 1) + " s"});
        check.expectBetween(
            std::string(config.testbed) + " " +
                loadClassName(config.load) + " in the 4.5-7 s band",
            stat.mean(), 4.5, 7.0);
        if (config.load == LoadClass::Busy) {
            (config.testbed[0] == 'A' ? amd_busy : intel_busy) =
                stat.mean();
        } else {
            (config.testbed[0] == 'A' ? amd_idle : intel_idle) =
                stat.mean();
        }
    }
    table.print();

    std::printf("\nsuspend-all distribution: p50 %.2f s  p95 %.2f s  "
                "p99 %.2f s\n",
                dist.percentile(50), dist.percentile(95),
                dist.percentile(99));
    std::printf("\nEven idle saves take seconds: per-driver D3 "
                "timeouts dominate, not queue drain.\n");
    check.expectGreater("Intel slower than AMD (GPU/disk/NIC heavier)",
                        intel_idle, amd_idle);
    check.expectGreater("busy >= idle (AMD)", amd_busy, amd_idle - 0.05);
    check.expectGreater("busy >= idle (Intel)", intel_busy,
                        intel_idle - 0.05);
    check.expectGreater("device save dwarfs the largest residual "
                        "window (~0.4 s)",
                        amd_idle, 10 * 0.4);
    return bench::finish(check);
}
