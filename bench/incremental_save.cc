/**
 * @file
 * Dirty-delta persistence: incremental save and lazy restore scaling.
 *
 * The flush-on-fail bill is proportional to what changed, not to what
 * exists: after a completed save established the flash baseline, a
 * delta save programs only the pages dirtied since, so save time (and
 * ultracap energy) scales with the dirty footprint. The bench sweeps
 * the dirty fraction on a 4 GiB module and reports delta-vs-full save
 * time — at 10 % dirty the delta save must be at least 5x cheaper —
 * then compares eager streaming restores against lazy page-in mapping
 * across capacities, verifying the lazily restored content is
 * byte-identical.
 */

#include "bench/bench_util.h"
#include "nvram/nvdimm.h"
#include "util/rng.h"

using namespace wsp;

namespace {

/** Complete one host-powered save so the flash baseline is open. */
void
saveWithHostPower(EventQueue &queue, NvdimmModule &dimm)
{
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    dimm.exitSelfRefresh();
}

/** Touch one byte in each of @p pages evenly spread pages. */
void
dirtyPages(NvdimmModule &dimm, uint64_t pages, Rng &rng)
{
    const uint64_t total =
        dimm.config().capacityBytes / SparseMemory::kPageSize;
    const uint64_t stride = pages == 0 ? total : total / pages;
    for (uint64_t i = 0; i < pages; ++i) {
        const uint64_t page = i * stride + rng.next(stride);
        const uint8_t byte[] = {static_cast<uint8_t>(rng())};
        dimm.hostWrite(std::min(page, total - 1) * SparseMemory::kPageSize,
                       byte);
    }
}

struct SavePoint
{
    double dirtyFraction = 0.0;
    uint64_t dirtyBytes = 0;
    double deltaMs = 0.0; ///< modelled delta-save time
    double fullMs = 0.0;  ///< modelled full-save time
    double wallMs = 0.0;  ///< measured wall time of the delta save
};

SavePoint
runSavePoint(uint64_t capacity, double fraction, uint64_t seed)
{
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = capacity;
    NvdimmModule dimm(queue, "nvdimm0", config);

    // Baseline: one completed full save (a fresh module is all-dirty).
    saveWithHostPower(queue, dimm);

    Rng rng(seed);
    const uint64_t total = capacity / SparseMemory::kPageSize;
    dirtyPages(dimm, static_cast<uint64_t>(fraction *
                                           static_cast<double>(total)),
               rng);

    SavePoint point;
    point.dirtyFraction = fraction;
    point.dirtyBytes = dimm.pendingSaveBytes();
    point.deltaMs = toMillis(dimm.pendingSaveDuration());
    point.fullMs = toMillis(dimm.saveDuration());
    point.wallMs = 1e3 * bench::medianOf(bench::repeat(), [&] {
        bench::Stopwatch watch;
        saveWithHostPower(queue, dimm);
        return watch.seconds();
    });
    return point;
}

struct RestorePoint
{
    uint64_t capacity = 0;
    double eagerMs = 0.0;
    double lazyMs = 0.0;
    bool contentEqual = false;
};

RestorePoint
runRestorePoint(uint64_t capacity, uint64_t seed)
{
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = capacity;
    config.lazyRestore = true;
    NvdimmModule dimm(queue, "nvdimm0", config);

    // Write a recognizable image, save it, then lose DRAM entirely.
    Rng rng(seed);
    dirtyPages(dimm, 64, rng);
    saveWithHostPower(queue, dimm);
    const SparseMemory before = dimm.dram().snapshot();
    dimm.hostPowerLost(); // unarmed: DRAM decays, flash keeps the image
    dimm.hostPowerRestored();

    RestorePoint point;
    point.capacity = capacity;
    point.lazyMs = toMillis(dimm.restoreDuration());
    point.eagerMs = toMillis(dimm.fullRestoreDuration());
    dimm.enterSelfRefresh();
    dimm.startRestore();
    queue.run();
    dimm.exitSelfRefresh();
    point.contentEqual = dimm.dram().contentEquals(before);
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("incremental_save", argc, argv);
    const uint64_t seed = bench::rngSeed(0x5e1f5a7eull);
    const uint64_t capacity = 4 * kGiB;

    // Dirty fractions above 25 % materialize gigabytes of pages; keep
    // them behind WSP_BENCH_FULL so the default run stays light.
    std::vector<double> fractions = {0.01, 0.05, 0.10, 0.25};
    if (bench::fullRuns()) {
        fractions.push_back(0.50);
        fractions.push_back(1.00);
    }

    Table saves("Delta vs full save time, 4 GiB module");
    saves.setHeader({"dirty", "pending bytes", "delta save", "full save",
                     "ratio", "wall (ms)"});
    ShapeCheck check("incremental save and lazy restore");

    double ratioAt10 = 0.0;
    std::vector<double> deltaMs;
    for (double fraction : fractions) {
        const SavePoint point = runSavePoint(capacity, fraction, seed);
        const double ratio =
            point.fullMs / std::max(point.deltaMs, 1e-9);
        if (fraction == 0.10)
            ratioAt10 = ratio;
        deltaMs.push_back(point.deltaMs);
        saves.addRow({
            formatDouble(100.0 * fraction, 0) + " %",
            formatBytes(point.dirtyBytes),
            formatDouble(point.deltaMs, 2) + " ms",
            formatDouble(point.fullMs, 2) + " ms",
            formatDouble(ratio, 1) + "x",
            formatDouble(point.wallMs, 2),
        });
    }
    saves.print();

    check.expectGreater("10 % dirty: delta save at least 5x cheaper",
                        ratioAt10, 5.0);
    for (size_t i = 1; i < deltaMs.size(); ++i)
        check.expectGreater(
            "save time grows with the dirty footprint (" +
                formatDouble(100.0 * fractions[i], 0) + " % > " +
                formatDouble(100.0 * fractions[i - 1], 0) + " %)",
            deltaMs[i], deltaMs[i - 1]);

    Table restores("Eager streaming vs lazy page-in restore");
    restores.setHeader(
        {"capacity", "eager restore", "lazy restore", "content"});
    for (uint64_t cap : {1 * kGiB, 2 * kGiB, 4 * kGiB}) {
        const RestorePoint point = runRestorePoint(cap, seed);
        restores.addRow({
            formatBytes(point.capacity),
            formatDouble(point.eagerMs, 1) + " ms",
            formatDouble(point.lazyMs, 2) + " ms",
            point.contentEqual ? "identical" : "DIVERGED",
        });
        check.expectTrue("lazy restore content identical at " +
                             formatBytes(point.capacity),
                         point.contentEqual);
        check.expectGreater("lazy beats eager at " +
                                formatBytes(point.capacity),
                            point.eagerMs, point.lazyMs);
        if (cap == 4 * kGiB) {
            // The paper's resume-latency pitch: multi-GiB images come
            // back in tens of milliseconds when mapped lazily, versus
            // seconds of streaming.
            check.expectBetween("4 GiB lazy restore under 50 ms",
                                point.lazyMs, 0.0, 50.0);
        }
    }
    restores.print();
    return bench::finish(check);
}
