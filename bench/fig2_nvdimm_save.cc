/**
 * @file
 * Figure 2: ultracapacitor voltage and power during an NVDIMM save.
 *
 * Paper: for a 1 GB NVDIMM, the DRAM-to-flash save completes in under
 * 10 s, the ultracapacitor supplies power for at least twice that,
 * and the module's DC-DC input stays usable down to 6 V (internal
 * rail 3.3 V). The bench pulls host power from a 1 GiB module and
 * traces the bank's voltage and power output through the hardware-
 * triggered save, sampling like the paper's oscilloscope.
 */

#include "bench/bench_util.h"
#include "nvram/nvdimm.h"
#include "power/signal_tracer.h"

using namespace wsp;

int
main(int argc, char **argv)
{
    bench::init("fig2_nvdimm_save", argc, argv);
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = 1 * kGiB;
    NvdimmModule dimm(queue, "nvdimm0", config);
    dimm.arm();

    // Touch some content so the save is meaningful.
    const uint8_t data[] = {0xaa, 0xbb, 0xcc};
    dimm.hostWrite(0, data);

    SignalTracer tracer(queue, fromMillis(20.0));
    tracer.addChannel("voltage",
                      [&] { return dimm.ultracap().voltage(); });
    tracer.addChannel("power", [&] {
        return dimm.state() == NvdimmState::Saving ? dimm.savePowerWatts()
                                                   : 0.0;
    });
    tracer.start();

    // Host power disappears; the armed module saves on its own bank.
    dimm.hostPowerLost();
    const Tick save_duration = dimm.saveDuration();
    Tick save_completed = 0;
    queue.scheduleAfter(save_duration + kMillisecond,
                        [&] { save_completed = queue.now(); });

    // Keep discharging past the save to find the total supply window,
    // as the paper's trace does.
    const Tick horizon = fromSeconds(20.0);
    queue.runUntil(horizon);
    tracer.stop();
    queue.run();

    const double v_at_save_end =
        tracer.channel("voltage").at(toSeconds(save_completed));
    // Total window a fresh bank can power the save engine for.
    const Tick supply_total =
        Ultracapacitor(config.ultracap).supplyTime(dimm.savePowerWatts());

    AsciiChart chart("Figure 2. Voltage and power draw on ultracapacitors "
                     "during NVDIMM save",
                     "time (s)", "volts / watts");
    chart.addSeries(tracer.channel("voltage"));
    chart.addSeries(tracer.channel("power"));
    chart.print();

    std::printf("\nsave completed at %s (marker in the paper's figure); "
                "bank voltage there: %.2f V\n",
                formatTime(save_completed).c_str(), v_at_save_end);
    std::printf("module: %s across %u flash channels at %.1f W\n",
                formatBytes(config.capacityBytes).c_str(),
                dimm.flashChannels(), dimm.savePowerWatts());

    ShapeCheck check("Figure 2 (NVDIMM save on ultracapacitor power)");
    check.expectTrue("save completed", dimm.flashValid());
    check.expectBetween("save time under 10 s",
                        toSeconds(save_completed), 0.1, 10.0);
    check.expectGreater(
        "bank supplies at least 2x the save time",
        toSeconds(supply_total), 2.0 * toSeconds(save_completed));
    check.expectGreater("voltage at save completion above the 6 V floor",
                        v_at_save_end, 6.0);
    check.expectGreater("voltage sagged during the save", 12.0,
                        v_at_save_end);
    return bench::finish(check);
}
