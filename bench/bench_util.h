/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure: it prints the paper's
 * rows/series, then a ShapeCheck verdict, and exits nonzero when the
 * measured shape drifts from the paper's. Set WSP_BENCH_FULL=1 to run
 * the paper-sized workloads (the default sizes are trimmed so the
 * whole bench suite finishes quickly).
 *
 * Observability: call init("<bench>", argc, argv) first. It applies
 * WSP_LOG_LEVEL and WSP_TRACE from the environment and parses the
 * standard flags:
 *
 *   --trace-out=<file>    write a Chrome trace-event JSON (Perfetto)
 *                         at exit; implies WSP_TRACE=all if no
 *                         category was enabled explicitly
 *   --metrics-out=<file>  write the flat metrics snapshot (JSON, or
 *                         CSV when the path ends in .csv) at exit,
 *                         and append one BENCH_<name>.json record
 *                         (bench id, host, wall time, seed,
 *                         counters) next to it for the perf
 *                         trajectory
 *   --seed=N              override the bench's base RNG seed; benches
 *                         obtain it via rngSeed(default) so the value
 *                         actually used lands in the bench record
 *   --repeat=N            run each measured sample N times and report
 *                         the median; benches opt in by sampling
 *                         through medianOf(repeat(), fn)
 *
 * finish(check) writes the requested files before returning the exit
 * code, so benches need no extra code beyond init()/finish().
 */

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/export.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"

namespace wsp::bench {

/** True when WSP_BENCH_FULL=1 requests paper-sized workloads. */
inline bool
fullRuns()
{
    const char *env = std::getenv("WSP_BENCH_FULL");
    return env != nullptr && env[0] == '1';
}

/** Monotonic wall-clock seconds. */
inline double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Stopwatch for real-time measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowSeconds()) {}
    double seconds() const { return nowSeconds() - start_; }
    void reset() { start_ = nowSeconds(); }

  private:
    double start_;
};

namespace detail {

/** Per-process bench state filled in by init(). */
struct BenchState
{
    std::string name = "bench";
    std::string traceOut;
    std::string metricsOut;
    double startedAt = 0.0;
    uint64_t seed = 0;
    bool seedExplicit = false;
    unsigned repeat = 1;
    trace::BenchRecordFields recordFields;
};

inline BenchState &
state()
{
    static BenchState instance;
    return instance;
}

} // namespace detail

/**
 * Standard bench prologue: apply WSP_LOG_LEVEL / WSP_TRACE and parse
 * the --trace-out= / --metrics-out= flags. Unknown flags warn and are
 * ignored so figure-specific options can be added later.
 */
inline void
init(const char *name, int argc, char **argv)
{
    auto &bench = detail::state();
    bench.name = name;
    bench.startedAt = nowSeconds();

    configureLogLevelFromEnv();
    trace::TraceManager::instance().configureFromEnv();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            bench.traceOut = arg + 12;
        } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
            bench.metricsOut = arg + 14;
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            bench.seed = std::strtoull(arg + 7, nullptr, 0);
            bench.seedExplicit = true;
        } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
            bench.repeat = static_cast<unsigned>(
                std::strtoul(arg + 9, nullptr, 0));
            if (bench.repeat == 0)
                bench.repeat = 1;
        } else if (std::strcmp(arg, "--repeat") == 0 && i + 1 < argc) {
            bench.repeat = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            if (bench.repeat == 0)
                bench.repeat = 1;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("usage: %s [--trace-out=FILE] "
                        "[--metrics-out=FILE] [--seed=N] [--repeat=N]\n"
                        "env: WSP_TRACE=<cat,...|all>  "
                        "WSP_LOG_LEVEL=<quiet|normal|debug>  "
                        "WSP_BENCH_FULL=1\n",
                        name);
            std::exit(0);
        } else {
            warn("%s: ignoring unknown argument '%s'", name, arg);
        }
    }

    // Asking for a trace file is asking for tracing: if no category
    // was enabled via WSP_TRACE (or the build default), enable all.
    if (!bench.traceOut.empty() && !trace::anyEnabled())
        trace::TraceManager::instance().enableAll();
}

/**
 * The base RNG seed for this run: @p fallback unless the user passed
 * --seed=N. Whatever value wins is recorded in the BENCH_<name>.json
 * line so any run can be reproduced exactly.
 */
inline uint64_t
rngSeed(uint64_t fallback)
{
    auto &bench = detail::state();
    if (!bench.seedExplicit)
        bench.seed = fallback;
    return bench.seed;
}

/**
 * Attach an extra top-level integer field to this run's
 * BENCH_<name>.json record (e.g. fleet_storm's nodes/replication).
 * Repeated names overwrite the earlier value, so a bench can refine a
 * field after sizing its workload.
 */
inline void
recordField(const std::string &name, uint64_t value)
{
    auto &fields = detail::state().recordFields;
    for (auto &field : fields) {
        if (field.first == name) {
            field.second = value;
            return;
        }
    }
    fields.emplace_back(name, value);
}

/** The sample count requested via --repeat=N (default 1). */
inline unsigned
repeat()
{
    return detail::state().repeat;
}

/**
 * Run @p sample @p n times and return the median of its results —
 * the standard way for a bench to honor --repeat=N. Even counts
 * return the mean of the two middle samples.
 */
template <typename Fn>
inline double
medianOf(unsigned n, Fn &&sample)
{
    if (n == 0)
        n = 1;
    std::vector<double> values;
    values.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        values.push_back(static_cast<double>(sample()));
    std::sort(values.begin(), values.end());
    return n % 2 == 1
               ? values[n / 2]
               : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/**
 * Run @p sample @p n times and return the minimum. For wall-clock
 * comparisons the min is the noise-robust estimator: scheduler and
 * cache interference only ever add time, so the floor tracks the
 * work itself while the median still carries host jitter.
 */
template <typename Fn>
inline double
minOf(unsigned n, Fn &&sample)
{
    if (n == 0)
        n = 1;
    double best = static_cast<double>(sample());
    for (unsigned i = 1; i < n; ++i)
        best = std::min(best, static_cast<double>(sample()));
    return best;
}

/** Write the files requested via init() flags (idempotent). */
inline void
writeOutputs()
{
    auto &bench = detail::state();
    if (!bench.traceOut.empty()) {
        if (trace::writeChromeTrace(bench.traceOut))
            inform("%s: wrote trace to %s", bench.name.c_str(),
                   bench.traceOut.c_str());
    }
    if (!bench.metricsOut.empty()) {
        if (trace::writeMetrics(bench.metricsOut))
            inform("%s: wrote metrics to %s", bench.name.c_str(),
                   bench.metricsOut.c_str());
        // Perf-trajectory record: BENCH_<name>.json next to the
        // metrics file, one JSON object appended per run.
        std::string record = bench.metricsOut;
        const size_t slash = record.find_last_of('/');
        record.erase(slash == std::string::npos ? 0 : slash + 1);
        record += "BENCH_" + bench.name + ".json";
        trace::appendBenchRecord(record, bench.name,
                                 nowSeconds() - bench.startedAt,
                                 bench.seed, bench.recordFields);
    }
}

/** Standard bench epilogue: emit outputs, summarize, and exit code. */
inline int
finish(const ShapeCheck &check)
{
    writeOutputs();
    return check.summarize() ? 0 : 1;
}

} // namespace wsp::bench
