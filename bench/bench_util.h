/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure: it prints the paper's
 * rows/series, then a ShapeCheck verdict, and exits nonzero when the
 * measured shape drifts from the paper's. Set WSP_BENCH_FULL=1 to run
 * the paper-sized workloads (the default sizes are trimmed so the
 * whole bench suite finishes quickly).
 */

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/table.h"
#include "util/units.h"

namespace wsp::bench {

/** True when WSP_BENCH_FULL=1 requests paper-sized workloads. */
inline bool
fullRuns()
{
    const char *env = std::getenv("WSP_BENCH_FULL");
    return env != nullptr && env[0] == '1';
}

/** Monotonic wall-clock seconds. */
inline double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Stopwatch for real-time measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowSeconds()) {}
    double seconds() const { return nowSeconds() - start_; }
    void reset() { start_ = nowSeconds(); }

  private:
    double start_;
};

/** Standard bench epilogue: summarize and exit code. */
inline int
finish(const ShapeCheck &check)
{
    return check.summarize() ? 0 : 1;
}

} // namespace wsp::bench
