/**
 * @file
 * Black-box flight-recorder overhead on the parallel save path.
 *
 * The recorder's bargain is one flushed cache line per recorded
 * event; this bench prices it. The same workload — dirty caches,
 * parallel flush-on-fail save, outage, restore — runs with the
 * recorder Off, Volatile (DRAM mirror only), and fully NVRAM-backed,
 * and the wall-clock cost of each tier is compared. Acceptance is the
 * issue's budget: the NVRAM-backed recorder at the default ring size
 * costs at most 5% over recorder-off on the save path. Simulated
 * save time must not move at all — recording charges host time, never
 * the residual-energy window.
 *
 * The overhead lands in the BENCH_flight_recorder_overhead.json
 * record (gauge bench.flight_recorder.overhead_pct), so
 * bench_summary --counter=bench.flight_recorder.overhead_pct tracks
 * the trajectory across commits.
 */

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/system.h"
#include "trace/flight_recorder.h"
#include "trace/stat_registry.h"

using namespace wsp;

namespace {

struct ModePoint
{
    trace::FrMode mode = trace::FrMode::Off;
    double wallSeconds = 0.0;  ///< median host seconds per sample
    double simSaveMs = 0.0;    ///< simulated save duration (last cycle)
    uint64_t eventsEmitted = 0;
    bool completed = true;
};

/** One sample: @p cycles dirty-fill + crash + restore rounds. */
ModePoint
sample(trace::FrMode mode, unsigned cycles, uint64_t dirty_bytes,
       uint64_t seed)
{
    SystemConfig config;
    config.devices.clear();
    config.nvdimm.capacityBytes = 16 * kMiB;
    config.nvdimmCount = 2;
    config.seed = seed;
    config.wsp.parallelFlush = true;
    config.wsp.flightRecorder = mode;
    WspSystem system(config);
    system.start();

    const uint64_t emitted_before =
        trace::FlightRecorder::instance().totalEmitted();
    Rng rng(seed);
    ModePoint point;
    point.mode = mode;

    bench::Stopwatch watch;
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        system.machine().fillCachesDirty(dirty_bytes, rng);
        const auto outcome = system.powerFailAndRestore(
            fromMillis(1.0), fromSeconds(2.0));
        if (!outcome.save.has_value() || !outcome.save->completed) {
            point.completed = false;
            return point;
        }
        point.simSaveMs = toMillis(outcome.save->duration());
    }
    point.wallSeconds = watch.seconds();
    point.eventsEmitted =
        trace::FlightRecorder::instance().totalEmitted() -
        emitted_before;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("flight_recorder_overhead", argc, argv);
    const uint64_t seed = bench::rngSeed(2026);
    const unsigned cycles = bench::fullRuns() ? 24 : 8;
    const uint64_t dirty_bytes = 4 * kMiB;
    // Wall-clock deltas in the few-percent range drown in host
    // jitter unless each mode is priced by its floor: interference
    // only ever adds time, so min-of-N isolates the work itself.
    const unsigned samples = std::max(5u, bench::repeat());

    const std::vector<trace::FrMode> modes = {
        trace::FrMode::Off, trace::FrMode::Volatile,
        trace::FrMode::Nvram};

    Table table("Flight-recorder overhead: " +
                std::to_string(cycles) + " save/restore cycles, "
                "parallel flush, default ring");
    table.setHeader({"mode", "wall (s)", "sim save (ms)", "events",
                     "overhead"});

    auto &stats = trace::StatRegistry::instance();
    // Interleave the modes round-robin so a load spike on the host
    // hits all three tiers alike instead of biasing whichever block
    // it landed in; each tier keeps its floor across the rounds.
    std::vector<ModePoint> points(modes.size());
    for (unsigned round = 0; round < samples; ++round) {
        for (size_t i = 0; i < modes.size(); ++i) {
            ModePoint point =
                sample(modes[i], cycles, dirty_bytes, seed);
            if (round == 0 ||
                point.wallSeconds < points[i].wallSeconds)
                points[i] = point;
        }
    }
    for (size_t i = 0; i < modes.size(); ++i) {
        const ModePoint &point = points[i];
        const trace::FrMode mode = modes[i];
        const double overhead_pct =
            points.front().wallSeconds > 0.0
                ? 100.0 * (point.wallSeconds -
                           points.front().wallSeconds) /
                      points.front().wallSeconds
                : 0.0;
        table.addRow({trace::frModeName(mode),
                      formatDouble(point.wallSeconds, 4),
                      formatDouble(point.simSaveMs, 3),
                      std::to_string(point.eventsEmitted),
                      mode == trace::FrMode::Off
                          ? "baseline"
                          : formatDouble(overhead_pct, 2) + "%"});
        const std::string prefix = std::string(
            "bench.flight_recorder.") + trace::frModeName(mode);
        stats.gauge(prefix + "_wall_s").set(point.wallSeconds);
        stats.gauge(prefix + "_events")
            .set(static_cast<double>(point.eventsEmitted));
    }
    table.print();

    const ModePoint &off = points[0];
    const ModePoint &vol = points[1];
    const ModePoint &nvram = points[2];
    const double overhead_pct =
        off.wallSeconds > 0.0
            ? 100.0 * (nvram.wallSeconds - off.wallSeconds) /
                  off.wallSeconds
            : 0.0;
    stats.gauge("bench.flight_recorder.overhead_pct")
        .set(overhead_pct);
    std::printf("\nnvram-backed overhead vs off: %.2f%%\n",
                overhead_pct);

    ShapeCheck check("Flight-recorder overhead");
    for (const ModePoint &point : points)
        check.expectTrue("save completed", point.completed);
    check.expectTrue("recorder off emits nothing",
                     off.eventsEmitted == 0);
    check.expectTrue("nvram mode records the lifecycle",
                     nvram.eventsEmitted > 0 &&
                         vol.eventsEmitted > 0);
    // Recording costs host time only: the simulated save duration —
    // the residual-energy window the paper budgets — must not move.
    check.expectTrue("simulated save time unperturbed",
                     nvram.simSaveMs <= off.simSaveMs * 1.01 + 1e-9 &&
                         off.simSaveMs <= nvram.simSaveMs * 1.01 + 1e-9);
    // The issue's acceptance budget. The small absolute slack keeps
    // scheduler noise on a sub-second sample from flaking the gate.
    check.expectTrue(
        "nvram-backed overhead within 5%",
        nvram.wallSeconds <= off.wallSeconds * 1.05 + 0.010);
    return bench::finish(check);
}
