/**
 * @file
 * Google-benchmark microbenchmarks of the persistence primitives.
 *
 * Measures the building blocks whose costs explain Fig. 5 and
 * Table 1: cache-line flushes, non-temporal stores, fences, torn-bit
 * log appends, undo/redo transaction overhead, STM instrumentation,
 * and one hash-table operation under each configuration.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "apps/hash_table.h"
#include "bench/bench_util.h"
#include "pheap/flush.h"
#include "pheap/policies.h"
#include "util/rng.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

PHeapConfig
heapConfig(bool durable)
{
    PHeapConfig config;
    config.regionSize = 128ull * 1024 * 1024;
    config.durableLogs = durable;
    return config;
}

void
BM_FlushLine(benchmark::State &state)
{
    alignas(64) static uint64_t line[8];
    uint64_t i = 0;
    for (auto _ : state) {
        line[0] = ++i;
        pmem::flushLine(line);
        pmem::storeFence();
    }
}
BENCHMARK(BM_FlushLine);

void
BM_CachedStore(benchmark::State &state)
{
    alignas(64) static uint64_t line[8];
    uint64_t i = 0;
    for (auto _ : state) {
        line[0] = ++i;
        benchmark::DoNotOptimize(line[0]);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_CachedStore);

void
BM_NtStore64(benchmark::State &state)
{
    alignas(64) static uint64_t line[8];
    uint64_t i = 0;
    for (auto _ : state)
        pmem::ntStore64(&line[0], ++i);
    pmem::storeFence();
}
BENCHMARK(BM_NtStore64);

void
BM_StoreFence(benchmark::State &state)
{
    for (auto _ : state)
        pmem::storeFence();
}
BENCHMARK(BM_StoreFence);

void
BM_UndoTxnDurable(benchmark::State &state)
{
    PHeap heap(heapConfig(true));
    auto *word = heap.region().at<uint64_t>(heap.region().header().heapStart);
    uint64_t i = 0;
    for (auto _ : state) {
        pmem::UndoPolicy::run(heap, [&](pmem::UndoPolicy::Tx &tx) {
            tx.write(word, ++i);
        });
    }
}
BENCHMARK(BM_UndoTxnDurable);

void
BM_UndoTxnInCache(benchmark::State &state)
{
    PHeap heap(heapConfig(false));
    auto *word = heap.region().at<uint64_t>(heap.region().header().heapStart);
    uint64_t i = 0;
    for (auto _ : state) {
        pmem::UndoPolicy::run(heap, [&](pmem::UndoPolicy::Tx &tx) {
            tx.write(word, ++i);
        });
    }
}
BENCHMARK(BM_UndoTxnInCache);

void
BM_StmTxnDurable(benchmark::State &state)
{
    PHeap heap(heapConfig(true));
    auto *word = heap.region().at<uint64_t>(heap.region().header().heapStart);
    uint64_t i = 0;
    for (auto _ : state) {
        pmem::StmPolicy::run(heap, [&](pmem::StmPolicy::Tx &tx) {
            tx.write(word, tx.read(word) + ++i);
        });
    }
}
BENCHMARK(BM_StmTxnDurable);

void
BM_StmTxnInCache(benchmark::State &state)
{
    PHeap heap(heapConfig(false));
    auto *word = heap.region().at<uint64_t>(heap.region().header().heapStart);
    uint64_t i = 0;
    for (auto _ : state) {
        pmem::StmPolicy::run(heap, [&](pmem::StmPolicy::Tx &tx) {
            tx.write(word, tx.read(word) + ++i);
        });
    }
}
BENCHMARK(BM_StmTxnInCache);

void
BM_RawAccess(benchmark::State &state)
{
    PHeap heap(heapConfig(false));
    auto *word = heap.region().at<uint64_t>(heap.region().header().heapStart);
    uint64_t i = 0;
    for (auto _ : state) {
        pmem::RawPolicy::run(heap, [&](pmem::RawPolicy::Tx &tx) {
            tx.write(word, tx.read(word) + ++i);
        });
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_RawAccess);

void
BM_TornBitAppendDurable(benchmark::State &state)
{
    PHeap heap(heapConfig(true));
    pmem::TornBitLog log(heap.region(),
                         heap.region().header().undoLogStart,
                         heap.region().header().undoLogBytes,
                         &heap.region().header().undoCheckpointPos,
                         &heap.region().header().undoCheckpointPass,
                         /*durable_appends=*/true);
    uint8_t payload[32] = {};
    for (auto _ : state) {
        log.appendData(64, payload, sizeof(payload));
        log.fence();
    }
}
BENCHMARK(BM_TornBitAppendDurable);

void
BM_TornBitAppendInCache(benchmark::State &state)
{
    PHeap heap(heapConfig(false));
    pmem::TornBitLog log(heap.region(),
                         heap.region().header().undoLogStart,
                         heap.region().header().undoLogBytes,
                         &heap.region().header().undoCheckpointPos,
                         &heap.region().header().undoCheckpointPass,
                         /*durable_appends=*/false);
    uint8_t payload[32] = {};
    for (auto _ : state) {
        log.appendData(64, payload, sizeof(payload));
        log.fence();
    }
}
BENCHMARK(BM_TornBitAppendInCache);

void
BM_TornBitScan(benchmark::State &state)
{
    PHeap heap(heapConfig(true));
    pmem::TornBitLog log(heap.region(),
                         heap.region().header().undoLogStart,
                         heap.region().header().undoLogBytes,
                         &heap.region().header().undoCheckpointPos,
                         &heap.region().header().undoCheckpointPass,
                         true);
    uint8_t payload[32] = {};
    for (int i = 0; i < 1000; ++i)
        log.appendData(64, payload, sizeof(payload));
    for (auto _ : state) {
        auto records = log.scan();
        benchmark::DoNotOptimize(records.size());
    }
}
BENCHMARK(BM_TornBitScan);

template <typename Policy>
void
hashTableOp(benchmark::State &state, bool durable)
{
    PHeap heap(heapConfig(durable));
    HashTable<Policy> table(heap, 16384);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        table.insert(rng.next(40000) + 1, rng());
    for (auto _ : state) {
        const uint64_t key = rng.next(40000) + 1;
        if (rng.chance(0.5))
            table.insert(key, key);
        else
            table.erase(key);
    }
}

void
BM_HashOp_FoC_STM(benchmark::State &state)
{
    hashTableOp<pmem::StmPolicy>(state, true);
}
BENCHMARK(BM_HashOp_FoC_STM);

void
BM_HashOp_FoC_UL(benchmark::State &state)
{
    hashTableOp<pmem::UndoPolicy>(state, true);
}
BENCHMARK(BM_HashOp_FoC_UL);

void
BM_HashOp_FoF_STM(benchmark::State &state)
{
    hashTableOp<pmem::StmPolicy>(state, false);
}
BENCHMARK(BM_HashOp_FoF_STM);

void
BM_HashOp_FoF_UL(benchmark::State &state)
{
    hashTableOp<pmem::UndoPolicy>(state, false);
}
BENCHMARK(BM_HashOp_FoF_UL);

void
BM_HashOp_FoF(benchmark::State &state)
{
    hashTableOp<pmem::RawPolicy>(state, false);
}
BENCHMARK(BM_HashOp_FoF);

} // namespace

// Hand-rolled BENCHMARK_MAIN(): the standard --trace-out/--metrics-out
// flags are split off for bench::init(); everything else goes to the
// google-benchmark flag parser.
int
main(int argc, char **argv)
{
    std::vector<char *> ours{argv[0]};
    std::vector<char *> theirs{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace-out=", 12) == 0 ||
            std::strncmp(argv[i], "--metrics-out=", 14) == 0)
            ours.push_back(argv[i]);
        else
            theirs.push_back(argv[i]);
    }
    int ours_argc = static_cast<int>(ours.size());
    bench::init("microbench_primitives", ours_argc, ours.data());

    int theirs_argc = static_cast<int>(theirs.size());
    benchmark::Initialize(&theirs_argc, theirs.data());
    if (benchmark::ReportUnrecognizedArguments(theirs_argc,
                                               theirs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::writeOutputs();
    return 0;
}
