/**
 * @file
 * Figure 6: residual energy window trace on the Intel testbed.
 *
 * Paper: with a 1050 W supply driving the busy 2-socket Intel system,
 * an oscilloscope sampling at 100 kHz shows PWR_OK dropping, the DC
 * rails holding for 33 ms, and the first output droop (any 250 us
 * interval below 95% of nominal) marking the end of the window.
 */

#include "bench/bench_util.h"
#include "power/psu.h"
#include "power/signal_tracer.h"

using namespace wsp;

int
main(int argc, char **argv)
{
    bench::init("fig6_residual_trace", argc, argv);
    EventQueue queue;
    PsuPreset preset = psuPresetIntel1050W();
    preset.windowJitter = 0; // the paper's figure shows one trace
    AtxPowerSupply psu(queue, preset, Rng(1));
    psu.setLoadWatts(preset.busyLoadWatts); // CPU + disk stress running

    SignalTracer tracer(queue, fromMicros(10.0)); // 100 kHz
    tracer.addChannel("PWR_OK", [&] { return psu.pwrOk() ? 5.0 : 0.0; });
    tracer.addChannel("DC 12V", [&] { return psu.railVoltage(Rail::V12); });
    tracer.addChannel("DC 5V", [&] { return psu.railVoltage(Rail::V5); });
    tracer.addChannel("DC 3.3V",
                      [&] { return psu.railVoltage(Rail::V3_3); });
    tracer.start();

    psu.failInputAt(fromMillis(20.0));
    queue.runUntil(fromMillis(120.0));
    tracer.stop();
    queue.run();

    AsciiChart chart("Figure 6. Residual energy window (Intel testbed)",
                     "time (s)", "measured voltage (V)");
    chart.addSeries(tracer.channel("PWR_OK"));
    chart.addSeries(tracer.channel("DC 12V"));
    chart.addSeries(tracer.channel("DC 5V"));
    chart.addSeries(tracer.channel("DC 3.3V"));
    chart.print();

    // Measure the window exactly as the paper does.
    Tick pwr_ok_drop = 0;
    Tick first_droop = kTickNever;
    const bool saw_pwr_ok = tracer.firstDroop("PWR_OK", 5.0, 0.95,
                                              fromMicros(250.0),
                                              &pwr_ok_drop);
    const struct
    {
        const char *channel;
        Rail rail;
    } rails[] = {{"DC 12V", Rail::V12},
                 {"DC 5V", Rail::V5},
                 {"DC 3.3V", Rail::V3_3}};
    for (const auto &[channel, rail] : rails) {
        Tick when = 0;
        if (tracer.firstDroop(channel, railNominal(rail), 0.95,
                              fromMicros(250.0), &when)) {
            first_droop = std::min(first_droop, when);
        }
    }

    const double window_ms =
        saw_pwr_ok && first_droop != kTickNever
            ? toMillis(first_droop - pwr_ok_drop)
            : 0.0;
    std::printf("\nPWR_OK drop at t=%s; first rail droop at t=%s; "
                "window = %.1f ms (paper: 33 ms)\n",
                formatTime(pwr_ok_drop).c_str(),
                formatTime(first_droop).c_str(), window_ms);

    ShapeCheck check("Figure 6 (residual energy window trace)");
    check.expectTrue("PWR_OK drop observed", saw_pwr_ok);
    check.expectTrue("rail droop observed", first_droop != kTickNever);
    check.expectBetween("window ~33 ms", window_ms, 31.0, 36.0);
    check.expectTrue("rails nominal before the failure",
                     tracer.channel("DC 12V").ys.front() == 12.0 &&
                         tracer.channel("DC 5V").ys.front() == 5.0);
    return bench::finish(check);
}
