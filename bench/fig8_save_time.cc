/**
 * @file
 * Figure 8: context save and cache flush times vs dirty bytes.
 *
 * Paper: on four platforms (Intel C5528 2x8MB L3, Intel X5650 12MB
 * L3, AMD 4180 6MB L3, Intel D510 1MB L2) the total state save time —
 * processor contexts plus wbinvd — stays under 5 ms, under 3 ms on
 * the two testbeds, and shows little dependence on the number of
 * dirty cache lines (an artifact of wbinvd walking the whole cache).
 * Dirty bytes sweep 128 B to 16 MB; 32 runs per point.
 */

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "core/save_routine.h"
#include "core/system.h"

using namespace wsp;

namespace {

/** Save time with @p dirty_bytes dirtied across the machine, in ms. */
double
measure(const PlatformSpec &spec, uint64_t dirty_bytes, uint64_t seed)
{
    SystemConfig config;
    config.platform = spec;
    config.devices.clear();
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.nvdimmCount = 2;
    config.seed = seed;
    WspSystem system(config);
    system.start();

    // Spread the dirty bytes across the socket caches, clamping to
    // what each cache can hold.
    Rng rng(seed);
    const uint64_t per_socket =
        std::min(dirty_bytes / spec.sockets, spec.cachePerSocket);
    if (per_socket > 0)
        system.machine().fillCachesDirty(per_socket, rng);

    auto outcome = system.powerFailAndRestore(fromMillis(1.0),
                                              fromSeconds(30.0));
    if (!outcome.save.has_value())
        return -1.0;
    return toMillis(outcome.save->duration());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("fig8_save_time", argc, argv);
    const std::vector<uint64_t> dirty_sizes = {
        128,       512,        2 * kKiB,  8 * kKiB, 32 * kKiB,
        128 * kKiB, 512 * kKiB, 2 * kMiB, 4 * kMiB, 8 * kMiB,
        16 * kMiB};
    const int runs = bench::fullRuns() ? 32 : 8;

    const auto platforms = allPlatforms();
    std::vector<Series> series;
    std::vector<Histogram> dists;
    Table table("Figure 8 data: state save time (ms) vs dirty bytes");
    std::vector<std::string> header = {"dirty bytes"};
    for (const auto &spec : platforms) {
        header.push_back(spec.name);
        series.push_back(Series{spec.name, {}, {}});
        dists.push_back(Histogram(0.0, 6.0, 120));
    }
    table.setHeader(header);

    const uint64_t base_seed = bench::rngSeed(1000);
    for (uint64_t bytes : dirty_sizes) {
        std::vector<std::string> row = {formatBytes(bytes)};
        for (size_t p = 0; p < platforms.size(); ++p) {
            RunningStat stat;
            for (int run = 0; run < runs; ++run) {
                const double ms =
                    measure(platforms[p], bytes,
                            base_seed + static_cast<uint64_t>(run));
                stat.add(ms);
                dists[p].add(ms);
            }
            series[p].add(std::log2(static_cast<double>(bytes)),
                          stat.mean());
            row.push_back(formatDouble(stat.mean(), 3));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n");

    // Save-time distribution across every dirty size and run: the
    // tail matters, since one slow save can blow the residual window.
    for (size_t p = 0; p < platforms.size(); ++p) {
        std::printf("%-18s save time p50 %.3f ms  p95 %.3f ms  "
                    "p99 %.3f ms\n",
                    platforms[p].name.c_str(), dists[p].percentile(50),
                    dists[p].percentile(95), dists[p].percentile(99));
    }
    std::printf("\n");

    AsciiChart chart("Figure 8. Context save and cache flush times",
                     "log2(dirty bytes)", "state save time (ms)");
    for (const Series &s : series)
        chart.addSeries(s);
    chart.print();

    ShapeCheck check("Figure 8 (state save time)");
    for (size_t p = 0; p < platforms.size(); ++p) {
        const double lo = series[p].minY();
        const double hi = series[p].maxY();
        check.expectBetween(platforms[p].name + ": save under 5 ms", hi,
                            0.0, 5.0);
        check.expectTrue(platforms[p].name +
                             ": little dependence on dirty bytes "
                             "(max/min < 1.2)",
                         hi / lo < 1.2);
    }
    // Testbed claim: both under 3 ms.
    check.expectBetween("Intel C5528 testbed under 3 ms",
                        series[0].maxY(), 0.0, 3.0);
    check.expectBetween("AMD 4180 testbed under 3 ms", series[2].maxY(),
                        0.0, 3.0);
    // Ordering by cache size: X5650 (12MB) slowest, D510 (1MB) fastest.
    check.expectGreater("X5650 slowest (largest cache)",
                        series[1].maxY(), series[0].maxY());
    check.expectGreater("D510 fastest (smallest cache)",
                        series[2].minY(), series[3].maxY());
    return bench::finish(check);
}
