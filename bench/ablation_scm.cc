/**
 * @file
 * Ablation: flush-on-commit vs flush-on-fail on SCM-based NVRAM.
 *
 * Paper section 6 ("SCM-based NVRAMs"): storage-class memories such
 * as phase-change memory are expected to be 10-100x slower than DRAM
 * for writes but only ~2x for reads, so the flush-on-commit penalty
 * grows while flush-on-fail is untouched (its energy cost scales with
 * processor cache size, not memory speed or size).
 *
 * Method: run a short Fig. 5-style workload on DRAM while counting
 * the durability traffic (line flushes and non-temporal stores), then
 * project the per-op cost with the write path slowed by an SCM
 * factor. The DRAM-measured compute portion stays constant.
 */

#include "apps/hash_table.h"
#include "bench/bench_util.h"
#include "pheap/flush.h"
#include "util/rng.h"
#include "pheap/policies.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

struct Measurement
{
    double usPerOp = 0.0;       ///< measured on DRAM
    double flushesPerOp = 0.0;  ///< durability line flushes
    double ntStoresPerOp = 0.0; ///< durability NT stores
};

template <typename Policy>
Measurement
measure(bool durable, uint64_t operations)
{
    PHeapConfig config;
    config.regionSize = 256ull * 1024 * 1024;
    config.durableLogs = durable;
    PHeap heap(config);
    HashTable<Policy> table(heap, 16384);
    Rng rng(9);
    for (int i = 0; i < 20000; ++i)
        table.insert(rng.next(40000) + 1, rng());

    pmem::resetCounters();
    bench::Stopwatch timer;
    for (uint64_t i = 0; i < operations; ++i) {
        const uint64_t key = rng.next(40000) + 1;
        if (rng.chance(0.5))
            table.insert(key, key);
        else
            table.erase(key);
    }
    Measurement m;
    m.usPerOp = 1e6 * timer.seconds() / static_cast<double>(operations);
    m.flushesPerOp = static_cast<double>(pmem::flushCount()) /
                     static_cast<double>(operations);
    m.ntStoresPerOp = static_cast<double>(pmem::ntStoreCount()) /
                      static_cast<double>(operations);
    return m;
}

/** Project the per-op cost with SCM write slowdown @p factor. */
double
project(const Measurement &m, double factor, double dram_flush_us,
        double dram_ntstore_us)
{
    const double durability_us = m.flushesPerOp * dram_flush_us +
                                 m.ntStoresPerOp * dram_ntstore_us;
    const double compute_us = m.usPerOp - durability_us;
    return compute_us + durability_us * factor;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("ablation_scm", argc, argv);
    const uint64_t operations = bench::fullRuns() ? 400000 : 100000;
    // Approximate DRAM costs of the durability primitives.
    constexpr double kFlushUs = 0.08;   // one clflush(opt) round trip
    constexpr double kNtStoreUs = 0.015;

    const Measurement foc_stm =
        measure<pmem::StmPolicy>(true, operations);
    const Measurement foc_ul =
        measure<pmem::UndoPolicy>(true, operations);
    const Measurement fof = measure<pmem::RawPolicy>(false, operations);

    Table table("SCM projection: time per update-heavy op (us) vs "
                "write slowdown");
    table.setHeader({"config", "DRAM (1x)", "PCM-like (10x)",
                     "worst PCM (100x)", "flushes/op", "ntstores/op"});
    struct Row
    {
        const char *name;
        const Measurement *m;
    };
    double foc10 = 0.0;
    double foc100 = 0.0;
    for (const auto &[name, m] : {Row{"FoC + STM", &foc_stm},
                                  Row{"FoC + UL", &foc_ul},
                                  Row{"FoF", &fof}}) {
        const double p10 = project(*m, 10.0, kFlushUs, kNtStoreUs);
        const double p100 = project(*m, 100.0, kFlushUs, kNtStoreUs);
        if (std::string(name) == "FoC + STM") {
            foc10 = p10;
            foc100 = p100;
        }
        table.addRow({name, formatDouble(m->usPerOp, 3),
                      formatDouble(p10, 3), formatDouble(p100, 3),
                      formatDouble(m->flushesPerOp, 1),
                      formatDouble(m->ntStoresPerOp, 1)});
    }
    table.print();

    std::printf("\nFoF is independent of memory write latency on the "
                "fast path; its failure-time cost scales only with\n"
                "processor cache size (paper section 6).\n\n");

    ShapeCheck check("ablation: SCM write-latency sensitivity");
    check.expectTrue("FoF issues no durability traffic",
                     fof.flushesPerOp == 0.0 && fof.ntStoresPerOp == 0.0);
    check.expectGreater("FoC penalty grows 10x slower writes", foc10,
                        foc_stm.usPerOp);
    check.expectGreater("and keeps growing at 100x", foc100, foc10);
    check.expectGreater(
        "FoC/FoF advantage widens on SCM (100x projection at least "
        "doubles the DRAM gap)",
        foc100 / fof.usPerOp, 2.0 * foc_stm.usPerOp / fof.usPerOp);
    return bench::finish(check);
}
