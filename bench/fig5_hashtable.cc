/**
 * @file
 * Figure 5: hash table microbenchmark across the five configurations.
 *
 * Paper: pre-populate an in-memory hash table with 100,000 entries,
 * run 1,000,000 random operations, vary the update probability from
 * 0 to 1 (updates split evenly between inserts and deletes), and plot
 * time per operation for:
 *
 *   FoC + STM   Mnemosyne default (redo log + STM, flushed)
 *   FoC + UL    undo log, flushed on commit
 *   FoF + STM   STM instrumentation, in-cache
 *   FoF + UL    undo log, in-cache
 *   FoF         plain in-memory code
 *
 * Expected shape: FoC + STM is 6-13x slower than FoF, the penalty
 * grows linearly with the update ratio, and the FoF variants cluster
 * near the bottom. Absolute microseconds differ from the paper's 2010
 * Xeon; the ordering and ratios are the reproduction target.
 */

#include <string>
#include <vector>

#include "apps/hash_table.h"
#include "bench/bench_util.h"
#include "pheap/flush.h"
#include "pheap/policies.h"
#include "util/rng.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

constexpr uint64_t kKeySpace = 200000;

/**
 * One measurement: seconds per operation at the given update
 * probability under one policy/durability combination.
 */
template <typename Policy>
double
measure(bool durable, double update_prob, uint64_t prepopulate,
        uint64_t operations, uint64_t seed)
{
    PHeapConfig config;
    config.regionSize = 512ull * 1024 * 1024;
    config.durableLogs = durable;
    PHeap heap(config);
    HashTable<Policy> table(heap, 65536);

    Rng rng(seed);
    for (uint64_t i = 0; i < prepopulate; ++i)
        table.insert(rng.next(kKeySpace) + 1, rng());

    // Pre-draw the operation stream so generator cost stays out of
    // the measured loop.
    struct Op
    {
        uint64_t key;
        uint8_t kind; // 0 lookup, 1 insert, 2 erase
    };
    std::vector<Op> ops(operations);
    for (auto &op : ops) {
        op.key = rng.next(kKeySpace) + 1;
        if (rng.uniform() < update_prob) {
            op.kind = rng.chance(0.5) ? 1 : 2;
        } else {
            op.kind = 0;
        }
    }

    bench::Stopwatch timer;
    uint64_t sink = 0;
    for (const Op &op : ops) {
        switch (op.kind) {
          case 0:
            sink += table.lookup(op.key) ? 1 : 0;
            break;
          case 1:
            table.insert(op.key, op.key);
            break;
          default:
            table.erase(op.key);
            break;
        }
    }
    const double elapsed = timer.seconds();
    if (sink == ~0ull)
        std::printf("impossible\n");
    return elapsed / static_cast<double>(operations);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("fig5_hashtable", argc, argv);
    const uint64_t prepopulate = bench::fullRuns() ? 100000 : 100000;
    const uint64_t operations = bench::fullRuns() ? 1000000 : 200000;
    std::printf("Figure 5 reproduction: %llu-entry table, %llu ops per "
                "point (WSP_BENCH_FULL=1 for the paper's 1M)\n\n",
                (unsigned long long)prepopulate,
                (unsigned long long)operations);

    const std::vector<double> probs = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};

    Series foc_stm{"FoC + STM", {}, {}};
    Series foc_ul{"FoC + UL", {}, {}};
    Series fof_stm{"FoF + STM", {}, {}};
    Series fof_ul{"FoF + UL", {}, {}};
    Series fof{"FoF", {}, {}};

    Table table("Figure 5 data: time per operation (us)");
    table.setHeader({"p(update)", "FoC+STM", "FoC+UL", "FoF+STM",
                     "FoF+UL", "FoF"});

    const uint64_t base_seed = bench::rngSeed(1000);
    for (double p : probs) {
        const uint64_t seed = base_seed + static_cast<uint64_t>(p * 100);
        const double us_foc_stm =
            1e6 * measure<pmem::StmPolicy>(true, p, prepopulate,
                                           operations, seed);
        const double us_foc_ul =
            1e6 * measure<pmem::UndoPolicy>(true, p, prepopulate,
                                            operations, seed);
        const double us_fof_stm =
            1e6 * measure<pmem::StmPolicy>(false, p, prepopulate,
                                           operations, seed);
        const double us_fof_ul =
            1e6 * measure<pmem::UndoPolicy>(false, p, prepopulate,
                                            operations, seed);
        const double us_fof = 1e6 * measure<pmem::RawPolicy>(
                                        false, p, prepopulate, operations,
                                        seed);
        foc_stm.add(p, us_foc_stm);
        foc_ul.add(p, us_foc_ul);
        fof_stm.add(p, us_fof_stm);
        fof_ul.add(p, us_fof_ul);
        fof.add(p, us_fof);
        table.addRow({formatDouble(p, 1), formatDouble(us_foc_stm, 3),
                      formatDouble(us_foc_ul, 3),
                      formatDouble(us_fof_stm, 3),
                      formatDouble(us_fof_ul, 3),
                      formatDouble(us_fof, 3)});
    }
    table.print();
    std::printf("\n");

    AsciiChart chart("Figure 5. Hash table microbenchmark performance",
                     "update probability", "time per operation (us)");
    chart.addSeries(foc_stm);
    chart.addSeries(foc_ul);
    chart.addSeries(fof_stm);
    chart.addSeries(fof_ul);
    chart.addSeries(fof);
    chart.print();

    const double slow_ro = foc_stm.ys.front() / fof.ys.front();
    const double slow_wr = foc_stm.ys.back() / fof.ys.back();
    const double ul_wr = foc_ul.ys.back() / fof.ys.back();
    std::printf("\nFoC+STM vs FoF: %.1fx (read-only) ... %.1fx "
                "(update-only); paper: 6-13x\n",
                slow_ro, slow_wr);
    std::printf("FoC+UL vs FoF at p=1: %.1fx; paper: ~10x\n", ul_wr);

    // Calibrate the hardware's durability primitives: the FoC/FoF
    // ratio scales with how expensive a flush is relative to a cached
    // op, which differs between this host and the paper's 2010 Xeon
    // (~100 ns clflush). Virtualized hosts often pay several times
    // more, which amplifies the measured ratio; the paper's floor
    // (>= 6x) is the invariant part of the shape.
    alignas(64) static uint64_t probe_line[8];
    bench::Stopwatch cal;
    constexpr int kCal = 20000;
    for (int i = 0; i < kCal; ++i) {
        probe_line[0] = static_cast<uint64_t>(i);
        pmem::flushLine(probe_line);
        pmem::storeFence();
    }
    const double flush_ns = 1e9 * cal.seconds() / kCal;
    std::printf("calibration: clflush+sfence on this host = %.0f ns "
                "(paper-era ~100-200 ns); ratios above the paper's\n"
                "13x upper bound are expected in proportion.\n",
                flush_ns);

    ShapeCheck check("Figure 5 (hash table microbenchmark)");
    check.expectGreater("FoC+STM at least the paper's 6x slower than "
                        "FoF (update-heavy)",
                        slow_wr, 6.0);
    check.expectGreater("FoC+STM slower than FoF even read-only",
                        slow_ro, 1.5);
    check.expectGreater("FoC+STM penalty grows with update ratio",
                        foc_stm.ys.back(), foc_stm.ys.front());
    check.expectGreater("FoC+UL around the paper's ~10x at p=1 or "
                        "above (flush-cost scaled)",
                        ul_wr, 5.0);
    check.expectGreater("flushing dominates: FoC+UL well above FoF+UL "
                        "at p=1",
                        foc_ul.ys.back(), 2.0 * fof_ul.ys.back());
    check.expectGreater("in-cache STM beats durable STM at p=1",
                        foc_stm.ys.back(), fof_stm.ys.back());
    check.expectTrue("FoF is the fastest at every point", [&] {
        for (size_t i = 0; i < fof.size(); ++i) {
            if (fof.ys[i] > foc_stm.ys[i] || fof.ys[i] > foc_ul.ys[i] ||
                fof.ys[i] > fof_stm.ys[i] * 1.05 ||
                fof.ys[i] > fof_ul.ys[i] * 1.05) {
                return false;
            }
        }
        return true;
    }());
    return bench::finish(check);
}
