/**
 * @file
 * Parallel flush-on-fail scaling: save time vs simulated core count.
 *
 * The sequential save path walks every socket cache with one wbinvd
 * while N-1 processors sit halted; the parallel path partitions the
 * dirty lines across a socket's logical CPUs and charges the residual
 * window the *slowest* worker. This bench sweeps 1/2/4/8 cores on a
 * single-socket machine with a fixed dirty footprint and checks the
 * tentpole claim: total save time strictly decreases from 1 to 4
 * cores and never regresses at 8.
 *
 * The energy column uses SystemLoad::wattsDuringSave — the parallel
 * flush keeps every core busy for a shorter window, the sequential
 * walk keeps one core busy for a longer one, so the joules drawn from
 * the ultracaps stay comparable even as wall time shrinks.
 */

#include <vector>

#include "bench/bench_util.h"
#include "core/save_routine.h"
#include "core/system.h"
#include "trace/stat_registry.h"

using namespace wsp;

namespace {

struct SavePoint
{
    double saveMs = 0.0;
    double flushMs = 0.0;
    double flushJoules = 0.0;
};

/** One save on a single-socket machine with @p cores logical CPUs. */
SavePoint
measure(unsigned cores, bool parallel, uint64_t dirty_bytes,
        uint64_t seed)
{
    PlatformSpec spec = platformIntelC5528();
    spec.name = "scaling";
    spec.sockets = 1;
    spec.coresPerSocket = cores;
    spec.threadsPerCore = 1;

    SystemConfig config;
    config.platform = spec;
    config.devices.clear();
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.nvdimmCount = 2;
    config.seed = seed;
    config.wsp.parallelFlush = parallel;
    WspSystem system(config);
    system.start();

    Rng rng(seed);
    system.machine().fillCachesDirty(dirty_bytes, rng);

    const auto outcome = system.powerFailAndRestore(fromMillis(1.0),
                                                    fromSeconds(30.0));
    SavePoint point;
    if (!outcome.save.has_value() || !outcome.save->completed)
        return point;
    point.saveMs = toMillis(outcome.save->duration());
    point.flushMs = toMillis(outcome.save->cacheFlushTime);
    // Every flush worker is busy for the flush window; the sequential
    // walk keeps exactly one core busy.
    const unsigned active = parallel ? cores : 1;
    point.flushJoules = spec.load.wattsDuringSave(active, cores) *
                        point.flushMs / 1000.0;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("par_save_scaling", argc, argv);
    const std::vector<unsigned> core_counts = {1, 2, 4, 8};
    const uint64_t dirty_bytes = 4 * kMiB;
    const uint64_t seed = bench::rngSeed(2026);

    Table table("Parallel save scaling: 4 MiB dirty, single socket");
    table.setHeader({"cores", "seq save (ms)", "par save (ms)",
                     "par flush (ms)", "speedup", "flush energy (J)"});

    std::vector<SavePoint> parallel_points;
    std::vector<SavePoint> sequential_points;
    auto &stats = trace::StatRegistry::instance();
    for (unsigned cores : core_counts) {
        const SavePoint seq = measure(cores, false, dirty_bytes, seed);
        const SavePoint par = measure(cores, true, dirty_bytes, seed);
        sequential_points.push_back(seq);
        parallel_points.push_back(par);
        table.addRow({std::to_string(cores),
                      formatDouble(seq.saveMs, 3),
                      formatDouble(par.saveMs, 3),
                      formatDouble(par.flushMs, 3),
                      formatDouble(seq.saveMs / par.saveMs, 2),
                      formatDouble(par.flushJoules, 3)});
        const std::string prefix =
            "bench.par_save.cores" + std::to_string(cores);
        stats.gauge(prefix + ".seq_save_ms").set(seq.saveMs);
        stats.gauge(prefix + ".par_save_ms").set(par.saveMs);
        stats.gauge(prefix + ".par_flush_ms").set(par.flushMs);
    }
    table.print();
    std::printf("\n");

    AsciiChart chart("Save time vs flush workers", "cores",
                     "save time (ms)");
    Series par_series{"parallel", {}, {}};
    Series seq_series{"sequential", {}, {}};
    for (size_t i = 0; i < core_counts.size(); ++i) {
        par_series.add(core_counts[i], parallel_points[i].saveMs);
        seq_series.add(core_counts[i], sequential_points[i].saveMs);
    }
    chart.addSeries(par_series);
    chart.addSeries(seq_series);
    chart.print();

    ShapeCheck check("Parallel save scaling");
    for (const SavePoint &point : parallel_points)
        check.expectTrue("save completed", point.saveMs > 0.0);
    // The tentpole claim: strictly decreasing save time 1 -> 4 cores.
    check.expectGreater("2 cores beat 1", parallel_points[0].saveMs,
                        parallel_points[1].saveMs);
    check.expectGreater("4 cores beat 2", parallel_points[1].saveMs,
                        parallel_points[2].saveMs);
    check.expectTrue("8 cores no worse than 4",
                     parallel_points[3].saveMs <=
                         parallel_points[2].saveMs + 1e-9);
    // The whole point of the exercise: at 4 cores the parallel path
    // beats the sequential wbinvd walk outright.
    check.expectGreater("4-core parallel beats sequential",
                        sequential_points[2].saveMs,
                        parallel_points[2].saveMs);
    // The sequential walk is wbinvd: core count must not matter.
    check.expectTrue("sequential flat across cores",
                     sequential_points[0].saveMs <=
                         sequential_points[3].saveMs * 1.05 &&
                     sequential_points[3].saveMs <=
                         sequential_points[0].saveMs * 1.05);
    return bench::finish(check);
}
