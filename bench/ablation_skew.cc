/**
 * @file
 * Ablation: is the flush-on-fail advantage an artifact of uniform
 * traffic?
 *
 * The paper's Fig. 5 draws keys uniformly. Real key-value traffic is
 * skewed; a skeptic might hope that flush-on-commit amortizes better
 * when hot lines stay cached. It does not: every commit must flush
 * its lines regardless of how recently they were flushed, so the
 * FoC/FoF gap survives (and hot chains are shorter, so the *relative*
 * gap typically widens). This bench runs the Fig. 5 midpoint
 * (p=0.5) under uniform and Zipfian (theta=0.99) keys.
 */

#include "apps/hash_table.h"
#include "apps/workload.h"
#include "bench/bench_util.h"
#include "pheap/policies.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

template <typename Policy>
double
measure(bool durable, KeyDistribution distribution, uint64_t operations)
{
    PHeapConfig config;
    config.regionSize = 512ull * 1024 * 1024;
    config.durableLogs = durable;
    PHeap heap(config);
    HashTable<Policy> table(heap, 65536);

    Rng rng(77);
    WorkloadSpec spec;
    spec.keySpace = 200000;
    spec.updateProbability = 0.5;
    spec.distribution = distribution;
    // Pre-populate from the same distribution.
    const auto warmup = generateWorkload(spec, 100000, rng);
    for (const auto &op : warmup)
        table.insert(op.key, op.value);
    const auto ops = generateWorkload(spec, operations, rng);

    bench::Stopwatch timer;
    uint64_t sink = 0;
    for (const auto &op : ops) {
        switch (op.kind) {
          case OpKind::Lookup:
            sink += table.lookup(op.key) ? 1 : 0;
            break;
          case OpKind::Insert:
            table.insert(op.key, op.value);
            break;
          case OpKind::Erase:
            table.erase(op.key);
            break;
        }
    }
    if (sink == ~0ull)
        std::printf("impossible\n");
    return 1e6 * timer.seconds() / static_cast<double>(operations);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("ablation_skew", argc, argv);
    const uint64_t operations = bench::fullRuns() ? 500000 : 150000;

    Table table("Key-distribution ablation at p(update)=0.5 "
                "(us per op)");
    table.setHeader({"distribution", "FoC+STM", "FoF", "gap"});

    double gaps[2] = {};
    int index = 0;
    for (KeyDistribution distribution :
         {KeyDistribution::Uniform, KeyDistribution::Zipfian}) {
        const double foc = measure<pmem::StmPolicy>(true, distribution,
                                                    operations);
        const double fof = measure<pmem::RawPolicy>(false, distribution,
                                                    operations);
        gaps[index++] = foc / fof;
        table.addRow({distribution == KeyDistribution::Uniform
                          ? "uniform"
                          : "zipfian (0.99)",
                      formatDouble(foc, 3), formatDouble(fof, 3),
                      formatDouble(foc / fof, 1) + "x"});
    }
    table.print();
    std::printf("\nflush-on-commit cannot amortize across commits: hot "
                "lines are flushed again on every transaction.\n\n");

    ShapeCheck check("ablation: key-distribution skew");
    check.expectGreater("FoC >> FoF under uniform keys", gaps[0], 6.0);
    check.expectGreater("FoC >> FoF under zipfian keys", gaps[1], 6.0);
    check.expectTrue("skew does not erase the gap (within 3x either "
                     "way)",
                     gaps[1] > gaps[0] / 3.0 && gaps[1] < gaps[0] * 3.0);
    return bench::finish(check);
}
