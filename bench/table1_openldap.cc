/**
 * @file
 * Table 1: OpenLDAP update throughput, Mnemosyne vs WSP.
 *
 * Paper: inserting 100,000 randomly generated entries into an empty
 * directory, single-threaded and closed-loop, with the store being an
 * AVL tree either in the Mnemosyne NV-heap (flush-on-commit, STM) or
 * plain memory under WSP (flush-on-fail). Paper numbers: Mnemosyne
 * 2160 (77) updates/s, WSP 5274 (139) updates/s — WSP 2.4x faster.
 *
 * The bench drives the full slapd-like request path per update:
 * BER-encoded AddRequest over a real loopback socketpair (genuine
 * syscalls both ways), decode, DN normalization, ACL evaluation,
 * schema validation, index update, BER response — so the persistence
 * overhead is diluted by realistic request processing exactly as in
 * the paper's setup. Absolute throughput is far higher on modern
 * hardware and the protocol stack here is leaner than slapd's, so
 * the measured ratio lands above the paper's 2.4x; the reproduced
 * shape is "WSP wins, within the paper's 1.6-13x regime".
 */

#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "apps/ldap_protocol.h"
#include "bench/bench_util.h"
#include "pheap/policies.h"
#include "util/logging.h"
#include "util/stats.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

/** Loopback transport: a connected socketpair with framed messages. */
class LoopbackTransport
{
  public:
    LoopbackTransport()
    {
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_) != 0)
            fatal("socketpair failed");
    }

    ~LoopbackTransport()
    {
        ::close(fds_[0]);
        ::close(fds_[1]);
    }

    /** Client -> server. */
    void sendRequest(const std::vector<uint8_t> &bytes)
    {
        sendOn(fds_[0], bytes);
    }

    std::vector<uint8_t> receiveRequest() { return receiveOn(fds_[1]); }

    /** Server -> client. */
    void sendResponse(const std::vector<uint8_t> &bytes)
    {
        sendOn(fds_[1], bytes);
    }

    std::vector<uint8_t> receiveResponse() { return receiveOn(fds_[0]); }

  private:
    static void
    sendOn(int fd, const std::vector<uint8_t> &bytes)
    {
        const uint32_t length = static_cast<uint32_t>(bytes.size());
        WSP_CHECK(::write(fd, &length, 4) == 4);
        WSP_CHECK(::write(fd, bytes.data(), bytes.size()) ==
                  static_cast<ssize_t>(bytes.size()));
    }

    static std::vector<uint8_t>
    receiveOn(int fd)
    {
        uint32_t length = 0;
        WSP_CHECK(::read(fd, &length, 4) == 4);
        std::vector<uint8_t> bytes(length);
        size_t done = 0;
        while (done < length) {
            const ssize_t n =
                ::read(fd, bytes.data() + done, length - done);
            WSP_CHECK(n > 0);
            done += static_cast<size_t>(n);
        }
        return bytes;
    }

    int fds_[2];
};

/** One closed-loop run; returns updates/second. */
template <typename Policy>
double
runOnce(bool durable_logs, uint64_t entries, uint64_t seed)
{
    PHeapConfig config;
    config.regionSize = 512ull * 1024 * 1024;
    config.durableLogs = durable_logs;
    PHeap heap(config);
    DirectoryServer<Policy> server(heap);

    AccessControl acl;
    acl.addRule(AclRule{"dc=example,dc=com", true, true});
    acl.setDefault(false, true);

    LoopbackTransport transport;

    // Pre-encode the requests; client-side generation is not what the
    // paper measures.
    Rng rng(seed);
    std::vector<std::vector<uint8_t>> requests;
    requests.reserve(entries);
    for (uint64_t i = 0; i < entries; ++i) {
        requests.push_back(
            encodeAddRequest(randomEntry(rng, i), static_cast<uint32_t>(i)));
    }

    bench::Stopwatch timer;
    uint64_t ok = 0;
    for (uint64_t i = 0; i < entries; ++i) {
        // Full round trip: client send, server receive/process/
        // respond, client receive. Real syscalls on both sides.
        transport.sendRequest(requests[i]);
        const auto request = transport.receiveRequest();
        transport.sendResponse(handleAddRequest(server, acl, request));
        const auto response = transport.receiveResponse();

        uint32_t id = 0;
        LdapCode code = LdapCode::ProtocolError;
        decodeResponse(response, &id, &code);
        ok += code == LdapCode::Success ? 1 : 0;
    }
    const double elapsed = timer.seconds();
    if (ok != entries) {
        std::fprintf(stderr, "unexpected failures: %llu of %llu ok\n",
                     (unsigned long long)ok, (unsigned long long)entries);
    }
    return static_cast<double>(entries) / elapsed;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init("table1_openldap", argc, argv);
    const uint64_t entries = bench::fullRuns() ? 100000 : 20000;
    const int runs = 5;
    std::printf("Table 1 reproduction: %llu entries per run, %d runs "
                "(WSP_BENCH_FULL=1 for the paper's 100k)\n\n",
                (unsigned long long)entries, runs);

    RunningStat mnemosyne;
    RunningStat wsp_stat;
    for (int run = 0; run < runs; ++run) {
        mnemosyne.add(runOnce<pmem::StmPolicy>(true, entries, 100 + run));
        wsp_stat.add(runOnce<pmem::RawPolicy>(false, entries, 100 + run));
    }

    Table table("Table 1. Update throughput for OpenLDAP");
    table.setHeader({"Configuration", "Updates/s", "(stddev)",
                     "paper"});
    table.addRow({"Mnemosyne", formatDouble(mnemosyne.mean(), 0),
                  formatDouble(mnemosyne.stddev(), 0), "2160 (77)"});
    table.addRow({"WSP", formatDouble(wsp_stat.mean(), 0),
                  formatDouble(wsp_stat.stddev(), 0), "5274 (139)"});
    table.print();

    const double ratio = wsp_stat.mean() / mnemosyne.mean();
    const double shared_us = 1e6 / wsp_stat.mean();
    const double persist_us =
        1e6 / mnemosyne.mean() - shared_us;
    std::printf("\nWSP / Mnemosyne throughput ratio: %.2fx "
                "(paper: 2.4x)\n", ratio);
    std::printf("per-update breakdown: shared request path %.1f us, "
                "Mnemosyne persistence adds %.1f us\n"
                "(the paper's slapd spends ~190 us/op on the shared "
                "path, which is why its ratio is lower)\n\n",
                shared_us, persist_us);

    ShapeCheck check("Table 1 (OpenLDAP update throughput)");
    check.expectGreater("WSP outperforms Mnemosyne", wsp_stat.mean(),
                        mnemosyne.mean());
    check.expectGreater("speedup at least the paper's 1.6x floor",
                        ratio, 1.6);
    check.expectTrue("persistence dominates the gap: ratio explained "
                     "by added per-op persistence cost",
                     persist_us > shared_us);
    check.expectTrue("run-to-run variance small (stddev < 15% of mean)",
                     mnemosyne.stddev() < 0.15 * mnemosyne.mean() &&
                         wsp_stat.stddev() < 0.15 * wsp_stat.mean());
    return bench::finish(check);
}
