/**
 * @file
 * Sharded KV serving throughput vs worker threads.
 *
 * The serving-layer half of the parallel tentpole: a lock-striped
 * ShardedKvStore driven by a real thread pool, swept at 1/2/4/8
 * workers over 8 shards. Each point reports ops/sec and is checked
 * against the sequential single-shard reference for observational
 * equivalence — concurrency must change the wall clock only, never
 * the final state.
 *
 * Shape checks are deliberately lenient on raw scaling (CI boxes may
 * pin us to few physical cores); the hard claims are equivalence,
 * determinism, and "more threads never lose ops".
 */

#include <vector>

#include "apps/kv_service.h"
#include "bench/bench_util.h"
#include "trace/stat_registry.h"

using namespace wsp;
using apps::KvService;
using apps::KvServiceConfig;
using apps::KvServiceSummary;

int
main(int argc, char **argv)
{
    bench::init("kv_throughput", argc, argv);
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    const uint64_t seed = bench::rngSeed(20260805);
    const uint64_t ops_per_thread = bench::fullRuns() ? 200000 : 40000;

    Table table("Sharded KV throughput: 8 shards, lock-striped");
    table.setHeader({"threads", "ops", "wall (ms)", "ops/sec",
                     "final size", "matches reference"});

    auto &stats = trace::StatRegistry::instance();
    std::vector<double> ops_per_sec;
    bool all_equivalent = true;
    bool deterministic = true;
    for (unsigned threads : thread_counts) {
        KvServiceConfig config;
        config.shards = 8;
        config.threads = threads;
        config.perShardCapacity = 4096;
        config.opsPerThread = ops_per_thread;
        config.keysPerWorker = 512;
        config.seed = seed;

        KvService service(config);
        const KvServiceSummary run = service.run();
        const KvServiceSummary reference =
            KvService::runReference(config);
        const bool equivalent =
            run.finalSize == reference.finalSize &&
            run.finalChecksum == reference.finalChecksum &&
            run.getHits == reference.getHits;
        all_equivalent = all_equivalent && equivalent;

        // Same seed, same thread count: the fingerprint must repeat.
        KvService again(config);
        deterministic = deterministic &&
                        again.run().fingerprint() == run.fingerprint();

        const double rate =
            run.wallSeconds > 0.0
                ? static_cast<double>(run.opsApplied) / run.wallSeconds
                : 0.0;
        ops_per_sec.push_back(rate);
        table.addRow({std::to_string(threads),
                      std::to_string(run.opsApplied),
                      formatDouble(run.wallSeconds * 1000.0, 2),
                      formatDouble(rate, 0),
                      std::to_string(run.finalSize),
                      equivalent ? "yes" : "NO"});
        const std::string prefix =
            "bench.kv_throughput.t" + std::to_string(threads);
        stats.gauge(prefix + ".ops_per_sec").set(rate);
        stats.gauge(prefix + ".ops").set(double(run.opsApplied));
    }
    table.print();
    std::printf("\n");

    AsciiChart chart("KV throughput vs worker threads", "threads",
                     "ops/sec");
    Series series{"8 shards", {}, {}};
    for (size_t i = 0; i < thread_counts.size(); ++i)
        series.add(thread_counts[i], ops_per_sec[i]);
    chart.addSeries(series);
    chart.print();

    ShapeCheck check("Sharded KV throughput");
    check.expectTrue("every thread count matches the sequential "
                     "reference state",
                     all_equivalent);
    check.expectTrue("same seed reproduces the same fingerprint",
                     deterministic);
    for (size_t i = 0; i < thread_counts.size(); ++i)
        check.expectTrue("positive throughput", ops_per_sec[i] > 0.0);
    // Lenient scaling claims: striped locking must not collapse under
    // contention. Multi-thread runs process threads x ops, so even
    // modest hardware should clear half the single-thread rate.
    check.expectTrue("2 threads at least match 1 thread's rate x0.5",
                     ops_per_sec[1] > 0.5 * ops_per_sec[0]);
    check.expectTrue("8 threads at least match 1 thread's rate x0.5",
                     ops_per_sec[3] > 0.5 * ops_per_sec[0]);
    return bench::finish(check);
}
