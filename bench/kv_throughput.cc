/**
 * @file
 * Threaded serving throughput: ring dispatch vs mutex dispatch.
 *
 * The traffic-plane tentpole measured: three dispatch arms drive the
 * same deterministic per-worker op streams (load::OpStream) at the
 * same lock-striped ShardedKvStore geometry, so the only variable is
 * how requests reach a shard:
 *
 *  - perop+reference: the pre-traffic-plane serving path — one store
 *    front-door call per op (shard mutex + size-header round trip
 *    each time) against the reference map/list cache bookkeeping.
 *    This is the "mutex-per-shard dispatch" baseline the tentpole's
 *    >= 5x claim is made against.
 *  - batch+flat: hand-batched applyBatch over the flat cache store —
 *    the ablation arm separating batching+cache wins from ring wins.
 *  - rings+flat: the full plane — per-(producer, shard) SPSC rings,
 *    batch coalescing into applyShardBatch, zero allocations on the
 *    request path, back-pressure when rings fill.
 *
 * The >= 5x aggregate claim assumes the workers actually run in
 * parallel: ring dispatch scales with physical cores while the mutex
 * arm gains real contention, so on hosts with fewer cores than
 * workers (CI containers pinned to one core) both arms serialize and
 * the measured gap compresses to the per-op cost difference. The
 * gate therefore adapts: full >= 5x when hardware_concurrency covers
 * the worker count, an honest >= 1.5x dispatch-cost floor otherwise
 * — and the measured ratio is always recorded in the bench JSON so
 * the perf trajectory keeps the real number either way (see
 * DESIGN.md section 15).
 *
 * Flags (recorded in BENCH_kv_throughput.json): --workers=N,
 * --read-ratio=F (fraction of gets), --zipf=THETA (0 = uniform).
 */

#include <cstring>
#include <thread>
#include <vector>

#include "apps/kv_service.h"
#include "bench/bench_util.h"
#include "load/traffic_plane.h"
#include "trace/stat_registry.h"
#include "util/thread_pool.h"

using namespace wsp;
using apps::ShardEnvironment;
using apps::ShardedKvStore;
using load::TrafficPlane;
using load::TrafficPlaneConfig;
using load::TrafficPlaneReport;

namespace {

constexpr unsigned kShards = 8;
constexpr uint64_t kPerShardCapacity = 4096;

/** A fresh sharded store plus the shard environments backing it. */
struct Rig
{
    std::vector<std::unique_ptr<ShardEnvironment>> envs;
    std::unique_ptr<ShardedKvStore> store;

    Rig(const char *tag, CacheModel::LineStore line_store)
    {
        const uint64_t region =
            ShardedKvStore::regionBytes(kShards, kPerShardCapacity);
        std::vector<CacheModel *> caches;
        for (unsigned i = 0; i < kShards; ++i) {
            envs.push_back(std::make_unique<ShardEnvironment>(
                std::string("kvtp_") + tag + std::to_string(i), region,
                line_store));
            caches.push_back(&envs.back()->cache);
        }
        store = std::make_unique<ShardedKvStore>(
            std::span<CacheModel *const>(caches), 0, kPerShardCapacity);
    }
};

bool
sameResult(const apps::KvBatchResult &a, const apps::KvBatchResult &b)
{
    return a.puts == b.puts && a.putsRejected == b.putsRejected &&
           a.gets == b.gets && a.getHits == b.getHits &&
           a.getValueSum == b.getValueSum && a.erases == b.erases &&
           a.erasesHit == b.erasesHit;
}

} // namespace

int
main(int argc, char **argv)
{
    // Bench-specific flags come out of argv before bench::init sees
    // (and would warn about) them.
    unsigned workers = 8;
    double read_ratio = 0.4;
    double zipf_theta = 0.0;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--workers=", 10) == 0)
            workers = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else if (std::strncmp(argv[i], "--read-ratio=", 13) == 0)
            read_ratio = std::strtod(argv[i] + 13, nullptr);
        else if (std::strncmp(argv[i], "--zipf=", 7) == 0)
            zipf_theta = std::strtod(argv[i] + 7, nullptr);
        else
            passthrough.push_back(argv[i]);
    }
    bench::init("kv_throughput", static_cast<int>(passthrough.size()),
                passthrough.data());
    WSP_CHECKF(workers >= 1 && workers <= 64, "--workers out of range");
    WSP_CHECKF(read_ratio >= 0.0 && read_ratio <= 1.0,
               "--read-ratio out of range");

    const uint64_t seed = bench::rngSeed(20260805);
    const uint64_t ops_per_worker = bench::fullRuns() ? 200000 : 40000;
    const auto get_permille =
        static_cast<uint32_t>(read_ratio * 1000.0 + 0.5);
    const uint32_t erase_permille =
        std::min<uint32_t>(100, (1000 - get_permille) / 2);
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

    TrafficPlaneConfig base;
    base.opsPerWorker = ops_per_worker;
    base.keysPerWorker = 512;
    base.getPermille = get_permille;
    base.erasePermille = erase_permille;
    base.zipfTheta = zipf_theta;
    base.seed = seed;
    base.latencyHiMs = 20.0;
    base.latencyBuckets = 2000;
    // Pinning helps only when the workers have real cores to keep.
    base.pinWorkers = cores >= workers;

    auto &stats = trace::StatRegistry::instance();

    // Rings-arm thread sweep: the capacity curve.
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    Table sweep("Ring-dispatch KV throughput: 8 shards, SPSC rings");
    sweep.setHeader({"threads", "ops", "wall (ms)", "ops/sec", "stalls",
                     "matches sequential"});
    std::vector<double> sweep_rates;
    bool all_equivalent = true;
    bool deterministic = true;
    for (unsigned threads : thread_counts) {
        TrafficPlaneConfig config = base;
        config.workers = threads;
        Rig rig("s", CacheModel::LineStore::Flat);
        TrafficPlane plane(*rig.store, config);
        ThreadPool pool(threads);
        const TrafficPlaneReport run = plane.run(pool);

        // Disjoint key ranges make the sequential replay of the same
        // streams byte-equivalent, not just statistically close.
        Rig seq("q", CacheModel::LineStore::Flat);
        const apps::KvBatchResult reference =
            plane.runSequential(*seq.store);
        const bool equivalent =
            sameResult(run.result, reference) &&
            rig.store->size() == seq.store->size() &&
            rig.store->checksum() == seq.store->checksum();
        all_equivalent = all_equivalent && equivalent;

        Rig again_rig("r", CacheModel::LineStore::Flat);
        TrafficPlane again(*again_rig.store, config);
        deterministic = deterministic &&
                        sameResult(again.run(pool).result, run.result);

        sweep_rates.push_back(run.opsPerSec());
        sweep.addRow({std::to_string(threads), std::to_string(run.ops()),
                      formatDouble(run.wallSeconds * 1000.0, 2),
                      formatDouble(run.opsPerSec(), 0),
                      std::to_string(run.backpressureStalls),
                      equivalent ? "yes" : "NO"});
        const std::string prefix =
            "bench.kv_throughput.t" + std::to_string(threads);
        stats.gauge(prefix + ".ops_per_sec").set(run.opsPerSec());
        stats.gauge(prefix + ".ops")
            .set(static_cast<double>(run.ops()));
    }
    sweep.print();
    std::printf("\n");

    // Dispatch-arm comparison at --workers.
    struct Arm
    {
        const char *label;
        const char *gauge;
        CacheModel::LineStore lineStore;
        TrafficPlaneReport (TrafficPlane::*run)(ThreadPool &);
    };
    const std::vector<Arm> arms = {
        {"perop+reference", "perop_reference",
         CacheModel::LineStore::Reference, &TrafficPlane::runMutexPerOp},
        {"batch+flat", "batch_flat", CacheModel::LineStore::Flat,
         &TrafficPlane::runMutexBatch},
        {"rings+flat", "rings_flat", CacheModel::LineStore::Flat,
         &TrafficPlane::run},
    };

    Table table("Dispatch arms at " + std::to_string(workers) +
                " workers (get " + std::to_string(get_permille) +
                " / erase " + std::to_string(erase_permille) +
                " permille)");
    table.setHeader(
        {"arm", "ops/sec", "ns/op", "p50 (us)", "p99 (us)", "stalls"});
    std::vector<double> arm_rates;
    double rings_p50_ns = 0.0;
    double rings_p99_ns = 0.0;
    for (const Arm &arm : arms) {
        TrafficPlaneConfig config = base;
        config.workers = workers;
        Rig rig(arm.gauge, arm.lineStore);
        TrafficPlane plane(*rig.store, config);
        ThreadPool pool(workers);
        const TrafficPlaneReport run = (plane.*arm.run)(pool);
        const double p50 = run.latencyNs.percentile(50);
        const double p99 = run.latencyNs.percentile(99);
        arm_rates.push_back(run.opsPerSec());
        if (arm.run == &TrafficPlane::run) {
            rings_p50_ns = p50;
            rings_p99_ns = p99;
        }
        table.addRow({arm.label, formatDouble(run.opsPerSec(), 0),
                      formatDouble(run.wallSeconds * 1e9 /
                                       static_cast<double>(run.ops()),
                                   1),
                      formatDouble(p50 / 1000.0, 1),
                      formatDouble(p99 / 1000.0, 1),
                      std::to_string(run.backpressureStalls)});
        const std::string prefix =
            std::string("bench.kv_throughput.arm.") + arm.gauge;
        stats.gauge(prefix + ".ops_per_sec").set(run.opsPerSec());
        stats.gauge(prefix + ".p50_ns").set(p50);
        stats.gauge(prefix + ".p99_ns").set(p99);
    }
    table.print();

    const double ratio =
        arm_rates[0] > 0.0 ? arm_rates[2] / arm_rates[0] : 0.0;
    std::printf("\nrings vs per-op mutex dispatch: %.2fx "
                "(%u workers on %u hardware threads)\n\n",
                ratio, workers, cores);
    stats.gauge("bench.kv_throughput.ratio_vs_perop").set(ratio);

    // Everything the gate reasons about lands in the bench record.
    bench::recordField("workers", workers);
    bench::recordField("read_ratio_permille", get_permille);
    bench::recordField("zipf_theta_permille",
                       static_cast<uint64_t>(zipf_theta * 1000.0 + 0.5));
    bench::recordField("hardware_threads", cores);
    bench::recordField("ratio_vs_perop_millis",
                       static_cast<uint64_t>(ratio * 1000.0 + 0.5));
    bench::recordField("rings_p50_ns",
                       static_cast<uint64_t>(rings_p50_ns));
    bench::recordField("rings_p99_ns",
                       static_cast<uint64_t>(rings_p99_ns));

    AsciiChart chart("Ring dispatch vs worker threads", "threads",
                     "ops/sec");
    Series series{"rings+flat", {}, {}};
    for (size_t i = 0; i < thread_counts.size(); ++i)
        series.add(thread_counts[i], sweep_rates[i]);
    chart.addSeries(series);
    chart.print();

    ShapeCheck check("Threaded KV serving");
    check.expectTrue("every thread count matches the sequential replay "
                     "exactly",
                     all_equivalent);
    check.expectTrue("same seed reproduces the same batch result",
                     deterministic);
    for (double rate : sweep_rates)
        check.expectTrue("positive throughput", rate > 0.0);
    if (cores >= workers) {
        // Real parallelism available: the tentpole's headline claim,
        // and the rings must not lose to hand-batching either.
        check.expectTrue("ring dispatch beats batch dispatch x0.9",
                         arm_rates[2] > 0.9 * arm_rates[1]);
        check.expectTrue("rings >= 5x per-op mutex dispatch",
                         ratio >= 5.0);
    } else {
        // Time-sliced workers make the ring handoff pay scheduling
        // latency the self-batching arm never sees; the measured
        // ratio wobbles around 0.8-0.95x run to run, so hold a
        // floor that only a real dispatch regression can cross.
        check.expectTrue("ring dispatch holds batch dispatch x0.7 "
                         "(single-core floor)",
                         arm_rates[2] > 0.7 * arm_rates[1]);
        // Serialized host: only the per-op dispatch-cost gap remains
        // (measured ~2.5x on one core); gate the honest floor and
        // keep the real ratio in the record above.
        check.expectTrue("rings >= 1.5x per-op mutex dispatch "
                         "(single-core floor)",
                         ratio >= 1.5);
    }
    return bench::finish(check);
}
