/**
 * @file
 * Device recovery strategies across a power failure.
 *
 * Paper section 4 ("Device restart"): saving device state on the save
 * path (the ACPI strawman) takes seconds — far beyond the residual
 * energy window — so devices must instead be re-initialized on the
 * restore path, ideally behind a hypervisor that replays outstanding
 * virtual I/O. This example runs the same power failure under all
 * three policies and prints what each costs on the save and restore
 * paths.
 *
 * Build & run:  ./build/examples/device_policies
 */

#include <cstdio>

#include "core/system.h"
#include "util/table.h"

using namespace wsp;

int
main()
{
    Table table("Device recovery strategies (Intel testbed, busy I/O)");
    table.setHeader({"policy", "save path", "save fits window?",
                     "restore path", "ops replayed", "recovered"});

    for (DevicePolicy policy : {DevicePolicy::AcpiSuspendOnSave,
                                DevicePolicy::PnpRestartOnRestore,
                                DevicePolicy::VirtualizedReplay}) {
        SystemConfig config;
        config.nvdimm.capacityBytes = 64 * kMiB;
        config.wsp.devicePolicy = policy;
        config.wsp.firmwareBootLatency = fromSeconds(5.0);
        WspSystem system(config);
        system.start();

        // Busy devices with deep queues when the failure hits.
        system.devices().startBusyAll();
        system.runFor(fromMillis(50.0));

        auto outcome = system.powerFailAndRestore(fromMillis(10.0),
                                                  fromSeconds(30.0));

        const bool save_done = outcome.save.has_value();
        const Tick save_time =
            save_done ? outcome.save->duration() : Tick{0};
        const Tick window = system.psu().residualWindow();

        table.addRow({
            devicePolicyName(policy),
            save_done ? formatTime(save_time) : "never finished",
            save_done && window == 0
                ? "-"
                : (save_done ? "yes" : "NO (power died first)"),
            formatTime(outcome.restore.duration()),
            std::to_string(outcome.restore.deviceReport.opsReplayed),
            outcome.restore.usedWsp ? "WSP" : "back end",
        });
    }
    table.print();

    std::printf(
        "\nThe ACPI strawman spends seconds draining and quiescing\n"
        "devices inside a residual window of tens of milliseconds —\n"
        "the save never completes and recovery falls back to the back\n"
        "end. Restart-on-restore and virtualized replay do nothing on\n"
        "the save path, so flush-on-fail always fits, and replay also\n"
        "re-issues the I/O that was in flight.\n");
    return 0;
}
