/**
 * @file
 * Tiered recovery: NVRAM first, the back end for everything worse.
 *
 * Paper section 3.1/3.2: NVRAM is the first but not the last resort —
 * the in-memory server is "a cache with a high refresh cost", still
 * checkpointing to a storage back end for failures NVRAM cannot
 * cover. This example runs a KV server with WSP *and* a periodic
 * checkpoint/log-shipping tier, then exercises three failures:
 *
 *   1. a power outage      -> WSP restores everything locally,
 *   2. an exhausted save   -> detected on boot, back end rebuilds the
 *      (sabotaged ultracap)   full state from checkpoint + log,
 *   3. a destroyed server  -> back end rebuilds on a replacement,
 *                             losing only the unshipped tail.
 *
 * Build & run:  ./build/examples/tiered_recovery
 */

#include <cstdio>

#include "apps/checkpoint.h"
#include "core/failure_injector.h"
#include "core/system.h"

using namespace wsp;
using namespace wsp::apps;

namespace {

SystemConfig
serverConfig()
{
    SystemConfig config;
    config.nvdimm.capacityBytes = 16 * kMiB;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromSeconds(5.0);
    return config;
}

/** Load some traffic, mirroring every update into the scheduler. */
uint64_t
applyTraffic(KvStore &store, CheckpointScheduler &scheduler, Rng &rng,
             uint64_t first_key, uint64_t count)
{
    for (uint64_t key = first_key; key < first_key + count; ++key) {
        const uint64_t value = rng();
        store.put(key, value);
        scheduler.noteUpdate({key, value, false});
    }
    return first_key + count;
}

} // namespace

int
main()
{
    Rng rng(31);

    // ---- Failure 1: power outage, WSP handles it --------------------
    {
        WspSystem system(serverConfig());
        system.start();
        KvStore store(system.cache(), 0, 4096);
        BackendStore backend;
        CheckpointScheduler scheduler(system.queue(), store, backend);
        scheduler.start();

        uint64_t next_key = 1;
        next_key = applyTraffic(store, scheduler, rng, next_key, 800);
        system.runFor(fromMillis(500.0)); // shipping ticks run
        next_key = applyTraffic(store, scheduler, rng, next_key, 200);
        const uint64_t checksum = store.checksum();

        auto outcome = system.powerFailAndRestore(fromMillis(10.0),
                                                  fromSeconds(20.0));
        auto restored = KvStore::attach(system.cache(), 0);
        std::printf("power outage:      recovered via %s, state %s "
                    "(%llu keys), back end untouched\n",
                    outcome.restore.usedWsp ? "WSP" : "back end",
                    restored && restored->checksum() == checksum
                        ? "byte-identical"
                        : "DAMAGED",
                    restored ? (unsigned long long)restored->size() : 0);
    }

    // ---- Failure 2: NVDIMM save runs out of energy --------------------
    {
        SystemConfig config =
            FailureInjector::withUndersizedUltracaps(serverConfig());
        WspSystem system(config);
        system.start();
        KvStore store(system.cache(), 0, 4096);
        BackendStore backend;
        CheckpointScheduler scheduler(system.queue(), store, backend);
        scheduler.start();
        applyTraffic(store, scheduler, rng, 1, 1000);
        system.runFor(fromMillis(500.0));
        scheduler.shipNow();

        bool backend_used = false;
        auto outcome = system.powerFailAndRestore(
            fromMillis(10.0), fromSeconds(30.0), [&] {
            // Back-end tier: rebuild onto fresh NVRAM.
            KvStore fresh(system.cache(), 0, 4096);
            backend.recoverInto(&fresh);
            backend_used = true;
        });
        auto rebuilt = KvStore::attach(system.cache(), 0);
        std::printf("exhausted save:    WSP image invalid (flash %s), "
                    "back end rebuilt %llu keys in ~%s\n",
                    outcome.restore.flashValid ? "valid?!" : "invalid",
                    rebuilt ? (unsigned long long)rebuilt->size() : 0,
                    formatTime(backend.ownRecoveryTime(1)).c_str());
        if (!backend_used || outcome.restore.usedWsp)
            return 1;
    }

    // ---- Failure 3: the server is simply gone ------------------------
    {
        WspSystem system(serverConfig());
        system.start();
        KvStore store(system.cache(), 0, 4096);
        BackendStore backend;
        CheckpointConfig cadence;
        cadence.shipInterval = fromMillis(100.0);
        CheckpointScheduler scheduler(system.queue(), store, backend,
                                      cadence);
        scheduler.start();

        applyTraffic(store, scheduler, rng, 1, 900);
        system.runFor(fromSeconds(1.0)); // these 900 get shipped
        applyTraffic(store, scheduler, rng, 901, 100); // tail: unshipped
        const size_t tail = scheduler.unshippedUpdates();

        // The machine is destroyed; a replacement recovers from the
        // back end alone (no WSP possible).
        WspSystem replacement(serverConfig());
        replacement.start();
        KvStore fresh(replacement.cache(), 0, 4096);
        const size_t applied = backend.recoverInto(&fresh);
        std::printf("destroyed server:  replacement rebuilt %llu keys "
                    "(%zu ops) from checkpoint+log; lost only the "
                    "%zu-update shipping tail\n",
                    (unsigned long long)fresh.size(), applied, tail);
        if (fresh.size() != 900 || tail != 100)
            return 1;
    }

    std::printf("\nNVRAM is the first resort; the checkpoint tier "
                "bounds the damage of everything it cannot cover.\n");
    return 0;
}
