/**
 * @file
 * wspsim: command-line scenario driver.
 *
 * Runs one power-failure/restore cycle on a configurable system and
 * prints the full report — the exploration tool for trying platform,
 * PSU, device-policy, and failure-timing combinations without writing
 * code.
 *
 * Usage:
 *   wspsim [--platform c5528|x5650|amd4180|d510]
 *          [--psu amd400|amd525|intel750|intel1050]
 *          [--load busy|idle]
 *          [--policy suspend|restart|replay]
 *          [--restore whole|process]
 *          [--window-ms <float>]   force an exact residual window
 *          [--outage-s <float>]    outage duration (default 30)
 *          [--dirty-kib <n>]       cache bytes to dirty per socket
 *          [--devices]             include the device set
 *          [--seed <n>]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/kv_store.h"
#include "core/failure_injector.h"
#include "core/system.h"

using namespace wsp;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--platform c5528|x5650|amd4180|d510]\n"
                 "          [--psu amd400|amd525|intel750|intel1050]\n"
                 "          [--load busy|idle] "
                 "[--policy suspend|restart|replay]\n"
                 "          [--restore whole|process] "
                 "[--window-ms F] [--outage-s F]\n"
                 "          [--dirty-kib N] [--devices] [--seed N]\n",
                 argv0);
    std::exit(2);
}

bool
is(const char *arg, const char *name)
{
    return std::strcmp(arg, name) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig config;
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.devices.clear();
    double outage_s = 30.0;
    double window_ms = -1.0;
    uint64_t dirty_kib = 256;
    bool with_devices = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (is(arg, "--platform")) {
            const std::string name = value();
            if (name == "c5528")
                config.platform = platformIntelC5528();
            else if (name == "x5650")
                config.platform = platformIntelX5650();
            else if (name == "amd4180")
                config.platform = platformAmd4180();
            else if (name == "d510")
                config.platform = platformIntelD510();
            else
                usage(argv[0]);
        } else if (is(arg, "--psu")) {
            const std::string name = value();
            if (name == "amd400")
                config.psu = psuPresetAmd400W();
            else if (name == "amd525")
                config.psu = psuPresetAmd525W();
            else if (name == "intel750")
                config.psu = psuPresetIntel750W();
            else if (name == "intel1050")
                config.psu = psuPresetIntel1050W();
            else
                usage(argv[0]);
        } else if (is(arg, "--load")) {
            const std::string name = value();
            if (name == "busy")
                config.load = LoadClass::Busy;
            else if (name == "idle")
                config.load = LoadClass::Idle;
            else
                usage(argv[0]);
        } else if (is(arg, "--policy")) {
            const std::string name = value();
            if (name == "suspend")
                config.wsp.devicePolicy = DevicePolicy::AcpiSuspendOnSave;
            else if (name == "restart")
                config.wsp.devicePolicy =
                    DevicePolicy::PnpRestartOnRestore;
            else if (name == "replay")
                config.wsp.devicePolicy = DevicePolicy::VirtualizedReplay;
            else
                usage(argv[0]);
        } else if (is(arg, "--restore")) {
            const std::string name = value();
            if (name == "whole")
                config.wsp.restoreMode = RestoreMode::WholeSystem;
            else if (name == "process")
                config.wsp.restoreMode = RestoreMode::ProcessOnly;
            else
                usage(argv[0]);
        } else if (is(arg, "--window-ms")) {
            window_ms = std::atof(value());
        } else if (is(arg, "--outage-s")) {
            outage_s = std::atof(value());
        } else if (is(arg, "--dirty-kib")) {
            dirty_kib = static_cast<uint64_t>(std::atoll(value()));
        } else if (is(arg, "--devices")) {
            with_devices = true;
        } else if (is(arg, "--seed")) {
            config.seed = static_cast<uint64_t>(std::atoll(value()));
        } else {
            usage(argv[0]);
        }
    }
    if (with_devices)
        config.devices = deviceSetIntel();
    if (window_ms >= 0.0) {
        config = FailureInjector::withExactWindow(config,
                                                  fromMillis(window_ms));
    }

    WspSystem system(config);
    system.start();
    std::printf("platform: %s | psu: %s | load: %s | policy: %s | "
                "restore: %s\n",
                config.platform.name.c_str(), config.psu.name.c_str(),
                loadClassName(config.load).c_str(),
                devicePolicyName(config.wsp.devicePolicy).c_str(),
                restoreModeName(config.wsp.restoreMode).c_str());

    // Dirty the caches first (the fill pattern overlaps low NVRAM
    // addresses), then build the store on top so its content is what
    // the checksum captures.
    Rng rng(config.seed);
    const uint64_t per_socket =
        std::min(dirty_kib * kKiB, config.platform.cachePerSocket);
    system.machine().fillCachesDirty(per_socket, rng);
    apps::KvStore store(system.cache(), 0, 4096);
    for (uint64_t i = 1; i <= 1000; ++i)
        store.put(i, rng());
    const uint64_t checksum = store.checksum();
    if (with_devices)
        system.devices().startBusyAll();

    auto outcome = system.powerFailAndRestore(fromMillis(10.0),
                                              fromSeconds(outage_s));

    std::printf("\n-- save path --\n");
    if (outcome.save.has_value()) {
        for (const auto &step : outcome.save->steps) {
            std::printf("  %-38s %s\n", step.step.c_str(),
                        formatTime(step.duration()).c_str());
        }
        std::printf("save total: %s",
                    formatTime(outcome.save->duration()).c_str());
        if (auto fraction = system.wsp().windowFractionUsed())
            std::printf(" (%.1f%% of the residual window)", *fraction * 100);
        std::printf("\n");
    } else {
        std::printf("  save never completed: power died first\n");
    }

    std::printf("\n-- restore path --\n");
    for (const auto &step : outcome.restore.steps) {
        std::printf("  %-38s %s\n", step.step.c_str(),
                    formatTime(step.duration()).c_str());
    }
    auto restored = apps::KvStore::attach(system.cache(), 0);
    const bool intact =
        restored.has_value() && restored->checksum() == checksum;
    std::printf("recovered via: %s | marker: %s | state: %s | "
                "boot-to-running: %s\n",
                outcome.restore.usedWsp ? "WSP" : "back end",
                outcome.restore.markerValid ? "valid" : "invalid",
                outcome.restore.usedWsp
                    ? (intact ? "byte-identical" : "CORRUPTED")
                    : "rebuilt externally",
                formatTime(outcome.restore.duration()).c_str());
    return outcome.restore.usedWsp && !intact ? 1 : 0;
}
