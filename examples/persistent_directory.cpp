/**
 * @file
 * Persistent-heap programming model: an LDAP-like directory server.
 *
 * Shows the programming-model side of the paper's comparison
 * (section 3.2): the same directory server code runs against
 *
 *  1. a Mnemosyne-style persistent heap (STM + redo log, flush on
 *     commit) that survives a crash through log recovery, and
 *  2. a plain in-memory heap (flush on fail) that would be covered by
 *     WSP instead.
 *
 * A crash is simulated by abandoning the heap file without a clean
 * shutdown and re-opening it; the durable configuration recovers
 * every committed entry.
 *
 * Build & run:  ./build/examples/persistent_directory
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "apps/directory_server.h"
#include "pheap/policies.h"

using namespace wsp;
using namespace wsp::apps;
using pmem::PHeap;
using pmem::PHeapConfig;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    const std::string path = "/tmp/wsp_directory_example.img";
    std::remove(path.c_str());
    constexpr uint64_t kEntries = 20000;

    // --- Mnemosyne configuration: FoC + STM, file-backed ----------------
    pmem::Offset index_header = 0;
    {
        PHeapConfig config;
        config.path = path;
        config.regionSize = 64ull * 1024 * 1024;
        config.durableLogs = true;
        PHeap heap(config);
        DirectoryServer<pmem::StmPolicy> server(heap);
        index_header = server.index().headerOffset();
        pmem::StmPolicy::run(heap, [&](pmem::StmPolicy::Tx &tx) {
            heap.setRootObject(tx, index_header);
        });

        Rng rng(3);
        const auto start = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < kEntries; ++i) {
            if (server.add(renderEntry(randomEntry(rng, i))) !=
                DirectoryResult::Success) {
                std::printf("unexpected add failure at %llu\n",
                            (unsigned long long)i);
                return 1;
            }
        }
        const double elapsed = secondsSince(start);
        std::printf("FoC + STM (Mnemosyne-style): loaded %llu entries "
                    "at %.0f updates/s\n",
                    (unsigned long long)server.entryCount(),
                    kEntries / elapsed);
        // No clean shutdown: this is the crash.
    }

    // --- Crash recovery --------------------------------------------------
    {
        PHeapConfig config;
        config.path = path;
        config.regionSize = 64ull * 1024 * 1024;
        config.durableLogs = true;
        PHeap heap(config);
        std::printf("re-opened after crash: recovered=%s, redo records "
                    "replayed=%zu, undo rolled back=%zu\n",
                    heap.openReport().recovered ? "yes" : "no",
                    heap.openReport().redoRecordsApplied,
                    heap.openReport().undoRecordsApplied);

        // Attach to the index through the heap root and verify.
        AvlTree<pmem::StmPolicy> index(heap, heap.rootObject(), nullptr);
        std::printf("directory after recovery: %llu entries, AVL "
                    "invariants %s\n",
                    (unsigned long long)index.size(),
                    index.checkInvariants() ? "hold" : "VIOLATED");
    }

    // --- The WSP alternative ---------------------------------------------
    {
        PHeapConfig config;
        config.regionSize = 64ull * 1024 * 1024;
        config.durableLogs = false; // flush-on-fail: plain memory
        PHeap heap(config);
        DirectoryServer<pmem::RawPolicy> server(heap);
        Rng rng(3);
        const auto start = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < kEntries; ++i)
            server.add(renderEntry(randomEntry(rng, i)));
        const double elapsed = secondsSince(start);
        std::printf("\nWSP (unmodified in-memory code): loaded %llu "
                    "entries at %.0f updates/s\n",
                    (unsigned long long)server.entryCount(),
                    kEntries / elapsed);
        std::printf("with whole-system persistence this heap needs no "
                    "logging, no flushing, and no code changes —\n"
                    "the NVDIMM save at failure time covers it "
                    "(see examples/quickstart).\n");
    }

    std::remove(path.c_str());
    return 0;
}
