/**
 * @file
 * Recovery storm: a cluster-wide outage, with and without WSP.
 *
 * The paper's motivation (sections 1-2): after a correlated power
 * failure, every main-memory server refreshes its state from a shared
 * back end at once — the Facebook 2010 outage took 2.5 hours. This
 * example runs a small cluster functionally (one simulated server
 * with a KV store, a real back end with checkpoint + log) and then
 * scales the model to a 100-server, 256 GB-per-server cluster.
 *
 * Build & run:  ./build/examples/recovery_storm
 */

#include <cstdio>

#include "apps/backend_store.h"
#include "apps/cluster.h"
#include "apps/kv_store.h"
#include "core/system.h"
#include "util/table.h"

using namespace wsp;

int
main()
{
    // --- Part 1: one server, functionally -------------------------------
    SystemConfig config;
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromSeconds(5.0);
    WspSystem system(config);
    system.start();

    apps::KvStore store(system.cache(), 0, 4096);
    apps::BackendStore backend;
    Rng rng(11);
    for (uint64_t i = 1; i <= 2000; ++i)
        store.put(i, rng());
    backend.checkpoint(store);
    // A few updates after the checkpoint land only in the log.
    for (uint64_t i = 2001; i <= 2010; ++i) {
        store.put(i, i);
        backend.logUpdate({i, i, false});
    }
    const uint64_t checksum_before = store.checksum();

    std::printf("server loaded: %llu keys; back end holds %s checkpoint "
                "+ %zu log entries\n",
                (unsigned long long)store.size(),
                formatBytes(backend.checkpointBytes()).c_str(),
                backend.logEntries());

    // Power failure with WSP: local recovery, back end untouched.
    auto outcome =
        system.powerFailAndRestore(fromMillis(100.0), fromSeconds(20.0));
    auto restored = apps::KvStore::attach(system.cache(), 0);
    std::printf("WSP recovery: usedWsp=%s, boot-to-running %s, state %s\n",
                outcome.restore.usedWsp ? "yes" : "no",
                formatTime(outcome.restore.duration()).c_str(),
                restored && restored->checksum() == checksum_before
                    ? "intact"
                    : "lost");

    // The same failure without NVDIMM help: rebuild from the back end.
    apps::KvStore cold(system.cache(), 8 * kMiB, 4096);
    const size_t replayed = backend.recoverInto(&cold);
    std::printf("back-end recovery (functional): %zu ops replayed, "
                "modelled time %s alone, %s in a 100-server storm\n\n",
                replayed,
                formatTime(backend.ownRecoveryTime(1)).c_str(),
                formatTime(backend.ownRecoveryTime(100)).c_str());

    // --- Part 2: the full-scale storm model ------------------------------
    Table table("Recovery storm: 100 x 256 GB servers, shared back end");
    table.setHeader({"servers", "back end (storm)", "back end (single)",
                     "WSP local", "speedup"});
    for (unsigned servers : {1u, 10u, 100u, 1000u}) {
        apps::ClusterConfig cluster;
        cluster.servers = servers;
        cluster.memoryPerServer = 256ull * 1024 * 1024 * 1024;
        cluster.nvdimm.capacityBytes = 8 * kGiB;
        const apps::StormReport report = apps::correlatedOutage(cluster);
        table.addRow({std::to_string(servers),
                      formatTime(report.backendRecovery),
                      formatTime(report.backendSingle),
                      formatTime(report.wspRecovery),
                      formatDouble(report.speedup, 1) + "x"});
    }
    table.print();
    std::printf("\nWSP recovers locally and in parallel; the back end "
                "serves only the stale tail of updates.\n");
    return 0;
}
