/**
 * @file
 * Quickstart: a main-memory KV server surviving a power failure.
 *
 * Assembles the paper's prototype (Fig. 3) with one call, runs a
 * key-value store whose entire state lives in NVRAM behind the CPU
 * cache, pulls the plug, and shows that the flush-on-fail save plus
 * the NVDIMM hardware turn the outage into a suspend/resume event:
 * every key, every dirty cache line, and every thread context is back
 * after the restore.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/kv_store.h"
#include "core/system.h"

using namespace wsp;

int
main()
{
    // The paper's Intel testbed: 2-socket C5528, 1050 W PSU, NVDIMMs.
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.wsp.firmwareBootLatency = fromSeconds(5.0);

    WspSystem system(config);
    system.start();
    std::printf("system up: %s, %s, %u x %s NVDIMM\n",
                system.machine().spec().name.c_str(),
                system.psu().preset().name.c_str(), config.nvdimmCount,
                formatBytes(config.nvdimm.capacityBytes).c_str());

    // An in-memory KV store: all state in NVRAM, writes land in the
    // write-back cache and are NOT flushed on the fast path.
    apps::KvStore store(system.cache(), 0, 4096);
    Rng rng(7);
    for (uint64_t i = 1; i <= 1000; ++i)
        store.put(i, rng());
    const uint64_t checksum_before = store.checksum();
    const uint64_t dirty = system.machine().totalDirtyBytes();
    std::printf("loaded %llu keys, checksum %016llx, %s still dirty "
                "in cache\n",
                (unsigned long long)store.size(),
                (unsigned long long)checksum_before,
                formatBytes(dirty).c_str());

    // Pull the plug 1 s from now; power returns after 30 s.
    std::printf("\n-- pulling the plug --\n");
    auto outcome =
        system.powerFailAndRestore(fromSeconds(1.0), fromSeconds(30.0));

    if (outcome.save.has_value()) {
        std::printf("flush-on-fail completed in %s "
                    "(%.1f%% of the %s residual window):\n",
                    formatTime(outcome.save->duration()).c_str(),
                    100.0 * system.wsp().windowFractionUsed().value_or(0),
                    formatTime(system.psu().preset().busyWindow).c_str());
        for (const auto &step : outcome.save->steps) {
            std::printf("  %-34s %s\n", step.step.c_str(),
                        formatTime(step.duration()).c_str());
        }
    }

    std::printf("\n-- power restored, booting --\n");
    std::printf("restore used WSP: %s (marker %s, checksum %s)\n",
                outcome.restore.usedWsp ? "yes" : "no",
                outcome.restore.markerValid ? "valid" : "invalid",
                outcome.restore.checksumOk ? "ok" : "mismatch");
    std::printf("boot-to-running: %s (NVDIMM restore %s, devices "
                "replayed %zu ops)\n",
                formatTime(outcome.restore.duration()).c_str(),
                formatTime(outcome.restore.nvdimmRestoreTime).c_str(),
                outcome.restore.deviceReport.opsReplayed);

    // Re-attach to the store: the state must be byte-identical.
    auto recovered = apps::KvStore::attach(system.cache(), 0);
    if (!recovered.has_value()) {
        std::printf("FAILED: store not found after restore\n");
        return 1;
    }
    const uint64_t checksum_after = recovered->checksum();
    std::printf("\nstore after restore: %llu keys, checksum %016llx "
                "(%s)\n",
                (unsigned long long)recovered->size(),
                (unsigned long long)checksum_after,
                checksum_after == checksum_before ? "IDENTICAL"
                                                  : "CORRUPTED");
    return checksum_after == checksum_before ? 0 : 1;
}
