# Smoke test for the post-mortem forensics pipeline, run as a ctest:
#
#   cmake -DSWEEP=<crash_sweep> -DINSPECT=<wsp_inspect> -DOUT_DIR=<dir> \
#         -P forensics_smoke.cmake
#
# Runs a small enumerated sweep with the NVRAM flight recorder enabled
# and captures the surviving image, then proves the forensics toolkit
# can consume it: wsp_inspect must find a valid recorder header,
# decode a sound ring, export a Chrome trace, and diff the image
# against itself without reporting differences.

if(NOT SWEEP OR NOT INSPECT OR NOT OUT_DIR)
    message(FATAL_ERROR
        "forensics_smoke: SWEEP, INSPECT and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
set(IMAGE_FILE ${OUT_DIR}/smoke_image.wspimg)
set(TRACE_FILE ${OUT_DIR}/smoke_blackbox_trace.json)

execute_process(
    COMMAND ${SWEEP} --points=16 --image-out=${IMAGE_FILE}
    RESULT_VARIABLE sweep_rc
    OUTPUT_VARIABLE sweep_out
    ERROR_VARIABLE sweep_out
)
if(NOT sweep_rc EQUAL 0)
    message(FATAL_ERROR
        "forensics_smoke: sweep failed (rc=${sweep_rc}):\n${sweep_out}")
endif()
if(NOT EXISTS ${IMAGE_FILE})
    message(FATAL_ERROR
        "forensics_smoke: sweep did not write ${IMAGE_FILE}")
endif()

# Decode: the image of a held sweep must contain a valid, sound ring.
execute_process(
    COMMAND ${INSPECT} --image=${IMAGE_FILE} --require-header
        --trace-out=${TRACE_FILE}
    RESULT_VARIABLE inspect_rc
    OUTPUT_VARIABLE inspect_out
    ERROR_VARIABLE inspect_out
)
if(NOT inspect_rc EQUAL 0)
    message(FATAL_ERROR
        "forensics_smoke: decode failed (rc=${inspect_rc}):\n${inspect_out}")
endif()
if(NOT EXISTS ${TRACE_FILE})
    message(FATAL_ERROR
        "forensics_smoke: inspect did not write ${TRACE_FILE}")
endif()

# Diff: an image diffed against itself reports no differences.
execute_process(
    COMMAND ${INSPECT} --image=${IMAGE_FILE} --diff=${IMAGE_FILE} --quiet
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ERROR_VARIABLE diff_out
)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "forensics_smoke: self-diff failed (rc=${diff_rc}):\n${diff_out}")
endif()
message(STATUS "forensics_smoke: decode + trace export + self-diff OK")
