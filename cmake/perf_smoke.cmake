# Release-configuration perf smoke test, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P perf_smoke.cmake
#
# Configures a -O2 (CMAKE_BUILD_TYPE=Release) sub-build of the tree,
# builds the incremental-save bench, and runs it. The bench's own
# shape check is the assertion: a delta save at 10 % dirty must be at
# least 5x cheaper than a full save, and the lazily restored content
# must be byte-identical to the eager image. The sub-build directory
# persists across runs, so re-runs are incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "perf_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR}
        --target bench_incremental_save
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

execute_process(
    COMMAND ${OUT_DIR}/bench/incremental_save --repeat=3
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out
)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_smoke: bench shape check failed (rc=${run_rc}):\n${run_out}")
endif()
message(STATUS "perf_smoke: incremental-save shape check clean at -O2")
