# Threaded-serving perf gate, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P kv_throughput_smoke.cmake
#
# Configures the shared -O2 (CMAKE_BUILD_TYPE=Release) sub-build,
# builds the kv_throughput bench and the bench_summary collator, then:
#
#  1. runs the bench — its own shape check asserts the dispatch-arm
#     ratio (rings vs per-op mutex; >= 5x with real cores, the honest
#     single-core floor otherwise), the exact sequential-replay
#     equivalence, and determinism;
#  2. runs it again into the same record file and gates the trajectory
#     with `bench_summary --gate`, so the regression-gate plumbing
#     itself is exercised end to end (two back-to-back runs of the
#     same binary must sit well inside the allowed drop).
#
# The sub-build directory persists across runs, so re-runs are
# incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "kv_throughput_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "kv_throughput_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR}
        --target bench_kv_throughput bench_summary
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "kv_throughput_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

# Fresh record dir per ctest invocation: the gate below must compare
# exactly this pair of runs, not whatever history earlier invocations
# accumulated.
set(RECORD_DIR ${OUT_DIR}/kv_throughput_records)
file(REMOVE_RECURSE ${RECORD_DIR})
file(MAKE_DIRECTORY ${RECORD_DIR})

foreach(run RANGE 1 2)
    execute_process(
        COMMAND ${OUT_DIR}/bench/kv_throughput
            --metrics-out=${RECORD_DIR}/metrics_${run}.json
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_out
    )
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "kv_throughput_smoke: bench shape check failed on run ${run} (rc=${run_rc}):\n${run_out}")
    endif()
endforeach()

# Back-to-back runs of the same binary on the same host: the dispatch
# ratio must hold within generous noise (the bench's own shape check
# already enforced the absolute floor twice above).
execute_process(
    COMMAND ${OUT_DIR}/tools/bench_summary ${RECORD_DIR}
        --gate=bench.kv_throughput.ratio_vs_perop:40
    RESULT_VARIABLE gate_rc
    OUTPUT_VARIABLE gate_out
    ERROR_VARIABLE gate_out
)
if(NOT gate_rc EQUAL 0)
    message(FATAL_ERROR
        "kv_throughput_smoke: bench_summary gate failed (rc=${gate_rc}):\n${gate_out}")
endif()
message(STATUS
    "kv_throughput_smoke: dispatch-arm shape checks and trajectory gate clean at -O2")
