# End-to-end check of the crash harness's bug-catching path, run as a
# ctest:
#
#   cmake -DSWEEP=<path> -DREPLAY=<path> -DOUT_DIR=<dir> \
#         -P crash_smoke.cmake
#
# Runs crash_sweep with the deliberately broken marker-before-flush
# save order. The sweep must find a violation (exit 3), minimize the
# failing schedule, and write a replay file; crash_replay must then
# reproduce the violation from that file (exit 2).

if(NOT SWEEP OR NOT REPLAY OR NOT OUT_DIR)
    message(FATAL_ERROR "crash_smoke: SWEEP, REPLAY and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
set(REPLAY_FILE ${OUT_DIR}/broken_marker.schedule)
file(REMOVE ${REPLAY_FILE})

execute_process(
    COMMAND ${SWEEP}
        --broken-marker
        --stop-on-first
        --points=80
        --replay-out=${REPLAY_FILE}
    RESULT_VARIABLE sweep_rc
    OUTPUT_VARIABLE sweep_out
    ERROR_VARIABLE sweep_out
)
if(NOT sweep_rc EQUAL 3)
    message(FATAL_ERROR
        "crash_smoke: expected the sweep to catch the broken save "
        "order (rc=3), got rc=${sweep_rc}:\n${sweep_out}")
endif()
if(NOT EXISTS ${REPLAY_FILE})
    message(FATAL_ERROR
        "crash_smoke: sweep did not write ${REPLAY_FILE}:\n${sweep_out}")
endif()

execute_process(
    COMMAND ${REPLAY} ${REPLAY_FILE}
    RESULT_VARIABLE replay_rc
    OUTPUT_VARIABLE replay_out
    ERROR_VARIABLE replay_out
)
if(NOT replay_rc EQUAL 2)
    message(FATAL_ERROR
        "crash_smoke: expected the replay to reproduce the violation "
        "(rc=2), got rc=${replay_rc}:\n${replay_out}")
endif()
message(STATUS "crash_smoke: broken order caught, minimized, replayed")
