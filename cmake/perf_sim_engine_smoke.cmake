# Release-configuration sim-engine perf gate, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P perf_sim_engine_smoke.cmake
#
# Configures a -O2 (CMAKE_BUILD_TYPE=Release) sub-build of the tree,
# builds the event-engine bench, and runs it with both queue
# implementations. The bench's own gates are the assertion: the
# index-tracked-heap engine must beat the tombstone baseline by >= 10x
# on the dispatch mix (device ladder + deadline-timer re-arms) and
# >= 2x on the cancel-heavy and same-tick-burst workloads. The
# sub-build directory persists across runs (and is shared with the
# other perf smokes), so re-runs are incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR
        "perf_sim_engine_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_sim_engine_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR} --target bench_sim_engine
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_sim_engine_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

execute_process(
    COMMAND ${OUT_DIR}/bench/sim_engine --repeat=3
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out
)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "perf_sim_engine_smoke: speedup gate failed (rc=${run_rc}):\n${run_out}")
endif()
message(STATUS "perf_sim_engine_smoke: >=10x dispatch gate clean at -O2")
