# End-to-end check of the salvage regime's bug-catching path, run as
# a ctest:
#
#   cmake -DSWEEP=<path> -DOUT_DIR=<dir> -P salvage_smoke.cmake
#
# Two runs of crash_sweep under the salvage regime:
#
#  1. Clean: every enumerated power-failure instant, with the KV
#     shards registered as tiered salvage regions, must hold all
#     invariants (exit 0) — intact regions salvaged, casualties
#     quarantined and rebuilt per shard, never silently corrupted.
#  2. Planted bug: with --trust-directory the restore skips the
#     per-region CRC re-verification, so injected media faults revive
#     corrupt bytes. The NoSilentCorruption checker must catch it
#     (exit 3).

if(NOT SWEEP OR NOT OUT_DIR)
    message(FATAL_ERROR "salvage_smoke: SWEEP and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
    COMMAND ${SWEEP}
        --salvage
        --points=60
    RESULT_VARIABLE clean_rc
    OUTPUT_VARIABLE clean_out
    ERROR_VARIABLE clean_out
)
if(NOT clean_rc EQUAL 0)
    message(FATAL_ERROR
        "salvage_smoke: expected the salvage-regime sweep to hold "
        "(rc=0), got rc=${clean_rc}:\n${clean_out}")
endif()

execute_process(
    COMMAND ${SWEEP}
        --salvage
        --media-faults=2
        --media-fault-kind=0
        --trust-directory
        --stop-on-first
        --points=20
    RESULT_VARIABLE bug_rc
    OUTPUT_VARIABLE bug_out
    ERROR_VARIABLE bug_out
)
if(NOT bug_rc EQUAL 3)
    message(FATAL_ERROR
        "salvage_smoke: expected the checksum-skipping restore to be "
        "caught (rc=3), got rc=${bug_rc}:\n${bug_out}")
endif()
message(STATUS
    "salvage_smoke: salvage sweep held; trust-directory bug caught")
