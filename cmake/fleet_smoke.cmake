# Release-configuration fleet smoke test, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P fleet_smoke.cmake
#
# Configures a -O2 (CMAKE_BUILD_TYPE=Release) sub-build of the tree
# (shared with the perf smokes' OUT_DIR convention), builds the
# fleet_storm bench and the fleet_sweep driver, and runs both small:
#
#  - bench/fleet_storm's own shape check is the assertion: WSP-local
#    recovery must reach full capacity at least 5x faster than the
#    backend-refill storm, no acknowledged write may be lost under
#    any recovery policy, and the degraded tier must serve reads.
#  - tools/fleet_sweep proves NoReplicaDivergence over a handful of
#    enumerated mid-save kill instants (exit 3 = divergence found).
#
# The sub-build directory persists across runs, so re-runs are
# incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "fleet_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "fleet_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR}
        --target bench_fleet_storm fleet_sweep
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "fleet_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

execute_process(
    COMMAND ${OUT_DIR}/bench/fleet_storm
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_out
)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "fleet_smoke: fleet_storm shape check failed (rc=${bench_rc}):\n${bench_out}")
endif()

execute_process(
    COMMAND ${OUT_DIR}/tools/fleet_sweep --points=6
    RESULT_VARIABLE sweep_rc
    OUTPUT_VARIABLE sweep_out
    ERROR_VARIABLE sweep_out
)
if(NOT sweep_rc EQUAL 0)
    message(FATAL_ERROR
        "fleet_smoke: NoReplicaDivergence sweep failed (rc=${sweep_rc}):\n${sweep_out}")
endif()
message(STATUS
    "fleet_smoke: storm shape check + NoReplicaDivergence sweep clean at -O2")
