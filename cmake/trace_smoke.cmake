# Smoke test for the observability pipeline, run as a ctest:
#
#   cmake -DBENCH=<path> -DCHECKER=<path> -DOUT_DIR=<dir> \
#         -P trace_smoke.cmake
#
# Runs one fast bench with WSP_TRACE=all and the standard output
# flags, then validates the emitted trace/metrics files with
# trace_check. Fails the test when the bench exits nonzero, a file is
# missing, or the JSON shape is wrong.

if(NOT BENCH OR NOT CHECKER OR NOT OUT_DIR)
    message(FATAL_ERROR "trace_smoke: BENCH, CHECKER and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
set(TRACE_FILE ${OUT_DIR}/smoke_trace.json)
set(METRICS_FILE ${OUT_DIR}/smoke_metrics.json)

set(ENV{WSP_TRACE} all)
execute_process(
    COMMAND ${BENCH}
        --trace-out=${TRACE_FILE}
        --metrics-out=${METRICS_FILE}
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_out
)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke: bench failed (rc=${bench_rc}):\n${bench_out}")
endif()

foreach(emitted ${TRACE_FILE} ${METRICS_FILE})
    if(NOT EXISTS ${emitted})
        message(FATAL_ERROR "trace_smoke: bench did not write ${emitted}")
    endif()
endforeach()

execute_process(
    COMMAND ${CHECKER} --trace=${TRACE_FILE} --metrics=${METRICS_FILE}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_out
)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke: validation failed (rc=${check_rc}):\n${check_out}")
endif()
message(STATUS "trace_smoke: ${check_out}")
