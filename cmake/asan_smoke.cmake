# AddressSanitizer smoke test, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P asan_smoke.cmake
#
# Configures a sub-build of the tree with -DWSP_SANITIZE=address (the
# existing sanitizer hook), builds the salvage and sim-property test
# binaries, and runs their suites under ASan. The salvage paths
# shuffle raw NVRAM spans (scrubbing, CRC passes, directory decode of
# possibly-torn bytes), which is exactly where an out-of-bounds read
# would hide; the sim-property battery hammers the event engine's
# slab/arena recycling and the SmallFn relocate/destroy paths, where a
# lifetime bug would hide. The sub-build directory persists across
# runs, so re-runs are incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "asan_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
        -DWSP_SANITIZE=address
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR}
        --target test_salvage test_sim_property test_conditions test_fleet
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

# Death tests fork under ASan; keep them but run them threadsafe.
# halt_on_error turns any ASan report into a nonzero exit so the ctest
# fails loudly.
set(ENV{ASAN_OPTIONS} "halt_on_error=1")
execute_process(
    COMMAND ${OUT_DIR}/tests/test_salvage
        --gtest_death_test_style=threadsafe
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out
)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: ASan run failed (rc=${run_rc}):\n${run_out}")
endif()

execute_process(
    COMMAND ${OUT_DIR}/tests/test_sim_property
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_out
)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: sim-property ASan run failed (rc=${sim_rc}):\n${sim_out}")
endif()

# The conditions battery walks raw history/line-tracking structures
# (FliT per-line maps, replayed KV states, brute-force subset masks)
# and drives full crash/recovery sweeps — both good ASan hunting
# ground.
execute_process(
    COMMAND ${OUT_DIR}/tests/test_conditions
    RESULT_VARIABLE cond_rc
    OUTPUT_VARIABLE cond_out
    ERROR_VARIABLE cond_out
)
if(NOT cond_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: conditions ASan run failed (rc=${cond_rc}):\n${cond_out}")
endif()
# The fleet battery churns whole WspSystems (kill, image capture,
# chassis swap) and walks raw store shards during anti-entropy — a
# use-after-free in the node teardown/reboot cycle would hide exactly
# there. Run the placement, lifecycle and mid-save-kill suites.
execute_process(
    COMMAND ${OUT_DIR}/tests/test_fleet
        --gtest_filter=Rendezvous.*:FleetNode.*:Fleet.QuorumWritesReadsAndConvergence:Fleet.MidSaveKillSubsetStaysConvergent
    RESULT_VARIABLE fleet_rc
    OUTPUT_VARIABLE fleet_out
    ERROR_VARIABLE fleet_out
)
if(NOT fleet_rc EQUAL 0)
    message(FATAL_ERROR
        "asan_smoke: fleet ASan run failed (rc=${fleet_rc}):\n${fleet_out}")
endif()
message(STATUS
    "asan_smoke: salvage + sim-property + conditions + fleet suites clean under ASan")
