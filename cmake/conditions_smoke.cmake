# End-to-end check of the formal-conditions battery, run as a ctest:
#
#   cmake -DSWEEP=<path> -DREPLAY=<path> -DOUT_DIR=<dir> \
#         -P conditions_smoke.cmake
#
# Runs crash_sweep with the planted ack-before-apply bug: each KV op
# is acknowledged at t and applied at t+30us on a 50us grid, and the
# AC failure at 5.010ms lands strictly inside one such gap — a
# responded operation with no surviving effect. The sweep must catch
# it as a durable-linearizability violation (exit 3), minimize the
# schedule, and write a replay file; crash_replay must reproduce the
# violation (exit 2); and a buffered-durable-linearizability-only
# sweep of the *same* buggy schedule must hold (exit 0) — the bug
# never persisted, so losing it is exactly what the buffered
# condition forgives. DL caught, BDL forgave: the separation, in CI.

if(NOT SWEEP OR NOT REPLAY OR NOT OUT_DIR)
    message(FATAL_ERROR
        "conditions_smoke: SWEEP, REPLAY and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
set(REPLAY_FILE ${OUT_DIR}/ack_before_apply.schedule)
file(REMOVE ${REPLAY_FILE})

set(BUG_FLAGS
    --ack-before-apply
    --ack-delay-us=30
    --ops=128
    --fail-delay-us=5010)

execute_process(
    COMMAND ${SWEEP} ${BUG_FLAGS}
        --stop-on-first
        --points=80
        --replay-out=${REPLAY_FILE}
    RESULT_VARIABLE sweep_rc
    OUTPUT_VARIABLE sweep_out
    ERROR_VARIABLE sweep_out
)
if(NOT sweep_rc EQUAL 3)
    message(FATAL_ERROR
        "conditions_smoke: expected the sweep to catch the "
        "ack-before-apply bug (rc=3), got rc=${sweep_rc}:\n${sweep_out}")
endif()
if(NOT sweep_out MATCHES "durable-lin")
    message(FATAL_ERROR
        "conditions_smoke: the violation did not name durable "
        "linearizability:\n${sweep_out}")
endif()
if(NOT EXISTS ${REPLAY_FILE})
    message(FATAL_ERROR
        "conditions_smoke: sweep did not write ${REPLAY_FILE}:\n${sweep_out}")
endif()

execute_process(
    COMMAND ${REPLAY} ${REPLAY_FILE}
    RESULT_VARIABLE replay_rc
    OUTPUT_VARIABLE replay_out
    ERROR_VARIABLE replay_out
)
if(NOT replay_rc EQUAL 2)
    message(FATAL_ERROR
        "conditions_smoke: expected the replay to reproduce the "
        "violation (rc=2), got rc=${replay_rc}:\n${replay_out}")
endif()

execute_process(
    COMMAND ${SWEEP} ${BUG_FLAGS}
        --condition=buffered
        --points=40
    RESULT_VARIABLE bdl_rc
    OUTPUT_VARIABLE bdl_out
    ERROR_VARIABLE bdl_out
)
if(NOT bdl_rc EQUAL 0)
    message(FATAL_ERROR
        "conditions_smoke: expected the buffered-only sweep of the "
        "same schedule to hold (rc=0), got rc=${bdl_rc}:\n${bdl_out}")
endif()
message(STATUS
    "conditions_smoke: ack bug caught by DL, minimized, replayed; "
    "buffered sweep forgave it")
