# ThreadSanitizer smoke test, run as a ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DOUT_DIR=<dir> -P tsan_smoke.cmake
#
# Configures a sub-build of the tree with -DWSP_SANITIZE=thread (the
# existing sanitizer hook), builds only the concurrency test binary,
# and runs its genuinely-threaded suites under TSan. The sub-build
# directory persists across runs, so re-runs are incremental.

if(NOT SOURCE_DIR OR NOT OUT_DIR)
    message(FATAL_ERROR "tsan_smoke: SOURCE_DIR and OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
execute_process(
    COMMAND ${CMAKE_COMMAND} -G Ninja -S ${SOURCE_DIR} -B ${OUT_DIR}
        -DCMAKE_BUILD_TYPE=Release
        -DWSP_SANITIZE=thread
    RESULT_VARIABLE configure_rc
    OUTPUT_VARIABLE configure_out
    ERROR_VARIABLE configure_out
)
if(NOT configure_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: configure failed (rc=${configure_rc}):\n${configure_out}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${OUT_DIR}
        --target test_concurrency test_conditions test_fleet test_load
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_out
)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: build failed (rc=${build_rc}):\n${build_out}")
endif()

# The threaded suites: thread-pool scheduling, concurrent sharded
# serving vs the sequential reference, and the determinism battery
# (which runs the pool twice per test). halt_on_error turns any TSan
# report into a nonzero exit so the ctest fails loudly.
set(ENV{TSAN_OPTIONS} "halt_on_error=1")
execute_process(
    COMMAND ${OUT_DIR}/tests/test_concurrency
        --gtest_filter=ThreadPool.*:ShardedEquivalence.*:Determinism.*:KvBatch.*
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out
)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: TSan run failed (rc=${run_rc}):\n${run_out}")
endif()

# The conditions battery's end-to-end suites drive full crash/recovery
# cycles (workload events, save pipeline, fresh-chassis boot) with the
# FliT tracker observing the cache from the write-back path; run them
# under TSan too so an ordering bug between the tracker and the save
# machinery cannot hide.
execute_process(
    COMMAND ${OUT_DIR}/tests/test_conditions
        --gtest_filter=AckBeforeApply.*:ConditionsBattery.*
    RESULT_VARIABLE cond_rc
    OUTPUT_VARIABLE cond_out
    ERROR_VARIABLE cond_out
)
if(NOT cond_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: conditions TSan run failed (rc=${cond_rc}):\n${cond_out}")
endif()
# Fleet quorum/lifecycle suites: the node save pipeline may use the
# parallel per-core flush path, and a TSan pass keeps the fleet
# machinery honest if it ever grows threaded traffic drivers.
execute_process(
    COMMAND ${OUT_DIR}/tests/test_fleet
        --gtest_filter=Rendezvous.*:FleetNode.*:Fleet.StormWspLocalRecoversEveryVictim
    RESULT_VARIABLE fleet_rc
    OUTPUT_VARIABLE fleet_out
    ERROR_VARIABLE fleet_out
)
if(NOT fleet_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: fleet TSan run failed (rc=${fleet_rc}):\n${fleet_out}")
endif()
# The traffic-plane battery is the most thread-dense code in the tree:
# SPSC ring producer/consumer pairs, the rings-dispatch worker graph
# with back-pressure draining, and the threaded fleet storm. Running
# the whole load suite under TSan is the point of the battery — the
# equivalence tests pass through every ring and drain path.
execute_process(
    COMMAND ${OUT_DIR}/tests/test_load
    RESULT_VARIABLE load_rc
    OUTPUT_VARIABLE load_out
    ERROR_VARIABLE load_out
)
if(NOT load_rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_smoke: load TSan run failed (rc=${load_rc}):\n${load_out}")
endif()
message(STATUS
    "tsan_smoke: threaded + conditions + fleet + load suites clean under TSan")
