/**
 * @file
 * Tests for the crash-point exploration harness.
 *
 * The exhaustive claims live here: the enumerated sweep over every
 * distinguishable power-failure instant must hold for the correct
 * save order, all four pheap disciplines must survive their own
 * exhaustive sweeps, and the deliberately broken marker-before-flush
 * order must be caught, minimized, and reproducible from its replay
 * file.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "crashsim/crash_explorer.h"
#include "crashsim/pheap_crash.h"
#include "trace/stat_registry.h"

namespace wsp::crashsim {
namespace {

/** Fast base scenario for the system-level sweeps. */
CrashSchedule
fastSchedule()
{
    CrashSchedule schedule;
    schedule.ops = 48;
    schedule.outage = fromMillis(500.0);
    return schedule;
}

// Schedule serialization ----------------------------------------------

TEST(CrashSchedule, SerializationRoundTrips)
{
    CrashSchedule schedule;
    schedule.seed = 0xabcdef;
    schedule.window = fromMicros(123.0) + 7;
    schedule.ops = 17;
    schedule.trainCycles = 3;
    schedule.drainModule = 1;
    schedule.drainVoltage = 5.5;
    schedule.undersizedCaps = true;
    schedule.withDevices = true;
    schedule.saveOrder = SaveOrder::MarkerBeforeFlush;

    const auto parsed = CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == schedule);
}

TEST(CrashSchedule, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(CrashSchedule::parse("").has_value());
    EXPECT_FALSE(CrashSchedule::parse("not-a-schedule\n").has_value());
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "unknown_key=3\n")
                     .has_value());
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "train_cycles=0\n")
                     .has_value());
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "seed=banana\n")
                     .has_value());
}

// Single crash points, both regimes -----------------------------------

TEST(CrashPoint, GenerousWindowRecoversViaWsp)
{
    CrashSchedule schedule = fastSchedule();
    schedule.window = fromMillis(200.0); // the whole pipeline fits
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_TRUE(result.held()) << (result.violations.empty()
                                       ? ""
                                       : result.violations.front());
    EXPECT_TRUE(result.restore.usedWsp);
    EXPECT_FALSE(result.backendRan);
    EXPECT_EQ(result.appliedOps, schedule.ops);
}

TEST(CrashPoint, ZeroWindowFallsBackToBackend)
{
    CrashSchedule schedule = fastSchedule();
    schedule.window = 0; // lights out with the fail interrupt
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_TRUE(result.held()) << (result.violations.empty()
                                       ? ""
                                       : result.violations.front());
    EXPECT_FALSE(result.restore.usedWsp);
    EXPECT_TRUE(result.backendRan);
}

TEST(CrashPoint, DrainedUltracapStillRecoversConsistently)
{
    CrashSchedule schedule = fastSchedule();
    schedule.window = fromMillis(200.0);
    schedule.drainModule = 0;
    schedule.drainVoltage = 5.0; // below the DC-DC floor: save fails
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_TRUE(result.held()) << (result.violations.empty()
                                       ? ""
                                       : result.violations.front());
    // One module's image is unusable, so WSP resume is impossible —
    // but the invariants still hold via the back end.
    EXPECT_FALSE(result.restore.usedWsp);
    EXPECT_TRUE(result.backendRan);
}

// Enumeration and the exhaustive sweep --------------------------------

TEST(CrashEnumeration, FindsTheWholePipeline)
{
    CrashExplorer explorer(fastSchedule());
    const std::vector<Tick> points = explorer.enumerateCrashPoints(400);
    EXPECT_GT(points.size(), 20u);
    // Sorted, unique, starting at the failure instant itself.
    EXPECT_EQ(points.front(), 0u);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i - 1], points[i]);
    // The save pipeline spans milliseconds; enumeration must reach
    // past the marker stamp into the NVDIMM save.
    EXPECT_GT(points.back(), fromMillis(5.0));
}

TEST(CrashSweep, EveryEnumeratedPointHolds)
{
    CrashExplorer explorer(fastSchedule());
    const SweepReport report =
        explorer.sweepEnumerated(false, 120);
    EXPECT_TRUE(report.allHeld())
        << report.failures.size() << " failing points; first: "
        << (report.failures.empty()
                ? ""
                : report.failures.front().schedule.summary() + " - " +
                      report.failures.front().violations.front());
    // The sweep must exercise both recovery regimes: early crashes
    // fall back to the back end, late ones resume via WSP.
    EXPECT_GT(report.wspRecoveries, 0u);
    EXPECT_GT(report.fallbacks, 0u);
    EXPECT_GT(report.points, 20u);
}

TEST(CrashSweep, OutageTrainPointsHold)
{
    CrashSchedule base = fastSchedule();
    base.trainCycles = 3;
    base.trainSpacing = fromMillis(2.0);
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 24);
    EXPECT_TRUE(report.allHeld())
        << (report.failures.empty()
                ? ""
                : report.failures.front().violations.front());
}

TEST(CrashFuzz, RandomSchedulesHold)
{
    CrashExplorer explorer(fastSchedule());
    const SweepReport report = explorer.fuzz(12, 0xfadedull);
    EXPECT_EQ(report.points, 12u);
    EXPECT_TRUE(report.allHeld())
        << (report.failures.empty()
                ? ""
                : report.failures.front().schedule.summary() + " - " +
                      report.failures.front().violations.front());
}

// Parallel save path and sharded store --------------------------------

TEST(ParallelCrash, SerializationRoundTripsParallelFields)
{
    CrashSchedule schedule = fastSchedule();
    schedule.shards = 4;
    schedule.parallelSave = true;
    const auto parsed = CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == schedule);
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "shards=3\n")
                     .has_value());
}

TEST(ParallelCrash, EveryEnumeratedPointHoldsWithShardsAndParallelSave)
{
    // The tentpole sweep: striped persistent layout AND the per-core
    // parallel flush, across every distinguishable crash instant —
    // including instants where only *some* partition workers had
    // finished their flush.
    CrashSchedule base = fastSchedule();
    base.shards = 4;
    base.parallelSave = true;
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 120);
    EXPECT_TRUE(report.allHeld())
        << report.failures.size() << " failing points; first: "
        << (report.failures.empty()
                ? ""
                : report.failures.front().schedule.summary() + " - " +
                      report.failures.front().violations.front());
    EXPECT_GT(report.wspRecoveries, 0u);
    EXPECT_GT(report.fallbacks, 0u);
    EXPECT_GT(report.points, 20u);
}

TEST(ParallelCrash, ParallelSaveRecordsPerCoreSteps)
{
    // Per-core-safe progress accounting: a generous-window run must
    // record one flush step per (socket, worker) plus the canonical
    // barrier step the marker invariants key on.
    CrashSchedule schedule = fastSchedule();
    schedule.window = fromMillis(200.0);
    schedule.parallelSave = true;

    WspSystem system(CrashExplorer::configFor(schedule));
    system.start();
    system.runFor(fromMillis(1.0));
    system.psu().failInputAt(system.queue().now());
    system.runFor(fromMillis(300.0));

    const SaveReport &save = system.wsp().saveRoutine().progress();
    EXPECT_TRUE(save.completed);
    EXPECT_TRUE(
        SaveRoutine::stepReached(save, "flush caches (all sockets)"));
    size_t partition_steps = 0;
    for (const auto &step : save.steps) {
        if (step.step.find("flush partition socket") == 0)
            ++partition_steps;
    }
    const PlatformSpec &spec = system.machine().spec();
    EXPECT_EQ(partition_steps,
              spec.sockets * spec.logicalCpusPerSocket());
}

TEST(ParallelCrash, BrokenOrderStillCaughtUnderParallelSave)
{
    // The planted marker-before-flush bug must not hide behind the
    // parallel flush path.
    CrashSchedule base = fastSchedule();
    base.shards = 2;
    base.parallelSave = true;
    base.saveOrder = SaveOrder::MarkerBeforeFlush;
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(true, 120);
    EXPECT_FALSE(report.allHeld())
        << "marker-before-flush survived the parallel sweep";
}

// Incremental saves and lazy restore ----------------------------------

TEST(IncrementalCrash, SerializationRoundTripsPersistenceModes)
{
    CrashSchedule schedule = fastSchedule();
    schedule.incrementalSave = false;
    schedule.lazyRestore = true;
    const auto parsed = CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == schedule);
    // Old replay files without the new keys parse to the defaults.
    const auto old = CrashSchedule::parse("wsp-crash-schedule v1\n"
                                          "seed=7\n");
    ASSERT_TRUE(old.has_value());
    EXPECT_TRUE(old->incrementalSave);
    EXPECT_FALSE(old->lazyRestore);
}

TEST(IncrementalCrash, TrainSweepEngagesDeltaSavesAndHolds)
{
    // A train's second and later saves see a mostly-clean DRAM image
    // (the restore established a flash baseline), so they must run as
    // delta saves — and every enumerated crash instant must still
    // satisfy all invariants, including the in-module save verifier.
    CrashSchedule base = fastSchedule();
    base.trainCycles = 3;
    base.trainSpacing = fromMillis(2.0);
    auto &incremental =
        trace::StatRegistry::instance().counter("nvram.incremental_saves");
    const uint64_t before = incremental.value();
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 24);
    EXPECT_TRUE(report.allHeld())
        << (report.failures.empty()
                ? ""
                : report.failures.front().violations.front());
    EXPECT_GT(incremental.value(), before)
        << "the outage train never completed a delta save";
}

TEST(IncrementalCrash, SurvivesSalvageMediaFaultsAndDegradedTiers)
{
    // Delta saves must compose with the fault machinery: media faults
    // taint flash (forcing the next save back to full), degraded
    // saves cut tiers, salvage recovers region by region.
    CrashSchedule base = fastSchedule();
    base.trainCycles = 2;
    base.trainSpacing = fromMillis(2.0);
    base.salvage = true;
    base.shards = 2;
    base.mediaFaults = 2;
    base.degradeTier = 0;
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 24);
    EXPECT_TRUE(report.allHeld())
        << (report.failures.empty()
                ? ""
                : report.failures.front().schedule.summary() + " - " +
                      report.failures.front().violations.front());
}

TEST(IncrementalCrash, FullAndIncrementalImagesAgreeAtEveryWindow)
{
    // The tentpole soundness claim: at every distinguishable crash
    // instant, the flash image an incremental save leaves behind is
    // byte-identical to a full save's over the suffix both claim
    // programmed — the delta engine never changes what survives.
    CrashSchedule base = fastSchedule();
    base.trainCycles = 2; // the captured crash interrupts a delta save
    base.trainSpacing = fromMillis(2.0);
    CrashExplorer explorer(base);
    const auto report = explorer.incrementalEquivalenceSweep(48);
    EXPECT_GT(report.points, 10u);
    EXPECT_GT(report.bothComplete, 0u);
    EXPECT_TRUE(report.allEqual())
        << report.mismatchWindows.size()
        << " windows with divergent images; first at "
        << formatTime(report.mismatchWindows.empty()
                          ? 0
                          : report.mismatchWindows.front());
}

TEST(IncrementalCrash, LazyRestoreSweepHolds)
{
    // Lazy restores map the image instead of streaming it; contents
    // and invariants must be indistinguishable from eager restores.
    CrashSchedule base = fastSchedule();
    base.lazyRestore = true;
    base.trainCycles = 2;
    base.trainSpacing = fromMillis(2.0);
    auto &lazy =
        trace::StatRegistry::instance().counter("nvram.lazy_restores");
    const uint64_t before = lazy.value();
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 24);
    EXPECT_TRUE(report.allHeld())
        << (report.failures.empty()
                ? ""
                : report.failures.front().violations.front());
    EXPECT_GT(lazy.value(), before)
        << "no run took the lazy restore path";
}

// The planted bug -----------------------------------------------------

TEST(BrokenMarkerOrder, IsCaughtMinimizedAndReplayable)
{
    CrashSchedule base = fastSchedule();
    base.saveOrder = SaveOrder::MarkerBeforeFlush;
    CrashExplorer explorer(base);

    // The sweep must catch the bug: some window lands between the
    // (early) marker stamp and the cache flush.
    const SweepReport report = explorer.sweepEnumerated(true, 120);
    ASSERT_FALSE(report.allHeld())
        << "marker-before-flush survived the sweep";
    const CrashPointResult &failure = report.failures.front();
    EXPECT_FALSE(failure.violations.empty());

    // Minimization keeps it failing.
    const CrashSchedule minimized =
        CrashExplorer::minimize(failure.schedule, 32);
    EXPECT_EQ(minimized.saveOrder, SaveOrder::MarkerBeforeFlush);
    const CrashPointResult replayed =
        CrashExplorer::runSchedule(minimized);
    EXPECT_FALSE(replayed.held());

    // And the replay file reproduces it bit-for-bit.
    const std::string path = ::testing::TempDir() +
                             "wsp_crashsim_replay_" +
                             std::to_string(::getpid()) + ".txt";
    ASSERT_TRUE(minimized.writeFile(path));
    const auto reread = CrashSchedule::readFile(path);
    ASSERT_TRUE(reread.has_value());
    EXPECT_TRUE(*reread == minimized);
    const CrashPointResult from_file =
        CrashExplorer::runSchedule(*reread);
    EXPECT_FALSE(from_file.held());
    EXPECT_EQ(from_file.violations.size(),
              replayed.violations.size());
    std::remove(path.c_str());
}

// Black-box flight recorder forensics ---------------------------------

TEST(BlackBox, EnumeratedSweepNeverTearsTheRecorder)
{
    // Every distinguishable crash instant captures an image with the
    // NVRAM-backed recorder enabled; the BlackBoxSound checker (last
    // in the standard set) asserts no published slot decodes torn, no
    // matter where inside the recorder's own publication sequence the
    // power died.
    CrashSchedule base = fastSchedule();
    base.blackBox = true; // explicit: this sweep is about the recorder
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 120);
    EXPECT_TRUE(report.allHeld())
        << report.failures.size() << " failing points; first: "
        << (report.failures.empty()
                ? ""
                : report.failures.front().schedule.summary() + " - " +
                      report.failures.front().violations.front());
    EXPECT_GT(report.points, 20u);
}

TEST(BlackBox, TimelineAttachedToEveryFailingSchedule)
{
    // When a schedule fails, the explorer must decode the surviving
    // ring and attach the post-mortem timeline — the black box is for
    // exactly this moment.
    CrashSchedule base = fastSchedule();
    base.saveOrder = SaveOrder::MarkerBeforeFlush;
    CrashExplorer explorer(base);
    const SweepReport report = explorer.sweepEnumerated(false, 120);
    ASSERT_FALSE(report.allHeld())
        << "marker-before-flush survived the sweep";
    for (const CrashPointResult &failure : report.failures) {
        EXPECT_FALSE(failure.timeline.empty())
            << "no timeline on " << failure.schedule.summary();
    }
    // Held points carry no timeline (decode work is failure-only).
    const CrashPointResult held =
        CrashExplorer::runSchedule(fastSchedule());
    ASSERT_TRUE(held.held());
    EXPECT_TRUE(held.timeline.empty());
}

TEST(BlackBox, ChassisSwapResetsVolatileStatsKeepsNvramStats)
{
    // bootFromImage models moving the DIMMs into a replacement
    // chassis: host-side counters ("core.", "machine.", ...) must not
    // inherit the donor's pre-crash values, while DIMM-resident
    // ("nvram.") statistics travel with the image.
    CrashSchedule schedule = fastSchedule();
    schedule.window = fromMillis(200.0); // save completes
    auto &registry = trace::StatRegistry::instance();
    auto &saves_started = registry.counter("core.saves_started");
    auto &nvram_saves = registry.counter("nvram.saves_completed");

    WspSystem donor(CrashExplorer::configFor(schedule));
    donor.start();
    donor.runFor(fromMillis(1.0));
    donor.psu().failInputAt(donor.queue().now());
    donor.runFor(fromMillis(300.0));
    EXPECT_GT(saves_started.value(), 0u);
    const uint64_t nvram_saves_before = nvram_saves.value();
    EXPECT_GT(nvram_saves_before, 0u);
    const NvramImage image = donor.captureNvramImage();

    WspSystem revived(CrashExplorer::configFor(schedule));
    const RestoreReport restore = revived.bootFromImage(image);
    EXPECT_TRUE(restore.usedWsp);
    // The boot reset the chassis-local counter (and booting does not
    // start a save), while the DIMM-resident one survived untouched.
    EXPECT_EQ(saves_started.value(), 0u);
    EXPECT_EQ(nvram_saves.value(), nvram_saves_before);
}

// Pheap discipline sweeps ---------------------------------------------

class PheapDisciplineSweep
    : public ::testing::TestWithParam<PheapDiscipline>
{
};

TEST_P(PheapDisciplineSweep, ExhaustiveCrashPointsHold)
{
    const PheapSweepReport report = sweepPheapCrashPoints(
        GetParam(), 0x9e3779b9ull, 6, ::testing::TempDir());
    EXPECT_GT(report.crashPoints, 6u);
    EXPECT_GT(report.recoveries, 0u);
    EXPECT_TRUE(report.allHeld())
        << report.violations.size() << " violations; first: "
        << (report.violations.empty() ? "" : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, PheapDisciplineSweep,
    ::testing::Values(PheapDiscipline::Undo, PheapDiscipline::Stm,
                      PheapDiscipline::Redo, PheapDiscipline::TornBit),
    [](const ::testing::TestParamInfo<PheapDiscipline> &info) {
        return pheapDisciplineName(info.param);
    });

} // namespace
} // namespace wsp::crashsim
