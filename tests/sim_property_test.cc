/**
 * @file
 * Differential and determinism battery for the simulation core.
 *
 * Three lines of defense around the raw-speed event engine:
 *
 *  1. A differential property test drives the index-tracked-heap
 *     EventQueue and a naive reference model (a sorted vector with
 *     explicit FIFO sequence numbers) through hundreds of thousands
 *     of randomized schedule / scheduleAfter / cancel / step /
 *     runUntil / requestStop operations — including schedules,
 *     cancellations and stop requests issued from inside firing
 *     callbacks — asserting identical dispatch order, now() and
 *     pending() throughout.
 *  2. A full-system determinism regression: two runs of the same
 *     crashsim schedule must produce byte-identical trace-record
 *     sequences (wall-clock timestamps excluded).
 *  3. A pinned crash-point enumeration: the distinguishable-crash-
 *     point sweep for a fixed schedule must keep its exact count and
 *     content hash across engine rewrites — the event boundaries the
 *     dispatch observer exposes are load-bearing for crashsim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "test_seed.h"

#include "crashsim/crash_explorer.h"
#include "sim/event_queue.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/units.h"

namespace wsp {
namespace {

// ---------------------------------------------------------------------------
// Reference model: the textbook specification of EventQueue semantics.
// ---------------------------------------------------------------------------

/**
 * Sorted-vector event queue holding opaque tokens instead of
 * callbacks. Dispatch order is (when, schedule sequence); cancel is a
 * linear search by id. Deliberately naive — every behavior is spelled
 * out so a disagreement with EventQueue is a bug in the engine.
 */
class ReferenceQueue
{
  public:
    Tick now() const { return now_; }

    uint64_t schedule(Tick when, uint64_t token)
    {
        if (when < now_)
            when = now_;
        const uint64_t id = nextId_++;
        entries_.push_back(Entry{when, seq_++, id, token});
        return id;
    }

    uint64_t scheduleAfter(Tick delay, uint64_t token)
    {
        return schedule(now_ + delay, token);
    }

    bool cancel(uint64_t id)
    {
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].id == id) {
                entries_.erase(entries_.begin() +
                               static_cast<ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }

    size_t pending() const { return entries_.size(); }

    bool stopRequested() const { return stop_; }
    void requestStop() { stop_ = true; }
    void clearStop() { stop_ = false; }

    /** Pop the earliest entry; false when empty. Ignores stop. */
    template <typename Fire>
    bool step(Fire &&fire)
    {
        if (entries_.empty())
            return false;
        const size_t best = earliest();
        const Entry entry = entries_[best];
        entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(best));
        now_ = entry.when;
        fire(entry.token);
        return true;
    }

    template <typename Fire>
    Tick runUntil(Tick when, Fire &&fire)
    {
        while (!stop_ && !entries_.empty() &&
               entries_[earliest()].when <= when) {
            step(fire);
        }
        if (!stop_)
            now_ = when;
        return now_;
    }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        uint64_t id;
        uint64_t token;
    };

    size_t earliest() const
    {
        size_t best = 0;
        for (size_t i = 1; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            const Entry &b = entries_[best];
            if (e.when < b.when || (e.when == b.when && e.seq < b.seq))
                best = i;
        }
        return best;
    }

    std::vector<Entry> entries_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
    uint64_t nextId_ = 1;
    bool stop_ = false;
};

// ---------------------------------------------------------------------------
// Differential driver.
// ---------------------------------------------------------------------------

/** Marks an in-callback cancel outcome in the dispatch log. */
constexpr uint64_t kCancelMark = uint64_t{1} << 63;

/**
 * Drives EventQueue and ReferenceQueue through one identical randomized
 * operation stream. Every scheduled event carries a token (its index
 * in the per-side id table); callback behavior is a pure function of
 * the token, so the two sides can only stay in lockstep if they fire
 * the same tokens in the same order — which is what the log compare
 * asserts. Callback side effects cover the nasty cases: spawning
 * children mid-drain, cancelling other live events (including the
 * about-to-fire ones), and stopping the drain.
 */
class DifferentialDriver
{
  public:
    explicit DifferentialDriver(uint64_t seed) : rng_(seed) {}

    void runOps(size_t ops)
    {
        for (size_t op = 0; op < ops; ++op) {
            applyOneOp();
            ASSERT_EQ(ref_.now(), fast_.now()) << "op " << op;
            ASSERT_EQ(ref_.pending(), fast_.pending()) << "op " << op;
            ASSERT_EQ(ref_.stopRequested(), fast_.stopRequested())
                << "op " << op;
            if (op % 16 == 15) {
                ASSERT_EQ(refLog_, fastLog_) << "op " << op;
            }
            if (op % 512 == 511)
                fast_.checkConsistency();
        }
        // Drain both queues completely and do the final compare.
        ref_.clearStop();
        fast_.clearStop();
        while (ref_.step([this](uint64_t t) { refFired(t); })) {
        }
        while (fast_.step()) {
        }
        fast_.checkConsistency();
        ASSERT_EQ(ref_.now(), fast_.now());
        ASSERT_EQ(ref_.pending(), fast_.pending());
        ASSERT_EQ(fast_.pending(), 0u);
        ASSERT_EQ(refLog_, fastLog_);
        ASSERT_GT(fastLog_.size(), 0u);
    }

    size_t dispatched() const { return fastLog_.size(); }

  private:
    void applyOneOp()
    {
        const uint64_t choice = rng_.next(100);
        if (choice < 35) {
            scheduleBoth(fast_.now() + rng_.next(1024));
        } else if (choice < 50) {
            const Tick delay = rng_.next(1024);
            const uint64_t token = allocToken();
            refIds_[token] = ref_.scheduleAfter(delay, token);
            fastIds_[token] =
                fast_.scheduleAfter(delay, callbackFor(token));
        } else if (choice < 70) {
            // Cancel a random handle: may be live, fired, or already
            // cancelled — outcomes must agree (generation staleness on
            // the fast side vs. id lookup failure on the reference).
            if (nextToken_ > 0) {
                const uint64_t token = rng_.next(nextToken_);
                ASSERT_EQ(ref_.cancel(refIds_[token]),
                          fast_.cancel(fastIds_[token]))
                    << "cancel of token " << token;
            }
        } else if (choice < 85) {
            ASSERT_EQ(ref_.step([this](uint64_t t) { refFired(t); }),
                      fast_.step());
        } else if (choice < 95) {
            const Tick target = fast_.now() + rng_.next(4096);
            ref_.runUntil(target, [this](uint64_t t) { refFired(t); });
            fast_.runUntil(target);
        } else if (choice < 97) {
            ref_.requestStop();
            fast_.requestStop();
        } else {
            ref_.clearStop();
            fast_.clearStop();
        }
    }

    uint64_t allocToken()
    {
        const uint64_t token = nextToken_++;
        refIds_.push_back(0);
        fastIds_.push_back(0);
        return token;
    }

    void scheduleBoth(Tick when)
    {
        const uint64_t token = allocToken();
        refIds_[token] = ref_.schedule(when, token);
        fastIds_[token] = fast_.schedule(when, callbackFor(token));
    }

    EventFn callbackFor(uint64_t token)
    {
        return [this, token] { fastFired(token); };
    }

    /**
     * Pure-in-token callback behavior, mirrored on both sides. The
     * spawned child gets the next token *on that side*; the allocation
     * orders can only agree while the dispatch streams agree.
     */
    void fastFired(uint64_t token)
    {
        fastLog_.push_back(token);
        if (spawnsChild(token)) {
            const uint64_t child = fastSpawn_++;
            if (child >= fastIds_.size())
                fastIds_.resize(child + 1, 0);
            fastIds_[child] = fast_.schedule(
                fast_.now() + childDelay(token), callbackFor(child));
        }
        if (cancelsOther(token)) {
            const bool hit = fast_.cancel(fastIds_[token - 11]);
            fastLog_.push_back(kCancelMark | (token << 1) | hit);
        }
        if (stopsDrain(token))
            fast_.requestStop();
    }

    void refFired(uint64_t token)
    {
        refLog_.push_back(token);
        if (spawnsChild(token)) {
            const uint64_t child = refSpawn_++;
            if (child >= refIds_.size())
                refIds_.resize(child + 1, 0);
            refIds_[child] =
                ref_.schedule(ref_.now() + childDelay(token), child);
        }
        if (cancelsOther(token)) {
            const bool hit = ref_.cancel(refIds_[token - 11]);
            refLog_.push_back(kCancelMark | (token << 1) | hit);
        }
        if (stopsDrain(token))
            ref_.requestStop();
    }

    static bool spawnsChild(uint64_t token) { return token % 5 == 0; }
    static bool cancelsOther(uint64_t token)
    {
        return token % 7 == 3 && token >= 11;
    }
    static bool stopsDrain(uint64_t token) { return token % 499 == 498; }
    static Tick childDelay(uint64_t token)
    {
        return (token * 2654435761u) % 97;
    }

    Rng rng_;
    EventQueue fast_;
    ReferenceQueue ref_;
    /// Per-side id tables indexed by token; entries stay after fire so
    /// cancels exercise stale handles.
    std::vector<uint64_t> refIds_, fastIds_;
    /// Spawn counters start past any token the top-level driver will
    /// allocate, so driver tokens and callback-spawned tokens never
    /// collide. They advance independently per side.
    uint64_t nextToken_ = 0;
    uint64_t refSpawn_ = 1u << 20;
    uint64_t fastSpawn_ = 1u << 20;
    std::vector<uint64_t> refLog_, fastLog_;
};

TEST(SimDifferential, MatchesReferenceAcrossManySeeds)
{
    // >= 100k randomized operations in total, spread across seeds so
    // distinct op mixes and drain shapes all get coverage.
    constexpr uint64_t kSeeds = 10;
    constexpr size_t kOpsPerSeed = 12000;
    size_t dispatched = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const uint64_t pinned = seed * 0x9e3779b97f4a7c15ull + seed;
        SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
                     wsp::testing::seedTrace(pinned));
        DifferentialDriver driver(wsp::testing::testSeed(pinned));
        driver.runOps(kOpsPerSeed);
        if (::testing::Test::HasFatalFailure())
            return;
        dispatched += driver.dispatched();
    }
    // Sanity: the streams actually carried work.
    EXPECT_GT(dispatched, kSeeds * kOpsPerSeed / 4);
}

TEST(SimDifferential, LongSingleSeedRun)
{
    // One deep run on a single seed: long-lived queues hit slot reuse,
    // heap growth/shrink cycles, and generation wraparound pressure
    // differently than many short runs.
    SCOPED_TRACE(wsp::testing::seedTrace(0x5753502177ull));
    DifferentialDriver driver(wsp::testing::testSeed(0x5753502177ull));
    driver.runOps(40000);
}

// ---------------------------------------------------------------------------
// Full-system determinism.
// ---------------------------------------------------------------------------

/**
 * Runs one crashsim schedule with every trace category enabled and
 * returns the captured record sequence, serialized without the
 * wall-clock field (the only legitimately nondeterministic bit).
 */
std::vector<std::string>
traceSequence(const crashsim::CrashSchedule &schedule)
{
    auto &manager = trace::TraceManager::instance();
    const uint32_t savedMask = manager.enabledMask();
    manager.setCapacity(1 << 16);
    manager.clear();
    manager.enableAll();
    crashsim::CrashExplorer::runSchedule(schedule);
    manager.disableAll();
    std::vector<std::string> out;
    for (const trace::Record &r : manager.snapshot()) {
        char line[96];
        std::snprintf(line, sizeof line, "%llu|%u|%u|%u|%.17g|%s",
                      static_cast<unsigned long long>(
                          r.hasSimTick ? r.simTick : 0),
                      static_cast<unsigned>(r.hasSimTick),
                      static_cast<unsigned>(r.category),
                      static_cast<unsigned>(r.phase), r.value, r.name);
        out.emplace_back(line);
    }
    manager.clear();
    manager.enable(savedMask);
    return out;
}

crashsim::CrashSchedule
pinnedSchedule()
{
    crashsim::CrashSchedule schedule;
    schedule.seed = 20260808;
    schedule.ops = 48;
    schedule.outage = fromMillis(500.0);
    schedule.withDevices = true;
    return schedule;
}

TEST(Determinism, SameSeedRunsProduceIdenticalTraceSequences)
{
    const crashsim::CrashSchedule schedule = pinnedSchedule();
    const std::vector<std::string> first = traceSequence(schedule);
    const std::vector<std::string> second = traceSequence(schedule);
    ASSERT_FALSE(first.empty())
        << "full-system run emitted no trace records";
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first, second);
}

TEST(Determinism, SameSeedRunsProduceIdenticalResults)
{
    const crashsim::CrashSchedule schedule = pinnedSchedule();
    const crashsim::CrashPointResult first =
        crashsim::CrashExplorer::runSchedule(schedule);
    const crashsim::CrashPointResult second =
        crashsim::CrashExplorer::runSchedule(schedule);
    EXPECT_EQ(first.appliedOps, second.appliedOps);
    EXPECT_EQ(first.backendRan, second.backendRan);
    EXPECT_EQ(first.violations, second.violations);
}

// ---------------------------------------------------------------------------
// Pinned crash-point enumeration.
// ---------------------------------------------------------------------------

/**
 * The crash-point sweep is built on setDispatchObserver(): the set of
 * event boundaries IS the set of distinguishable crash points. These
 * constants were recorded against the tombstone-based engine before
 * the heap rewrite; the new engine must reproduce them exactly, or
 * the rewrite changed observable dispatch boundaries.
 */
TEST(Determinism, PinnedScheduleCrashPointEnumerationUnchanged)
{
    crashsim::CrashExplorer explorer(pinnedSchedule());
    const std::vector<Tick> points = explorer.enumerateCrashPoints(400);
    ASSERT_EQ(points.size(), 38u);
    EXPECT_EQ(points.front(), 0u);
    EXPECT_EQ(points.back(), 33934348u);
    uint64_t hash = 1469598103934665603ull;
    for (const Tick point : points) {
        hash ^= static_cast<uint64_t>(point);
        hash *= 1099511628211ull;
    }
    EXPECT_EQ(hash, 1575034674797753573ull);
}

} // namespace
} // namespace wsp
