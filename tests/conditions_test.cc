/**
 * @file
 * The correctness-conditions battery: FliT tracker mechanics, the
 * durable-linearizability / buffered / detectable checkers against
 * hand-built histories, a differential sweep of the exact checkers
 * against brute-force linearization searchers on small histories, the
 * schedule plumbing for the new condition fields, and the end-to-end
 * planted bug: acknowledge-before-apply is caught by the DL checker at
 * every enumerated crash point in the gap, minimizes, and replays —
 * while a buffered-only sweep (correctly) forgives it.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "crashsim/conditions/conditions.h"
#include "crashsim/crash_explorer.h"
#include "util/flit.h"
#include "util/rng.h"

#include "test_seed.h"

namespace wsp::crashsim::conditions {
namespace {

// FliT tracker mechanics ----------------------------------------------

TEST(Flit, StoreThenWritebackPersistsTheOp)
{
    util::FlitTracker flit;
    Tick now = 0;
    flit.setClock([&now]() { return now; });

    const uint64_t id = flit.declareOp(0, 1, 42);
    now = 10;
    flit.beginApply(id);
    flit.onStore(128, 8);
    flit.onStore(192, 16); // straddles nothing; second line
    flit.endApply();

    EXPECT_TRUE(flit.op(id).applied);
    EXPECT_EQ(flit.pendingStores(128), 1u);
    EXPECT_FALSE(flit.opPersisted(flit.op(id)));
    EXPECT_EQ(flit.op(id).persistTick, util::kNoTick);

    now = 20;
    flit.onWriteback(128);
    EXPECT_EQ(flit.pendingStores(128), 0u);
    EXPECT_FALSE(flit.opPersisted(flit.op(id))); // line 192 still dirty

    now = 30;
    flit.onWriteback(192);
    EXPECT_TRUE(flit.opPersisted(flit.op(id)));
    EXPECT_EQ(flit.op(id).persistTick, 30u);
}

TEST(Flit, LostLineNeverPersists)
{
    util::FlitTracker flit;
    const uint64_t id = flit.declareOp(0, 1, 42);
    flit.beginApply(id);
    flit.onStore(256, 8);
    flit.endApply();

    // Power loss drops the line: the counter clears (the line is gone)
    // but the op's stores never reached the NV domain.
    flit.onLineLost(256);
    EXPECT_EQ(flit.pendingStores(256), 0u);
    EXPECT_FALSE(flit.opPersisted(flit.op(id)));

    // A later write-back of recovery traffic on the same line must not
    // retroactively persist the lost stores.
    flit.onWriteback(256);
    EXPECT_FALSE(flit.opPersisted(flit.op(id)));
}

TEST(Flit, NewerStoreReopensTheLine)
{
    util::FlitTracker flit;
    const uint64_t a = flit.declareOp(0, 1, 1);
    const uint64_t b = flit.declareOp(0, 1, 2);
    flit.beginApply(a);
    flit.onStore(0, 8);
    flit.endApply();
    flit.onWriteback(0);
    EXPECT_TRUE(flit.opPersisted(flit.op(a)));

    flit.beginApply(b);
    flit.onStore(0, 8); // same line dirtied again
    flit.endApply();
    EXPECT_TRUE(flit.opPersisted(flit.op(a))); // a's seq still covered
    EXPECT_FALSE(flit.opPersisted(flit.op(b)));
}

TEST(Flit, ZeroStoreOpPersistsAtApply)
{
    util::FlitTracker flit;
    Tick now = 7;
    flit.setClock([&now]() { return now; });
    const uint64_t id = flit.declareOp(1, 9, 0); // erase of absent key
    flit.beginApply(id);
    flit.endApply();
    EXPECT_TRUE(flit.opPersisted(flit.op(id)));
    EXPECT_EQ(flit.op(id).persistTick, 7u);
}

TEST(Flit, RespondBeforeApplyStillCountsAsInvoked)
{
    // The ack-before-apply bug responds before any mutation ran; the
    // history must still show an invoked op or the checkers would
    // never see the phantom.
    util::FlitTracker flit;
    const uint64_t id = flit.declareOp(0, 1, 5);
    flit.respond(id, true, 5);
    EXPECT_TRUE(flit.op(id).invoked);
    EXPECT_TRUE(flit.op(id).responded);
    EXPECT_FALSE(flit.op(id).applied);
}

TEST(Flit, CoveredPredicateGatesPersistence)
{
    util::FlitTracker flit;
    const uint64_t id = flit.declareOp(0, 1, 1);
    flit.beginApply(id);
    flit.onStore(64, 8);
    flit.endApply();
    flit.onWriteback(64);
    EXPECT_TRUE(flit.opPersisted(flit.op(id)));
    // ...but the module never programmed that line to flash.
    EXPECT_FALSE(flit.opPersisted(flit.op(id),
                                  [](uint64_t) { return false; }));
    EXPECT_TRUE(flit.opPersisted(flit.op(id),
                                 [](uint64_t) { return true; }));
}

// Checker unit tests ---------------------------------------------------

HistoryOp
op(uint64_t id, uint64_t key, uint64_t value, bool responded,
   bool persisted, bool isErase = false, bool applied = true)
{
    HistoryOp h;
    h.id = id;
    h.isErase = isErase;
    h.key = key;
    h.value = value;
    h.invoked = true;
    h.applied = applied;
    h.responded = responded;
    h.persisted = persisted && applied;
    return h;
}

TEST(DurableLin, RespondedEffectMustSurvive)
{
    // The planted persist-before-response bug in miniature: op 1
    // responded to the caller but its effect is gone.
    const std::vector<HistoryOp> history = {
        op(0, 1, 5, true, true),
        op(1, 1, 7, true, false, false, /*applied=*/false),
    };
    const KvState state{{1, 5}};
    const ConditionResult dl = checkDurableLinearizable(history, state);
    EXPECT_FALSE(dl.ok);
    ASSERT_FALSE(dl.violations.empty());
    EXPECT_NE(dl.violations.front().find("durable-lin"),
              std::string::npos);
    EXPECT_FALSE(bruteForceDurablyLinearizable(history, state));

    // Buffered durable linearizability forgives exactly this: the
    // phantom never persisted, so the cut before it is legal.
    EXPECT_TRUE(checkBufferedDurableLinearizable(history, state).ok);
    EXPECT_TRUE(bruteForceBufferedDurablyLinearizable(history, state));
}

TEST(DurableLin, InFlightOpMaySurfaceOrVanishWhole)
{
    std::vector<HistoryOp> history = {
        op(0, 1, 5, true, true),
        op(1, 1, 7, false, false), // in flight at the crash
    };
    EXPECT_TRUE(checkDurableLinearizable(history, KvState{{1, 5}}).ok);
    EXPECT_TRUE(checkDurableLinearizable(history, KvState{{1, 7}}).ok);
    // ...but not half of it (some other value).
    EXPECT_FALSE(checkDurableLinearizable(history, KvState{{1, 6}}).ok);
}

TEST(DurableLin, InventedKeyIsAlwaysAViolation)
{
    const std::vector<HistoryOp> history = {op(0, 1, 5, true, true)};
    const KvState state{{1, 5}, {9, 1}};
    EXPECT_FALSE(checkDurableLinearizable(history, state).ok);
    EXPECT_FALSE(checkBufferedDurableLinearizable(history, state).ok);
    EXPECT_FALSE(checkDetectableExecution(history, state).ok);
}

TEST(Buffered, PersistedOpMustBeInsideTheCut)
{
    // Op 1 persisted; a surviving state that rolled back before it is
    // a violation even though op 1 never responded.
    const std::vector<HistoryOp> history = {
        op(0, 1, 5, true, true),
        op(1, 1, 7, false, true),
    };
    EXPECT_FALSE(
        checkBufferedDurableLinearizable(history, KvState{{1, 5}}).ok);
    EXPECT_FALSE(
        bruteForceBufferedDurablyLinearizable(history, KvState{{1, 5}}));
    EXPECT_TRUE(
        checkBufferedDurableLinearizable(history, KvState{{1, 7}}).ok);
}

TEST(Buffered, LosesAnUnpersistedRespondedSuffix)
{
    // BDL (unlike DL) tolerates losing responded-but-unpersisted work:
    // the explicit-flush world's contract between flushes.
    const std::vector<HistoryOp> history = {
        op(0, 1, 5, true, true),
        op(1, 2, 9, true, false),
        op(2, 1, 7, true, false),
    };
    const KvState state{{1, 5}};
    EXPECT_TRUE(checkBufferedDurableLinearizable(history, state).ok);
    EXPECT_FALSE(checkDurableLinearizable(history, state).ok);
}

TEST(Detectable, ClassifiesEveryOpOrFails)
{
    const std::vector<HistoryOp> history = {
        op(0, 1, 5, true, true),
        op(1, 2, 3, true, true),
        op(2, 1, 7, false, false), // in flight
    };
    std::vector<std::pair<uint64_t, OpVerdict>> verdicts;
    const ConditionResult ok = checkDetectableExecution(
        history, KvState{{1, 7}, {2, 3}}, &verdicts);
    ASSERT_TRUE(ok.ok);
    ASSERT_EQ(verdicts.size(), 3u);
    EXPECT_EQ(verdicts[2].second, OpVerdict::Committed); // surfaced

    verdicts.clear();
    const ConditionResult rolled = checkDetectableExecution(
        history, KvState{{1, 5}, {2, 3}}, &verdicts);
    ASSERT_TRUE(rolled.ok);
    EXPECT_EQ(verdicts[2].second, OpVerdict::Aborted); // vanished

    // A torn value belongs to no commit/abort assignment.
    const ConditionResult torn = checkDetectableExecution(
        history, KvState{{1, 6}, {2, 3}}, nullptr);
    EXPECT_FALSE(torn.ok);
    ASSERT_FALSE(torn.violations.empty());
    EXPECT_NE(torn.violations.front().find("partial effect"),
              std::string::npos);
}

// Differential battery: exact checkers vs brute-force searchers --------

KvState
randomState(Rng &rng)
{
    KvState state;
    for (uint64_t key = 1; key <= 3; ++key) {
        const uint64_t value = rng.next(6); // 0 = absent
        if (value != 0)
            state[key] = value;
    }
    return state;
}

std::vector<HistoryOp>
randomHistory(Rng &rng, size_t n)
{
    std::vector<HistoryOp> history;
    for (size_t i = 0; i < n; ++i) {
        HistoryOp h;
        h.id = i;
        h.isErase = rng.chance(0.3);
        h.key = 1 + rng.next(3);
        h.value = 1 + rng.next(5);
        h.invoked = rng.chance(0.9);
        h.applied = h.invoked && rng.chance(0.8);
        // Responded-without-applied is the ack-before-apply shape;
        // keep it in the mix so the differential covers the bug.
        h.responded = h.invoked && rng.chance(0.7);
        h.persisted = h.applied && rng.chance(0.7);
        history.push_back(h);
    }
    return history;
}

TEST(Differential, ExactCheckersMatchBruteForceAcrossTenSeeds)
{
    size_t dl_sat = 0, dl_unsat = 0, bdl_sat = 0, bdl_unsat = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const uint64_t pinned = seed * 0x636f6e64ull + seed;
        SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
                     wsp::testing::seedTrace(pinned));
        Rng rng(wsp::testing::testSeed(pinned));
        for (int round = 0; round < 200; ++round) {
            const size_t n = 1 + rng.next(8);
            const std::vector<HistoryOp> history = randomHistory(rng, n);

            // Half the states replay a random subset of the history
            // (usually close to satisfiable), half are adversarial.
            KvState state;
            if (rng.chance(0.5)) {
                const uint64_t mask = rng.next(1ull << n);
                state = replay(history,
                               [&history, mask](const HistoryOp &h) {
                                   const size_t i = static_cast<size_t>(
                                       &h - history.data());
                                   return (mask >> i) & 1;
                               });
            } else {
                state = randomState(rng);
            }

            const bool dl_exact =
                checkDurableLinearizable(history, state).ok;
            const bool dl_brute =
                bruteForceDurablyLinearizable(history, state);
            ASSERT_EQ(dl_exact, dl_brute)
                << "DL divergence, round " << round;
            (dl_exact ? dl_sat : dl_unsat) += 1;

            const bool bdl_exact =
                checkBufferedDurableLinearizable(history, state).ok;
            const bool bdl_brute =
                bruteForceBufferedDurablyLinearizable(history, state);
            ASSERT_EQ(bdl_exact, bdl_brute)
                << "BDL divergence, round " << round;
            (bdl_exact ? bdl_sat : bdl_unsat) += 1;
        }
    }
    // The sweep must have exercised both verdicts of both checkers.
    EXPECT_GT(dl_sat, 0u);
    EXPECT_GT(dl_unsat, 0u);
    EXPECT_GT(bdl_sat, 0u);
    EXPECT_GT(bdl_unsat, 0u);
}

// Schedule plumbing ----------------------------------------------------

TEST(ConditionSchedule, SerializationRoundTripsConditionFields)
{
    CrashSchedule schedule;
    schedule.condition = ConditionMode::BufferedDurableLin;
    schedule.ackDelay = fromMicros(30.0) + 3;
    schedule.ackBeforeApply = true;
    const auto reread = CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(reread.has_value());
    EXPECT_TRUE(*reread == schedule);
    EXPECT_NE(schedule.summary().find("condition=buffered"),
              std::string::npos);
    EXPECT_NE(schedule.summary().find("ACK-BEFORE-APPLY"),
              std::string::npos);
}

TEST(ConditionSchedule, ParseRejectsBadConditionAndNonSequentialAck)
{
    CrashSchedule schedule;
    std::string text = schedule.serialize();
    const size_t pos = text.find("condition=all");
    ASSERT_NE(pos, std::string::npos);
    std::string bad = text;
    bad.replace(pos, 13, "condition=zzz");
    EXPECT_FALSE(CrashSchedule::parse(bad).has_value());

    // ackDelay >= opSpacing would overlap consecutive operations; the
    // checkers assume a sequential history, so the file is refused.
    CrashSchedule overlapping;
    overlapping.ackDelay = overlapping.opSpacing;
    EXPECT_FALSE(
        CrashSchedule::parse(overlapping.serialize()).has_value());
}

TEST(ConditionSchedule, ModeNamesRoundTrip)
{
    for (ConditionMode mode :
         {ConditionMode::All, ConditionMode::DurableLin,
          ConditionMode::BufferedDurableLin, ConditionMode::Detectable}) {
        const auto back = conditionModeFromName(conditionModeName(mode));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, mode);
    }
    EXPECT_FALSE(conditionModeFromName("linearizable").has_value());
}

// End-to-end: the planted ack-before-apply bug -------------------------

/**
 * ackDelay=30us puts each op's respond/apply pair at t and t+30us on a
 * 50us grid; failDelay=5.01ms lands strictly inside op 99's gap (ack
 * at 5.000ms, apply gated at 5.030ms), so a phantom — responded,
 * never applied — exists at every enumerated window.
 */
CrashSchedule
ackBugSchedule()
{
    CrashSchedule schedule;
    schedule.ops = 128;
    schedule.ackDelay = fromMicros(30.0);
    schedule.failDelay = fromMillis(5.0) + fromMicros(10.0);
    schedule.ackBeforeApply = true;
    schedule.outage = fromMillis(500.0);
    return schedule;
}

TEST(AckBeforeApply, IsCaughtMinimizedAndReplayable)
{
    CrashExplorer explorer(ackBugSchedule());
    const SweepReport report = explorer.sweepEnumerated(true, 120);
    ASSERT_FALSE(report.allHeld())
        << "ack-before-apply survived the sweep";
    const CrashPointResult &failure = report.failures.front();
    ASSERT_FALSE(failure.violations.empty());
    bool named_dl = false;
    for (const std::string &violation : failure.violations)
        named_dl = named_dl ||
                   violation.find("durable-lin") != std::string::npos;
    EXPECT_TRUE(named_dl) << failure.violations.front();

    // Minimization keeps the phantom alive...
    const CrashSchedule minimized =
        CrashExplorer::minimize(failure.schedule, 32);
    EXPECT_TRUE(minimized.ackBeforeApply);
    const CrashPointResult replayed =
        CrashExplorer::runSchedule(minimized);
    EXPECT_FALSE(replayed.held());

    // ...and the replay file reproduces it bit-for-bit.
    const std::string path = ::testing::TempDir() +
                             "wsp_conditions_replay_" +
                             std::to_string(::getpid()) + ".txt";
    ASSERT_TRUE(minimized.writeFile(path));
    const auto reread = CrashSchedule::readFile(path);
    ASSERT_TRUE(reread.has_value());
    EXPECT_TRUE(*reread == minimized);
    EXPECT_FALSE(CrashExplorer::runSchedule(*reread).held());
    std::remove(path.c_str());
}

TEST(AckBeforeApply, BufferedModeForgivesTheSameSchedule)
{
    // The phantom never persisted, so buffered durable linearizability
    // admits the cut just before it: a buffered-only sweep of the very
    // same buggy schedule must hold. This is the DL ⊊ BDL separation,
    // end to end.
    CrashSchedule schedule = ackBugSchedule();
    schedule.condition = ConditionMode::BufferedDurableLin;
    CrashExplorer explorer(schedule);
    const SweepReport report = explorer.sweepEnumerated(false, 60);
    EXPECT_TRUE(report.allHeld())
        << report.failures.front().violations.front();
}

TEST(AckBeforeApply, DetectableModeAlsoCatchesThePhantom)
{
    // A responded op with no surviving effect cannot be classified
    // committed, so detectability flags the same bug independently.
    CrashSchedule schedule = ackBugSchedule();
    schedule.condition = ConditionMode::Detectable;
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    ASSERT_FALSE(result.held());
    bool named = false;
    for (const std::string &violation : result.violations)
        named = named || violation.find("detectable-execution") !=
                             std::string::npos;
    EXPECT_TRUE(named) << result.violations.front();
}

TEST(ConditionsBattery, CorrectModeHoldsWithAnOpInFlightAtTheCrash)
{
    // Same timing, bug disabled: op 99 applies at 5.000ms and its
    // response (5.030ms) is cut off by the failure — a genuinely
    // in-flight op at every window. DL must accept it surfacing.
    CrashSchedule schedule = ackBugSchedule();
    schedule.ackBeforeApply = false;
    CrashExplorer explorer(schedule);
    const SweepReport report = explorer.sweepEnumerated(false, 60);
    EXPECT_TRUE(report.allHeld())
        << report.failures.front().violations.front();
}

} // namespace
} // namespace wsp::crashsim::conditions
