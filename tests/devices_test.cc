/**
 * @file
 * Unit tests for the device substrate.
 */

#include <gtest/gtest.h>

#include "devices/device.h"
#include "devices/device_manager.h"

namespace wsp {
namespace {

DeviceConfig
fastDevice(const std::string &name = "dev")
{
    DeviceConfig config;
    config.name = name;
    config.suspendFixed = fromMillis(10.0);
    config.resumeFixed = fromMillis(5.0);
    config.resetFixed = fromMillis(2.0);
    config.ioMeanLatency = fromMillis(1.0);
    config.suspendJitter = 0.0;
    return config;
}

TEST(Device, IoCompletesAfterDuration)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(1));
    dev.submitIo(fromMillis(3.0));
    EXPECT_EQ(dev.inflight(), 1u);
    queue.run();
    EXPECT_EQ(dev.inflight(), 0u);
    EXPECT_EQ(dev.opsCompleted(), 1u);
    EXPECT_EQ(queue.now(), fromMillis(3.0));
}

TEST(Device, BusyWorkloadKeepsQueueFull)
{
    EventQueue queue;
    DeviceConfig config = fastDevice();
    config.busyQueueDepth = 8;
    Device dev(queue, config, Rng(2));
    dev.startBusyWorkload();
    EXPECT_EQ(dev.inflight(), 8u);
    queue.runUntil(fromMillis(50.0));
    EXPECT_EQ(dev.inflight(), 8u);
    EXPECT_GT(dev.opsCompleted(), 50u);
    dev.stopBusyWorkload();
    queue.run();
    EXPECT_EQ(dev.inflight(), 0u);
}

TEST(Device, IdleSuspendCostsFixedOnly)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(3));
    Tick latency = 0;
    dev.suspend([&](Tick t) { latency = t; });
    queue.run();
    EXPECT_EQ(latency, fromMillis(10.0));
    EXPECT_TRUE(dev.suspended());
}

TEST(Device, BusySuspendWaitsForDrain)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(4));
    dev.submitIo(fromMillis(20.0));
    Tick latency = 0;
    dev.suspend([&](Tick t) { latency = t; });
    queue.run();
    // Drain 20 ms (parallel completion) + fixed 10 ms.
    EXPECT_EQ(latency, fromMillis(30.0));
}

TEST(Device, SerialDrainSumsRemaining)
{
    EventQueue queue;
    DeviceConfig config = fastDevice();
    config.serialDrain = true;
    Device dev(queue, config, Rng(5));
    dev.submitIo(fromMillis(5.0));
    dev.submitIo(fromMillis(5.0));
    dev.submitIo(fromMillis(5.0));
    Tick latency = 0;
    dev.suspend([&](Tick t) { latency = t; });
    queue.run();
    // 15 ms serial drain + 10 ms fixed.
    EXPECT_EQ(latency, fromMillis(25.0));
}

TEST(Device, RefusesIoWhileSuspending)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(6));
    dev.suspend(nullptr);
    EXPECT_EQ(dev.submitIo(fromMillis(1.0)), 0u);
    queue.run();
    EXPECT_EQ(dev.submitIo(fromMillis(1.0)), 0u); // now in D3
}

TEST(Device, ResumeRestoresD0)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(7));
    dev.suspend(nullptr);
    queue.run();
    Tick latency = 0;
    dev.resume([&](Tick t) { latency = t; });
    queue.run();
    EXPECT_EQ(latency, fromMillis(5.0));
    EXPECT_FALSE(dev.suspended());
    EXPECT_NE(dev.submitIo(fromMillis(1.0)), 0u);
}

TEST(Device, PowerLossRecordsLostOps)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(8));
    dev.submitIo(fromMillis(50.0));
    dev.submitIo(fromMillis(50.0));
    queue.runUntil(fromMillis(1.0));
    dev.onPowerLost();
    EXPECT_EQ(dev.inflight(), 0u);
    EXPECT_EQ(dev.lostOps().size(), 2u);
    EXPECT_EQ(dev.opsLostTotal(), 2u);
    queue.run(); // stale completion events are ignored
    EXPECT_EQ(dev.opsCompleted(), 0u);
}

TEST(Device, ReplayReissuesLostOps)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(9));
    dev.submitIo(fromMillis(50.0));
    dev.onPowerLost();
    dev.restart(nullptr);
    queue.runUntil(fromMillis(5.0));
    EXPECT_EQ(dev.replayLostOps(), 1u);
    EXPECT_EQ(dev.lostOps().size(), 0u);
    queue.run();
    EXPECT_EQ(dev.opsCompleted(), 1u);
}

TEST(Device, PowerLossDuringSuspendAbortsIt)
{
    EventQueue queue;
    Device dev(queue, fastDevice(), Rng(10));
    bool done_fired = false;
    dev.suspend([&](Tick) { done_fired = true; });
    dev.onPowerLost();
    queue.run();
    EXPECT_FALSE(done_fired);
    EXPECT_TRUE(dev.suspended());
}

// DeviceManager -------------------------------------------------------

TEST(DeviceManager, SuspendAllIsSequential)
{
    EventQueue queue;
    DeviceManager manager(queue);
    manager.addDevice(fastDevice("a"), Rng(1));
    manager.addDevice(fastDevice("b"), Rng(2));
    manager.addDevice(fastDevice("c"), Rng(3));
    Tick total = 0;
    manager.suspendAll([&](Tick t) { total = t; });
    queue.run();
    EXPECT_EQ(total, fromMillis(30.0)); // 3 x 10 ms, one after another
}

TEST(DeviceManager, FindByName)
{
    EventQueue queue;
    DeviceManager manager(queue);
    manager.addDevice(fastDevice("gpu"), Rng(1));
    EXPECT_NE(manager.find("gpu"), nullptr);
    EXPECT_EQ(manager.find("nope"), nullptr);
}

TEST(DeviceManager, PnpRestartSkipsUnsupported)
{
    EventQueue queue;
    DeviceManager manager(queue);
    DeviceConfig pnp = fastDevice("pnp");
    DeviceConfig legacy = fastDevice("legacy");
    legacy.supportsPnpRestart = false;
    manager.addDevice(pnp, Rng(1));
    manager.addDevice(legacy, Rng(2));
    manager.onPowerLost();

    DeviceRestoreReport report;
    manager.restoreAll(DevicePolicy::PnpRestartOnRestore, 0,
                       [&](DeviceRestoreReport r) { report = r; });
    queue.run();
    EXPECT_EQ(report.devicesRestarted, 1u);
    EXPECT_EQ(report.devicesUnsupported, 1u);
}

TEST(DeviceManager, VirtualizedReplayReplaysLostOps)
{
    EventQueue queue;
    DeviceManager manager(queue);
    Device &dev = manager.addDevice(fastDevice("disk"), Rng(1));
    dev.submitIo(fromMillis(100.0));
    dev.submitIo(fromMillis(100.0));
    manager.onPowerLost();
    EXPECT_EQ(manager.totalLostOps(), 2u);

    DeviceRestoreReport report;
    manager.restoreAll(DevicePolicy::VirtualizedReplay, fromSeconds(1.0),
                       [&](DeviceRestoreReport r) { report = r; });
    queue.run();
    EXPECT_EQ(report.opsReplayed, 2u);
    EXPECT_EQ(manager.totalLostOps(), 0u);
    EXPECT_EQ(dev.opsCompleted(), 2u);
    // Host stack boot dominated the latency.
    EXPECT_GE(report.latency, fromSeconds(1.0));
}

TEST(DeviceManager, ColdBootDropsLostOps)
{
    EventQueue queue;
    DeviceManager manager(queue);
    Device &dev = manager.addDevice(fastDevice("disk"), Rng(1));
    dev.submitIo(fromMillis(100.0));
    manager.onPowerLost();
    Tick total = 0;
    manager.coldBootAll([&](Tick t) { total = t; });
    queue.run();
    EXPECT_EQ(manager.totalLostOps(), 0u);
    EXPECT_EQ(dev.opsCompleted(), 0u); // dropped, not replayed
    EXPECT_EQ(total, fromMillis(2.0));
}

TEST(DeviceManager, BusyAllAndStopAll)
{
    EventQueue queue;
    DeviceManager manager(queue);
    manager.addDevice(fastDevice("a"), Rng(1));
    manager.addDevice(fastDevice("b"), Rng(2));
    manager.startBusyAll();
    for (const auto &device : manager.devices())
        EXPECT_GT(device->inflight(), 0u);
    manager.stopBusyAll();
    queue.run();
    for (const auto &device : manager.devices())
        EXPECT_EQ(device->inflight(), 0u);
}

// Calibration ------------------------------------------------------------

TEST(DeviceSets, Figure9TotalsInRange)
{
    // Fig. 9: device state save time ~5.3-6.8 s on both testbeds;
    // idle still substantial; busy >= idle.
    struct Case
    {
        std::vector<DeviceConfig> set;
        const char *name;
    };
    for (const auto &[set, name] :
         {Case{deviceSetIntel(), "intel"}, Case{deviceSetAmd(), "amd"}}) {
        for (bool busy : {false, true}) {
            EventQueue queue;
            DeviceManager manager(queue);
            for (size_t i = 0; i < set.size(); ++i)
                manager.addDevice(set[i], Rng(i + 1));
            if (busy)
                manager.startBusyAll();
            Tick total = 0;
            manager.suspendAll([&](Tick t) { total = t; });
            queue.run();
            EXPECT_GT(toSeconds(total), 4.5) << name << " busy=" << busy;
            EXPECT_LT(toSeconds(total), 7.0) << name << " busy=" << busy;
        }
    }
}

TEST(DeviceSets, SuspendDwarfsResidualWindow)
{
    // The point of Fig. 9: ACPI suspend costs orders of magnitude more
    // than the longest residual window (~400 ms).
    EventQueue queue;
    DeviceManager manager(queue);
    const auto set = deviceSetIntel();
    for (size_t i = 0; i < set.size(); ++i)
        manager.addDevice(set[i], Rng(i + 1));
    Tick total = 0;
    manager.suspendAll([&](Tick t) { total = t; });
    queue.run();
    EXPECT_GT(total, 10 * fromMillis(400.0));
}

} // namespace
} // namespace wsp
