/**
 * @file
 * Property tests for the hardware substrates: the cache model against
 * a flat-memory reference under random operation streams, and
 * parameterized NVDIMM save/restore sweeps over module geometries.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "machine/cache.h"
#include "nvram/controller.h"
#include "nvram/nvdimm.h"
#include "nvram/nvram_space.h"
#include "util/rng.h"

namespace wsp {
namespace {

// Cache model fuzz -------------------------------------------------------

/**
 * Reference model: a plain byte array. The cache + NVRAM composite
 * must read back exactly what the reference holds, under any mix of
 * cached writes, line flushes, wbinvd, and capacity evictions.
 */
TEST(CacheFuzz, MatchesFlatMemoryUnderRandomOps)
{
    Rng rng(0xcac4e);
    for (int trial = 0; trial < 10; ++trial) {
        EventQueue queue;
        NvdimmConfig dimm_config;
        dimm_config.capacityBytes = 256 * kKiB;
        NvdimmModule dimm(queue, "d", dimm_config);
        NvramSpace space;
        space.addModule(dimm);
        // A tiny cache forces constant evictions.
        CacheModel cache("c", 8 * CacheModel::kLineSize, CacheTiming{},
                         space);

        std::vector<uint8_t> reference(dimm_config.capacityBytes, 0);

        for (int op = 0; op < 3000; ++op) {
            const uint64_t addr =
                rng.next(dimm_config.capacityBytes - 16);
            switch (rng.next(5)) {
              case 0:
              case 1: { // write 1-16 bytes
                uint8_t data[16];
                const size_t len = 1 + rng.next(16);
                for (size_t i = 0; i < len; ++i)
                    data[i] = static_cast<uint8_t>(rng());
                cache.write(addr, std::span<const uint8_t>(data, len));
                std::memcpy(reference.data() + addr, data, len);
                break;
              }
              case 2: { // read and compare
                uint8_t out[16];
                const size_t len = 1 + rng.next(16);
                cache.read(addr, std::span<uint8_t>(out, len));
                ASSERT_EQ(std::memcmp(out, reference.data() + addr, len),
                          0)
                    << "trial " << trial << " op " << op;
                break;
              }
              case 3:
                cache.flushLine(addr);
                break;
              default:
                if (rng.chance(0.1))
                    cache.wbinvd();
                break;
            }
        }
        // After a final wbinvd the NVRAM alone must match.
        cache.wbinvd();
        std::vector<uint8_t> out(dimm_config.capacityBytes);
        space.read(0, out);
        ASSERT_EQ(out, reference) << "trial " << trial;
    }
}

TEST(CacheFuzz, DirtyFootprintNeverExceedsCapacity)
{
    Rng rng(0xf00d);
    EventQueue queue;
    NvdimmConfig dimm_config;
    dimm_config.capacityBytes = 256 * kKiB;
    NvdimmModule dimm(queue, "d", dimm_config);
    NvramSpace space;
    space.addModule(dimm);
    CacheModel cache("c", 16 * CacheModel::kLineSize, CacheTiming{},
                     space);
    for (int i = 0; i < 5000; ++i) {
        cache.writeU64(rng.next(dimm_config.capacityBytes - 8) & ~7ull,
                       rng());
        ASSERT_LE(cache.dirtyBytes(), cache.capacity());
    }
}

// NVDIMM geometry sweep -----------------------------------------------------

using NvdimmGeometry = std::tuple<uint64_t, unsigned>; // MiB, channels

class NvdimmGeometrySweep
    : public ::testing::TestWithParam<NvdimmGeometry>
{
};

TEST_P(NvdimmGeometrySweep, SaveRestoreRoundTripAnyGeometry)
{
    const auto [mib, channels] = GetParam();
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = mib * kMiB;
    config.flashChannels = channels;
    NvdimmModule dimm(queue, "d", config);

    // Scatter a pattern across the module.
    Rng rng(mib * 131 + channels);
    std::map<uint64_t, uint64_t> written;
    for (int i = 0; i < 200; ++i) {
        const uint64_t addr =
            rng.next(config.capacityBytes - 8) & ~7ull;
        const uint64_t value = rng();
        uint8_t bytes[8];
        std::memcpy(bytes, &value, 8);
        dimm.hostWrite(addr, bytes);
        written[addr] = value;
    }

    dimm.arm();
    dimm.hostPowerLost(); // auto-save
    queue.run();
    ASSERT_TRUE(dimm.flashValid());

    dimm.hostPowerRestored();
    dimm.enterSelfRefresh();
    dimm.startRestore();
    queue.run();
    dimm.exitSelfRefresh();

    for (const auto &[addr, value] : written) {
        uint8_t bytes[8];
        dimm.hostRead(addr, bytes);
        uint64_t got = 0;
        std::memcpy(&got, bytes, 8);
        ASSERT_EQ(got, value) << "addr " << addr;
    }
}

TEST_P(NvdimmGeometrySweep, TimingScalesWithGeometry)
{
    const auto [mib, channels] = GetParam();
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = mib * kMiB;
    config.flashChannels = channels;
    NvdimmModule dimm(queue, "d", config);
    // Save time = capacity / (channels * channel bandwidth).
    const double expect_s =
        static_cast<double>(config.capacityBytes) /
        (config.channelSaveBw * channels);
    EXPECT_NEAR(toSeconds(dimm.saveDuration()), expect_s,
                expect_s * 0.01);
    EXPECT_LT(dimm.restoreDuration(), dimm.saveDuration());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, NvdimmGeometrySweep,
    ::testing::Values(NvdimmGeometry{1, 1}, NvdimmGeometry{4, 1},
                      NvdimmGeometry{4, 4}, NvdimmGeometry{16, 2},
                      NvdimmGeometry{64, 8}),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "MiB_" +
               std::to_string(std::get<1>(info.param)) + "ch";
    });

// Multi-module interleaving ------------------------------------------------

TEST(NvramSweep, ManySmallModulesBehaveLikeOneBig)
{
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = 1 * kMiB;
    config.flashChannels = 1;

    std::vector<std::unique_ptr<NvdimmModule>> dimms;
    NvdimmController controller(queue);
    NvramSpace space;
    for (int i = 0; i < 8; ++i) {
        dimms.push_back(std::make_unique<NvdimmModule>(
            queue, "d" + std::to_string(i), config));
        controller.attach(*dimms.back());
        space.addModule(*dimms.back());
    }

    Rng rng(0xabc);
    std::map<uint64_t, uint64_t> written;
    for (int i = 0; i < 500; ++i) {
        const uint64_t addr = rng.next(space.capacity() - 8) & ~7ull;
        const uint64_t value = rng();
        space.writeU64(addr, value);
        written[addr] = value;
    }

    controller.armAll();
    controller.hostPowerLost();
    queue.run();
    EXPECT_TRUE(controller.allFlashValid());

    controller.hostPowerRestored();
    bool done = false;
    controller.restoreAll([&] { done = true; });
    queue.run();
    ASSERT_TRUE(done);
    for (const auto &[addr, value] : written)
        ASSERT_EQ(space.readU64(addr), value);
}

} // namespace
} // namespace wsp
