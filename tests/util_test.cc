/**
 * @file
 * Unit tests for the util module: rng, stats, units, table, checksum,
 * arena/slab allocation, and the SmallFn callback type.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "util/arena.h"
#include "util/checksum.h"
#include "util/small_fn.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace wsp {
namespace {

// Rng ----------------------------------------------------------------

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const uint64_t first = a();
    a();
    a.reseed(7);
    EXPECT_EQ(a(), first);
}

TEST(Rng, NextRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.next(17), 17u);
}

TEST(Rng, NextCoversAllResidues)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.next(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, RangeSingleValue)
{
    Rng rng(13);
    EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(19);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.uniform());
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stat.mean(), 10.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.exponential(5.0));
    EXPECT_NEAR(stat.mean(), 5.0, 0.2);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkIndependentStreams)
{
    Rng parent(37);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

// RunningStat ---------------------------------------------------------

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat stat;
    stat.add(4.5);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_EQ(stat.mean(), 4.5);
    EXPECT_EQ(stat.min(), 4.5);
    EXPECT_EQ(stat.max(), 4.5);
    EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat stat;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stat.min(), 2.0);
    EXPECT_EQ(stat.max(), 9.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    Rng rng(41);
    RunningStat all;
    RunningStat left;
    RunningStat right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 1.5);
        all.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a;
    a.add(1.0);
    RunningStat b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat stat;
    stat.add(5.0);
    stat.reset();
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.sum(), 0.0);
}

// Histogram -----------------------------------------------------------

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(0.0, 10.0, 10);
    hist.add(-1.0);
    hist.add(0.0);
    hist.add(5.5);
    hist.add(9.999);
    hist.add(10.0);
    hist.add(25.0);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(5), 1u);
    EXPECT_EQ(hist.bucketCount(9), 1u);
    EXPECT_EQ(hist.total(), 6u);
}

TEST(Histogram, QuantileMedian)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.add(static_cast<double>(i));
    EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, PercentileOfEmptyHistogramIsLowerBound)
{
    Histogram hist(2.0, 10.0, 8);
    // No samples: every percentile collapses to the lower bound
    // rather than dividing by zero or walking past the buckets.
    EXPECT_EQ(hist.percentile(0.0), 2.0);
    EXPECT_EQ(hist.percentile(50.0), 2.0);
    EXPECT_EQ(hist.percentile(100.0), 2.0);
}

TEST(Histogram, PercentileSingleSampleIsItsBucketMidpoint)
{
    Histogram hist(0.0, 10.0, 10);
    hist.add(3.2); // bucket [3, 4) — midpoint 3.5
    EXPECT_EQ(hist.percentile(0.0), 3.5);
    EXPECT_EQ(hist.percentile(50.0), 3.5);
    EXPECT_EQ(hist.percentile(99.0), 3.5);
    // q == 1.0 targets one past the last sample: the upper bound.
    EXPECT_EQ(hist.percentile(100.0), 10.0);
}

TEST(Histogram, PercentileAllEqualSamplesStaysInTheirBucket)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        hist.add(42.0); // bucket [42, 43) — midpoint 42.5
    EXPECT_EQ(hist.percentile(1.0), 42.5);
    EXPECT_EQ(hist.percentile(50.0), 42.5);
    EXPECT_EQ(hist.percentile(99.0), 42.5);
}

TEST(Histogram, PercentileUnderflowOnlySamplesClampToLowerBound)
{
    Histogram hist(10.0, 20.0, 5);
    hist.add(1.0);
    hist.add(2.0);
    EXPECT_EQ(hist.percentile(50.0), 10.0);
}

TEST(Histogram, MergeFoldsCountsUnderflowAndOverflow)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.5);
    a.add(-1.0); // underflow
    b.add(1.5);
    b.add(8.5);
    b.add(25.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.bucketCount(1), 2u); // both 1.5 samples
    EXPECT_EQ(a.bucketCount(8), 1u);
}

TEST(Histogram, MergePercentilesMatchSingleHistogram)
{
    // Recording the same samples across N shards and merging must
    // give the same percentiles as one histogram seeing everything —
    // the fleet's per-node p99s rely on this being lossless.
    Histogram merged(0.0, 100.0, 200);
    Histogram shard0(0.0, 100.0, 200);
    Histogram shard1(0.0, 100.0, 200);
    Histogram reference(0.0, 100.0, 200);
    for (int i = 0; i < 1000; ++i) {
        const double sample = (i * 37) % 100 + 0.25;
        (i % 2 == 0 ? shard0 : shard1).add(sample);
        reference.add(sample);
    }
    merged.merge(shard0);
    merged.merge(shard1);
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(merged.percentile(p), reference.percentile(p)) << p;
}

TEST(Histogram, MergeOfEmptyIsIdentity)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(3.0);
    const double before = a.percentile(50.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.percentile(50.0), before);
    // Merging *into* an empty histogram adopts the other's shape too.
    b.merge(a);
    EXPECT_EQ(b.total(), 1u);
    EXPECT_EQ(b.percentile(50.0), before);
}

TEST(Histogram, MergeCompatibilityRequiresIdenticalBucketing)
{
    Histogram base(0.0, 10.0, 10);
    EXPECT_TRUE(base.mergeCompatible(Histogram(0.0, 10.0, 10)));
    EXPECT_FALSE(base.mergeCompatible(Histogram(0.0, 10.0, 20)));
    EXPECT_FALSE(base.mergeCompatible(Histogram(1.0, 10.0, 10)));
    EXPECT_FALSE(base.mergeCompatible(Histogram(0.0, 12.0, 10)));
}

TEST(Histogram, RenderHasOneLinePerBucket)
{
    Histogram hist(0.0, 4.0, 4);
    hist.add(1.0);
    const std::string out = hist.render();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

// Series --------------------------------------------------------------

TEST(Series, InterpolationAndClamping)
{
    Series s{"s", {}, {}};
    s.add(0.0, 0.0);
    s.add(1.0, 10.0);
    s.add(2.0, 30.0);
    EXPECT_DOUBLE_EQ(s.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.at(1.5), 20.0);
    EXPECT_DOUBLE_EQ(s.at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.at(5.0), 30.0);
}

TEST(Series, MinMax)
{
    Series s{"s", {}, {}};
    s.add(0.0, 3.0);
    s.add(1.0, -2.0);
    s.add(2.0, 7.0);
    EXPECT_EQ(s.maxY(), 7.0);
    EXPECT_EQ(s.minY(), -2.0);
}

TEST(Series, CrossoverFound)
{
    Series a{"a", {}, {}};
    Series b{"b", {}, {}};
    for (int i = 0; i <= 4; ++i) {
        a.add(i, static_cast<double>(i));        // 0,1,2,3,4
        b.add(i, 2.0);                           // flat 2
    }
    double x = 0.0;
    ASSERT_TRUE(findCrossover(a, b, &x));
    EXPECT_NEAR(x, 2.0, 1e-9);
}

TEST(Series, CrossoverAbsent)
{
    Series a{"a", {}, {}};
    Series b{"b", {}, {}};
    for (int i = 0; i <= 4; ++i) {
        a.add(i, 1.0);
        b.add(i, 2.0);
    }
    double x = 0.0;
    EXPECT_FALSE(findCrossover(a, b, &x));
}

// Units ---------------------------------------------------------------

TEST(Units, RoundTripSeconds)
{
    EXPECT_EQ(fromSeconds(1.5), 1500000000ull);
    EXPECT_DOUBLE_EQ(toSeconds(fromSeconds(2.25)), 2.25);
    EXPECT_DOUBLE_EQ(toMillis(fromMillis(33.0)), 33.0);
    EXPECT_DOUBLE_EQ(toMicros(fromMicros(250.0)), 250.0);
}

TEST(Units, FormatTimePicksUnit)
{
    EXPECT_EQ(formatTime(5), "5 ns");
    EXPECT_EQ(formatTime(fromMicros(12.0)), "12.000 us");
    EXPECT_EQ(formatTime(fromMillis(33.0)), "33.000 ms");
    EXPECT_EQ(formatTime(fromSeconds(2.0)), "2.000 s");
}

TEST(Units, FormatBytesPicksUnit)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(8 * kMiB), "8.00 MiB");
    EXPECT_EQ(formatBytes(3 * kGiB), "3.00 GiB");
}

// Table ---------------------------------------------------------------

TEST(Table, RenderContainsHeaderAndRows)
{
    Table table("Table 1. Update throughput");
    table.setHeader({"Configuration", "Updates/s"});
    table.addRow({"Mnemosyne", "2160"});
    table.addRow({"WSP", "5274"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Configuration"), std::string::npos);
    EXPECT_NE(out.find("Mnemosyne"), std::string::npos);
    EXPECT_NE(out.find("5274"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table table("t");
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.renderCsv(), "a,b\n1,2\n");
}

// ShapeCheck ----------------------------------------------------------

TEST(ShapeCheck, PassAndFail)
{
    ShapeCheck check("unit");
    check.expectBetween("in range", 5.0, 1.0, 10.0);
    EXPECT_TRUE(check.allPassed());
    check.expectBetween("out of range", 50.0, 1.0, 10.0);
    EXPECT_FALSE(check.allPassed());
}

TEST(ShapeCheck, RatioCheck)
{
    ShapeCheck check("unit");
    check.expectRatio("2x", 10.0, 5.0, 1.5, 2.5);
    EXPECT_TRUE(check.allPassed());
    check.expectRatio("div by zero fails", 10.0, 0.0, 0.0, 100.0);
    EXPECT_FALSE(check.allPassed());
}

TEST(ShapeCheck, GreaterAndTrue)
{
    ShapeCheck check("unit");
    check.expectGreater("bigger", 2.0, 1.0);
    check.expectTrue("holds", true);
    EXPECT_TRUE(check.allPassed());
}

// AsciiChart ----------------------------------------------------------

TEST(AsciiChart, RendersLegendPerSeries)
{
    AsciiChart chart("fig", "x", "y");
    Series s1{"first", {}, {}};
    s1.add(0, 1);
    s1.add(1, 2);
    Series s2{"second", {}, {}};
    s2.add(0, 2);
    s2.add(1, 1);
    chart.addSeries(s1);
    chart.addSeries(s2);
    const std::string out = chart.render(40, 10);
    EXPECT_NE(out.find("first"), std::string::npos);
    EXPECT_NE(out.find("second"), std::string::npos);
}

TEST(AsciiChart, LogScaleRenders)
{
    AsciiChart chart("fig", "x", "y");
    Series s{"s", {}, {}};
    s.add(0, 0.1);
    s.add(1, 1000.0);
    chart.addSeries(s);
    chart.setLogY(true);
    EXPECT_NE(chart.render(40, 10).find("log scale"), std::string::npos);
}

// Checksum ------------------------------------------------------------

TEST(Checksum, DeterministicAndSensitive)
{
    const uint8_t a[] = {1, 2, 3};
    const uint8_t b[] = {1, 2, 4};
    EXPECT_EQ(fnv1a(a), fnv1a(a));
    EXPECT_NE(fnv1a(a), fnv1a(b));
}

TEST(Checksum, U64MatchesByteVersion)
{
    const uint64_t value = 0x0123456789abcdefull;
    uint8_t bytes[8];
    uint64_t v = value;
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(v & 0xff);
        v >>= 8;
    }
    EXPECT_EQ(fnv1aU64(value), fnv1a(bytes));
}

TEST(Checksum, SeedChaining)
{
    EXPECT_NE(fnv1aU64(1, fnv1aU64(2)), fnv1aU64(2, fnv1aU64(1)));
}

// Arena --------------------------------------------------------------

TEST(Arena, AllocationsAreDisjointAndAligned)
{
    util::Arena arena;
    auto *a = arena.allocate<uint64_t>(4);
    auto *b = arena.allocate<uint64_t>(4);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(uint64_t), 0u);
    void *c = arena.allocate(1, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
    a[3] = 0x1234;
    b[0] = 0x5678;
    EXPECT_EQ(a[3], 0x1234u); // no overlap
}

TEST(Arena, ResetRecyclesChunksInPlace)
{
    util::Arena arena(256);
    for (int i = 0; i < 8; ++i)
        arena.allocate(200);
    const size_t chunks = arena.chunkCount();
    const size_t reserved = arena.bytesReserved();
    arena.reset();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    void *first = arena.allocate(200);
    for (int i = 0; i < 7; ++i)
        arena.allocate(200);
    // Same footprint after a full refill: reset reuses pages rather
    // than growing, and the first allocation lands back in chunk 0.
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    arena.reset();
    EXPECT_EQ(arena.allocate(200), first);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    util::Arena arena(64);
    void *big = arena.allocate(1024);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.bytesReserved(), 1024u);
}

TEST(ArenaAllocator, VectorGrowsInsideArena)
{
    util::Arena arena;
    std::vector<uint64_t, util::ArenaAllocator<uint64_t>> values{
        util::ArenaAllocator<uint64_t>(&arena)};
    for (uint64_t i = 0; i < 1000; ++i)
        values.push_back(i);
    EXPECT_EQ(values[999], 999u);
    EXPECT_GT(arena.bytesAllocated(), 1000 * sizeof(uint64_t));
}

// Slab ---------------------------------------------------------------

TEST(Slab, AcquireReleaseRecyclesSlots)
{
    util::Slab<int> slab;
    const uint32_t a = slab.acquire();
    const uint32_t b = slab.acquire();
    EXPECT_NE(a, b);
    EXPECT_EQ(slab.liveCount(), 2u);
    slab.release(b);
    EXPECT_EQ(slab.acquire(), b); // LIFO free list reuses the slot
    EXPECT_EQ(slab.capacity(), 2u);
}

TEST(Slab, GenerationStalesHandlesOnRelease)
{
    util::Slab<int> slab;
    const uint32_t slot = slab.acquire();
    const uint32_t generation = slab.generation(slot);
    EXPECT_TRUE(slab.alive(slot, generation));
    slab.release(slot);
    EXPECT_FALSE(slab.alive(slot, generation));
    const uint32_t again = slab.acquire();
    ASSERT_EQ(again, slot);
    EXPECT_FALSE(slab.alive(slot, generation)); // old handle stays dead
    EXPECT_TRUE(slab.alive(slot, slab.generation(slot)));
    EXPECT_FALSE(slab.alive(99, 0)); // out-of-range index never alive
}

TEST(Slab, ValuesPersistAcrossUnrelatedReleases)
{
    util::Slab<uint64_t> slab;
    const uint32_t keep = slab.acquire();
    const uint32_t drop = slab.acquire();
    slab[keep] = 0xfeed;
    slab.release(drop);
    slab.acquire();
    EXPECT_EQ(slab[keep], 0xfeedu);
}

// SmallFn ------------------------------------------------------------

TEST(SmallFn, EmptyIsFalseAndAssignableLater)
{
    util::SmallFn<48> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    int calls = 0;
    fn = util::SmallFn<48>([&calls] { ++calls; });
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    EXPECT_EQ(calls, 1);
}

TEST(SmallFn, SmallCaptureStaysInline)
{
    int calls = 0;
    int *counter = &calls;
    util::SmallFn<48> fn([counter] { ++*counter; });
    EXPECT_TRUE(fn.isInline());
    util::SmallFn<48> moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));
    moved();
    EXPECT_EQ(calls, 1);
}

TEST(SmallFn, OversizedCaptureFallsBackToHeap)
{
    struct Big
    {
        char bytes[96];
    };
    Big big{};
    big.bytes[0] = 7;
    char seen = 0;
    util::SmallFn<48> fn([big, &seen] { seen = big.bytes[0]; });
    EXPECT_FALSE(fn.isInline());
    util::SmallFn<48> moved = std::move(fn);
    moved();
    EXPECT_EQ(seen, 7);
}

TEST(SmallFn, NonTrivialCaptureRelocatesAndDestroys)
{
    // A move-only, non-trivially-copyable capture exercises the
    // relocate path that trivially-copyable closures skip.
    auto owned = std::make_unique<int>(41);
    int result = 0;
    util::SmallFn<48> fn(
        [p = std::move(owned), &result] { result = *p + 1; });
    EXPECT_TRUE(fn.isInline());
    util::SmallFn<48> moved = std::move(fn);
    util::SmallFn<48> assigned;
    assigned = std::move(moved);
    assigned();
    EXPECT_EQ(result, 42);
    assigned = util::SmallFn<48>(); // destructor path frees the capture
    EXPECT_FALSE(static_cast<bool>(assigned));
}

TEST(SmallFn, DestructionReleasesCaptureExactlyOnce)
{
    const auto alive = std::make_shared<int>(1);
    {
        util::SmallFn<48> fn([keep = alive] { (void)keep; });
        util::SmallFn<48> moved = std::move(fn);
        EXPECT_EQ(alive.use_count(), 2); // moved-from holds nothing
    }
    EXPECT_EQ(alive.use_count(), 1);
}

} // namespace
} // namespace wsp
