/**
 * @file
 * Unit tests for the discrete-event engine and signals.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/signal.h"
#include "sim/sim_object.h"

namespace wsp {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(10, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue queue;
    Tick fired_at = 0;
    queue.schedule(100, [&] {
        queue.scheduleAfter(50, [&] { fired_at = queue.now(); });
    });
    queue.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, PastScheduleClampsToNow)
{
    EventQueue queue;
    Tick fired_at = 1;
    queue.schedule(100, [&] {
        queue.schedule(10, [&] { fired_at = queue.now(); });
    });
    queue.run();
    EXPECT_EQ(fired_at, 100u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue queue;
    bool fired = false;
    const EventId id = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(queue.cancel(id));
    queue.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue queue;
    const EventId id = queue.schedule(10, [] {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));
    queue.run();
}

TEST(EventQueue, CancelUnknownFails)
{
    EventQueue queue;
    EXPECT_FALSE(queue.cancel(kEventNone));
    EXPECT_FALSE(queue.cancel(12345));
}

TEST(EventQueue, RunUntilStopsAtTarget)
{
    EventQueue queue;
    std::vector<Tick> fired;
    queue.schedule(10, [&] { fired.push_back(10); });
    queue.schedule(20, [&] { fired.push_back(20); });
    queue.schedule(30, [&] { fired.push_back(30); });
    queue.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(queue.now(), 20u);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue queue;
    queue.runUntil(500);
    EXPECT_EQ(queue.now(), 500u);
}

TEST(EventQueue, RunUntilSkipsCancelledWithoutOverrunning)
{
    EventQueue queue;
    bool late_fired = false;
    const EventId id = queue.schedule(10, [] {});
    queue.schedule(100, [&] { late_fired = true; });
    queue.cancel(id);
    queue.runUntil(50);
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(queue.now(), 50u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(1, [&] { ++count; });
    queue.schedule(2, [&] { ++count; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(queue.step());
}

TEST(EventQueue, StopRequestHaltsRun)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(1, [&] {
        ++count;
        queue.requestStop();
    });
    queue.schedule(2, [&] { ++count; });
    queue.run();
    EXPECT_EQ(count, 1);
    queue.clearStop();
    queue.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PendingTracksCancellations)
{
    EventQueue queue;
    const EventId a = queue.schedule(1, [] {});
    queue.schedule(2, [] {});
    EXPECT_EQ(queue.pending(), 2u);
    queue.cancel(a);
    EXPECT_EQ(queue.pending(), 1u);
    queue.run();
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueue, EventsScheduledDuringRunAreDispatched)
{
    EventQueue queue;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            queue.scheduleAfter(10, recurse);
    };
    queue.schedule(0, recurse);
    queue.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueue, StopMidRunUntilLeavesNowAtLastDispatch)
{
    EventQueue queue;
    std::vector<Tick> fired;
    queue.schedule(10, [&] { fired.push_back(10); });
    queue.schedule(20, [&] {
        fired.push_back(20);
        queue.requestStop();
    });
    queue.schedule(30, [&] { fired.push_back(30); });
    queue.runUntil(100);
    // The drain halts at the stopping event; time must not jump to
    // the target, and the later event must still be pending.
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(queue.now(), 20u);
    EXPECT_EQ(queue.pending(), 1u);
    queue.clearStop();
    queue.runUntil(100);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueue, RunUntilIncludesEventScheduledAtTargetMidDrain)
{
    EventQueue queue;
    std::vector<Tick> fired;
    queue.schedule(50, [&] {
        fired.push_back(50);
        // Scheduled during the drain, exactly at the target tick:
        // must fire in this same runUntil call.
        queue.schedule(100, [&] { fired.push_back(100); });
    });
    queue.runUntil(100);
    EXPECT_EQ(fired, (std::vector<Tick>{50, 100}));
    EXPECT_EQ(queue.now(), 100u);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueue, CallbackMayCancelTheAboutToFireTop)
{
    EventQueue queue;
    std::vector<int> fired;
    EventId second = kEventNone;
    // Two events at the same tick: the first cancels the second,
    // which is at that point the next entry to dispatch.
    queue.schedule(10, [&] {
        fired.push_back(1);
        EXPECT_TRUE(queue.cancel(second));
    });
    second = queue.schedule(10, [&] { fired.push_back(2); });
    queue.schedule(20, [&] { fired.push_back(3); });
    queue.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
    EXPECT_EQ(queue.now(), 20u);
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot)
{
    EventQueue queue;
    bool survivor_fired = false;
    const EventId first = queue.schedule(5, [] {});
    queue.run(); // fires and frees the slot
    // The next schedule reuses the slot under a fresh generation; the
    // stale handle must not be able to reach it.
    queue.schedule(10, [&] { survivor_fired = true; });
    EXPECT_FALSE(queue.cancel(first));
    EXPECT_EQ(queue.pending(), 1u);
    queue.run();
    EXPECT_TRUE(survivor_fired);
}

TEST(EventQueue, CancelledHandleStaysStaleAfterSlotReuse)
{
    EventQueue queue;
    bool survivor_fired = false;
    const EventId first = queue.schedule(5, [] {});
    EXPECT_TRUE(queue.cancel(first));
    queue.schedule(10, [&] { survivor_fired = true; });
    EXPECT_FALSE(queue.cancel(first));
    queue.run();
    EXPECT_TRUE(survivor_fired);
}

TEST(EventQueue, ObserverSeesEveryDispatchBoundaryAcrossRunModes)
{
    EventQueue queue;
    std::vector<Tick> observed, fired;
    queue.setDispatchObserver([&](Tick t) { observed.push_back(t); });
    queue.schedule(10, [&] { fired.push_back(queue.now()); });
    queue.schedule(10, [&] { fired.push_back(queue.now()); });
    queue.schedule(25, [&] { fired.push_back(queue.now()); });
    queue.step();
    queue.runUntil(10);
    queue.run();
    // One observation per dispatch, at the dispatch tick, with now()
    // already advanced when the callback runs.
    EXPECT_EQ(observed, (std::vector<Tick>{10, 10, 25}));
    EXPECT_EQ(fired, observed);
    queue.setDispatchObserver(nullptr);
    queue.schedule(30, [] {});
    queue.run();
    EXPECT_EQ(observed.size(), 3u); // uninstalled: no further calls
}

// Signal --------------------------------------------------------------

TEST(Signal, ObserverSeesOldAndNew)
{
    Signal<int> sig(1);
    int seen_old = 0;
    int seen_new = 0;
    sig.observe([&](const int &o, const int &n) {
        seen_old = o;
        seen_new = n;
    });
    sig.set(5);
    EXPECT_EQ(seen_old, 1);
    EXPECT_EQ(seen_new, 5);
}

TEST(Signal, NoNotificationWithoutChange)
{
    Signal<int> sig(3);
    int fires = 0;
    sig.observe([&](const int &, const int &) { ++fires; });
    sig.set(3);
    EXPECT_EQ(fires, 0);
    sig.set(4);
    EXPECT_EQ(fires, 1);
}

TEST(Signal, ObserveEdgeFiltersLevel)
{
    Wire wire(true);
    int falls = 0;
    int rises = 0;
    wire.observeEdge(false, [&] { ++falls; });
    wire.observeEdge(true, [&] { ++rises; });
    wire.set(false);
    wire.set(true);
    wire.set(false);
    EXPECT_EQ(falls, 2);
    EXPECT_EQ(rises, 1);
}

TEST(Signal, ObserverMaySubscribeMore)
{
    Signal<int> sig(0);
    int second_fired = 0;
    sig.observe([&](const int &, const int &) {
        sig.observe([&](const int &, const int &) { ++second_fired; });
    });
    sig.set(1); // subscribing during notification must not fire it
    EXPECT_EQ(second_fired, 0);
    sig.set(2);
    EXPECT_GE(second_fired, 1);
}

// SimObject -----------------------------------------------------------

TEST(SimObject, NameAndClock)
{
    EventQueue queue;
    SimObject obj(queue, "thing");
    EXPECT_EQ(obj.name(), "thing");
    queue.schedule(25, [] {});
    queue.run();
    EXPECT_EQ(obj.now(), 25u);
}

} // namespace
} // namespace wsp
