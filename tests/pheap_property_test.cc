/**
 * @file
 * Property tests for the persistent heap: randomized crash-point
 * sweeps for the torn-bit log and both logging disciplines, and
 * parameterized crash-consistency runs for the hash table.
 *
 * The invariant (DESIGN.md §5): crash recovery always yields a state
 * in which every committed transaction is fully applied and no
 * uncommitted transaction is visible — under any crash point.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/hash_table.h"
#include "pheap/policies.h"
#include "util/rng.h"

#include "test_seed.h"

namespace wsp::pmem {
namespace {

std::string
tempPath(const char *name, int index)
{
    return ::testing::TempDir() + "wsp_prop_" + name + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(index) +
           ".img";
}

constexpr uint64_t kRegionSize = 32ull * 1024 * 1024;

// TornBitLog fuzz -----------------------------------------------------------

/**
 * Write a random record stream, then tear the ring at a random word
 * (flipping its phase bit as a power failure mid-append would leave
 * it), and check the prefix property: the scan returns a prefix of
 * the written records, each decoded intact.
 */
TEST(TornBitFuzz, ScanAlwaysReturnsIntactPrefix)
{
    SCOPED_TRACE(testing::seedTrace(0x70123));
    Rng rng(testing::testSeed(0x70123));
    for (int trial = 0; trial < 40; ++trial) {
        PersistentRegion region(kRegionSize);
        TornBitLog log(region, region.header().undoLogStart, 16 * 1024,
                       &region.header().undoCheckpointPos,
                       &region.header().undoCheckpointPass, true);

        struct Written
        {
            LogRecordType type = LogRecordType::None;
            uint64_t id = 0;
            Offset target = 0;
            std::vector<uint8_t> payload;
        };
        std::vector<Written> written;
        const int records = 5 + static_cast<int>(rng.next(60));
        for (int i = 0; i < records; ++i) {
            if (rng.chance(0.4)) {
                const auto type = rng.chance(0.5)
                                      ? LogRecordType::TxnBegin
                                      : LogRecordType::TxnCommit;
                const uint64_t id = rng.next(1000);
                log.appendMarker(type, id);
                written.push_back(Written{type, id, 0, {}});
            } else {
                Written w;
                w.type = LogRecordType::Data;
                w.target = rng.next(kRegionSize);
                w.payload.resize(1 + rng.next(50));
                for (auto &b : w.payload)
                    b = static_cast<uint8_t>(rng());
                log.appendData(w.target, w.payload.data(),
                               static_cast<uint32_t>(w.payload.size()));
                written.push_back(std::move(w));
            }
        }

        // Tear at a random word within the written span.
        if (log.position() > 0 && rng.chance(0.8)) {
            auto *words = reinterpret_cast<uint64_t *>(
                region.base() + region.header().undoLogStart);
            const uint64_t tear = rng.next(log.position());
            words[tear] ^= 1ull << 63;
        }

        const auto scanned = log.scan();
        ASSERT_LE(scanned.size(), written.size()) << "trial " << trial;
        for (size_t i = 0; i < scanned.size(); ++i) {
            EXPECT_EQ(scanned[i].type, written[i].type);
            if (written[i].type == LogRecordType::Data) {
                EXPECT_EQ(scanned[i].target, written[i].target);
                EXPECT_EQ(scanned[i].payload, written[i].payload);
            } else {
                EXPECT_EQ(scanned[i].txnId, written[i].id);
            }
        }
    }
}

TEST(TornBitFuzz, WrappedRingKeepsSuffix)
{
    // After many wraps, the scan must still return only records from
    // the current window, all intact.
    SCOPED_TRACE(testing::seedTrace(0x999));
    Rng rng(testing::testSeed(0x999));
    PersistentRegion region(kRegionSize);
    TornBitLog log(region, region.header().undoLogStart, 8 * 1024,
                   &region.header().undoCheckpointPos,
                   &region.header().undoCheckpointPass, true);
    uint64_t serial = 0;
    for (int i = 0; i < 3000; ++i) {
        uint8_t payload[32];
        std::memcpy(payload, &serial, 8);
        log.appendData(serial, payload, sizeof(payload));
        ++serial;
    }
    const auto records = log.scan();
    ASSERT_FALSE(records.empty());
    // Targets are consecutive serial numbers ending at the last one.
    uint64_t expect = records.front().target;
    for (const auto &record : records) {
        EXPECT_EQ(record.target, expect);
        ++expect;
    }
    EXPECT_EQ(records.back().target, serial - 1);
}

/**
 * Byte-granularity partial writes. The writer uses 8-byte aligned
 * stores, so a power cut that lands at byte @c b of the append stream
 * leaves the straddled word either fully old or fully new — never
 * mixed. For every random byte cut, both legal word-level outcomes
 * must scan to the exact record prefix that fit below the cut.
 */
TEST(TornBitFuzz, ByteGranularityCutsHonorWordAtomicity)
{
    SCOPED_TRACE(testing::seedTrace(0xb17ec));
    Rng rng(testing::testSeed(0xb17ec));
    PersistentRegion region(kRegionSize);
    TornBitLog log(region, region.header().undoLogStart, 16 * 1024,
                   &region.header().undoCheckpointPos,
                   &region.header().undoCheckpointPass, true);

    struct Written
    {
        LogRecordType type = LogRecordType::None;
        uint64_t id = 0;
        Offset target = 0;
        std::vector<uint8_t> payload;
        uint64_t posAfter = 0; ///< ring word count once appended
    };
    std::vector<Written> written;
    const int records = 40;
    for (int i = 0; i < records; ++i) {
        if (rng.chance(0.35)) {
            const auto type = rng.chance(0.5) ? LogRecordType::TxnBegin
                                              : LogRecordType::TxnCommit;
            Written w;
            w.type = type;
            w.id = rng.next(1000);
            log.appendMarker(type, w.id);
            w.posAfter = log.position();
            written.push_back(std::move(w));
        } else {
            Written w;
            w.type = LogRecordType::Data;
            w.target = rng.next(kRegionSize);
            w.payload.resize(1 + rng.next(40));
            for (auto &b : w.payload)
                b = static_cast<uint8_t>(rng());
            log.appendData(w.target, w.payload.data(),
                           static_cast<uint32_t>(w.payload.size()));
            w.posAfter = log.position();
            written.push_back(std::move(w));
        }
    }
    // The ring must not have wrapped: the snapshot/restore below
    // assumes the whole stream sits at [0, position).
    ASSERT_EQ(log.wraps(), 0u);

    auto *words = reinterpret_cast<uint64_t *>(
        region.base() + region.header().undoLogStart);
    const uint64_t total_words = log.position();
    const std::vector<uint64_t> snapshot(words, words + total_words);

    for (int trial = 0; trial < 200; ++trial) {
        const uint64_t cut_byte = rng.next(total_words * 8 + 1);

        // The two legal word-level outcomes of a cut at this byte:
        // the straddled word never made it (floor) or was completed
        // by the final aligned store just in time (ceil).
        uint64_t intact_variants[2] = {cut_byte / 8, (cut_byte + 7) / 8};
        for (uint64_t intact : intact_variants) {
            // Words past the cut read as if this pass never wrote
            // them: old-phase content (zero = phase bit clear).
            for (uint64_t w = intact; w < total_words; ++w)
                words[w] = 0;

            const auto scanned = log.scan();
            size_t expected = 0;
            while (expected < written.size() &&
                   written[expected].posAfter <= intact)
                ++expected;
            ASSERT_EQ(scanned.size(), expected)
                << "cut at byte " << cut_byte << " intact " << intact;
            for (size_t i = 0; i < scanned.size(); ++i) {
                EXPECT_EQ(scanned[i].type, written[i].type);
                if (written[i].type == LogRecordType::Data) {
                    EXPECT_EQ(scanned[i].target, written[i].target);
                    EXPECT_EQ(scanned[i].payload, written[i].payload);
                } else {
                    EXPECT_EQ(scanned[i].txnId, written[i].id);
                }
            }

            std::copy(snapshot.begin(), snapshot.end(), words);
        }
    }
}

// Undo-log crash sweep --------------------------------------------------

/**
 * Run a sequence of counter transactions; crash after an arbitrary
 * prefix of them plus optionally mid-transaction; recovery must show
 * exactly the committed prefix.
 */
TEST(UndoCrashSweep, CommittedPrefixAlwaysSurvives)
{
    for (int committed = 0; committed <= 10; committed += 2) {
        for (bool midtxn : {false, true}) {
            const std::string path =
                tempPath("undo_sweep", committed * 2 + (midtxn ? 1 : 0));
            std::remove(path.c_str());
            Offset cell = 0;
            {
                PHeapConfig config;
                config.regionSize = kRegionSize;
                config.path = path;
                config.durableLogs = true;
                PHeap heap(config);
                cell = heap.region().header().heapStart;
                auto *word = heap.region().at<uint64_t>(cell);

                for (int i = 0; i < committed; ++i) {
                    UndoPolicy::run(heap, [&](UndoPolicy::Tx &tx) {
                        tx.write(word, tx.read(word) + 1);
                    });
                }
                if (midtxn) {
                    heap.undoLog().txBegin();
                    UndoPolicy::Tx tx(heap);
                    tx.write(word, uint64_t{9999});
                    // crash without commit
                }
            }
            {
                PHeapConfig config;
                config.regionSize = kRegionSize;
                config.path = path;
                config.durableLogs = true;
                PHeap heap(config);
                EXPECT_EQ(*heap.region().at<uint64_t>(cell),
                          static_cast<uint64_t>(committed))
                    << "committed=" << committed << " midtxn=" << midtxn;
            }
            std::remove(path.c_str());
        }
    }
}

// Hash-table crash sweep -------------------------------------------------

/**
 * Parameterized crash sweep over operation counts: run N operations
 * against the durable table and a volatile model, crash mid-insert,
 * recover, and compare every key.
 */
class HashCrashSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(HashCrashSweep, RecoveredTableMatchesModel)
{
    const int operations = GetParam();
    const std::string path = tempPath("ht_sweep", operations);
    std::remove(path.c_str());

    std::map<uint64_t, uint64_t> model;
    Offset header = 0;
    {
        PHeapConfig config;
        config.regionSize = kRegionSize;
        config.path = path;
        config.durableLogs = true;
        PHeap heap(config);
        apps::HashTable<UndoPolicy> table(heap, 64);
        header = table.headerOffset();
        UndoPolicy::run(heap, [&](UndoPolicy::Tx &tx) {
            heap.setRootObject(tx, header);
        });

        Rng rng(static_cast<uint64_t>(operations) * 7919);
        for (int i = 0; i < operations; ++i) {
            const uint64_t key = rng.next(40) + 1;
            if (rng.chance(0.7)) {
                const uint64_t value = rng();
                table.insert(key, value);
                model[key] = value;
            } else {
                table.erase(key);
                model.erase(key);
            }
        }

        // Crash mid-transaction.
        heap.undoLog().txBegin();
        UndoPolicy::Tx tx(heap);
        const Offset junk = tx.alloc(48);
        auto *n = heap.region().at<uint64_t>(junk);
        tx.write(n, uint64_t{0xdead});
    }
    {
        PHeapConfig config;
        config.regionSize = kRegionSize;
        config.path = path;
        config.durableLogs = true;
        PHeap heap(config);
        apps::HashTable<UndoPolicy> table(heap, heap.rootObject(),
                                          nullptr);
        EXPECT_EQ(table.size(), model.size());
        for (const auto &[key, value] : model) {
            uint64_t got = 0;
            ASSERT_TRUE(table.lookup(key, &got)) << "key " << key;
            EXPECT_EQ(got, value);
        }
        for (uint64_t key = 1; key <= 41; ++key) {
            if (!model.count(key)) {
                EXPECT_FALSE(table.lookup(key)) << "key " << key;
            }
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(OperationCounts, HashCrashSweep,
                         ::testing::Values(0, 1, 5, 20, 100, 400));

// STM + redo crash sweep ----------------------------------------------------

class StmCrashSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StmCrashSweep, CommittedStmTxnsSurviveLostCacheLines)
{
    const int txns = GetParam();
    const std::string path = tempPath("stm_sweep", txns);
    std::remove(path.c_str());
    Offset cell = 0;
    {
        PHeapConfig config;
        config.regionSize = kRegionSize;
        config.path = path;
        config.durableLogs = true;
        config.redoTruncateEvery = 4; // exercise truncation mid-run
        PHeap heap(config);
        cell = heap.region().header().heapStart;
        auto *word = heap.region().at<uint64_t>(cell);
        for (int i = 0; i < txns; ++i) {
            StmPolicy::run(heap, [&](StmPolicy::Tx &tx) {
                tx.write(word, tx.read(word) + 1);
            });
        }
        // Model losing the un-flushed in-place line: zero it. The
        // redo log (or the truncation-time flush) must win anyway.
        *word = 0;
    }
    {
        PHeapConfig config;
        config.regionSize = kRegionSize;
        config.path = path;
        config.durableLogs = true;
        PHeap heap(config);
        const uint64_t value = *heap.region().at<uint64_t>(cell);
        if (txns % 4 != 0) {
            // The tail transactions since the last truncation are in
            // the ring; replay restores the exact final value even
            // though the in-place copy was destroyed.
            EXPECT_EQ(value, static_cast<uint64_t>(txns));
        } else {
            // The ring was truncated right at the crash point, so
            // recovery has nothing to replay; the zeroing clobbered
            // the (already durable) in-place copy directly, which a
            // real cache loss cannot do. Seeing the zero confirms the
            // replay path did not resurrect stale ring content.
            EXPECT_EQ(value, 0u);
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(TxnCounts, StmCrashSweep,
                         ::testing::Values(0, 1, 3, 4, 5, 8, 17, 64));

} // namespace
} // namespace wsp::pmem
