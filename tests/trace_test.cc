/**
 * @file
 * Unit tests for the trace module: the ring buffer, category
 * filtering, spans, the stat registry, and both exporters (whose
 * output is parsed back with the bundled JSON parser).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/export.h"
#include "trace/json_lite.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/stats.h"

namespace wsp::trace {
namespace {

/** Every test starts from a quiet, empty trace state. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceManager::instance().disableAll();
        TraceManager::instance().clear();
        TraceManager::instance().setCapacity(1024);
        StatRegistry::instance().resetForTest();
    }

    void
    TearDown() override
    {
        TraceManager::instance().disableAll();
        TraceManager::instance().clear();
    }
};

// Category parsing ---------------------------------------------------

TEST_F(TraceTest, ParseCategoryList)
{
    uint32_t mask = 0;
    EXPECT_TRUE(parseCategoryList("core,pheap", &mask));
    EXPECT_EQ(mask, (1u << static_cast<unsigned>(Category::Core)) |
                        (1u << static_cast<unsigned>(Category::Pheap)));

    EXPECT_TRUE(parseCategoryList("all", &mask));
    EXPECT_EQ(mask, kAllCategories);

    EXPECT_TRUE(parseCategoryList("", &mask));
    EXPECT_EQ(mask, 0u);

    EXPECT_FALSE(parseCategoryList("core,bogus", &mask));
}

TEST_F(TraceTest, CategoryNamesRoundTrip)
{
    for (unsigned i = 0; i < kCategoryCount; ++i) {
        uint32_t mask = 0;
        const auto category = static_cast<Category>(i);
        ASSERT_TRUE(parseCategoryList(categoryName(category), &mask));
        EXPECT_EQ(mask, 1u << i);
    }
}

// Emission and filtering ---------------------------------------------

TEST_F(TraceTest, DisabledCategoryEmitsNothing)
{
    auto &manager = TraceManager::instance();
    manager.enable(1u << static_cast<unsigned>(Category::Core));

    instant(Category::Core, "kept");
    instant(Category::Pheap, "filtered");
    manager.emit(Category::Pheap, Phase::Instant, "also filtered");

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_STREQ(records[0].name, "kept");
    EXPECT_EQ(records[0].category, Category::Core);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDrops)
{
    auto &manager = TraceManager::instance();
    manager.setCapacity(8);
    manager.enableAll();

    for (int i = 0; i < 20; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "e%d", i);
        instant(Category::Core, name);
    }

    EXPECT_EQ(manager.totalEmitted(), 20u);
    EXPECT_EQ(manager.dropped(), 12u);

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 8u);
    // Oldest-first window of the newest 8 records.
    for (int i = 0; i < 8; ++i) {
        char expected[16];
        std::snprintf(expected, sizeof(expected), "e%d", 12 + i);
        EXPECT_STREQ(records[i].name, expected);
    }
}

TEST_F(TraceTest, LongNamesAreTruncatedNotOverrun)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();
    const std::string longName(200, 'x');
    instant(Category::Core, longName.c_str());

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(std::string(records[0].name).size(),
              Record::kNameBytes - 1);
}

TEST_F(TraceTest, SpanNestingProducesWellFormedPairs)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();

    {
        TRACE_SPAN(Core, "outer");
        {
            TRACE_SPAN(Core, "inner");
            TRACE_INSTANT(Core, "tick");
        }
    }

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[0].phase, Phase::Begin);
    EXPECT_STREQ(records[0].name, "outer");
    EXPECT_EQ(records[1].phase, Phase::Begin);
    EXPECT_STREQ(records[1].name, "inner");
    EXPECT_EQ(records[2].phase, Phase::Instant);
    EXPECT_EQ(records[3].phase, Phase::End);
    EXPECT_STREQ(records[3].name, "inner");
    EXPECT_EQ(records[4].phase, Phase::End);
    EXPECT_STREQ(records[4].name, "outer");

    // Stack discipline: every End matches the most recent open Begin.
    std::vector<std::string> stack;
    for (const auto &record : records) {
        if (record.phase == Phase::Begin) {
            stack.push_back(record.name);
        } else if (record.phase == Phase::End) {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), record.name);
            stack.pop_back();
        }
    }
    EXPECT_TRUE(stack.empty());
}

TEST_F(TraceTest, SpanDisabledAtConstructionStaysSilent)
{
    auto &manager = TraceManager::instance();
    {
        // Category gets enabled mid-span: the span must not emit a
        // dangling End.
        ScopedSpan span(Category::Core, "late");
        manager.enableAll();
    }
    EXPECT_EQ(manager.snapshot().size(), 0u);
}

TEST_F(TraceTest, TickSourceStampsRecords)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();
    int owner = 0;
    manager.setTickSource(&owner, [] { return uint64_t{777}; });
    instant(Category::Core, "stamped");
    manager.clearTickSource(&owner);
    instant(Category::Core, "unstamped");

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].hasSimTick);
    EXPECT_EQ(records[0].simTick, 777u);
    EXPECT_FALSE(records[1].hasSimTick);
    EXPECT_GT(records[1].wallNs, 0u);
}

TEST_F(TraceTest, ClearTickSourceIgnoresWrongOwner)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();
    int owner = 0;
    int stranger = 0;
    manager.setTickSource(&owner, [] { return uint64_t{5}; });
    manager.clearTickSource(&stranger); // no-op: not the owner
    instant(Category::Core, "still stamped");
    manager.clearTickSource(&owner);

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].hasSimTick);
}

TEST_F(TraceTest, DebugLogRoutedToTraceWhenEnabled)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();
    debugLog("message for the trace %d", 42);
    manager.disableAll(); // also uninstalls the sink
    debugLog("dropped %d", 43);

    const auto records = manager.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].category, Category::Apps);
    EXPECT_STREQ(records[0].name, "message for the trace 42");
}

// StatRegistry -------------------------------------------------------

TEST_F(TraceTest, CounterAndGaugeSnapshot)
{
    auto &registry = StatRegistry::instance();
    Counter &counter = registry.counter("test.counter");
    counter.add();
    counter.add(4);
    registry.gauge("test.gauge").set(2.5);

    bool saw_counter = false;
    bool saw_gauge = false;
    for (const auto &sample : registry.snapshot()) {
        if (sample.name == "test.counter") {
            saw_counter = true;
            EXPECT_DOUBLE_EQ(sample.value, 5.0);
        } else if (sample.name == "test.gauge") {
            saw_gauge = true;
            EXPECT_DOUBLE_EQ(sample.value, 2.5);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);
}

TEST_F(TraceTest, CounterHandleIsStable)
{
    auto &registry = StatRegistry::instance();
    Counter &first = registry.counter("test.stable");
    Counter &second = registry.counter("test.stable");
    EXPECT_EQ(&first, &second);

    first.add(3);
    registry.resetForTest();
    // The handle survives a reset (slots are zeroed, never freed).
    EXPECT_EQ(first.value(), 0u);
    first.add(2);
    EXPECT_EQ(registry.counter("test.stable").value(), 2u);
}

TEST_F(TraceTest, ProbePolledAtSnapshotTime)
{
    auto &registry = StatRegistry::instance();
    double source = 1.0;
    registry.registerProbe("test.probe", [&source] { return source; });
    source = 9.0;

    bool found = false;
    for (const auto &sample : registry.snapshot()) {
        if (sample.name == "test.probe") {
            found = true;
            EXPECT_DOUBLE_EQ(sample.value, 9.0);
        }
    }
    EXPECT_TRUE(found);
    // Replacing under the same name is allowed (module re-construction).
    registry.registerProbe("test.probe", [] { return 0.0; });
}

// Exporters ----------------------------------------------------------

TEST_F(TraceTest, ChromeTraceExportIsValidJson)
{
    auto &manager = TraceManager::instance();
    manager.enableAll();
    int owner = 0;
    manager.setTickSource(&owner, [] { return uint64_t{1000}; });
    {
        TRACE_SPAN(Core, "sim span");
    }
    manager.clearTickSource(&owner);
    instant(Category::Pheap, "host \"quoted\"\nname");
    counter(Category::Power, "12V rail", 11.8);

    json::Value doc;
    ASSERT_TRUE(json::parse(chromeTraceJson(), &doc));
    ASSERT_TRUE(doc.isObject());

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    size_t begins = 0;
    size_t ends = 0;
    size_t counters = 0;
    for (const auto &event : events->array) {
        ASSERT_TRUE(event.isObject());
        const json::Value *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue; // metadata records have no ts
        ASSERT_NE(event.find("ts"), nullptr);
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("name"), nullptr);
        if (ph->string == "B")
            ++begins;
        if (ph->string == "E")
            ++ends;
        if (ph->string == "C") {
            ++counters;
            const json::Value *args = event.find("args");
            ASSERT_NE(args, nullptr);
            const json::Value *value = args->find("value");
            ASSERT_NE(value, nullptr);
            EXPECT_DOUBLE_EQ(value->number, 11.8);
        }
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
    EXPECT_EQ(counters, 1u);

    // Sim-stamped records sit in the sim-time process (pid 1), host
    // records in the wall-clock process (pid 2).
    for (const auto &event : events->array) {
        const json::Value *name = event.find("name");
        if (name == nullptr)
            continue;
        if (name->string == "sim span") {
            EXPECT_DOUBLE_EQ(event.find("pid")->number, 1.0);
        }
        if (name->string.find("quoted") != std::string::npos) {
            EXPECT_DOUBLE_EQ(event.find("pid")->number, 2.0);
        }
    }

    const json::Value *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(other->find("recordsDropped")->number, 0.0);
}

TEST_F(TraceTest, MetricsJsonRoundTrips)
{
    auto &registry = StatRegistry::instance();
    registry.counter("test.export.counter").add(7);
    registry.gauge("test.export.gauge").set(1.5);

    json::Value doc;
    ASSERT_TRUE(json::parse(metricsJson(), &doc));
    ASSERT_TRUE(doc.isObject());
    const json::Value *counter = doc.find("test.export.counter");
    ASSERT_NE(counter, nullptr);
    EXPECT_DOUBLE_EQ(counter->number, 7.0);
    const json::Value *gauge = doc.find("test.export.gauge");
    ASSERT_NE(gauge, nullptr);
    EXPECT_DOUBLE_EQ(gauge->number, 1.5);
}

TEST_F(TraceTest, MetricsCsvHasHeaderAndRows)
{
    auto &registry = StatRegistry::instance();
    registry.counter("test.csv.counter").add(3);
    const std::string csv = metricsCsv();
    EXPECT_EQ(csv.rfind("name,value\n", 0), 0u);
    EXPECT_NE(csv.find("test.csv.counter,3\n"), std::string::npos);
}

TEST_F(TraceTest, JsonQuoteEscapesControlCharacters)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    json::Value value;
    ASSERT_TRUE(json::parse(jsonQuote(std::string("\x01\x02", 2)),
                            &value));
    EXPECT_EQ(value.string.size(), 2u);
}

TEST_F(TraceTest, JsonQuoteRoundTripsUtf8)
{
    // Multi-byte UTF-8 passes through jsonQuote verbatim (raw UTF-8
    // is valid JSON) and the parser must hand back identical bytes:
    // 2-byte (é), 3-byte (✓), and 4-byte (🔥) sequences.
    const std::string text = "caf\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x94\xa5";
    json::Value value;
    ASSERT_TRUE(json::parse(jsonQuote(text), &value));
    EXPECT_EQ(value.type, json::Value::Type::String);
    EXPECT_EQ(value.string, text);
}

TEST_F(TraceTest, JsonUnicodeEscapesDecodeToUtf8)
{
    // \uXXXX escapes decode to UTF-8 bytes, including an astral-plane
    // surrogate pair (U+1F525).
    json::Value value;
    ASSERT_TRUE(json::parse("\"\\u00e9 \\u2713 \\ud83d\\udd25\"",
                            &value));
    EXPECT_EQ(value.string,
              "\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x94\xa5");

    // Malformed escapes must be rejected, not silently mangled.
    EXPECT_FALSE(json::parse("\"\\ud83d\"", &value));  // lone high
    EXPECT_FALSE(json::parse("\"\\udd25\"", &value));  // lone low
    EXPECT_FALSE(json::parse("\"\\ud83d\\u0041\"", &value));
    EXPECT_FALSE(json::parse("\"\\uZZZZ\"", &value));
}

TEST_F(TraceTest, Utf8RecordNamesSurviveChromeExport)
{
    // A record name carrying multi-byte UTF-8 must round-trip through
    // the Chrome-trace exporter and the bundled parser — the same
    // path tools/trace_check validates in the trace_smoke ctest.
    auto &manager = TraceManager::instance();
    manager.enableAll();
    const char *name = "r\xc3\xa9gion \xe2\x9c\x93";
    instant(Category::Core, name);

    json::Value doc;
    ASSERT_TRUE(json::parse(chromeTraceJson(), &doc));
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool found = false;
    for (const auto &event : events->array) {
        const json::Value *event_name = event.find("name");
        if (event_name != nullptr && event_name->string == name)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(TraceTest, DroppedRecordsExportedToStatRegistry)
{
    // Satellite: the volatile ring's overflow count is a first-class
    // stat — the probe registered by TraceManager must report the
    // live dropped() value through StatRegistry snapshots.
    auto &manager = TraceManager::instance();
    manager.setCapacity(4);
    manager.enableAll();
    for (int i = 0; i < 10; ++i)
        instant(Category::Core, "spill");
    EXPECT_EQ(manager.dropped(), 6u);

    bool found = false;
    for (const auto &sample : StatRegistry::instance().snapshot()) {
        if (sample.name == "trace.dropped") {
            found = true;
            EXPECT_DOUBLE_EQ(sample.value, 6.0);
        }
    }
    EXPECT_TRUE(found);
}

// Satellite coverage: stats helpers used by the benches --------------

TEST_F(TraceTest, HistogramPercentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(95), 95.0, 1.5);
    EXPECT_NEAR(h.percentile(99), 99.0, 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(50), h.quantile(0.5));
}

TEST_F(TraceTest, RunningStatMergeEmptyCases)
{
    RunningStat filled;
    filled.add(1.0);
    filled.add(3.0);

    // Empty other: no change.
    RunningStat a = filled;
    a.merge(RunningStat{});
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);

    // Empty self: adopt other wholesale.
    RunningStat b;
    b.merge(filled);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
    EXPECT_DOUBLE_EQ(b.stddev(), filled.stddev());

    // Both empty: still empty, and safe to query.
    RunningStat c;
    c.merge(RunningStat{});
    EXPECT_EQ(c.count(), 0u);
    EXPECT_DOUBLE_EQ(c.mean(), 0.0);
}

// Environment configuration ------------------------------------------

TEST_F(TraceTest, ConfigureFromEnvParsesCategories)
{
    setenv("WSP_TRACE", "nvram,devices", 1);
    EXPECT_TRUE(TraceManager::instance().configureFromEnv());
    EXPECT_EQ(TraceManager::instance().enabledMask(),
              (1u << static_cast<unsigned>(Category::Nvram)) |
                  (1u << static_cast<unsigned>(Category::Devices)));
    unsetenv("WSP_TRACE");
}

TEST_F(TraceTest, LogLevelFromEnv)
{
    const LogLevel before = logLevel();
    setenv("WSP_LOG_LEVEL", "quiet", 1);
    configureLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setenv("WSP_LOG_LEVEL", "2", 1);
    configureLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    unsetenv("WSP_LOG_LEVEL");
    configureLogLevelFromEnv(); // unset: level unchanged
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

} // namespace
} // namespace wsp::trace
