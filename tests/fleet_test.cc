/**
 * @file
 * Fleet battery: rendezvous-placement properties, the node lifecycle
 * FSM with real mid-save kills, quorum reads/writes with retry and
 * backoff, anti-entropy repair, the degraded read-only tier, the
 * analytic-vs-simulated differential, and the NoReplicaDivergence
 * sweep over enumerated outage-train crash points.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "apps/cluster.h"
#include "fleet/fleet.h"
#include "fleet/fleet_sweep.h"
#include "fleet/rendezvous.h"
#include "test_seed.h"

using namespace wsp;
using namespace wsp::fleet;
using wsp::testing::testSeed;

// Rendezvous placement ------------------------------------------------

TEST(Rendezvous, ReplicaSetBasics)
{
    RendezvousHash ring;
    for (uint32_t id = 0; id < 8; ++id)
        ring.addNode(id);
    ring.addNode(3); // idempotent
    EXPECT_EQ(ring.nodes().size(), 8u);

    const auto set = ring.replicaSet(42, 3);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(std::set<uint32_t>(set.begin(), set.end()).size(), 3u);
    EXPECT_EQ(ring.primary(42), set[0]);
    // Deterministic across instances.
    RendezvousHash other;
    for (uint32_t id = 0; id < 8; ++id)
        other.addNode(id);
    EXPECT_EQ(other.replicaSet(42, 3), set);
    // Asking for more replicas than nodes returns them all.
    EXPECT_EQ(ring.replicaSet(7, 100).size(), 8u);
}

TEST(Rendezvous, ScoresSpreadPrimariesEvenly)
{
    RendezvousHash ring;
    const unsigned nodes = 8;
    for (uint32_t id = 0; id < nodes; ++id)
        ring.addNode(id);
    std::vector<unsigned> owned(nodes, 0);
    const unsigned keys = 4000;
    for (uint64_t key = 1; key <= keys; ++key)
        ++owned[ring.primary(key)];
    for (unsigned count : owned) {
        EXPECT_GT(count, keys / nodes / 2);
        EXPECT_LT(count, keys / nodes * 2);
    }
}

// Satellite 2: on join/leave only ~K/N keys move and replica sets are
// minimally disrupted. 10 seeds, re-seedable via WSP_TEST_SEED.
TEST(Rendezvous, MinimalDisruptionOnLeaveAndJoin)
{
    for (unsigned round = 0; round < 10; ++round) {
        const uint64_t seed = testSeed(0xd15201 + round);
        Rng rng(seed);
        const unsigned nodes = 6 + static_cast<unsigned>(rng.next(6));
        const unsigned r = 2 + static_cast<unsigned>(rng.next(2));
        const unsigned keys = 2000;
        const uint32_t victim =
            static_cast<uint32_t>(rng.next(nodes));

        RendezvousHash ring;
        for (uint32_t id = 0; id < nodes; ++id)
            ring.addNode(id);

        std::vector<std::vector<uint32_t>> before;
        before.reserve(keys);
        for (uint64_t key = 1; key <= keys; ++key)
            before.push_back(ring.replicaSet(key, r));

        // Leave: exactly the keys that listed the victim change, and
        // they gain exactly one new member; everything else is
        // untouched.
        ring.removeNode(victim);
        unsigned moved = 0;
        for (uint64_t key = 1; key <= keys; ++key) {
            const auto &old_set = before[key - 1];
            const auto new_set = ring.replicaSet(key, r);
            const bool had_victim =
                std::find(old_set.begin(), old_set.end(), victim) !=
                old_set.end();
            if (!had_victim) {
                EXPECT_EQ(new_set, old_set)
                    << "seed " << seed << " key " << key;
                continue;
            }
            ++moved;
            unsigned gained = 0;
            for (uint32_t node : new_set) {
                if (std::find(old_set.begin(), old_set.end(), node) ==
                    old_set.end())
                    ++gained;
                EXPECT_NE(node, victim);
            }
            EXPECT_EQ(gained, 1u) << "seed " << seed << " key " << key;
        }
        // ~r*K/N keys listed the victim; allow a wide statistical band.
        const double expected =
            static_cast<double>(r) * keys / nodes;
        EXPECT_GT(moved, expected * 0.5) << "seed " << seed;
        EXPECT_LT(moved, expected * 1.7) << "seed " << seed;

        // Join (the node returns): placement is memoryless, so every
        // replica set snaps back to exactly the original.
        ring.addNode(victim);
        for (uint64_t key = 1; key <= keys; ++key)
            EXPECT_EQ(ring.replicaSet(key, r), before[key - 1])
                << "seed " << seed << " key " << key;
    }
}

// Node lifecycle ------------------------------------------------------

TEST(FleetNode, CrashCaptureRebootKeepsState)
{
    FleetNodeConfig config;
    config.id = 0;
    config.seed = testSeed(0xf1ee70);
    FleetNode node(config);
    node.bootFresh();
    EXPECT_EQ(node.state(), NodeState::Up);
    EXPECT_TRUE(node.put(7, 70));
    EXPECT_TRUE(node.put(9, 90));

    // A wide window lets flush-on-fail complete: WSP restore.
    node.crash(fromMillis(80.0));
    EXPECT_EQ(node.state(), NodeState::Dark);
    EXPECT_FALSE(node.serving());

    const RestoreReport report = node.reboot();
    EXPECT_TRUE(report.usedWsp);
    EXPECT_EQ(node.state(), NodeState::Restoring);
    uint64_t value = 0;
    EXPECT_TRUE(node.get(7, &value));
    EXPECT_EQ(value, 70u);
    EXPECT_TRUE(node.get(9, &value));
    EXPECT_EQ(value, 90u);
    EXPECT_EQ(node.wspRecoveries(), 1u);
}

TEST(FleetNode, ColdRefillRebuildsFromSource)
{
    FleetNodeConfig config;
    config.id = 1;
    config.seed = testSeed(0xf1ee71);
    FleetNode node(config);
    node.setRefillSource([&](unsigned shard) {
        std::vector<std::pair<uint64_t, uint64_t>> pairs;
        for (uint64_t key = 1; key <= 32; ++key)
            if (node.shardOf(key) == shard)
                pairs.emplace_back(key, key * 11);
        return pairs;
    });
    node.bootFresh();
    node.put(1, 999); // will be discarded with the NVRAM image
    node.crash(fromMillis(80.0));

    node.rebootColdRefill();
    EXPECT_EQ(node.backendRefills(), 1u);
    uint64_t value = 0;
    EXPECT_TRUE(node.get(1, &value));
    EXPECT_EQ(value, 11u); // the backend's value, not the lost write
    EXPECT_TRUE(node.get(32, &value));
    EXPECT_EQ(value, 32u * 11);
}

// Fleet client plane --------------------------------------------------

TEST(Fleet, QuorumWritesReadsAndConvergence)
{
    FleetConfig config;
    config.nodes = 5;
    config.replication = 3;
    config.seed = testSeed(0xf1ee72);
    Fleet fleet(config);
    EXPECT_EQ(fleet.writeQuorum(), 2u); // majority of R=3

    for (uint64_t key = 1; key <= 40; ++key)
        EXPECT_TRUE(fleet.clientPut(key, key * 3));
    uint64_t value = 0;
    EXPECT_TRUE(fleet.clientGet(17, &value));
    EXPECT_EQ(value, 51u);
    EXPECT_TRUE(fleet.clientErase(17));
    EXPECT_FALSE(fleet.clientGet(17, &value));

    EXPECT_TRUE(fleet.checkReplicaConvergence().empty());
    EXPECT_EQ(fleet.stats().ackedWrites, 41u);
    // A miss is a successful read of an absent key, not a failure.
    EXPECT_EQ(fleet.stats().failed, 0u);
}

TEST(Fleet, WritesRejectedWithoutQuorumAndNotApplied)
{
    FleetConfig config;
    config.nodes = 3;
    config.replication = 3;
    config.seed = testSeed(0xf1ee73);
    Fleet fleet(config);
    ASSERT_TRUE(fleet.clientPut(5, 50));

    // Kill a majority with a long outage: writes cannot reach quorum
    // within the retry budget and must be rejected without mutating
    // any replica.
    fleet.killSubset(0b011, fromSeconds(30.0), fromMillis(80.0));
    EXPECT_FALSE(fleet.node(0).up());
    EXPECT_FALSE(fleet.node(1).up());
    EXPECT_FALSE(fleet.clientPut(5, 999));
    EXPECT_EQ(fleet.stats().rejectedWrites, 1u);
    EXPECT_GT(fleet.stats().retries, 0u);

    fleet.settle();
    EXPECT_TRUE(fleet.checkReplicaConvergence().empty());
    uint64_t value = 0;
    EXPECT_TRUE(fleet.clientGet(5, &value));
    EXPECT_EQ(value, 50u); // the rejected write never landed
}

// Storms and recovery policies ---------------------------------------

TEST(Fleet, StormWspLocalRecoversEveryVictim)
{
    FleetConfig config;
    config.nodes = 4;
    config.replication = 3;
    config.seed = testSeed(0xf1ee74);
    Fleet fleet(config);
    fleet.runTraffic(80, 0.7);
    const uint64_t acked_before = fleet.ackedWrites();
    ASSERT_GT(acked_before, 0u);

    const StormOutcome storm =
        fleet.runStorm(/*mask=*/0, fromSeconds(2.0), fromMillis(80.0));
    EXPECT_EQ(storm.victims, 4u);
    EXPECT_EQ(storm.wspRecoveries, 4u); // wide window: full saves
    EXPECT_EQ(storm.backendRefills, 0u);
    EXPECT_GT(storm.digestsExchanged, 0u);
    EXPECT_GT(storm.timeToFullCapacity, 0u);
    for (uint32_t id = 0; id < 4; ++id)
        EXPECT_TRUE(fleet.node(id).up()) << id;
    EXPECT_TRUE(noReplicaDivergence(fleet).empty());

    // The capacity timeline dips to zero (correlated kill-all) and
    // returns to one.
    const Series &capacity = fleet.capacityTimeline();
    EXPECT_EQ(capacity.minY(), 0.0);
    EXPECT_EQ(capacity.ys.back(), 1.0);
}

TEST(Fleet, MidSaveKillSubsetStaysConvergent)
{
    FleetConfig config;
    config.nodes = 5;
    config.replication = 3;
    config.seed = testSeed(0xf1ee75);
    // A 2 ms window tears the save mid-flight: victims come back via
    // salvage or cold refill, never a clean whole-image resume.
    Fleet fleet(config);
    fleet.runTraffic(60, 0.7);

    const StormOutcome storm =
        fleet.runStorm(/*mask=*/0b01010, fromSeconds(1.0),
                       fromMillis(2.0));
    EXPECT_EQ(storm.victims, 2u);
    EXPECT_EQ(storm.wspRecoveries +
                  storm.salvageBoots + storm.backendRefills,
              2u);
    EXPECT_TRUE(noReplicaDivergence(fleet).empty());
    // Survivors kept serving: every pre-storm acked write is intact.
    EXPECT_GT(fleet.ackedWrites(), 0u);
}

TEST(Fleet, BackendRefillPolicyDiscardsNvramButLosesNothing)
{
    FleetConfig config;
    config.nodes = 4;
    config.replication = 3;
    config.policy = RecoveryPolicy::BackendRefill;
    config.seed = testSeed(0xf1ee76);
    Fleet fleet(config);
    fleet.runTraffic(60, 0.7);

    const StormOutcome storm =
        fleet.runStorm(/*mask=*/0, fromSeconds(2.0), fromMillis(80.0));
    EXPECT_EQ(storm.backendRefills, 4u);
    EXPECT_EQ(storm.wspRecoveries, 0u);
    EXPECT_TRUE(noReplicaDivergence(fleet).empty());
}

TEST(Fleet, DegradedTierServesReadsDuringRepair)
{
    FleetConfig config;
    config.nodes = 3;
    config.replication = 3;
    config.policy = RecoveryPolicy::DegradedTier;
    config.seed = testSeed(0xf1ee77);
    // Big modelled state stretches the repair window so sampled reads
    // land while every node is still in the read-only tier.
    config.memoryPerServer = 256ull * kGiB;
    Fleet fleet(config);
    fleet.runTraffic(50, 1.0); // writes only: seed acked state

    const StormOutcome storm = fleet.runStorm(
        /*mask=*/0, fromSeconds(2.0), fromMillis(80.0), /*puts=*/0.0);
    EXPECT_EQ(storm.victims, 3u);
    EXPECT_GT(fleet.stats().degradedReads, 0u);
    EXPECT_TRUE(noReplicaDivergence(fleet).empty());
}

TEST(Fleet, OutageTrainRepeatedStormsStayConvergent)
{
    FleetConfig config;
    config.nodes = 3;
    config.replication = 2;
    config.seed = testSeed(0xf1ee78);
    Fleet fleet(config);
    for (unsigned cycle = 0; cycle < 3; ++cycle) {
        fleet.runTraffic(30, 0.7);
        fleet.runStorm(/*mask=*/1ull << (cycle % 3), fromSeconds(1.0),
                       cycle == 1 ? fromMillis(2.0) : fromMillis(80.0));
        EXPECT_TRUE(noReplicaDivergence(fleet).empty()) << cycle;
    }
}

// Rebalance -----------------------------------------------------------

TEST(Fleet, DecommissionRebalancesOntoSurvivors)
{
    FleetConfig config;
    config.nodes = 5;
    config.replication = 3;
    config.seed = testSeed(0xf1ee79);
    Fleet fleet(config);
    for (uint64_t key = 1; key <= 120; ++key)
        ASSERT_TRUE(fleet.clientPut(key, key));

    const RebalanceReport report = fleet.decommission(2);
    EXPECT_GT(report.keysMoved, 0u);
    EXPECT_EQ(report.bytesMoved, report.keysMoved * 16);
    EXPECT_GT(report.duration, 0u);
    EXPECT_EQ(fleet.node(2).state(), NodeState::Decommissioned);

    // Every key now resolves to surviving nodes only, fully caught up.
    for (uint64_t key = 1; key <= 120; ++key)
        for (uint32_t id : fleet.replicaSet(key))
            EXPECT_NE(id, 2u);
    EXPECT_TRUE(noReplicaDivergence(fleet).empty());
    uint64_t value = 0;
    EXPECT_TRUE(fleet.clientGet(60, &value));
    EXPECT_EQ(value, 60u);
}

// Satellite 1: differential against the analytic model ---------------

TEST(Fleet, DifferentialAgreesWithAnalyticClusterModel)
{
    FleetConfig config;
    config.nodes = 4;
    config.replication = 3;
    config.seed = testSeed(0xf1ee7a);
    config.memoryPerServer = 256ull * kGiB;
    Fleet fleet(config);

    // The closed-form model and the fleet's modelled plane must agree
    // exactly: same formulas, same inputs.
    const apps::StormReport analytic =
        apps::correlatedOutage(fleet.analytic());
    EXPECT_EQ(fleet.modeledRefill(config.nodes),
              analytic.backendRecovery);
    EXPECT_NEAR(toSeconds(fleet.modeledWspRecovery(config.nodes)),
                toSeconds(analytic.wspRecovery),
                1e-6);

    // And the *simulated* storm must land on the analytic WSP
    // recovery time within tolerance: the only extras are the
    // anti-entropy stream of the genuinely missed updates (tiny) and
    // event rounding.
    fleet.runTraffic(60, 0.7);
    const StormOutcome storm =
        fleet.runStorm(/*mask=*/0, fromSeconds(2.0), fromMillis(80.0));
    ASSERT_EQ(storm.wspRecoveries, 4u);
    const double simulated = toSeconds(storm.timeToFullCapacity);
    const double predicted = toSeconds(analytic.wspRecovery);
    EXPECT_NEAR(simulated, predicted, 0.05 * predicted + 1.0)
        << "simulated fleet drifted from the closed-form model";

    // The refill policy on the same fleet must likewise land on the
    // analytic storm estimate — and preserve the paper's regime gap.
    FleetConfig refill_config = config;
    refill_config.policy = RecoveryPolicy::BackendRefill;
    Fleet refill(refill_config);
    refill.runTraffic(60, 0.7);
    const StormOutcome refill_storm =
        refill.runStorm(/*mask=*/0, fromSeconds(2.0), fromMillis(80.0));
    const double refill_simulated =
        toSeconds(refill_storm.timeToFullCapacity);
    const double refill_predicted = toSeconds(analytic.backendRecovery);
    EXPECT_NEAR(refill_simulated, refill_predicted,
                0.05 * refill_predicted + 1.0);
    EXPECT_GT(refill_simulated, 5.0 * simulated);
}

// Satellite: schedule round-trip of the fleet fields -----------------

TEST(Fleet, CrashScheduleFleetFieldsRoundTrip)
{
    crashsim::CrashSchedule schedule = FleetSweep::defaultSchedule();
    schedule.fleetNodes = 7;
    schedule.fleetReplication = 2;
    schedule.fleetKillMask = 0b1010101;
    schedule.fleetPolicy = 2;

    const auto parsed =
        crashsim::CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->fleetNodes, 7u);
    EXPECT_EQ(parsed->fleetReplication, 2u);
    EXPECT_EQ(parsed->fleetKillMask, 0b1010101ull);
    EXPECT_EQ(parsed->fleetPolicy, 2);
    EXPECT_NE(schedule.summary().find("fleet=7/r2"), std::string::npos);

    // Validation: replication 0 on a fleet schedule is rejected.
    crashsim::CrashSchedule bad = schedule;
    bad.fleetReplication = 0;
    EXPECT_FALSE(
        crashsim::CrashSchedule::parse(bad.serialize()).has_value());
}

// Tentpole acceptance: the NoReplicaDivergence sweep ------------------

TEST(FleetSweep, EnumeratedOutageTrainSweepHolds)
{
    // Every distinguishable kill instant of the save pipeline —
    // including mid-save tears that force salvage or cold boots —
    // must leave the fleet convergent with no acked write lost.
    crashsim::CrashSchedule base = FleetSweep::defaultSchedule();
    base.seed = testSeed(0xf1ee7b);
    FleetSweep sweep(base);
    const FleetSweepReport report =
        sweep.sweepEnumerated(false, /*max_points=*/10);
    EXPECT_EQ(report.points, 10u);
    for (const auto &failure : report.failures)
        for (const auto &violation : failure.violations)
            ADD_FAILURE() << failure.schedule.summary() << ": "
                          << violation;
    EXPECT_TRUE(report.allHeld());
    // The sweep must exercise both recovery regimes: early tears fall
    // back, late instants resume via WSP.
    EXPECT_GT(report.wspRecoveries, 0u);
    EXPECT_GT(report.salvageBoots + report.backendRefills, 0u);
}

TEST(FleetSweep, FuzzedSchedulesHold)
{
    crashsim::CrashSchedule base = FleetSweep::defaultSchedule();
    base.ops = 32;
    FleetSweep sweep(base);
    const FleetSweepReport report =
        sweep.fuzz(/*runs=*/5, testSeed(0xf1ee7c));
    EXPECT_EQ(report.points, 5u);
    for (const auto &failure : report.failures)
        for (const auto &violation : failure.violations)
            ADD_FAILURE() << failure.schedule.summary() << ": "
                          << violation;
    EXPECT_TRUE(report.allHeld());
}
