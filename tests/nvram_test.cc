/**
 * @file
 * Unit tests for the NVRAM substrate: sparse memory, NVDIMM modules,
 * controller, address space.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "nvram/controller.h"
#include "nvram/nvdimm.h"
#include "nvram/nvram_space.h"
#include "nvram/sparse_memory.h"

namespace wsp {
namespace {

// SparseMemory ---------------------------------------------------------

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory mem(1 * kMiB);
    uint8_t buf[16] = {0xff};
    mem.read(1000, buf);
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.allocatedPages(), 0u);
}

TEST(SparseMemory, WriteReadRoundTrip)
{
    SparseMemory mem(1 * kMiB);
    const uint8_t data[] = {1, 2, 3, 4, 5};
    mem.write(12345, data);
    uint8_t out[5] = {};
    mem.read(12345, out);
    EXPECT_EQ(std::memcmp(data, out, 5), 0);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem(1 * kMiB);
    std::vector<uint8_t> data(SparseMemory::kPageSize + 100, 0xab);
    const uint64_t addr = SparseMemory::kPageSize - 50;
    mem.write(addr, data);
    EXPECT_EQ(mem.allocatedPages(), 3u);
    std::vector<uint8_t> out(data.size());
    mem.read(addr, out);
    EXPECT_EQ(data, out);
}

TEST(SparseMemory, U64RoundTrip)
{
    SparseMemory mem(64 * kKiB);
    mem.writeU64(8, 0x0123456789abcdefull);
    EXPECT_EQ(mem.readU64(8), 0x0123456789abcdefull);
    // Little-endian layout.
    uint8_t b = 0;
    mem.read(8, {&b, 1});
    EXPECT_EQ(b, 0xef);
}

TEST(SparseMemory, PoisonReadsPoisonByte)
{
    SparseMemory mem(64 * kKiB);
    mem.writeU64(0, 42);
    mem.poison();
    EXPECT_TRUE(mem.poisoned());
    uint8_t b = 0;
    mem.read(0, {&b, 1});
    EXPECT_EQ(b, SparseMemory::kPoisonByte);
}

TEST(SparseMemory, WriteAfterPoisonIsTrustworthy)
{
    SparseMemory mem(64 * kKiB);
    mem.poison();
    mem.writeU64(100, 7);
    EXPECT_EQ(mem.readU64(100), 7u);
    // Adjacent unwritten bytes in the same page stay poisoned.
    uint8_t b = 0;
    mem.read(200, {&b, 1});
    EXPECT_EQ(b, SparseMemory::kPoisonByte);
}

TEST(SparseMemory, ClearResetsPoison)
{
    SparseMemory mem(64 * kKiB);
    mem.poison();
    mem.clear();
    EXPECT_FALSE(mem.poisoned());
    uint8_t b = 0xff;
    mem.read(0, {&b, 1});
    EXPECT_EQ(b, 0);
}

TEST(SparseMemory, SnapshotIsDeepCopy)
{
    SparseMemory mem(64 * kKiB);
    mem.writeU64(0, 1);
    SparseMemory snap = mem.snapshot();
    mem.writeU64(0, 2);
    EXPECT_EQ(snap.readU64(0), 1u);
    EXPECT_EQ(mem.readU64(0), 2u);
}

TEST(SparseMemory, RestoreFromImage)
{
    SparseMemory mem(64 * kKiB);
    mem.writeU64(0, 1);
    SparseMemory snap = mem.snapshot();
    mem.writeU64(0, 99);
    mem.restoreFrom(snap);
    EXPECT_EQ(mem.readU64(0), 1u);
}

TEST(SparseMemory, ContentEquals)
{
    SparseMemory a(64 * kKiB);
    SparseMemory b(64 * kKiB);
    EXPECT_TRUE(a.contentEquals(b));
    a.writeU64(8, 5);
    EXPECT_FALSE(a.contentEquals(b));
    b.writeU64(8, 5);
    EXPECT_TRUE(a.contentEquals(b));
    // Explicit zeros equal untouched pages.
    a.writeU64(4096, 0);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(SparseMemory, PoisonedVsZeroNotEqual)
{
    SparseMemory a(64 * kKiB);
    SparseMemory b(64 * kKiB);
    a.poison();
    EXPECT_FALSE(a.contentEquals(b));
}

TEST(SparseMemory, CopyRangeEndingExactlyAtCapacity)
{
    const uint64_t cap = 64 * kKiB;
    SparseMemory src(cap);
    SparseMemory dst(cap);
    std::vector<uint8_t> tail(300, 0x7e);
    src.write(cap - tail.size(), tail);
    dst.copyRangeFrom(src, cap - 2 * SparseMemory::kPageSize,
                      2 * SparseMemory::kPageSize);
    std::vector<uint8_t> out(tail.size());
    dst.read(cap - tail.size(), out);
    EXPECT_EQ(out, tail);
    EXPECT_TRUE(dst.rangeEquals(src, cap - 2 * SparseMemory::kPageSize,
                                2 * SparseMemory::kPageSize));
}

TEST(SparseMemory, CopyRangeSubPageEndsAroundUnallocatedMiddle)
{
    // A sub-page head and tail with an unallocated source page in
    // between: the copy must bring the written ends over and erase
    // whatever the destination held across the untouched middle.
    const uint64_t page = SparseMemory::kPageSize;
    SparseMemory src(64 * kKiB);
    SparseMemory dst(64 * kKiB);
    const uint8_t head[] = {1, 2, 3};
    const uint8_t tail[] = {7, 8, 9};
    src.write(page - 100, head);       // page 0, near its end
    src.write(3 * page + 50, tail);    // page 3; pages 1-2 untouched
    std::vector<uint8_t> junk(4 * page, 0xcc);
    dst.write(0, junk); // stale content the copy must not leave behind

    const uint64_t base = page - 100;
    const uint64_t len = (3 * page + 50 + sizeof(tail)) - base;
    dst.copyRangeFrom(src, base, len);
    EXPECT_TRUE(dst.rangeEquals(src, base, len));
    uint8_t probe = 0;
    dst.read(2 * page, {&probe, 1}); // unallocated middle reads zero
    EXPECT_EQ(probe, 0);
    dst.read(base - 1, {&probe, 1}); // outside the range: untouched
    EXPECT_EQ(probe, 0xcc);
}

TEST(SparseMemory, CopyRangeFromPoisonedSource)
{
    SparseMemory src(64 * kKiB);
    SparseMemory dst(64 * kKiB);
    src.poison();
    const uint64_t base = SparseMemory::kPageSize / 2;
    dst.copyRangeFrom(src, base, 2 * SparseMemory::kPageSize);
    uint8_t probe = 0;
    dst.read(base, {&probe, 1});
    EXPECT_EQ(probe, SparseMemory::kPoisonByte);
    dst.read(base + 2 * SparseMemory::kPageSize - 1, {&probe, 1});
    EXPECT_EQ(probe, SparseMemory::kPoisonByte);
    EXPECT_TRUE(dst.rangeEquals(src, base, 2 * SparseMemory::kPageSize));
}

// Dirty tracking -------------------------------------------------------

TEST(SparseMemory, FreshMemoryIsConservativelyAllDirty)
{
    SparseMemory mem(64 * kKiB);
    EXPECT_TRUE(mem.allDirty());
    EXPECT_EQ(mem.dirtyPageCount(), mem.totalPages());
    EXPECT_EQ(mem.dirtyBytes(), mem.capacity());
    const uint64_t epoch = mem.dirtyEpoch();
    mem.resetDirty();
    EXPECT_FALSE(mem.allDirty());
    EXPECT_EQ(mem.dirtyPageCount(), 0u);
    EXPECT_EQ(mem.dirtyEpoch(), epoch + 1);
}

TEST(SparseMemory, WritesMarkPagesDirtyPageGranular)
{
    SparseMemory mem(64 * kKiB);
    mem.resetDirty();
    const uint8_t byte[] = {1};
    mem.write(100, byte);
    mem.write(200, byte); // same page: still one dirty page
    EXPECT_EQ(mem.dirtyPageCount(), 1u);
    mem.write(5 * SparseMemory::kPageSize, byte);
    EXPECT_EQ(mem.dirtyPageCount(), 2u);
    const std::vector<uint64_t> pages = mem.dirtyPagesDescending();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0], 5u);
    EXPECT_EQ(pages[1], 0u);
}

TEST(SparseMemory, WholesaleChangesReturnToAllDirty)
{
    SparseMemory mem(64 * kKiB);
    mem.resetDirty();
    mem.clear();
    EXPECT_TRUE(mem.allDirty());
    mem.resetDirty();
    mem.poison();
    EXPECT_TRUE(mem.allDirty());
    mem.resetDirty();
    SparseMemory image(64 * kKiB);
    mem.restoreFrom(image);
    EXPECT_TRUE(mem.allDirty());
}

TEST(SparseMemory, CopyRangeFromMarksDestinationDirty)
{
    SparseMemory src(64 * kKiB);
    SparseMemory dst(64 * kKiB);
    const uint8_t byte[] = {0x11};
    src.write(0, byte);
    dst.resetDirty();
    dst.copyRangeFrom(src, 0, SparseMemory::kPageSize);
    EXPECT_EQ(dst.dirtyPageCount(), 1u);
}

// NvdimmModule -----------------------------------------------------------

NvdimmConfig
smallDimm()
{
    NvdimmConfig config;
    config.capacityBytes = 1 * kMiB;
    config.flashChannels = 1;
    return config;
}

TEST(Nvdimm, AutoChannelsScaleWithCapacity)
{
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = 4 * kGiB;
    NvdimmModule dimm(queue, "d", config);
    EXPECT_EQ(dimm.flashChannels(), 4u);
    EXPECT_GT(dimm.savePowerWatts(), 0.0);
}

TEST(Nvdimm, SaveTimeUnderTenSecondsUpTo8GiB)
{
    // Paper section 2: save < 10 s for modules up to 8 GiB.
    EventQueue queue;
    for (uint64_t gib : {1, 2, 4, 8}) {
        NvdimmConfig config;
        config.capacityBytes = gib * kGiB;
        NvdimmModule dimm(queue, "d" + std::to_string(gib), config);
        EXPECT_LT(toSeconds(dimm.saveDuration()), 10.0) << gib << " GiB";
    }
}

TEST(Nvdimm, UltracapSuppliesAtLeastTwiceSaveTime)
{
    // Paper Fig. 2: the bank can power the module for at least twice
    // the save time.
    EventQueue queue;
    NvdimmModule dimm(queue, "d", NvdimmConfig{});
    const Tick supply = dimm.ultracap().supplyTime(dimm.savePowerWatts());
    EXPECT_GE(supply, 2 * dimm.saveDuration());
}

TEST(Nvdimm, HostAccessOnlyWhenActive)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    const uint8_t data[] = {9};
    dimm.hostWrite(0, data);
    uint8_t out = 0;
    dimm.hostRead(0, {&out, 1});
    EXPECT_EQ(out, 9);
    dimm.enterSelfRefresh();
    EXPECT_DEATH(dimm.hostWrite(0, data), "host write");
}

TEST(Nvdimm, SaveRestoreRoundTrip)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    const uint8_t data[] = {1, 2, 3};
    dimm.hostWrite(100, data);

    dimm.enterSelfRefresh();
    dimm.startSave();
    EXPECT_EQ(dimm.state(), NvdimmState::Saving);
    queue.run();
    EXPECT_EQ(dimm.state(), NvdimmState::SelfRefresh);
    EXPECT_TRUE(dimm.flashValid());
    EXPECT_EQ(dimm.savesCompleted(), 1u);

    // Clobber DRAM, restore from flash.
    dimm.exitSelfRefresh();
    const uint8_t junk[] = {7, 7, 7};
    dimm.hostWrite(100, junk);
    dimm.enterSelfRefresh();
    dimm.startRestore();
    queue.run();
    dimm.exitSelfRefresh();

    uint8_t out[3] = {};
    dimm.hostRead(100, out);
    EXPECT_EQ(std::memcmp(out, data, 3), 0);
}

TEST(Nvdimm, PowerLossWhileActiveUnarmedLosesContent)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    const uint8_t data[] = {5};
    dimm.hostWrite(0, data);
    dimm.hostPowerLost();
    queue.run();
    EXPECT_FALSE(dimm.flashValid());
    uint8_t out = 0;
    dimm.hostRead(0, {&out, 1});
    EXPECT_EQ(out, SparseMemory::kPoisonByte);
}

TEST(Nvdimm, PowerLossWhileArmedTriggersAutoSave)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    const uint8_t data[] = {5};
    dimm.hostWrite(0, data);
    dimm.arm();
    dimm.hostPowerLost();
    EXPECT_EQ(dimm.state(), NvdimmState::Saving);
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
    EXPECT_EQ(dimm.savesCompleted(), 1u);
}

TEST(Nvdimm, PowerLossDuringSaveDoesNotAbortIt)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    const uint8_t data[] = {5};
    dimm.hostWrite(0, data);
    dimm.enterSelfRefresh();
    dimm.startSave();
    dimm.hostPowerLost(); // save continues on ultracap power
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
}

TEST(Nvdimm, ExhaustedUltracapFailsSaveCleanly)
{
    EventQueue queue;
    NvdimmConfig config;
    config.capacityBytes = 8 * kGiB;
    config.flashChannels = 1; // ~64 s save on one channel
    config.savePowerWatts = 10.0;
    config.ultracap.ratedCapacitanceF = 1.0; // far too small
    NvdimmModule dimm(queue, "d", config);
    const uint8_t data[] = {5};
    dimm.hostWrite(0, data);
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    EXPECT_EQ(dimm.state(), NvdimmState::SaveFailed);
    EXPECT_FALSE(dimm.flashValid());
    EXPECT_EQ(dimm.savesCompleted(), 0u);
}

TEST(Nvdimm, RestoreRequiresFlashContent)
{
    // A partial (failed-save) image is restorable — the salvage path
    // reads back whatever suffix was programmed — but a module with
    // no flash content at all has nothing to restore.
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    dimm.enterSelfRefresh();
    EXPECT_DEATH(dimm.startRestore(), "without any flash content");
}

TEST(Nvdimm, PowerRestoredRechargesBank)
{
    EventQueue queue;
    NvdimmModule dimm(queue, "d", smallDimm());
    dimm.arm();
    dimm.hostPowerLost();
    queue.run();
    const double low = dimm.ultracap().voltage();
    EXPECT_LT(low, dimm.ultracap().config().maxVoltage);
    dimm.hostPowerRestored();
    EXPECT_DOUBLE_EQ(dimm.ultracap().voltage(),
                     dimm.ultracap().config().maxVoltage);
}

TEST(Nvdimm, IncrementalSaveProgramsOnlyDirtyPages)
{
    EventQueue queue;
    NvdimmConfig config = smallDimm();
    config.verifySaves = true;
    NvdimmModule dimm(queue, "d", config);
    const uint8_t data[] = {1, 2, 3};
    dimm.hostWrite(100, data);

    // First save has no baseline: full image.
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    EXPECT_EQ(dimm.lastSaveProgrammedBytes(), dimm.capacity());
    EXPECT_EQ(dimm.incrementalSavesCompleted(), 0u);
    dimm.exitSelfRefresh();

    // Dirty two pages; the next save programs exactly those.
    dimm.hostWrite(0, data);
    dimm.hostWrite(5 * SparseMemory::kPageSize, data);
    EXPECT_TRUE(dimm.incrementalEligible());
    EXPECT_EQ(dimm.pendingSaveBytes(), 2 * SparseMemory::kPageSize);
    EXPECT_LT(dimm.pendingSaveDuration(), dimm.saveDuration());
    EXPECT_LT(dimm.pendingSaveEnergy(), dimm.saveEnergy());
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
    EXPECT_EQ(dimm.incrementalSavesCompleted(), 1u);
    EXPECT_EQ(dimm.lastSaveProgrammedBytes(), 2 * SparseMemory::kPageSize);
    EXPECT_EQ(dimm.saveMismatches(), 0u);
}

TEST(Nvdimm, MediaFaultForcesNextSaveFull)
{
    EventQueue queue;
    NvdimmConfig config = smallDimm();
    config.verifySaves = true;
    NvdimmModule dimm(queue, "d", config);
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    dimm.exitSelfRefresh();

    // A silent media fault taints the baseline: a delta save on top
    // of the corrupted image would diverge from DRAM, so the engine
    // must fall back to a full program.
    dimm.injectFlashFault(MediaFaultKind::BitFlip, 64 * kKiB);
    EXPECT_FALSE(dimm.incrementalEligible());
    EXPECT_EQ(dimm.pendingSaveBytes(), dimm.capacity());
    const uint8_t data[] = {9};
    dimm.hostWrite(0, data);
    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
    EXPECT_EQ(dimm.incrementalSavesCompleted(), 0u);
    EXPECT_EQ(dimm.lastSaveProgrammedBytes(), dimm.capacity());
    EXPECT_EQ(dimm.saveMismatches(), 0u);
}

TEST(Nvdimm, LazyRestoreIsFastAndContentIdentical)
{
    EventQueue queue;
    NvdimmConfig config = smallDimm();
    config.lazyRestore = true;
    NvdimmModule dimm(queue, "d", config);
    const uint8_t data[] = {0xab, 0xcd};
    dimm.hostWrite(512, data);

    dimm.enterSelfRefresh();
    dimm.startSave();
    queue.run();
    dimm.exitSelfRefresh();

    // The mapping setup is what the boot path waits for, not the
    // capacity/bandwidth stream.
    EXPECT_LT(dimm.restoreDuration(), dimm.fullRestoreDuration());

    const uint8_t junk[] = {0, 0};
    dimm.hostWrite(512, junk);
    dimm.enterSelfRefresh();
    const Tick before = queue.now();
    dimm.startRestore();
    queue.run();
    EXPECT_LE(queue.now() - before, dimm.restoreDuration());
    dimm.exitSelfRefresh();
    EXPECT_EQ(dimm.lazyRestoresCompleted(), 1u);
    uint8_t out[2] = {};
    dimm.hostRead(512, out);
    EXPECT_EQ(std::memcmp(out, data, 2), 0);
}

// NvdimmController -------------------------------------------------------

TEST(NvdimmController, SaveAllRunsInParallel)
{
    EventQueue queue;
    NvdimmController controller(queue);
    std::vector<std::unique_ptr<NvdimmModule>> dimms;
    for (int i = 0; i < 4; ++i) {
        dimms.push_back(std::make_unique<NvdimmModule>(
            queue, "d" + std::to_string(i), smallDimm()));
        controller.attach(*dimms.back());
    }
    controller.saveAll();
    const Tick finished = queue.run();
    // Parallel: total time is one module's save, not four.
    EXPECT_NEAR(toSeconds(finished),
                toSeconds(dimms[0]->saveDuration()), 0.1);
    EXPECT_TRUE(controller.allFlashValid());
    EXPECT_TRUE(controller.allIdle());
    EXPECT_FALSE(controller.anySaveFailed());
}

TEST(NvdimmController, RestoreAllBarrierFiresOnce)
{
    EventQueue queue;
    NvdimmController controller(queue);
    NvdimmModule dimm(queue, "d", smallDimm());
    controller.attach(dimm);
    controller.saveAll();
    queue.run();

    int done_count = 0;
    controller.restoreAll([&] { ++done_count; });
    queue.run();
    EXPECT_EQ(done_count, 1);
    EXPECT_EQ(dimm.state(), NvdimmState::Active);
    EXPECT_EQ(dimm.restoresCompleted(), 1u);
}

TEST(NvdimmController, ArmDisarmFanOut)
{
    EventQueue queue;
    NvdimmController controller(queue);
    NvdimmModule a(queue, "a", smallDimm());
    NvdimmModule b(queue, "b", smallDimm());
    controller.attach(a);
    controller.attach(b);
    controller.armAll();
    EXPECT_TRUE(a.armed());
    EXPECT_TRUE(b.armed());
    controller.disarmAll();
    EXPECT_FALSE(a.armed());
    EXPECT_FALSE(b.armed());
}

TEST(NvdimmController, CommandSinkMapsCommands)
{
    EventQueue queue;
    NvdimmController controller(queue);
    NvdimmModule dimm(queue, "d", smallDimm());
    controller.attach(dimm);
    auto sink = controller.commandSink();
    sink(PowerMonitor::Command::Arm);
    EXPECT_TRUE(dimm.armed());
    sink(PowerMonitor::Command::Save);
    EXPECT_EQ(dimm.state(), NvdimmState::Saving);
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
}

TEST(NvdimmController, SaveAllIgnoresUnpoweredModules)
{
    // Regression: an armed module that already ran its hardware-
    // triggered save after host power loss is de-energized — its DRAM
    // is poisoned and it cannot process bus commands. A late software
    // save command (in flight when the power died) must not re-program
    // the poisoned DRAM over the good flash image.
    EventQueue queue;
    NvdimmController controller(queue);
    NvdimmModule dimm(queue, "d", smallDimm());
    controller.attach(dimm);
    const uint8_t data[] = {4, 2};
    dimm.hostWrite(0, data);
    dimm.enterSelfRefresh();
    dimm.arm();
    dimm.hostPowerLost(); // hardware save from the ultracap
    queue.run();
    EXPECT_TRUE(dimm.flashValid());
    EXPECT_EQ(dimm.savesCompleted(), 1u);

    controller.saveAll(); // the late command: must be a no-op
    queue.run();
    EXPECT_EQ(dimm.savesCompleted(), 1u);
    EXPECT_TRUE(dimm.flashValid());

    dimm.hostPowerRestored();
    dimm.enterSelfRefresh();
    dimm.startRestore();
    queue.run();
    dimm.exitSelfRefresh();
    uint8_t out[2] = {};
    dimm.hostRead(0, out);
    EXPECT_EQ(std::memcmp(out, data, 2), 0);
}

// NvramSpace ---------------------------------------------------------------

TEST(NvramSpace, ConcatenatesModules)
{
    EventQueue queue;
    NvdimmModule a(queue, "a", smallDimm());
    NvdimmModule b(queue, "b", smallDimm());
    NvramSpace space;
    space.addModule(a);
    space.addModule(b);
    EXPECT_EQ(space.capacity(), 2 * kMiB);
    EXPECT_EQ(space.moduleBase(0), 0u);
    EXPECT_EQ(space.moduleBase(1), 1 * kMiB);
}

TEST(NvramSpace, CrossModuleAccess)
{
    EventQueue queue;
    NvdimmModule a(queue, "a", smallDimm());
    NvdimmModule b(queue, "b", smallDimm());
    NvramSpace space;
    space.addModule(a);
    space.addModule(b);

    std::vector<uint8_t> data(100, 0x3c);
    const uint64_t addr = 1 * kMiB - 50;
    space.write(addr, data);
    std::vector<uint8_t> out(100);
    space.read(addr, out);
    EXPECT_EQ(data, out);

    // The split really landed in both modules.
    uint8_t b0 = 0;
    b.hostRead(0, {&b0, 1});
    EXPECT_EQ(b0, 0x3c);
}

TEST(NvramSpace, U64RoundTrip)
{
    EventQueue queue;
    NvdimmModule a(queue, "a", smallDimm());
    NvramSpace space;
    space.addModule(a);
    space.writeU64(128, 0xfeedfacecafebeefull);
    EXPECT_EQ(space.readU64(128), 0xfeedfacecafebeefull);
}

TEST(NvramSpace, OutOfRangeDies)
{
    EventQueue queue;
    NvdimmModule a(queue, "a", smallDimm());
    NvramSpace space;
    space.addModule(a);
    uint8_t b = 0;
    EXPECT_DEATH(space.read(2 * kMiB, {&b, 1}), "beyond NVRAM capacity");
}

} // namespace
} // namespace wsp
