/**
 * @file
 * Tests for the fault-tolerant flush-on-fail machinery: CRC64 and
 * salvage-directory encoding, the energy-margin health monitor,
 * tiered degraded-mode saves, media-fault quarantine with per-region
 * recovery, stale-generation rejection, and the acceptance sweep over
 * media-fault x drained-cap x degraded-tier schedules. The trust-mode
 * test proves the planted checksum-skipping bug is caught by the
 * invariant checkers, not silently revived.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/failure_injector.h"
#include "core/salvage_directory.h"
#include "core/save_routine.h"
#include "core/system.h"
#include "crashsim/crash_explorer.h"
#include "util/checksum.h"

namespace wsp {
namespace {

/** Small system: fast to simulate, no devices unless asked. */
SystemConfig
testConfig(bool with_devices = false)
{
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    if (!with_devices)
        config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(100.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    config.wsp.hostStackBootLatency = fromMillis(50.0);
    return config;
}

/** Write a recognizable pattern through the cache. */
void
writePattern(WspSystem &system, uint64_t base, uint64_t words,
             uint64_t seed)
{
    Rng rng(seed);
    for (uint64_t i = 0; i < words; ++i)
        system.cache().writeU64(base + i * 8, rng());
}

/** Check the pattern, reading through the cache. */
bool
checkPattern(WspSystem &system, uint64_t base, uint64_t words,
             uint64_t seed)
{
    Rng rng(seed);
    for (uint64_t i = 0; i < words; ++i) {
        if (system.cache().readU64(base + i * 8) != rng())
            return false;
    }
    return true;
}

// CRC64 -------------------------------------------------------------------

TEST(Crc64, EmptyInputPreservesSeedAndZerosHashNonzero)
{
    EXPECT_EQ(crc64({}), 0u);
    EXPECT_EQ(crc64({}, 0x1234u), 0x1234u);
    // An all-zero region must not CRC to zero (CRC-64/XZ inverts in
    // and out), so a scrubbed or stuck-at-zero flash page is
    // distinguishable from the directory's "nothing vouches" crc=0.
    const std::vector<uint8_t> zeros(4096, 0);
    EXPECT_NE(crc64(zeros), 0u);
}

TEST(Crc64, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> bytes(1000);
    Rng rng(7);
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng());

    const uint64_t one_shot = crc64(bytes);
    const auto span = std::span<const uint8_t>(bytes);
    for (size_t split : {size_t{0}, size_t{1}, size_t{333}, bytes.size()}) {
        const uint64_t first = crc64(span.first(split));
        EXPECT_EQ(crc64(span.subspan(split), first), one_shot)
            << "split at " << split;
    }
}

TEST(Crc64, DetectsSingleBitFlip)
{
    std::vector<uint8_t> bytes(256, 0x5a);
    const uint64_t clean = crc64(bytes);
    bytes[129] ^= 0x10;
    EXPECT_NE(crc64(bytes), clean);
}

// SalvageDirectory --------------------------------------------------------

TEST(SalvageDirectoryCodec, PersistReadRoundTrip)
{
    WspSystem system(testConfig());
    system.start();
    writePattern(system, 4096, 32, 11);
    writePattern(system, 16384, 512, 12);
    system.cache().wbinvd(); // regionCrc reads NVRAM, not the cache

    SalvageDirectory directory(system.cache(), 1 * kMiB);
    directory.registerRegion({"meta", 4096, 256, SaveTier::Metadata});
    directory.registerRegion({"bulk", 16384, 4096, SaveTier::Bulk});
    EXPECT_EQ(directory.savedBytes(SaveTier::Bulk), 256u + 4096u);
    EXPECT_EQ(directory.savedBytes(SaveTier::Metadata), 256u);

    const uint64_t checksum =
        directory.persist(system.memory(), 7, SaveTier::Bulk);

    const auto image = SalvageDirectory::read(system.memory(), 1 * kMiB);
    ASSERT_TRUE(image.has_value());
    EXPECT_EQ(image->generation, 7u);
    EXPECT_EQ(image->tierCut, SaveTier::Bulk);
    EXPECT_EQ(image->checksum, checksum);
    ASSERT_EQ(image->entries.size(), 2u);

    const SalvageDirectoryEntry &meta = image->entries.front();
    EXPECT_EQ(meta.name, "meta");
    EXPECT_EQ(meta.base, 4096u);
    EXPECT_EQ(meta.size, 256u);
    EXPECT_EQ(meta.tier, SaveTier::Metadata);
    EXPECT_TRUE(meta.saved);
    EXPECT_EQ(meta.crc,
              SalvageDirectory::regionCrc(system.memory(), 4096, 256));
    EXPECT_TRUE(image->entries.back().saved);
}

TEST(SalvageDirectoryCodec, TierCutMarksDroppedRegionsUnsaved)
{
    WspSystem system(testConfig());
    system.start();
    SalvageDirectory directory(system.cache(), 1 * kMiB);
    directory.registerRegion({"meta", 4096, 256, SaveTier::Metadata});
    directory.registerRegion({"bulk", 16384, 4096, SaveTier::Bulk});

    directory.persist(system.memory(), 3, SaveTier::Metadata);
    const auto image = SalvageDirectory::read(system.memory(), 1 * kMiB);
    ASSERT_TRUE(image.has_value());
    EXPECT_EQ(image->tierCut, SaveTier::Metadata);
    ASSERT_EQ(image->entries.size(), 2u);
    EXPECT_TRUE(image->entries.front().saved);
    EXPECT_FALSE(image->entries.back().saved);
    EXPECT_EQ(image->entries.back().crc, 0u); // nothing vouches for it
}

TEST(SalvageDirectoryCodec, CorruptHeaderOrEntryRejected)
{
    WspSystem system(testConfig());
    system.start();
    const uint64_t base = 1 * kMiB;
    SalvageDirectory directory(system.cache(), base);
    directory.registerRegion({"meta", 4096, 256, SaveTier::Metadata});
    directory.persist(system.memory(), 5, SaveTier::Bulk);
    ASSERT_TRUE(SalvageDirectory::read(system.memory(), base).has_value());

    // Flip the generation field under the header checksum.
    const uint64_t generation = system.memory().readU64(base + 8);
    system.memory().writeU64(base + 8, generation ^ 1);
    EXPECT_FALSE(SalvageDirectory::read(system.memory(), base).has_value());
    system.memory().writeU64(base + 8, generation);
    ASSERT_TRUE(SalvageDirectory::read(system.memory(), base).has_value());

    // Flip one byte of the first entry's name.
    const uint64_t name_word = system.memory().readU64(base + 64);
    system.memory().writeU64(base + 64, name_word ^ 0xff);
    EXPECT_FALSE(SalvageDirectory::read(system.memory(), base).has_value());
}

TEST(SalvageDirectoryCodec, RegisterRejectsOverlapAndDuplicate)
{
    WspSystem system(testConfig());
    system.start();
    SalvageDirectory directory(system.cache(), 1 * kMiB);
    directory.registerRegion({"meta", 4096, 256, SaveTier::Metadata});
    EXPECT_DEATH(
        directory.registerRegion({"other", 4200, 64, SaveTier::Bulk}),
        "overlap");
    EXPECT_DEATH(
        directory.registerRegion({"meta", 65536, 64, SaveTier::Bulk}),
        "duplicate");
    EXPECT_DEATH(
        directory.registerRegion({"dir", 1 * kMiB + 64, 64, SaveTier::Bulk}),
        "directory");
}

// Health monitor ----------------------------------------------------------

TEST(HealthMonitor, DrainFlipsDegradedAndRechargeRecovers)
{
    SystemConfig config = testConfig();
    config.wsp.healthCheckPeriod = fromMillis(1.0);
    // The 4 MiB modules need so little save energy (~0.2 J) that even
    // a bank drained to its ESR floor (~6 V) retains ~0.5 J; demand a
    // safety factor past that so the drain trips the monitor while a
    // full charge (hundreds of joules) still passes with ease.
    config.wsp.healthEnergyMargin = 4.0;
    WspSystem system(config);
    system.start();

    EnergyHealthMonitor *health = system.wsp().healthMonitor();
    ASSERT_NE(health, nullptr);
    EXPECT_TRUE(health->started());
    system.runFor(fromMillis(10.0));
    EXPECT_GT(health->checksRun(), 5u);
    EXPECT_FALSE(health->degraded());
    EXPECT_FALSE(system.wsp().degraded());
    EXPECT_GT(health->worstMarginJoules(), 0.0);

    // Drain one bank below its floor: the next self-test must flip the
    // platform into degraded mode.
    FailureInjector injector(system);
    injector.drainUltracap(0, 5.0);
    system.runFor(fromMillis(5.0));
    EXPECT_TRUE(health->degraded());
    EXPECT_TRUE(system.wsp().degraded());
    EXPECT_LT(health->worstMarginJoules(), 0.0);

    // A recharged bank restores the margin and clears degraded mode.
    system.memory().module(0).ultracap().rechargeFully();
    system.runFor(fromMillis(5.0));
    EXPECT_FALSE(health->degraded());
    EXPECT_FALSE(system.wsp().degraded());
    EXPECT_GE(health->transitions(), 2u);
}

// Degraded-mode save ------------------------------------------------------

TEST(DegradedSave, TierCutSavesMetaDropsBulkAndSalvages)
{
    // Forced degraded save with the paper's strawman device policy:
    // the save must skip device suspend, flush only the registered
    // tier regions, and the restore must come back in salvage mode —
    // metadata intact, bulk quarantined and handed to recovery.
    SystemConfig config = testConfig(true);
    config.wsp.devicePolicy = DevicePolicy::AcpiSuspendOnSave;
    config.wsp.forceDegradedSave = true; // cut defaults to Metadata
    WspSystem system(config);
    system.start();
    writePattern(system, 4096, 32, 11);
    writePattern(system, 16384, 512, 12);
    system.registerSalvageRegion({"meta", 4096, 256, SaveTier::Metadata});
    system.registerSalvageRegion({"bulk", 16384, 4096, SaveTier::Bulk});
    std::vector<std::string> recovered;
    system.setRegionRecovery([&](const RegionOutcome &region) {
        recovered.push_back(region.name);
    });

    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(1.0), [&] { backend_ran = true; });

    ASSERT_TRUE(outcome.save.has_value());
    EXPECT_TRUE(outcome.save->degraded);
    EXPECT_EQ(outcome.save->tierCut, SaveTier::Metadata);
    EXPECT_EQ(outcome.save->regionsDropped, 1u);
    EXPECT_TRUE(SaveRoutine::stepReached(*outcome.save,
                                         "flush tier regions (degraded)"));
    EXPECT_FALSE(SaveRoutine::stepReached(*outcome.save,
                                          "flush caches (all sockets)"));
    EXPECT_FALSE(
        SaveRoutine::stepReached(*outcome.save, "acpi device suspend"));
    EXPECT_NE(outcome.save->directoryChecksum, 0u);

    // Whole-system resume over a tier-cut image would be silent
    // corruption; the restore must salvage instead, without the
    // whole-store back-end rebuild.
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_TRUE(outcome.restore.salvageMode);
    EXPECT_FALSE(backend_ran);
    EXPECT_EQ(outcome.restore.imageTierCut, SaveTier::Metadata);
    EXPECT_EQ(outcome.restore.regionsSalvaged, 1u);
    EXPECT_EQ(outcome.restore.regionsQuarantined, 1u);
    EXPECT_EQ(outcome.restore.regionsRecovered, 1u);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_EQ(recovered.front(), "bulk");

    // Metadata survived verbatim; bulk was scrubbed before the hook.
    EXPECT_TRUE(checkPattern(system, 4096, 32, 11));
    for (uint64_t i = 0; i < 512; ++i)
        ASSERT_EQ(system.cache().readU64(16384 + i * 8), 0u) << i;
    EXPECT_TRUE(system.wsp().running());
}

// Generation binding ------------------------------------------------------

TEST(Generation, StaleFlashImageRejectedOnAdoptedBoot)
{
    // After a successful WSP cycle the flash still holds the consumed
    // image — with its then-valid marker — but the modules' epoch
    // registers have moved on. Socketing those DIMMs into a fresh
    // chassis must NOT resurrect the old image.
    SystemConfig config = testConfig();
    WspSystem donor(config);
    donor.start();
    writePattern(donor, 0, 128, 9);
    auto first = donor.powerFailAndRestore(fromMillis(5.0),
                                           fromSeconds(1.0));
    ASSERT_TRUE(first.restore.usedWsp);

    const NvramImage image = donor.captureNvramImage();
    WspSystem chassis(config);
    bool backend_ran = false;
    const RestoreReport report =
        chassis.bootFromImage(image, [&] { backend_ran = true; });

    EXPECT_TRUE(report.flashValid);
    EXPECT_TRUE(report.markerValid);
    EXPECT_FALSE(report.generationOk);
    EXPECT_FALSE(report.usedWsp);
    EXPECT_FALSE(report.salvageMode); // no directory from that save
    EXPECT_TRUE(backend_ran);
}

} // namespace
} // namespace wsp

namespace wsp::crashsim {
namespace {

/** Fast salvage-regime scenario for the schedule-driven tests. */
CrashSchedule
salvageSchedule()
{
    CrashSchedule schedule;
    schedule.ops = 48;
    schedule.outage = fromMillis(500.0);
    schedule.window = fromMillis(200.0); // the whole pipeline fits
    schedule.salvage = true;
    return schedule;
}

// Schedule plumbing -------------------------------------------------------

TEST(SalvageSchedule, SerializationRoundTripsNewFields)
{
    CrashSchedule schedule = salvageSchedule();
    schedule.mediaFaults = 3;
    schedule.mediaFaultKind = 2;
    schedule.mediaFaultSeed = 0xfeed;
    schedule.degradeTier = 1;
    schedule.dropSaveCommands = 2;
    schedule.trustDirectory = true;

    const auto parsed = CrashSchedule::parse(schedule.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == schedule);
    const std::string summary = parsed->summary();
    EXPECT_NE(summary.find("salvage"), std::string::npos);
    EXPECT_NE(summary.find("media-faults=3"), std::string::npos);
    EXPECT_NE(summary.find("degrade-tier=1"), std::string::npos);
    EXPECT_NE(summary.find("TRUST-DIR"), std::string::npos);
}

TEST(SalvageSchedule, ParseRejectsBadTierAndFaultKind)
{
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "degrade_tier=2\n")
                     .has_value());
    EXPECT_FALSE(CrashSchedule::parse("wsp-crash-schedule v1\n"
                                      "media_fault_kind=3\n")
                     .has_value());
}

TEST(SalvageSchedule, PlannedFaultsAreDeterministicAndGated)
{
    CrashSchedule schedule = salvageSchedule();
    schedule.mediaFaults = 4;
    schedule.mediaFaultSeed = 42;
    const auto faults = plannedMediaFaults(schedule, 2, 4 * kMiB);
    ASSERT_EQ(faults.size(), 4u);
    // Fault 0 always lands in module 0's KV region so every salvage
    // sweep exercises at least one quarantine.
    EXPECT_EQ(faults.front().module, 0u);
    EXPECT_LT(faults.front().addr, 64u * kKiB);
    EXPECT_EQ(plannedMediaFaults(schedule, 2, 4 * kMiB), faults);

    CrashSchedule off = schedule;
    off.salvage = false;
    EXPECT_TRUE(plannedMediaFaults(off, 2, 4 * kMiB).empty());
    off = schedule;
    off.mediaFaults = 0;
    EXPECT_TRUE(plannedMediaFaults(off, 2, 4 * kMiB).empty());
}

// Media faults ------------------------------------------------------------

TEST(MediaFault, BitFlipInKvRegionQuarantinedAndRecovered)
{
    CrashSchedule schedule = salvageSchedule();
    schedule.mediaFaults = 1;
    schedule.mediaFaultKind = 0; // bit flip: always corrupts content
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_TRUE(result.held()) << (result.violations.empty()
                                       ? ""
                                       : result.violations.front());
    // The fault hit a KV region under an otherwise intact image: the
    // machine whole-resumes while exactly the faulted region is
    // quarantined and rebuilt per shard.
    EXPECT_TRUE(result.restore.usedWsp);
    EXPECT_GE(result.restore.regionsQuarantined, 1u);
    EXPECT_EQ(result.restore.regionsRecovered,
              result.restore.regionsQuarantined);
    EXPECT_GT(result.restore.regionsSalvaged, 0u);
}

TEST(MediaFault, TrustDirectoryBugIsCaught)
{
    // The planted bug: restore trusts the save-time directory and
    // skips the per-region CRC re-verification, silently reviving
    // media-faulted bytes. The checkers must reject the run.
    CrashSchedule schedule = salvageSchedule();
    schedule.mediaFaults = 2;
    schedule.mediaFaultKind = 0;
    schedule.trustDirectory = true;
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_FALSE(result.held())
        << "checksum-skipping restore escaped every invariant";
}

// Degraded schedules ------------------------------------------------------

TEST(DegradedSchedule, ForcedTierCutsSalvageCleanly)
{
    for (int tier : {0, 1}) {
        CrashSchedule schedule = salvageSchedule();
        schedule.degradeTier = tier;
        const CrashPointResult result =
            CrashExplorer::runSchedule(schedule);
        EXPECT_TRUE(result.held())
            << "tier " << tier << ": "
            << (result.violations.empty() ? ""
                                          : result.violations.front());
        EXPECT_FALSE(result.restore.usedWsp) << "tier " << tier;
        EXPECT_TRUE(result.restore.salvageMode) << "tier " << tier;
        // A Core-only cut drops every KV region; a Metadata cut keeps
        // the shard headers.
        EXPECT_GE(result.restore.regionsQuarantined,
                  tier == 0 ? 2u : 1u);
    }
}

TEST(DegradedSchedule, DroppedSaveCommandIsRetried)
{
    CrashSchedule schedule = salvageSchedule();
    schedule.degradeTier = 1;
    schedule.dropSaveCommands = 1;
    const CrashPointResult result = CrashExplorer::runSchedule(schedule);
    EXPECT_TRUE(result.held()) << (result.violations.empty()
                                       ? ""
                                       : result.violations.front());
    // The retry re-issued the lost command, so the image is usable and
    // the tier-cut restore still salvages.
    EXPECT_TRUE(result.restore.salvageMode);
}

// Acceptance sweep: media faults x drained caps x degraded tiers ----------

TEST(SalvageAcceptance, FaultStormGridHolds)
{
    std::vector<std::string> failures;
    size_t salvage_boots = 0;
    size_t quarantines = 0;
    for (int tier : {-1, 0, 1}) {
        for (unsigned faults : {0u, 1u, 3u}) {
            for (int drain : {-1, 0}) {
                CrashSchedule schedule = salvageSchedule();
                schedule.degradeTier = tier;
                schedule.mediaFaults = faults;
                schedule.mediaFaultSeed = 17 * faults + tier + 5;
                schedule.drainModule = drain;
                schedule.drainVoltage = drain >= 0 ? 5.0 : 0.0;
                const CrashPointResult result =
                    CrashExplorer::runSchedule(schedule);
                for (const std::string &violation : result.violations)
                    failures.push_back(schedule.summary() + " - " +
                                       violation);
                salvage_boots += result.restore.salvageMode ? 1 : 0;
                quarantines += result.restore.regionsQuarantined;
            }
        }
    }
    EXPECT_TRUE(failures.empty())
        << failures.size() << " violations; first: " << failures.front();
    // The grid must actually exercise the salvage machinery, not just
    // whole-resume its way through.
    EXPECT_GT(salvage_boots, 0u);
    EXPECT_GT(quarantines, 0u);
}

} // namespace
} // namespace wsp::crashsim
