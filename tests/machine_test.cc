/**
 * @file
 * Unit tests for the machine substrate: contexts, caches, platforms.
 */

#include <gtest/gtest.h>

#include <vector>

#include "machine/cache.h"
#include "machine/cpu_context.h"
#include "machine/machine.h"
#include "nvram/nvdimm.h"
#include "nvram/nvram_space.h"

namespace wsp {
namespace {

// CpuContext -----------------------------------------------------------

TEST(CpuContext, SerializeRoundTrip)
{
    Rng rng(1);
    CpuContext ctx;
    ctx.randomize(rng);
    ctx.apicId = 5;
    std::vector<uint8_t> image(CpuContext::serializedSize());
    ctx.serialize(image);
    const CpuContext back = CpuContext::deserialize(image);
    EXPECT_EQ(ctx, back);
}

TEST(CpuContext, RandomizeChangesState)
{
    Rng rng(2);
    CpuContext a;
    CpuContext b;
    b.randomize(rng);
    EXPECT_NE(a, b);
}

TEST(CpuContext, ReservedFlagBitAlwaysSet)
{
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        CpuContext ctx;
        ctx.randomize(rng);
        EXPECT_TRUE(ctx.rflags & 0x2);
        EXPECT_EQ(ctx.cr3 & 0xfff, 0u); // page aligned
    }
}

// CacheModel -----------------------------------------------------------

struct CacheFixture : ::testing::Test
{
    CacheFixture()
        : dimm(queue, "d",
               [] {
                   NvdimmConfig config;
                   config.capacityBytes = 4 * kMiB;
                   config.flashChannels = 1;
                   return config;
               }())
    {
        space.addModule(dimm);
    }

    CacheModel
    makeCache(uint64_t capacity = 64 * kKiB)
    {
        return CacheModel("L3", capacity, CacheTiming{}, space);
    }

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
};

TEST_F(CacheFixture, WriteStaysInCacheUntilFlush)
{
    CacheModel cache = makeCache();
    cache.writeU64(128, 42);
    EXPECT_EQ(cache.readU64(128), 42u);
    // NVRAM does not see it yet: the line is dirty.
    EXPECT_EQ(space.readU64(128), 0u);
    EXPECT_EQ(cache.dirtyLines(), 1u);

    cache.flushLine(128);
    EXPECT_EQ(space.readU64(128), 42u);
    EXPECT_EQ(cache.dirtyLines(), 0u);
}

TEST_F(CacheFixture, ReadThroughForCleanLines)
{
    CacheModel cache = makeCache();
    space.writeU64(64, 7);
    EXPECT_EQ(cache.readU64(64), 7u);
    EXPECT_EQ(cache.dirtyLines(), 0u);
}

TEST_F(CacheFixture, PartialLineWritePreservesRest)
{
    CacheModel cache = makeCache();
    space.writeU64(0, 0x1111111111111111ull);
    space.writeU64(8, 0x2222222222222222ull);
    // Dirty only the second word of the line.
    cache.writeU64(8, 0x3333333333333333ull);
    EXPECT_EQ(cache.readU64(0), 0x1111111111111111ull);
    cache.wbinvd();
    EXPECT_EQ(space.readU64(0), 0x1111111111111111ull);
    EXPECT_EQ(space.readU64(8), 0x3333333333333333ull);
}

TEST_F(CacheFixture, WbinvdWritesBackEverything)
{
    CacheModel cache = makeCache();
    Rng rng(4);
    cache.fillDirty(0, 16 * kKiB, rng);
    EXPECT_EQ(cache.dirtyBytes(), 16 * kKiB);
    cache.wbinvd();
    EXPECT_EQ(cache.dirtyBytes(), 0u);
    // Data visible in NVRAM afterwards: compare via the cache (which
    // now reads through).
    Rng rng2(4);
    CacheModel check = makeCache();
    std::vector<uint8_t> expect(64);
    std::vector<uint8_t> got(64);
    for (uint64_t addr = 0; addr < 16 * kKiB; addr += 64) {
        for (auto &byte : expect)
            byte = static_cast<uint8_t>(rng2());
        space.read(addr, got);
        EXPECT_EQ(expect, got) << "line at " << addr;
    }
}

TEST_F(CacheFixture, EvictionWritesBackLru)
{
    CacheModel cache = makeCache(2 * CacheModel::kLineSize);
    cache.writeU64(0, 1);    // line 0
    cache.writeU64(64, 2);   // line 1
    cache.writeU64(128, 3);  // line 2 -> evicts line 0 (LRU)
    EXPECT_EQ(cache.dirtyLines(), 2u);
    EXPECT_EQ(space.readU64(0), 1u);  // written back
    EXPECT_EQ(space.readU64(64), 0u); // still dirty
}

TEST_F(CacheFixture, RecencyRefreshOnRewrite)
{
    CacheModel cache = makeCache(2 * CacheModel::kLineSize);
    cache.writeU64(0, 1);   // line 0
    cache.writeU64(64, 2);  // line 1
    cache.writeU64(0, 10);  // refresh line 0
    cache.writeU64(128, 3); // evicts line 1 now
    EXPECT_EQ(space.readU64(64), 2u);
    EXPECT_EQ(space.readU64(0), 0u); // line 0 still cached
    EXPECT_EQ(cache.readU64(0), 10u);
}

TEST_F(CacheFixture, WbinvdCostNearlyFlatInDirtyBytes)
{
    CacheModel cache = makeCache();
    const Tick empty_cost = cache.wbinvdCost();
    Rng rng(5);
    cache.fillDirty(0, 64 * kKiB, rng);
    const Tick full_cost = cache.wbinvdCost();
    EXPECT_GT(full_cost, empty_cost);
    // "Little dependence on the number of dirty cache lines" (Fig. 8):
    // full vs empty differs by well under 10%.
    EXPECT_LT(static_cast<double>(full_cost - empty_cost) /
                  static_cast<double>(empty_cost),
              0.10);
}

TEST_F(CacheFixture, ClflushCostScalesWithLines)
{
    CacheModel cache = makeCache();
    EXPECT_EQ(cache.clflushLoopCost(100), 100 * CacheTiming{}.clflushPerLine);
    EXPECT_LT(cache.clflushLoopCost(1), cache.clflushLoopCost(1000));
}

TEST_F(CacheFixture, DropDirtyLosesData)
{
    CacheModel cache = makeCache();
    cache.writeU64(0, 99);
    cache.dropDirty();
    EXPECT_EQ(cache.dirtyBytes(), 0u);
    EXPECT_EQ(cache.readU64(0), 0u); // NVRAM never saw the write
}

TEST_F(CacheFixture, FillDirtyBeyondCapacityDies)
{
    CacheModel cache = makeCache(2 * CacheModel::kLineSize);
    Rng rng(6);
    EXPECT_DEATH(cache.fillDirty(0, 4 * CacheModel::kLineSize, rng),
                 "exceeds cache capacity");
}

// Flat vs reference line store --------------------------------------------
//
// The serving hot path runs on the flat line store; the verbatim
// map/list/set implementation survives as LineStore::Reference. Both
// must be observationally identical: same read results, same dirty
// accounting, same eviction order (the write-back observer sees the
// same sequence), same partition directory counts, and the same final
// NVRAM image. The differential drives both through one random op
// stream and compares after every step.

struct StoreRig
{
    explicit StoreRig(CacheModel::LineStore kind,
                      uint64_t capacity = 8 * CacheModel::kLineSize)
        : dimm(queue, "d",
               [] {
                   NvdimmConfig config;
                   config.capacityBytes = 4 * kMiB;
                   config.flashChannels = 1;
                   return config;
               }())
    {
        space.addModule(dimm);
        cache.emplace("L3", capacity, CacheTiming{}, space, kind);
        cache->setWritebackObserver([this](uint64_t base, bool lost) {
            events.emplace_back(base, lost);
        });
    }

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
    std::optional<CacheModel> cache;
    std::vector<std::pair<uint64_t, bool>> events;
    size_t seen = 0;

    std::vector<std::pair<uint64_t, bool>> drainEvents()
    {
        std::vector<std::pair<uint64_t, bool>> fresh(
            events.begin() + static_cast<ptrdiff_t>(seen), events.end());
        seen = events.size();
        return fresh;
    }
};

TEST(LineStoreDifferential, FlatMatchesReferenceUnderRandomTraffic)
{
    StoreRig flat(CacheModel::LineStore::Flat);
    StoreRig ref(CacheModel::LineStore::Reference);
    ASSERT_EQ(flat.cache->lineStore(), CacheModel::LineStore::Flat);
    ASSERT_EQ(ref.cache->lineStore(), CacheModel::LineStore::Reference);

    // 64 addressable lines against an 8-line cache: every few writes
    // evict, so the LRU order and observer sequence get a workout.
    const uint64_t range = 64 * CacheModel::kLineSize;
    Rng rng(20260808);
    std::vector<uint8_t> buf_a(256);
    std::vector<uint8_t> buf_b(256);

    for (int step = 0; step < 20000; ++step) {
        const auto kind = rng.next(16);
        bool ordered = true; // exact observer-order comparison below
        if (kind < 6) {
            const uint64_t addr = rng.next(range - 8);
            const uint64_t value = rng();
            flat.cache->writeU64(addr, value);
            ref.cache->writeU64(addr, value);
        } else if (kind < 9) {
            const uint64_t addr = rng.next(range - 8);
            EXPECT_EQ(flat.cache->readU64(addr), ref.cache->readU64(addr));
        } else if (kind < 11) {
            const size_t len = 1 + rng.next(200);
            const uint64_t addr = rng.next(range - len);
            for (size_t i = 0; i < len; ++i)
                buf_a[i] = static_cast<uint8_t>(rng());
            flat.cache->write(addr, std::span<const uint8_t>(buf_a.data(),
                                                             len));
            ref.cache->write(addr, std::span<const uint8_t>(buf_a.data(),
                                                            len));
        } else if (kind < 13) {
            const size_t len = 1 + rng.next(200);
            const uint64_t addr = rng.next(range - len);
            flat.cache->read(addr, std::span<uint8_t>(buf_a.data(), len));
            ref.cache->read(addr, std::span<uint8_t>(buf_b.data(), len));
            EXPECT_TRUE(std::equal(buf_a.begin(), buf_a.begin() + len,
                                   buf_b.begin()));
        } else if (kind == 13) {
            const uint64_t addr = rng.next(range);
            EXPECT_EQ(flat.cache->flushLine(addr),
                      ref.cache->flushLine(addr));
        } else if (kind == 14) {
            const unsigned workers = 1 + rng.next(4);
            for (unsigned w = 0; w < workers; ++w) {
                EXPECT_EQ(flat.cache->partitionDirtyLines(w, workers),
                          ref.cache->partitionDirtyLines(w, workers));
            }
        } else {
            // Partition flush drains one worker's bucket; the two
            // directories iterate in different orders, so compare the
            // event sets, not the sequence.
            const unsigned workers = 1 + rng.next(4);
            const unsigned worker = rng.next(workers);
            flat.cache->flushPartition(worker, workers);
            ref.cache->flushPartition(worker, workers);
            ordered = false;
        }

        EXPECT_EQ(flat.cache->dirtyLines(), ref.cache->dirtyLines());
        auto fe = flat.drainEvents();
        auto re = ref.drainEvents();
        if (!ordered) {
            std::sort(fe.begin(), fe.end());
            std::sort(re.begin(), re.end());
        }
        ASSERT_EQ(fe, re) << "observer divergence at step " << step;

        if (step % 4096 == 4095) {
            EXPECT_EQ(flat.cache->wbinvd(), ref.cache->wbinvd());
            ASSERT_EQ(flat.drainEvents(), ref.drainEvents())
                << "wbinvd drain order diverged at step " << step;
        }
    }

    // Final drain, then the NVRAM images must agree byte for byte.
    flat.cache->wbinvd();
    ref.cache->wbinvd();
    EXPECT_EQ(flat.drainEvents(), ref.drainEvents());
    EXPECT_EQ(flat.cache->dirtyLines(), 0u);
    EXPECT_EQ(ref.cache->dirtyLines(), 0u);
    std::vector<uint8_t> img_a(range);
    std::vector<uint8_t> img_b(range);
    flat.space.read(0, img_a);
    ref.space.read(0, img_b);
    EXPECT_EQ(img_a, img_b);
}

TEST(LineStoreDifferential, DropDirtyReportsSameLostLines)
{
    StoreRig flat(CacheModel::LineStore::Flat);
    StoreRig ref(CacheModel::LineStore::Reference);
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const uint64_t addr = rng.next(32 * CacheModel::kLineSize);
        flat.cache->writeU64(addr, i);
        ref.cache->writeU64(addr, i);
    }
    flat.drainEvents();
    ref.drainEvents();
    flat.cache->dropDirty();
    ref.cache->dropDirty();
    auto fe = flat.drainEvents();
    auto re = ref.drainEvents();
    std::sort(fe.begin(), fe.end());
    std::sort(re.begin(), re.end());
    EXPECT_EQ(fe, re);
    EXPECT_EQ(flat.cache->dirtyLines(), 0u);
    EXPECT_EQ(ref.cache->dirtyLines(), 0u);
}

TEST(LineStoreDifferential, LineRefApiMatchesWordAccess)
{
    StoreRig flat(CacheModel::LineStore::Flat);
    StoreRig ref(CacheModel::LineStore::Reference);

    // Reference store never exposes lines: callers must fall back,
    // which keeps the two stores behaviourally interchangeable.
    ref.cache->writeU64(0, 1);
    EXPECT_EQ(ref.cache->peekLine(0), nullptr);
    EXPECT_EQ(ref.cache->touchLine(0), nullptr);
    EXPECT_FALSE(ref.cache->findLineMut(0));

    // Flat store: a dirty line is visible through the pointer and
    // writes through it are visible to word reads.
    flat.cache->writeU64(0, 0x1122334455667788ull);
    const uint8_t *line = flat.cache->peekLine(0);
    ASSERT_NE(line, nullptr);
    uint64_t word = 0;
    std::memcpy(&word, line, 8);
    EXPECT_EQ(word, 0x1122334455667788ull);
    EXPECT_EQ(flat.cache->peekLine(CacheModel::kLineSize), nullptr);

    auto mut = flat.cache->findLineMut(0);
    ASSERT_TRUE(mut);
    const uint64_t patched = 0xdeadbeefull;
    flat.cache->touchLineRef(mut);
    std::memcpy(mut.data + 8, &patched, 8);
    EXPECT_EQ(flat.cache->readU64(8), patched);

    // touchLine refreshes recency exactly as a write would: fill the
    // cache, touch the oldest line, and the *second*-oldest must be
    // the eviction victim.
    StoreRig lru(CacheModel::LineStore::Flat, 2 * CacheModel::kLineSize);
    lru.cache->writeU64(0 * CacheModel::kLineSize, 1);
    lru.cache->writeU64(1 * CacheModel::kLineSize, 2);
    ASSERT_NE(lru.cache->touchLine(0), nullptr);
    lru.cache->writeU64(2 * CacheModel::kLineSize, 3); // evicts line 1
    auto events = lru.drainEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].first, CacheModel::kLineSize);
    EXPECT_FALSE(events[0].second);
}

// Platform presets --------------------------------------------------------

TEST(Platforms, Table2WbinvdCalibration)
{
    // Table 2: worst-case (all dirty) flush times.
    EventQueue queue;
    NvdimmConfig dimm_config;
    dimm_config.capacityBytes = 64 * kMiB;
    NvdimmModule dimm(queue, "d", dimm_config);
    NvramSpace space;
    space.addModule(dimm);

    {
        PlatformSpec spec = platformIntelC5528();
        CacheModel cache("c", spec.cachePerSocket, spec.cacheTiming, space);
        // Dirty the whole per-socket cache.
        Rng rng(7);
        cache.fillDirty(0, spec.cachePerSocket, rng);
        EXPECT_NEAR(toMillis(cache.wbinvdCost()), 2.8, 0.15);
        // clflush over both sockets' lines, serial software loop.
        const uint64_t total_lines = 2 * spec.cachePerSocket / 64;
        EXPECT_NEAR(toMillis(cache.clflushLoopCost(total_lines)), 2.3, 0.2);
        EXPECT_NEAR(toMillis(cache.theoreticalBestCost()), 0.79, 0.05);
    }
    {
        PlatformSpec spec = platformAmd4180();
        CacheModel cache("c", spec.cachePerSocket, spec.cacheTiming, space);
        Rng rng(8);
        cache.fillDirty(0, spec.cachePerSocket, rng);
        EXPECT_NEAR(toMillis(cache.wbinvdCost()), 1.3, 0.1);
        const uint64_t lines = spec.cachePerSocket / 64;
        EXPECT_NEAR(toMillis(cache.clflushLoopCost(lines)), 1.6, 0.2);
        EXPECT_NEAR(toMillis(cache.theoreticalBestCost()), 0.65, 0.05);
    }
}

TEST(Platforms, AllFourPresetsSane)
{
    for (const PlatformSpec &spec : allPlatforms()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GE(spec.logicalCpus(), 2u);
        EXPECT_GT(spec.cachePerSocket, 0u);
        EXPECT_GT(spec.load.busyWatts, spec.load.idleWatts);
        // Fig. 8: save time must land under 5 ms everywhere, which
        // requires the wbinvd calibration to stay under ~4.5 ms.
        EXPECT_LT(toMillis(spec.cacheTiming.wbinvdFixed), 4.5) << spec.name;
    }
}

// MachineModel ------------------------------------------------------------

struct MachineFixture : ::testing::Test
{
    MachineFixture()
    {
        NvdimmConfig config;
        config.capacityBytes = 64 * kMiB;
        dimm = std::make_unique<NvdimmModule>(queue, "d", config);
        space.addModule(*dimm);
        machine = std::make_unique<MachineModel>(
            queue, platformIntelC5528(), space);
    }

    EventQueue queue;
    std::unique_ptr<NvdimmModule> dimm;
    NvramSpace space;
    std::unique_ptr<MachineModel> machine;
};

TEST_F(MachineFixture, TopologyMatchesSpec)
{
    EXPECT_EQ(machine->coreCount(), 16u); // 2 sockets x 4 cores x 2 ht
    EXPECT_EQ(machine->socketCount(), 2u);
    EXPECT_EQ(machine->core(0).socket, 0u);
    EXPECT_EQ(machine->core(15).socket, 1u);
    EXPECT_EQ(machine->core(3).context.apicId, 3u);
    EXPECT_EQ(machine->totalCacheBytes(), 16 * kMiB);
}

TEST_F(MachineFixture, CacheOfCoreMapsToSocket)
{
    EXPECT_EQ(&machine->cacheOfCore(0), &machine->socketCache(0));
    EXPECT_EQ(&machine->cacheOfCore(15), &machine->socketCache(1));
}

TEST_F(MachineFixture, FillCachesDirtyDistributes)
{
    Rng rng(9);
    machine->fillCachesDirty(32 * kKiB, rng);
    EXPECT_EQ(machine->totalDirtyBytes(), 64 * kKiB);
    EXPECT_EQ(machine->socketCache(0).dirtyBytes(), 32 * kKiB);
    EXPECT_EQ(machine->socketCache(1).dirtyBytes(), 32 * kKiB);
}

TEST_F(MachineFixture, PowerLossScrubsRunningState)
{
    Rng rng(10);
    machine->randomizeContexts(rng);
    machine->fillCachesDirty(4 * kKiB, rng);
    const CpuContext before = machine->core(1).context;

    machine->onPowerLost();
    EXPECT_FALSE(machine->powerOn());
    EXPECT_TRUE(machine->allHalted());
    EXPECT_NE(machine->core(1).context, before); // registers gone
    EXPECT_EQ(machine->totalDirtyBytes(), 0u);   // dirty lines dropped
}

TEST_F(MachineFixture, HaltedCoreKeepsContextAcrossPowerLoss)
{
    Rng rng(11);
    machine->randomizeContexts(rng);
    const CpuContext ctx = machine->core(2).context;
    machine->core(2).halted = true;
    machine->onPowerLost();
    // A halted core's context was already saved elsewhere; the model
    // keeps it to represent "no longer running" (the resume block is
    // authoritative). Un-halted cores lose theirs.
    EXPECT_EQ(machine->core(2).context, ctx);
}

TEST_F(MachineFixture, ResetForBootClearsHalt)
{
    machine->onPowerLost();
    machine->resetForBoot();
    EXPECT_TRUE(machine->powerOn());
    EXPECT_FALSE(machine->allHalted());
    EXPECT_FALSE(machine->core(0).halted);
}

TEST_F(MachineFixture, InterruptsDeliverAfterLatency)
{
    Tick delivered = 0;
    unsigned who = 99;
    machine->interrupts().sendIpi(3, [&](unsigned cpu) {
        delivered = queue.now();
        who = cpu;
    });
    queue.run();
    EXPECT_EQ(delivered, machine->spec().ipiLatency);
    EXPECT_EQ(who, 3u);
    EXPECT_EQ(machine->interrupts().ipisSent(), 1u);
}

} // namespace
} // namespace wsp
