/**
 * @file
 * Tests for the persistent-heap substrate: region, torn-bit log,
 * undo/redo logs, STM, allocator, and the five Fig. 5 policies.
 *
 * Crash cycles are simulated by destroying a file-backed heap
 * *without* a clean shutdown and re-opening it: recovery must roll
 * back in-flight undo transactions and replay committed redo ones.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "pheap/flush.h"
#include "pheap/policies.h"

namespace wsp::pmem {
namespace {

/** Fresh region file path per test. */
std::string
tempRegionPath(const char *name)
{
    std::string path = ::testing::TempDir() + "wsp_pheap_" + name + "_" +
                       std::to_string(::getpid()) + ".img";
    std::remove(path.c_str());
    return path;
}

constexpr uint64_t kRegionSize = 32ull * 1024 * 1024;

PHeapConfig
fileConfig(const std::string &path, bool durable = true)
{
    PHeapConfig config;
    config.regionSize = kRegionSize;
    config.path = path;
    config.durableLogs = durable;
    return config;
}

// PersistentRegion -----------------------------------------------------

TEST(Region, FreshRegionInitialized)
{
    PersistentRegion region(kRegionSize);
    EXPECT_FALSE(region.recovered());
    EXPECT_EQ(region.header().magic, RegionHeader::kMagic);
    EXPECT_EQ(region.header().rootObject, kNullOffset);
    EXPECT_GT(region.header().heapStart, region.header().redoLogStart);
}

TEST(Region, ReopenSeesDirtyWithoutCleanShutdown)
{
    const std::string path = tempRegionPath("dirty");
    {
        PersistentRegion region(path, kRegionSize);
        EXPECT_FALSE(region.recovered());
    }
    {
        PersistentRegion region(path, kRegionSize);
        EXPECT_TRUE(region.recovered());
        EXPECT_FALSE(region.wasCleanShutdown());
    }
    std::remove(path.c_str());
}

TEST(Region, CleanShutdownFlagRoundTrip)
{
    const std::string path = tempRegionPath("clean");
    {
        PersistentRegion region(path, kRegionSize);
        region.markCleanShutdown();
    }
    {
        PersistentRegion region(path, kRegionSize);
        EXPECT_TRUE(region.wasCleanShutdown());
    }
    std::remove(path.c_str());
}

TEST(Region, OffsetPointerRoundTrip)
{
    PersistentRegion region(kRegionSize);
    const Offset off = region.header().heapStart + 128;
    uint8_t *ptr = region.at(off);
    EXPECT_EQ(region.offsetOf(ptr), off);
    EXPECT_EQ(region.at(kNullOffset), nullptr);
}

TEST(Region, ContentPersistsAcrossReopen)
{
    const std::string path = tempRegionPath("content");
    Offset off = 0;
    {
        PersistentRegion region(path, kRegionSize);
        off = region.header().heapStart;
        *region.at<uint64_t>(off) = 0x1122334455667788ull;
    }
    {
        PersistentRegion region(path, kRegionSize);
        EXPECT_EQ(*region.at<uint64_t>(off), 0x1122334455667788ull);
    }
    std::remove(path.c_str());
}

// TornBitLog -------------------------------------------------------------

struct TornBitFixture : ::testing::Test
{
    TornBitFixture()
        : region(kRegionSize),
          log(region, region.header().undoLogStart, 64 * 1024,
              &region.header().undoCheckpointPos,
              &region.header().undoCheckpointPass,
              /*durable_appends=*/true)
    {}

    PersistentRegion region;
    TornBitLog log;
};

TEST_F(TornBitFixture, MarkersRoundTrip)
{
    log.appendMarker(LogRecordType::TxnBegin, 7);
    log.appendMarker(LogRecordType::TxnCommit, 7);
    const auto records = log.scan();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].type, LogRecordType::TxnBegin);
    EXPECT_EQ(records[0].txnId, 7u);
    EXPECT_EQ(records[1].type, LogRecordType::TxnCommit);
}

TEST_F(TornBitFixture, DataRecordRoundTrip)
{
    const uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7};
    log.appendData(12345, payload, sizeof(payload));
    const auto records = log.scan();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, LogRecordType::Data);
    EXPECT_EQ(records[0].target, 12345u);
    EXPECT_EQ(records[0].byteLen, sizeof(payload));
    EXPECT_EQ(std::memcmp(records[0].payload.data(), payload,
                          sizeof(payload)),
              0);
}

TEST_F(TornBitFixture, EmptyLogScansEmpty)
{
    EXPECT_TRUE(log.scan().empty());
}

TEST_F(TornBitFixture, TornTailDropsPartialRecord)
{
    log.appendMarker(LogRecordType::TxnBegin, 1);
    const uint8_t payload[] = {9, 9, 9, 9, 9, 9, 9, 9};
    log.appendData(64, payload, sizeof(payload));
    // Tear the last word of the data record: flip it to the previous
    // phase, as if power died mid-append.
    auto *words = reinterpret_cast<uint64_t *>(
        region.base() + region.header().undoLogStart);
    words[log.position() - 1] &= ~(1ull << 63);

    const auto records = log.scan();
    ASSERT_EQ(records.size(), 1u); // only the Begin marker survives
    EXPECT_EQ(records[0].type, LogRecordType::TxnBegin);
}

TEST_F(TornBitFixture, WrapPadsAndFlipsPhase)
{
    const uint64_t before_pass = log.pass();
    const uint8_t payload[64] = {};
    // Fill until at least one wrap occurs.
    while (log.wraps() == 0)
        log.appendData(0, payload, sizeof(payload));
    EXPECT_EQ(log.pass(), before_pass + 1);
    // The ring stays scannable after the wrap.
    log.appendMarker(LogRecordType::TxnBegin, 42);
    const auto records = log.scan();
    ASSERT_FALSE(records.empty());
    EXPECT_EQ(records.back().type, LogRecordType::TxnBegin);
    EXPECT_EQ(records.back().txnId, 42u);
}

TEST_F(TornBitFixture, ManyWrapsStayConsistent)
{
    const uint8_t payload[128] = {0xcd};
    for (int i = 0; i < 5000; ++i)
        log.appendData(i, payload, sizeof(payload));
    EXPECT_GT(log.wraps(), 5u);
    const auto records = log.scan();
    // Everything scanned is a well-formed record of our shape.
    for (const auto &record : records) {
        ASSERT_EQ(record.type, LogRecordType::Data);
        EXPECT_EQ(record.byteLen, sizeof(payload));
    }
    ASSERT_FALSE(records.empty());
    EXPECT_EQ(records.back().target, 4999u);
}

TEST_F(TornBitFixture, ResetEmptiesRing)
{
    log.appendMarker(LogRecordType::TxnBegin, 1);
    log.reset();
    EXPECT_TRUE(log.scan().empty());
    EXPECT_EQ(log.position(), 0u);
}

// UndoLog ------------------------------------------------------------------

TEST(UndoLog, AbortRollsBackImmediately)
{
    PersistentRegion region(kRegionSize);
    UndoLog undo(region, /*flush_on_commit=*/true);
    auto *word = region.at<uint64_t>(region.header().heapStart);
    *word = 111;

    undo.txBegin();
    undo.logOldValue(word, 8);
    *word = 222;
    undo.txAbort();
    EXPECT_EQ(*word, 111u);
    EXPECT_EQ(undo.stats().txnsAborted, 1u);
}

TEST(UndoLog, RecoveryRollsBackInFlightTxn)
{
    const std::string path = tempRegionPath("undo_recover");
    Offset off = 0;
    {
        PersistentRegion region(path, kRegionSize);
        UndoLog undo(region, true);
        off = region.header().heapStart;
        auto *word = region.at<uint64_t>(off);
        *word = 1;
        flushRange(word, 8);

        // Committed txn: must NOT be rolled back.
        undo.txBegin();
        undo.logOldValue(word, 8);
        *word = 2;
        undo.txCommit();

        // In-flight txn: crash before commit.
        undo.txBegin();
        undo.logOldValue(word, 8);
        *word = 3;
        // no commit: destructor = crash
    }
    {
        PersistentRegion region(path, kRegionSize);
        UndoLog undo(region, true);
        const size_t undone = undo.recover();
        EXPECT_EQ(undone, 1u);
        EXPECT_EQ(*region.at<uint64_t>(off), 2u);
    }
    std::remove(path.c_str());
}

TEST(UndoLog, RecoveryNoOpAfterCommit)
{
    const std::string path = tempRegionPath("undo_committed");
    Offset off = 0;
    {
        PersistentRegion region(path, kRegionSize);
        UndoLog undo(region, true);
        off = region.header().heapStart;
        undo.txBegin();
        undo.logOldValue(region.at<uint64_t>(off), 8);
        *region.at<uint64_t>(off) = 5;
        undo.txCommit();
    }
    {
        PersistentRegion region(path, kRegionSize);
        UndoLog undo(region, true);
        EXPECT_EQ(undo.recover(), 0u);
        EXPECT_EQ(*region.at<uint64_t>(off), 5u);
    }
    std::remove(path.c_str());
}

TEST(UndoLog, MultiRangeRollbackReverseOrder)
{
    PersistentRegion region(kRegionSize);
    UndoLog undo(region, true);
    auto *a = region.at<uint64_t>(region.header().heapStart);
    *a = 10;
    undo.txBegin();
    undo.logOldValue(a, 8);
    *a = 20;
    undo.logOldValue(a, 8); // second update of the same word
    *a = 30;
    undo.txAbort();
    EXPECT_EQ(*a, 10u); // unwound through both records
}

// RedoLog --------------------------------------------------------------

TEST(RedoLog, CommittedTxnReplayedOnRecovery)
{
    const std::string path = tempRegionPath("redo_recover");
    Offset off = 0;
    {
        PersistentRegion region(path, kRegionSize);
        RedoLog redo(region, true, /*truncate_every=*/1000);
        off = region.header().heapStart;

        RedoWrite write;
        write.target = off;
        write.len = 8;
        write.bytes.assign(8, 0);
        write.bytes[0] = 42;
        redo.commit({write});

        // Crash: pretend the in-place write never left the cache.
        *region.at<uint64_t>(off) = 0;
    }
    {
        PersistentRegion region(path, kRegionSize);
        RedoLog redo(region, true);
        EXPECT_EQ(redo.recover(), 1u);
        EXPECT_EQ(*region.at<uint64_t>(off), 42u);
    }
    std::remove(path.c_str());
}

TEST(RedoLog, TruncationFlushesAndResets)
{
    PersistentRegion region(kRegionSize);
    RedoLog redo(region, true, /*truncate_every=*/2);
    RedoWrite write;
    write.target = region.header().heapStart;
    write.len = 8;
    write.bytes.assign(8, 7);
    redo.commit({write});
    EXPECT_EQ(redo.stats().truncations, 0u);
    redo.commit({write});
    EXPECT_EQ(redo.stats().truncations, 1u);
}

TEST(RedoLog, UncommittedTailIgnored)
{
    // A Begin + Data without Commit must not be replayed. Build it by
    // writing the records through a raw TornBitLog on the redo ring.
    const std::string path = tempRegionPath("redo_tail");
    Offset off = 0;
    {
        PersistentRegion region(path, kRegionSize);
        off = region.header().heapStart;
        *region.at<uint64_t>(off) = 1;
        TornBitLog raw(region, region.header().redoLogStart,
                       region.header().redoLogBytes,
                       &region.header().redoCheckpointPos,
                       &region.header().redoCheckpointPass, true);
        raw.appendMarker(LogRecordType::TxnBegin, 1);
        const uint64_t evil = 99;
        raw.appendData(off, &evil, 8);
        // no commit marker
    }
    {
        PersistentRegion region(path, kRegionSize);
        RedoLog redo(region, true);
        EXPECT_EQ(redo.recover(), 0u);
        EXPECT_EQ(*region.at<uint64_t>(off), 1u);
    }
    std::remove(path.c_str());
}

// STM ---------------------------------------------------------------------

TEST(Stm, ReadYourOwnWrites)
{
    PersistentRegion region(kRegionSize);
    StmRuntime runtime;
    auto *word = region.at<uint64_t>(region.header().heapStart);
    *word = 5;
    runStmTransaction(runtime, nullptr, &region, [&](StmTx &tx) {
        EXPECT_EQ(tx.read(word), 5u);
        tx.write(word, uint64_t{6});
        EXPECT_EQ(tx.read(word), 6u);
    });
    EXPECT_EQ(*word, 6u);
}

TEST(Stm, ReadOnlyTxnCommits)
{
    PersistentRegion region(kRegionSize);
    StmRuntime runtime;
    auto *word = region.at<uint64_t>(region.header().heapStart);
    *word = 9;
    uint64_t seen = 0;
    runStmTransaction(runtime, nullptr, &region,
                      [&](StmTx &tx) { seen = tx.read(word); });
    EXPECT_EQ(seen, 9u);
    EXPECT_EQ(runtime.aborts(), 0u);
}

TEST(Stm, ConcurrentIncrementsAreIsolated)
{
    PersistentRegion region(kRegionSize);
    StmRuntime runtime;
    auto *word = region.at<uint64_t>(region.header().heapStart);
    *word = 0;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                runStmTransaction(runtime, nullptr, &region,
                                  [&](StmTx &tx) {
                    tx.write(word, tx.read(word) + 1);
                });
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(*word, uint64_t{kThreads * kPerThread});
}

TEST(Stm, DurableCommitSurvivesCrash)
{
    const std::string path = tempRegionPath("stm_durable");
    Offset off = 0;
    {
        PHeap heap(fileConfig(path, /*durable=*/true));
        off = heap.region().header().heapStart;
        auto *word = heap.region().at<uint64_t>(off);
        StmPolicy::run(heap, [&](StmPolicy::Tx &tx) {
            tx.write(word, uint64_t{77});
        });
        // Sabotage the in-place copy: recovery must replay the log.
        *word = 0;
    }
    {
        PHeap heap(fileConfig(path, true));
        EXPECT_GE(heap.openReport().redoRecordsApplied, 1u);
        EXPECT_EQ(*heap.region().at<uint64_t>(off), 77u);
    }
    std::remove(path.c_str());
}

// PHeap allocator -----------------------------------------------------------

TEST(Allocator, SizeClasses)
{
    EXPECT_EQ(PHeap::classSize(0), 16u);
    EXPECT_EQ(PHeap::sizeClassFor(1), 0u);
    EXPECT_EQ(PHeap::sizeClassFor(16), 0u);
    EXPECT_EQ(PHeap::sizeClassFor(17), 1u);
    EXPECT_EQ(PHeap::sizeClassFor(4096), 8u);
}

TEST(Allocator, AllocFreeReuse)
{
    PHeapConfig config;
    config.durableLogs = false;
    PHeap heap(config);
    Offset first = 0;
    RawPolicy::run(heap, [&](RawPolicy::Tx &tx) {
        first = tx.alloc(64);
        tx.free(first, 64);
        const Offset second = tx.alloc(64);
        EXPECT_EQ(second, first); // free list reuse
        const Offset third = tx.alloc(64);
        EXPECT_NE(third, first);
    });
}

TEST(Allocator, DistinctClassesDistinctLists)
{
    PHeapConfig config;
    config.durableLogs = false;
    PHeap heap(config);
    RawPolicy::run(heap, [&](RawPolicy::Tx &tx) {
        const Offset small = tx.alloc(16);
        const Offset big = tx.alloc(400);
        tx.free(small, 16);
        const Offset big2 = tx.alloc(400);
        EXPECT_NE(big2, small); // 400-byte alloc must not grab 16-byte block
        tx.free(big, 400);
        tx.free(big2, 400);
    });
}

TEST(Allocator, CrashMidTxnRollsBackAllocation)
{
    const std::string path = tempRegionPath("alloc_crash");
    uint64_t cursor_before = 0;
    {
        PHeap heap(fileConfig(path, true));
        cursor_before = heap.region().header().bumpCursor;
        heap.undoLog().txBegin();
        UndoPolicy::Tx tx(heap);
        (void)tx.alloc(64);
        (void)tx.alloc(64);
        // crash: no commit
    }
    {
        PHeap heap(fileConfig(path, true));
        EXPECT_GT(heap.openReport().undoRecordsApplied, 0u);
        EXPECT_EQ(heap.region().header().bumpCursor, cursor_before);
    }
    std::remove(path.c_str());
}

// Policies -----------------------------------------------------------------

/** Shared workload: build a small linked list and sum it. */
template <typename Policy>
uint64_t
linkedListWorkload(PHeap &heap)
{
    struct Node
    {
        uint64_t value;
        Offset next;
    };
    Offset head = kNullOffset;
    for (uint64_t i = 1; i <= 10; ++i) {
        Policy::run(heap, [&](typename Policy::Tx &tx) {
            const Offset node = tx.alloc(sizeof(Node));
            auto *n = heap.region().template at<Node>(node);
            tx.write(&n->value, i);
            tx.write(&n->next, head);
            head = node;
        });
    }
    uint64_t sum = 0;
    Policy::run(heap, [&](typename Policy::Tx &tx) {
        for (Offset cur = head; cur != kNullOffset;) {
            auto *n = heap.region().template at<Node>(cur);
            sum += tx.read(&n->value);
            cur = tx.read(&n->next);
        }
    });
    return sum;
}

TEST(Policies, AllFiveConfigurationsComputeTheSameResult)
{
    struct Config
    {
        bool durable;
        int policy; // 0 raw, 1 undo, 2 stm
    };
    for (const auto &[durable, policy] :
         {Config{false, 0}, Config{false, 1}, Config{false, 2},
          Config{true, 1}, Config{true, 2}}) {
        PHeapConfig config;
        config.durableLogs = durable;
        PHeap heap(config);
        uint64_t sum = 0;
        switch (policy) {
          case 0:
            sum = linkedListWorkload<RawPolicy>(heap);
            break;
          case 1:
            sum = linkedListWorkload<UndoPolicy>(heap);
            break;
          default:
            sum = linkedListWorkload<StmPolicy>(heap);
            break;
        }
        EXPECT_EQ(sum, 55u) << "durable=" << durable
                            << " policy=" << policy;
    }
}

TEST(Policies, FofIssuesNoFlushes)
{
    PHeapConfig config;
    config.durableLogs = false;
    PHeap heap(config);
    resetCounters();
    linkedListWorkload<RawPolicy>(heap);
    EXPECT_EQ(flushCount(), 0u);
    EXPECT_EQ(ntStoreCount(), 0u);
}

TEST(Policies, FofUndoLogsInCacheOnly)
{
    PHeapConfig config;
    config.durableLogs = false;
    PHeap heap(config);
    resetCounters();
    linkedListWorkload<UndoPolicy>(heap);
    // Log appends happen, but with cached stores and no flushes.
    EXPECT_GT(heap.undoLog().stats().recordsLogged, 0u);
    EXPECT_EQ(flushCount(), 0u);
    EXPECT_EQ(ntStoreCount(), 0u);
}

TEST(Policies, FocUndoFlushesOnCommit)
{
    PHeapConfig config;
    config.durableLogs = true;
    PHeap heap(config);
    resetCounters();
    linkedListWorkload<UndoPolicy>(heap);
    EXPECT_GT(flushCount(), 0u);
    EXPECT_GT(ntStoreCount(), 0u);
}

TEST(Policies, ConfigNames)
{
    PHeapConfig durable;
    durable.durableLogs = true;
    PHeap foc(durable);
    EXPECT_STREQ(configName<UndoPolicy>(foc), "FoC + UL");
    EXPECT_STREQ(configName<StmPolicy>(foc), "FoC + STM");

    PHeapConfig incache;
    incache.durableLogs = false;
    PHeap fof(incache);
    EXPECT_STREQ(configName<RawPolicy>(fof), "FoF");
    EXPECT_STREQ(configName<UndoPolicy>(fof), "FoF + UL");
    EXPECT_STREQ(configName<StmPolicy>(fof), "FoF + STM");
}

TEST(Policies, RootObjectRoundTrip)
{
    PHeapConfig config;
    config.durableLogs = false;
    PHeap heap(config);
    EXPECT_EQ(heap.rootObject(), kNullOffset);
    RawPolicy::run(heap, [&](RawPolicy::Tx &tx) {
        const Offset root = tx.alloc(64);
        heap.setRootObject(tx, root);
    });
    EXPECT_NE(heap.rootObject(), kNullOffset);
}

} // namespace
} // namespace wsp::pmem
