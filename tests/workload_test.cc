/**
 * @file
 * Tests for the workload generators, the checkpoint scheduler, and
 * the failure injector.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/checkpoint.h"
#include "apps/workload.h"
#include "core/failure_injector.h"
#include "core/system.h"
#include "nvram/nvdimm.h"

namespace wsp {
namespace {

using namespace wsp::apps;

// ZipfianSampler --------------------------------------------------------

TEST(Zipfian, KeysInRange)
{
    Rng rng(1);
    ZipfianSampler zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t key = zipf.next(rng);
        EXPECT_GE(key, 1u);
        EXPECT_LE(key, 1000u);
    }
}

TEST(Zipfian, HotKeysDominate)
{
    Rng rng(2);
    ZipfianSampler zipf(100000, 0.99);
    uint64_t top10 = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i)
        top10 += zipf.next(rng) <= 10 ? 1 : 0;
    // Under theta=0.99 Zipf the top 10 of 100k keys draw a large
    // share; uniform would give 0.01%.
    EXPECT_GT(static_cast<double>(top10) / kDraws, 0.20);
}

TEST(Zipfian, LowerThetaIsFlatter)
{
    Rng rng1(3);
    Rng rng2(3);
    ZipfianSampler hot(10000, 0.99);
    ZipfianSampler mild(10000, 0.5);
    uint64_t hot_top = 0;
    uint64_t mild_top = 0;
    for (int i = 0; i < 20000; ++i) {
        hot_top += hot.next(rng1) <= 10 ? 1 : 0;
        mild_top += mild.next(rng2) <= 10 ? 1 : 0;
    }
    EXPECT_GT(hot_top, 2 * mild_top);
}

TEST(Zipfian, SingleKeySpace)
{
    Rng rng(4);
    ZipfianSampler zipf(1, 0.9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.next(rng), 1u);
}

// generateWorkload -------------------------------------------------------

TEST(Workload, RespectsUpdateProbability)
{
    Rng rng(5);
    WorkloadSpec spec;
    spec.updateProbability = 0.3;
    const auto ops = generateWorkload(spec, 50000, rng);
    uint64_t updates = 0;
    for (const auto &op : ops)
        updates += op.kind != OpKind::Lookup ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(updates) / ops.size(), 0.3, 0.02);
}

TEST(Workload, UpdatesSplitEvenly)
{
    Rng rng(6);
    WorkloadSpec spec;
    spec.updateProbability = 1.0;
    const auto ops = generateWorkload(spec, 50000, rng);
    uint64_t inserts = 0;
    for (const auto &op : ops)
        inserts += op.kind == OpKind::Insert ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(inserts) / ops.size(), 0.5, 0.02);
}

TEST(Workload, KeysWithinSpace)
{
    Rng rng(7);
    WorkloadSpec spec;
    spec.keySpace = 123;
    spec.distribution = KeyDistribution::Zipfian;
    for (const auto &op : generateWorkload(spec, 5000, rng)) {
        EXPECT_GE(op.key, 1u);
        EXPECT_LE(op.key, 123u);
    }
}

TEST(Workload, DeterministicPerSeed)
{
    Rng a(8);
    Rng b(8);
    WorkloadSpec spec;
    const auto ops1 = generateWorkload(spec, 100, a);
    const auto ops2 = generateWorkload(spec, 100, b);
    for (size_t i = 0; i < ops1.size(); ++i) {
        EXPECT_EQ(ops1[i].key, ops2[i].key);
        EXPECT_EQ(ops1[i].kind, ops2[i].kind);
    }
}

// CheckpointScheduler -----------------------------------------------------

struct CheckpointFixture : ::testing::Test
{
    CheckpointFixture()
        : dimm(queue, "d",
               [] {
                   NvdimmConfig config;
                   config.capacityBytes = 8 * kMiB;
                   config.flashChannels = 1;
                   return config;
               }())
    {
        space.addModule(dimm);
        cache = std::make_unique<CacheModel>("L3", 2 * kMiB,
                                             CacheTiming{}, space);
        store = std::make_unique<KvStore>(*cache, 0, 1024);
    }

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
    std::unique_ptr<CacheModel> cache;
    std::unique_ptr<KvStore> store;
    BackendStore backend;
};

TEST_F(CheckpointFixture, PeriodicCheckpointsHappen)
{
    CheckpointConfig config;
    config.checkpointPeriod = fromSeconds(1.0);
    CheckpointScheduler scheduler(queue, *store, backend, config);
    scheduler.start();
    queue.runUntil(fromSeconds(3.5));
    scheduler.stop();
    queue.run();
    EXPECT_EQ(scheduler.checkpointsTaken(), 4u); // t=0,1,2,3
}

TEST_F(CheckpointFixture, UpdatesShipOnInterval)
{
    CheckpointConfig config;
    config.checkpointPeriod = fromSeconds(100.0);
    config.shipInterval = fromMillis(10.0);
    CheckpointScheduler scheduler(queue, *store, backend, config);
    scheduler.start();
    store->put(1, 11);
    scheduler.noteUpdate({1, 11, false});
    EXPECT_EQ(scheduler.unshippedUpdates(), 1u);
    queue.runUntil(fromMillis(25.0));
    EXPECT_EQ(scheduler.unshippedUpdates(), 0u);
    EXPECT_EQ(backend.logEntries(), 1u);
}

TEST_F(CheckpointFixture, CheckpointTruncatesLog)
{
    CheckpointConfig config;
    config.checkpointPeriod = fromSeconds(1.0);
    CheckpointScheduler scheduler(queue, *store, backend, config);
    scheduler.start();
    store->put(1, 11);
    scheduler.noteUpdate({1, 11, false});
    queue.runUntil(fromSeconds(1.5)); // second checkpoint at t=1
    scheduler.stop();
    queue.run();
    EXPECT_EQ(backend.logEntries(), 0u); // folded into the checkpoint
    KvStore fresh(*cache, 4 * kMiB, 1024);
    backend.recoverInto(&fresh);
    EXPECT_EQ(fresh.size(), 1u);
}

TEST_F(CheckpointFixture, RecoveryReflectsCheckpointPlusShippedLog)
{
    CheckpointConfig config;
    config.checkpointPeriod = fromSeconds(100.0);
    config.shipInterval = fromMillis(10.0);
    CheckpointScheduler scheduler(queue, *store, backend, config);
    scheduler.start(); // checkpoint of the empty store at t=0

    store->put(1, 11);
    scheduler.noteUpdate({1, 11, false});
    queue.runUntil(fromMillis(20.0)); // shipped
    store->put(2, 22);
    scheduler.noteUpdate({2, 22, false}); // NOT shipped yet
    scheduler.stop();

    KvStore fresh(*cache, 4 * kMiB, 1024);
    backend.recoverInto(&fresh);
    EXPECT_TRUE(fresh.get(1));
    EXPECT_FALSE(fresh.get(2)); // the unshipped tail is lost
}

// FailureInjector ---------------------------------------------------------

TEST(FailureInjectorTest, ExactWindowConfig)
{
    SystemConfig config = FailureInjector::withExactWindow(
        SystemConfig{}, fromMillis(7.0));
    EXPECT_EQ(config.psu.busyWindow, fromMillis(7.0));
    EXPECT_EQ(config.psu.windowJitter, 0u);
}

TEST(FailureInjectorTest, OutageTrainAllRecover)
{
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(50.0);
    WspSystem system(config);
    system.start();
    FailureInjector injector(system);
    EXPECT_EQ(injector.outageTrain(3, fromMillis(10.0),
                                   fromSeconds(5.0)).wspRecoveries(),
              3);
}

TEST(FailureInjectorTest, DrainedUltracapFailsNextSave)
{
    SystemConfig config;
    config.nvdimmCount = 1;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    // A power-hungry save engine: with a drained bank the ESR drop
    // pushes the terminal voltage below the floor immediately.
    config.nvdimm.savePowerWatts = 40.0;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(50.0);
    WspSystem system(config);
    system.start();
    FailureInjector injector(system);
    injector.drainUltracap(0, 6.3); // just above the floor

    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_TRUE(backend_ran);
}

} // namespace
} // namespace wsp
