/**
 * @file
 * Tests for the LDAP-style wire protocol: BER codec, DN
 * normalization, ACL engine, and the full request pipeline.
 */

#include <gtest/gtest.h>

#include "apps/ldap_protocol.h"
#include "pheap/policies.h"

namespace wsp::apps {
namespace {

using pmem::PHeap;
using pmem::PHeapConfig;
using pmem::RawPolicy;

DirectoryEntry
sampleEntry()
{
    DirectoryEntry entry;
    entry.dn = "uid=ada.lovelace.1,ou=people,dc=example,dc=com";
    entry.attributes = {
        {"objectClass", "inetOrgPerson"},
        {"cn", "Ada Lovelace"},
        {"mail", "ada@example.com"},
    };
    return entry;
}

// BER codec -------------------------------------------------------------

TEST(Ber, AddRequestRoundTrip)
{
    const DirectoryEntry entry = sampleEntry();
    const auto bytes = encodeAddRequest(entry, 77);
    uint32_t id = 0;
    DirectoryEntry back;
    ASSERT_TRUE(decodeAddRequest(bytes, &id, &back));
    EXPECT_EQ(id, 77u);
    EXPECT_EQ(back.dn, entry.dn);
    ASSERT_EQ(back.attributes.size(), entry.attributes.size());
    for (size_t i = 0; i < entry.attributes.size(); ++i) {
        EXPECT_EQ(back.attributes[i], entry.attributes[i]);
    }
}

TEST(Ber, ResponseRoundTrip)
{
    const auto bytes = encodeResponse(LdapOp::AddResponse, 9,
                                      LdapCode::EntryAlreadyExists);
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeResponse(bytes, &id, &code));
    EXPECT_EQ(id, 9u);
    EXPECT_EQ(code, LdapCode::EntryAlreadyExists);
}

TEST(Ber, EmptyBufferRejected)
{
    uint32_t id = 0;
    DirectoryEntry entry;
    EXPECT_FALSE(decodeAddRequest({}, &id, &entry));
}

TEST(Ber, TruncatedBufferRejected)
{
    auto bytes = encodeAddRequest(sampleEntry(), 1);
    for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
        uint32_t id = 0;
        DirectoryEntry entry;
        std::vector<uint8_t> cut_bytes(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<ptrdiff_t>(cut));
        EXPECT_FALSE(decodeAddRequest(cut_bytes, &id, &entry))
            << "cut at " << cut;
    }
}

TEST(Ber, WrongTagRejected)
{
    auto bytes = encodeAddRequest(sampleEntry(), 1);
    bytes[0] = 0x55; // clobber the message tag
    uint32_t id = 0;
    DirectoryEntry entry;
    EXPECT_FALSE(decodeAddRequest(bytes, &id, &entry));
}

TEST(Ber, RandomGarbageNeverCrashes)
{
    Rng rng(123);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<uint8_t> garbage(rng.next(200));
        for (auto &b : garbage)
            b = static_cast<uint8_t>(rng());
        uint32_t id = 0;
        DirectoryEntry entry;
        decodeAddRequest(garbage, &id, &entry); // must not crash
        LdapCode code;
        decodeResponse(garbage, &id, &code);
    }
    SUCCEED();
}

TEST(Ber, LargeValuesSurvive)
{
    DirectoryEntry entry = sampleEntry();
    entry.attributes.push_back({"description", std::string(100000, 'x')});
    const auto bytes = encodeAddRequest(entry, 5);
    uint32_t id = 0;
    DirectoryEntry back;
    ASSERT_TRUE(decodeAddRequest(bytes, &id, &back));
    EXPECT_EQ(back.attributes.back().second.size(), 100000u);
}

TEST(Ber, MessageIdBoundaries)
{
    for (uint32_t id : {0u, 1u, 127u, 128u, 65535u, ~0u}) {
        const auto bytes = encodeAddRequest(sampleEntry(), id);
        uint32_t back = 1;
        DirectoryEntry entry;
        ASSERT_TRUE(decodeAddRequest(bytes, &back, &entry));
        EXPECT_EQ(back, id);
    }
}

// DN normalization ---------------------------------------------------------

TEST(NormalizeDn, LowercasesAndTrims)
{
    std::string out;
    ASSERT_TRUE(normalizeDn("UID = Ada , OU=People, DC=Example", &out));
    EXPECT_EQ(out, "uid=ada,ou=people,dc=example");
}

TEST(NormalizeDn, IdempotentOnNormalForm)
{
    std::string once;
    std::string twice;
    ASSERT_TRUE(normalizeDn("uid=x,dc=example,dc=com", &once));
    ASSERT_TRUE(normalizeDn(once, &twice));
    EXPECT_EQ(once, twice);
}

TEST(NormalizeDn, RejectsMissingEquals)
{
    std::string out;
    EXPECT_FALSE(normalizeDn("nodice", &out));
    EXPECT_FALSE(normalizeDn("uid=x,bogus,dc=com", &out));
}

TEST(NormalizeDn, RejectsEmptyParts)
{
    std::string out;
    EXPECT_FALSE(normalizeDn("", &out));
    EXPECT_FALSE(normalizeDn("=value", &out));
    EXPECT_FALSE(normalizeDn("uid=", &out));
    EXPECT_FALSE(normalizeDn("uid= ,dc=com", &out));
}

TEST(NormalizeDn, PreservesComponentOrder)
{
    std::string out;
    ASSERT_TRUE(normalizeDn("cn=A,ou=B,dc=C", &out));
    EXPECT_EQ(out, "cn=a,ou=b,dc=c");
}

// ACL ----------------------------------------------------------------------

TEST(Acl, FirstMatchWins)
{
    AccessControl acl;
    acl.addRule(AclRule{"ou=secret,dc=example", false, false});
    acl.addRule(AclRule{"dc=example", true, true});
    EXPECT_FALSE(acl.mayAdd("uid=x,ou=secret,dc=example"));
    EXPECT_TRUE(acl.mayAdd("uid=x,ou=people,dc=example"));
    EXPECT_FALSE(acl.maySearch("uid=x,ou=secret,dc=example"));
}

TEST(Acl, DefaultPolicyApplies)
{
    AccessControl acl;
    acl.setDefault(false, true);
    EXPECT_FALSE(acl.mayAdd("uid=x,dc=other"));
    EXPECT_TRUE(acl.maySearch("uid=x,dc=other"));
}

TEST(Acl, EmptySuffixMatchesEverything)
{
    AccessControl acl;
    acl.addRule(AclRule{"", true, false});
    EXPECT_TRUE(acl.mayAdd("anything=really"));
    EXPECT_FALSE(acl.maySearch("anything=really"));
}

TEST(Acl, SuffixMustMatchAtEnd)
{
    AccessControl acl;
    acl.addRule(AclRule{"dc=example", false, true});
    acl.setDefault(true, true);
    // "dc=example" in the middle does not match the subtree rule.
    EXPECT_TRUE(acl.mayAdd("dc=example,dc=org"));
    EXPECT_FALSE(acl.mayAdd("ou=x,dc=example"));
}

// Pipeline -------------------------------------------------------------

struct PipelineFixture : ::testing::Test
{
    PipelineFixture() : heap(makeConfig()), server(heap)
    {
        acl.addRule(AclRule{"dc=example,dc=com", true, true});
        acl.setDefault(false, true);
    }

    static PHeapConfig
    makeConfig()
    {
        PHeapConfig config;
        config.regionSize = 32ull * 1024 * 1024;
        config.durableLogs = false;
        return config;
    }

    LdapCode
    submit(const DirectoryEntry &entry, uint32_t id = 1)
    {
        const auto response =
            handleAddRequest(server, acl, encodeAddRequest(entry, id));
        uint32_t out_id = 0;
        LdapCode code = LdapCode::ProtocolError;
        decodeResponse(response, &out_id, &code);
        EXPECT_EQ(out_id, id);
        return code;
    }

    PHeap heap;
    DirectoryServer<RawPolicy> server;
    AccessControl acl;
};

TEST_F(PipelineFixture, SuccessfulAdd)
{
    EXPECT_EQ(submit(sampleEntry()), LdapCode::Success);
    EXPECT_EQ(server.entryCount(), 1u);
}

TEST_F(PipelineFixture, DuplicateReported)
{
    EXPECT_EQ(submit(sampleEntry()), LdapCode::Success);
    EXPECT_EQ(submit(sampleEntry()), LdapCode::EntryAlreadyExists);
}

TEST_F(PipelineFixture, DnsNormalizedBeforeIndexing)
{
    DirectoryEntry entry = sampleEntry();
    EXPECT_EQ(submit(entry), LdapCode::Success);
    // The same DN with different case is the same entry.
    entry.dn = "UID=Ada.Lovelace.1, OU=People, DC=Example, DC=Com";
    EXPECT_EQ(submit(entry), LdapCode::EntryAlreadyExists);
}

TEST_F(PipelineFixture, AclDeniesOutsideSuffix)
{
    DirectoryEntry entry = sampleEntry();
    entry.dn = "uid=intruder,dc=evil,dc=org";
    EXPECT_EQ(submit(entry), LdapCode::InsufficientAccessRights);
    EXPECT_EQ(server.entryCount(), 0u);
}

TEST_F(PipelineFixture, BadDnRejected)
{
    DirectoryEntry entry = sampleEntry();
    entry.dn = "notadn";
    EXPECT_EQ(submit(entry), LdapCode::InvalidDnSyntax);
}

TEST_F(PipelineFixture, UnknownAttributeRejected)
{
    DirectoryEntry entry = sampleEntry();
    entry.attributes.push_back({"flavour", "vanilla"});
    EXPECT_EQ(submit(entry), LdapCode::UndefinedAttributeType);
}

TEST_F(PipelineFixture, GarbageRequestGetsProtocolError)
{
    const std::vector<uint8_t> garbage = {0x30, 0x03, 0x01, 0x02, 0x03};
    const auto response = handleAddRequest(server, acl, garbage);
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::ProtocolError);
}

TEST_F(PipelineFixture, DeleteRoundTrip)
{
    EXPECT_EQ(submit(sampleEntry()), LdapCode::Success);
    const auto response = handleDelRequest(
        server, acl, encodeDelRequest(sampleEntry().dn, 2));
    uint32_t id = 0;
    LdapCode code = LdapCode::ProtocolError;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::Success);
    EXPECT_EQ(server.entryCount(), 0u);
    EXPECT_EQ(server.search(sampleEntry().dn),
              DirectoryResult::NoSuchObject);
}

TEST_F(PipelineFixture, DeleteMissingEntry)
{
    const auto response = handleDelRequest(
        server, acl, encodeDelRequest("uid=ghost,dc=example,dc=com", 3));
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::NoSuchObject);
}

TEST_F(PipelineFixture, DeleteDeniedByAcl)
{
    const auto response = handleDelRequest(
        server, acl, encodeDelRequest("uid=x,dc=evil,dc=org", 4));
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::InsufficientAccessRights);
}

TEST_F(PipelineFixture, ModifyReplacesAttributes)
{
    EXPECT_EQ(submit(sampleEntry()), LdapCode::Success);
    DirectoryEntry changed = sampleEntry();
    changed.attributes = {{"cn", "Augusta Ada King"},
                          {"mail", "countess@example.com"}};
    const auto response = handleModifyRequest(
        server, acl, encodeModifyRequest(changed, 5));
    uint32_t id = 0;
    LdapCode code = LdapCode::ProtocolError;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::Success);

    DirectoryEntry found;
    std::string normalized;
    ASSERT_TRUE(normalizeDn(changed.dn, &normalized));
    ASSERT_EQ(server.search(normalized, &found),
              DirectoryResult::Success);
    ASSERT_EQ(found.attributes.size(), 2u);
    EXPECT_EQ(found.attributes[0].second, "Augusta Ada King");
}

TEST_F(PipelineFixture, ModifyMissingEntryFails)
{
    const auto response = handleModifyRequest(
        server, acl, encodeModifyRequest(sampleEntry(), 6));
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeResponse(response, &id, &code));
    EXPECT_EQ(code, LdapCode::NoSuchObject);
}

TEST(Ber, DelRequestRoundTrip)
{
    const auto bytes = encodeDelRequest("uid=x,dc=example", 11);
    uint32_t id = 0;
    std::string dn;
    ASSERT_TRUE(decodeDelRequest(bytes, &id, &dn));
    EXPECT_EQ(id, 11u);
    EXPECT_EQ(dn, "uid=x,dc=example");
}

TEST(Ber, ModifyRequestRoundTrip)
{
    DirectoryEntry entry;
    entry.dn = "uid=y,dc=example";
    entry.attributes = {{"cn", "Y"}, {"sn", "Z"}};
    const auto bytes = encodeModifyRequest(entry, 12);
    uint32_t id = 0;
    DirectoryEntry back;
    ASSERT_TRUE(decodeModifyRequest(bytes, &id, &back));
    EXPECT_EQ(id, 12u);
    EXPECT_EQ(back.dn, entry.dn);
    EXPECT_EQ(back.attributes, entry.attributes);
}

TEST(Ber, CrossOpDecodeRejected)
{
    // A Del request must not decode as an Add or Modify.
    const auto bytes = encodeDelRequest("uid=x,dc=example", 13);
    uint32_t id = 0;
    DirectoryEntry entry;
    EXPECT_FALSE(decodeAddRequest(bytes, &id, &entry));
    EXPECT_FALSE(decodeModifyRequest(bytes, &id, &entry));
}

TEST_F(PipelineFixture, SearchRoundTripReturnsEntry)
{
    EXPECT_EQ(submit(sampleEntry()), LdapCode::Success);
    const auto response = handleSearchRequest(
        server, acl,
        encodeSearchRequest("UID=Ada.Lovelace.1, OU=People, "
                            "DC=Example, DC=Com",
                            7));
    uint32_t id = 0;
    LdapCode code = LdapCode::ProtocolError;
    DirectoryEntry entry;
    ASSERT_TRUE(decodeSearchResponse(response, &id, &code, &entry));
    EXPECT_EQ(id, 7u);
    EXPECT_EQ(code, LdapCode::Success);
    // The stored entry carries the normalized DN.
    EXPECT_EQ(entry.dn, "uid=ada.lovelace.1,ou=people,dc=example,dc=com");
    EXPECT_EQ(entry.attributes.size(), sampleEntry().attributes.size());
}

TEST_F(PipelineFixture, SearchMissReturnsNoSuchObject)
{
    const auto response = handleSearchRequest(
        server, acl, encodeSearchRequest("uid=ghost,dc=example,dc=com", 8));
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeSearchResponse(response, &id, &code, nullptr));
    EXPECT_EQ(code, LdapCode::NoSuchObject);
}

TEST_F(PipelineFixture, SearchDeniedBySearchAcl)
{
    AccessControl strict;
    strict.addRule(AclRule{"ou=secret,dc=example,dc=com", true, false});
    strict.setDefault(true, true);
    DirectoryEntry entry = sampleEntry();
    entry.dn = "uid=spy,ou=secret,dc=example,dc=com";
    handleAddRequest(server, strict, encodeAddRequest(entry, 1));
    const auto response = handleSearchRequest(
        server, strict, encodeSearchRequest(entry.dn, 9));
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    ASSERT_TRUE(decodeSearchResponse(response, &id, &code, nullptr));
    EXPECT_EQ(code, LdapCode::InsufficientAccessRights);
}

TEST(Ber, SearchRequestRoundTrip)
{
    const auto bytes = encodeSearchRequest("uid=q,dc=example", 14);
    uint32_t id = 0;
    std::string dn;
    ASSERT_TRUE(decodeSearchRequest(bytes, &id, &dn));
    EXPECT_EQ(id, 14u);
    EXPECT_EQ(dn, "uid=q,dc=example");
}

TEST(Ber, SearchResponseWithoutEntry)
{
    const auto bytes =
        encodeSearchResponse(15, LdapCode::NoSuchObject, nullptr);
    uint32_t id = 0;
    LdapCode code = LdapCode::Success;
    DirectoryEntry entry;
    ASSERT_TRUE(decodeSearchResponse(bytes, &id, &code, &entry));
    EXPECT_EQ(code, LdapCode::NoSuchObject);
    EXPECT_TRUE(entry.attributes.empty());
}

TEST(LdapCodeMapping, CoversDirectoryResults)
{
    EXPECT_EQ(toLdapCode(DirectoryResult::Success), LdapCode::Success);
    EXPECT_EQ(toLdapCode(DirectoryResult::EntryAlreadyExists),
              LdapCode::EntryAlreadyExists);
    EXPECT_EQ(toLdapCode(DirectoryResult::NoSuchObject),
              LdapCode::NoSuchObject);
    EXPECT_EQ(toLdapCode(DirectoryResult::UndefinedAttributeType),
              LdapCode::UndefinedAttributeType);
    EXPECT_EQ(toLdapCode(DirectoryResult::InvalidSyntax),
              LdapCode::InvalidDnSyntax);
}

} // namespace
} // namespace wsp::apps
