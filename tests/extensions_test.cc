/**
 * @file
 * Tests for the section-6 extensions: process persistence and the
 * replica-management tradeoff.
 */

#include <gtest/gtest.h>

#include "apps/cluster.h"
#include "apps/kv_store.h"
#include "core/system.h"

namespace wsp {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(100.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    config.wsp.freshKernelBootLatency = fromSeconds(2.0);
    return config;
}

// Process persistence ---------------------------------------------------

TEST(ProcessPersistence, AppMemorySurvivesContextsDoNot)
{
    SystemConfig config = smallConfig();
    config.wsp.restoreMode = RestoreMode::ProcessOnly;
    WspSystem system(config);
    system.start();

    apps::KvStore store(system.cache(), 0, 256);
    store.put(7, 77);
    const uint64_t checksum = store.checksum();
    Rng rng(1);
    system.machine().randomizeContexts(rng);
    const CpuContext before = system.machine().core(2).context;

    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_FALSE(outcome.restore.contextsRestored);
    EXPECT_NE(system.machine().core(2).context, before);

    auto attached = apps::KvStore::attach(system.cache(), 0);
    ASSERT_TRUE(attached.has_value());
    EXPECT_EQ(attached->checksum(), checksum);
}

TEST(ProcessPersistence, PaysFreshKernelBoot)
{
    Tick durations[2] = {};
    int index = 0;
    for (RestoreMode mode :
         {RestoreMode::WholeSystem, RestoreMode::ProcessOnly}) {
        SystemConfig config = smallConfig();
        config.wsp.restoreMode = mode;
        WspSystem system(config);
        system.start();
        auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                                  fromSeconds(10.0));
        durations[index++] = outcome.restore.duration();
    }
    EXPECT_GT(durations[1],
              durations[0] + fromSeconds(1.5)); // the kernel boot
}

TEST(ProcessPersistence, MarkerStillClearedAfterResume)
{
    SystemConfig config = smallConfig();
    config.wsp.restoreMode = RestoreMode::ProcessOnly;
    WspSystem system(config);
    system.start();
    system.powerFailAndRestore(fromMillis(5.0), fromSeconds(10.0));
    EXPECT_FALSE(system.wsp().marker().read(system.memory()).valid);
}

TEST(ProcessPersistence, TornSaveStillFallsBack)
{
    SystemConfig config = smallConfig();
    config.wsp.restoreMode = RestoreMode::ProcessOnly;
    config.psu.windowJitter = 0;
    config.psu.pwrOkDetectDelay = 0;
    config.psu.busyWindow = fromMicros(1.0);
    config.psu.idleWindow = fromMicros(1.0);
    WspSystem system(config);
    system.start();
    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(10.0), [&] { backend_ran = true; });
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_TRUE(backend_ran);
}

TEST(ProcessPersistence, ModeNames)
{
    EXPECT_EQ(restoreModeName(RestoreMode::WholeSystem), "whole-system");
    EXPECT_EQ(restoreModeName(RestoreMode::ProcessOnly), "process-only");
}

// Replica tradeoff ------------------------------------------------------

TEST(ReplicaTradeoff, ReReplicationTimeIsStateOverBandwidth)
{
    apps::ReplicationConfig config;
    config.stateBytes = 125ull * 1000 * 1000 * 1000; // 125 GB
    config.copyBandwidth = 1.25e9;
    EXPECT_NEAR(toSeconds(apps::reReplicationTime(config)), 100.0, 0.1);
}

TEST(ReplicaTradeoff, CatchupGrowsWithOutage)
{
    apps::ReplicationConfig config;
    const Tick short_outage =
        apps::wspCatchupTime(config, fromSeconds(10.0));
    const Tick long_outage =
        apps::wspCatchupTime(config, fromSeconds(100.0));
    EXPECT_GT(long_outage, short_outage);
    // Waiting costs at least the outage plus the local recovery.
    EXPECT_GE(short_outage,
              fromSeconds(10.0) + config.wspRecoveryTime);
}

TEST(ReplicaTradeoff, BreakEvenIsConsistent)
{
    apps::ReplicationConfig config;
    const Tick break_even = apps::breakEvenOutage(config);
    ASSERT_GT(break_even, 0u);
    const Tick rereplicate = apps::reReplicationTime(config);
    // At the break-even point both strategies cost the same.
    EXPECT_NEAR(toSeconds(apps::wspCatchupTime(config, break_even)),
                toSeconds(rereplicate), 0.5);
    // Just below, waiting wins; just above, re-replication wins.
    EXPECT_LT(apps::wspCatchupTime(config,
                                   break_even - fromSeconds(5.0)),
              rereplicate);
    EXPECT_GT(apps::wspCatchupTime(config,
                                   break_even + fromSeconds(5.0)),
              rereplicate);
}

TEST(ReplicaTradeoff, TinyStateMeansNoBreakEven)
{
    apps::ReplicationConfig config;
    config.stateBytes = 1024; // copying is nearly free
    EXPECT_EQ(apps::breakEvenOutage(config), 0u);
}

TEST(ReplicaTradeoff, HigherUpdateRateShrinksBreakEven)
{
    apps::ReplicationConfig slow;
    slow.updateRateBytesPerSec = 1e6;
    apps::ReplicationConfig fast;
    fast.updateRateBytesPerSec = 500e6;
    EXPECT_GT(apps::breakEvenOutage(slow), apps::breakEvenOutage(fast));
}

} // namespace
} // namespace wsp
