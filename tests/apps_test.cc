/**
 * @file
 * Tests for the application substrate: hash table, AVL tree,
 * directory server, KV store, back end, cluster model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "apps/avl_tree.h"
#include "apps/backend_store.h"
#include "apps/cluster.h"
#include "apps/directory_server.h"
#include "apps/hash_table.h"
#include "apps/kv_store.h"
#include "nvram/nvdimm.h"
#include "util/rng.h"

namespace wsp::apps {
namespace {

using pmem::PHeap;
using pmem::PHeapConfig;
using pmem::RawPolicy;
using pmem::StmPolicy;
using pmem::UndoPolicy;

PHeapConfig
benchHeap(bool durable)
{
    PHeapConfig config;
    config.regionSize = 64ull * 1024 * 1024;
    config.durableLogs = durable;
    return config;
}

// HashTable (typed across all policies) --------------------------------

template <typename T>
struct HashTableTyped : ::testing::Test
{
};

struct RawCase
{
    using Policy = RawPolicy;
    static constexpr bool kDurable = false;
};
struct UndoFofCase
{
    using Policy = UndoPolicy;
    static constexpr bool kDurable = false;
};
struct UndoFocCase
{
    using Policy = UndoPolicy;
    static constexpr bool kDurable = true;
};
struct StmFofCase
{
    using Policy = StmPolicy;
    static constexpr bool kDurable = false;
};
struct StmFocCase
{
    using Policy = StmPolicy;
    static constexpr bool kDurable = true;
};

using AllCases = ::testing::Types<RawCase, UndoFofCase, UndoFocCase,
                                  StmFofCase, StmFocCase>;
TYPED_TEST_SUITE(HashTableTyped, AllCases, );

TYPED_TEST(HashTableTyped, InsertLookupEraseAgainstModel)
{
    using Policy = typename TypeParam::Policy;
    PHeap heap(benchHeap(TypeParam::kDurable));
    HashTable<Policy> table(heap, 256);
    std::map<uint64_t, uint64_t> model;
    Rng rng(0xbeef);

    for (int i = 0; i < 3000; ++i) {
        const uint64_t key = rng.next(500) + 1;
        const int op = static_cast<int>(rng.next(3));
        if (op == 0) {
            const uint64_t value = rng();
            EXPECT_EQ(table.insert(key, value), model.count(key) == 0);
            model[key] = value;
        } else if (op == 1) {
            EXPECT_EQ(table.erase(key), model.erase(key) == 1);
        } else {
            uint64_t value = 0;
            const bool found = table.lookup(key, &value);
            EXPECT_EQ(found, model.count(key) == 1);
            if (found) {
                EXPECT_EQ(value, model[key]);
            }
        }
        if (i % 500 == 0) {
            EXPECT_EQ(table.size(), model.size());
        }
    }
    EXPECT_EQ(table.size(), model.size());

    uint64_t model_sum = 0;
    for (const auto &[k, v] : model)
        model_sum += v;
    EXPECT_EQ(table.sumValues(), model_sum);
}

TEST(HashTable, UpdateOverwritesValue)
{
    PHeap heap(benchHeap(false));
    HashTable<RawPolicy> table(heap, 64);
    EXPECT_TRUE(table.insert(1, 10));
    EXPECT_FALSE(table.insert(1, 20)); // update, not insert
    uint64_t value = 0;
    EXPECT_TRUE(table.lookup(1, &value));
    EXPECT_EQ(value, 20u);
    EXPECT_EQ(table.size(), 1u);
}

TEST(HashTable, CollisionChainsWork)
{
    PHeap heap(benchHeap(false));
    HashTable<RawPolicy> table(heap, 1); // everything collides
    for (uint64_t k = 1; k <= 50; ++k)
        EXPECT_TRUE(table.insert(k, k * 2));
    for (uint64_t k = 1; k <= 50; ++k) {
        uint64_t value = 0;
        EXPECT_TRUE(table.lookup(k, &value));
        EXPECT_EQ(value, k * 2);
    }
    EXPECT_TRUE(table.erase(25));
    EXPECT_FALSE(table.lookup(25));
    EXPECT_EQ(table.size(), 49u);
}

TEST(HashTable, CrashRecoveryKeepsCommittedInserts)
{
    const std::string path = ::testing::TempDir() + "wsp_ht_crash.img";
    std::remove(path.c_str());
    pmem::Offset header = 0;
    {
        PHeapConfig config = benchHeap(true);
        config.path = path;
        PHeap heap(config);
        HashTable<UndoPolicy> table(heap, 64);
        header = table.headerOffset();
        UndoPolicy::run(heap, [&](UndoPolicy::Tx &tx) {
            heap.setRootObject(tx, header);
        });
        table.insert(1, 100);
        table.insert(2, 200);

        // Crash mid-insert: begin a txn and vanish.
        heap.undoLog().txBegin();
        UndoPolicy::Tx tx(heap);
        const pmem::Offset node = tx.alloc(
            sizeof(HashTable<UndoPolicy>::Node));
        (void)node;
    }
    {
        PHeapConfig config = benchHeap(true);
        config.path = path;
        PHeap heap(config);
        EXPECT_GT(heap.openReport().undoRecordsApplied, 0u);
        HashTable<UndoPolicy> table(heap, heap.rootObject(), nullptr);
        uint64_t value = 0;
        EXPECT_TRUE(table.lookup(1, &value));
        EXPECT_EQ(value, 100u);
        EXPECT_TRUE(table.lookup(2, &value));
        EXPECT_EQ(value, 200u);
        EXPECT_EQ(table.size(), 2u);
    }
    std::remove(path.c_str());
}

// AvlTree ---------------------------------------------------------------

template <typename T>
struct AvlTyped : ::testing::Test
{
};
TYPED_TEST_SUITE(AvlTyped, AllCases, );

TYPED_TEST(AvlTyped, RandomInsertsKeepInvariants)
{
    using Policy = typename TypeParam::Policy;
    PHeap heap(benchHeap(TypeParam::kDurable));
    AvlTree<Policy> tree(heap);
    Rng rng(0xfeed);
    std::set<uint64_t> model;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t key = rng.next(10000) + 1;
        EXPECT_EQ(tree.insert(key, key), model.insert(key).second);
    }
    EXPECT_EQ(tree.size(), model.size());
    EXPECT_TRUE(tree.checkInvariants());
    EXPECT_EQ(tree.minKey(), *model.begin());
    for (uint64_t key : model)
        EXPECT_TRUE(tree.find(key));
    EXPECT_FALSE(tree.find(999999));
}

TEST(AvlTree, SequentialInsertStaysBalanced)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    for (uint64_t key = 1; key <= 1024; ++key)
        tree.insert(key, key);
    EXPECT_TRUE(tree.checkInvariants());
    // Height of a 1024-node AVL tree is at most 1.44 log2(n) ~ 14.
    EXPECT_LE(tree.height(), 14u);
}

TEST(AvlTree, PayloadReplacedOnDuplicateKey)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    EXPECT_TRUE(tree.insert(7, 70));
    EXPECT_FALSE(tree.insert(7, 71));
    pmem::Offset payload = 0;
    EXPECT_TRUE(tree.find(7, &payload));
    EXPECT_EQ(payload, 71u);
    EXPECT_EQ(tree.size(), 1u);
}

TYPED_TEST(AvlTyped, EraseAgainstModel)
{
    using Policy = typename TypeParam::Policy;
    PHeap heap(benchHeap(TypeParam::kDurable));
    AvlTree<Policy> tree(heap);
    Rng rng(0xcafe);
    std::set<uint64_t> model;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t key = rng.next(300) + 1;
        if (rng.chance(0.6)) {
            EXPECT_EQ(tree.insert(key, key), model.insert(key).second);
        } else {
            EXPECT_EQ(tree.erase(key), model.erase(key) == 1);
        }
        if (i % 250 == 0) {
            EXPECT_TRUE(tree.checkInvariants()) << "step " << i;
        }
    }
    EXPECT_EQ(tree.size(), model.size());
    EXPECT_TRUE(tree.checkInvariants());
    for (uint64_t key = 1; key <= 301; ++key)
        EXPECT_EQ(tree.find(key), model.count(key) == 1) << key;
}

TEST(AvlTree, EraseRootWithTwoChildren)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    for (uint64_t key : {50, 30, 70, 20, 40, 60, 80})
        tree.insert(key, key);
    EXPECT_TRUE(tree.erase(50));
    EXPECT_FALSE(tree.find(50));
    EXPECT_EQ(tree.size(), 6u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(AvlTree, EraseMissingKeyFails)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    tree.insert(1, 1);
    EXPECT_FALSE(tree.erase(2));
    EXPECT_EQ(tree.size(), 1u);
}

TEST(AvlTree, DrainToEmptyAndReuse)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    for (uint64_t key = 1; key <= 100; ++key)
        tree.insert(key, key);
    const uint64_t used_full = heap.heapBytesUsed();
    for (uint64_t key = 1; key <= 100; ++key)
        EXPECT_TRUE(tree.erase(key));
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.height(), 0u);
    // Freed nodes are reused: refilling takes no new heap space.
    for (uint64_t key = 1; key <= 100; ++key)
        tree.insert(key, key);
    EXPECT_EQ(heap.heapBytesUsed(), used_full);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(AvlTree, SequentialEraseStaysBalanced)
{
    PHeap heap(benchHeap(false));
    AvlTree<RawPolicy> tree(heap);
    for (uint64_t key = 1; key <= 512; ++key)
        tree.insert(key, key);
    // Remove the lower half in order: the right-heavy remainder must
    // stay height-balanced throughout.
    for (uint64_t key = 1; key <= 256; ++key) {
        ASSERT_TRUE(tree.erase(key));
        if (key % 64 == 0) {
            ASSERT_TRUE(tree.checkInvariants()) << "after " << key;
        }
    }
    EXPECT_LE(tree.height(), 10u); // 256 nodes -> <= ~1.44 log2(256)
}

TEST(AvlTree, EraseCrashRecoveryRollsBack)
{
    const std::string path = ::testing::TempDir() + "wsp_avl_erase.img";
    std::remove(path.c_str());
    {
        PHeapConfig config = benchHeap(true);
        config.path = path;
        PHeap heap(config);
        AvlTree<UndoPolicy> tree(heap);
        UndoPolicy::run(heap, [&](UndoPolicy::Tx &tx) {
            heap.setRootObject(tx, tree.headerOffset());
        });
        for (uint64_t key = 1; key <= 20; ++key)
            tree.insert(key, key);
        // Crash in the middle of an erase: begin the txn by hand and
        // run the structural edits without committing.
        heap.undoLog().txBegin();
        UndoPolicy::Tx tx(heap);
        auto *h = heap.region().at<AvlTree<UndoPolicy>::Header>(
            tree.headerOffset());
        tx.write(&h->root, pmem::kNullOffset); // partial damage
        // crash: no commit
    }
    {
        PHeapConfig config = benchHeap(true);
        config.path = path;
        PHeap heap(config);
        EXPECT_GT(heap.openReport().undoRecordsApplied, 0u);
        AvlTree<UndoPolicy> tree(heap, heap.rootObject(), nullptr);
        EXPECT_EQ(tree.size(), 20u);
        EXPECT_TRUE(tree.checkInvariants());
        for (uint64_t key = 1; key <= 20; ++key)
            EXPECT_TRUE(tree.find(key));
    }
    std::remove(path.c_str());
}

TEST(HashTable, ConcurrentStmInsertsAreLinearizable)
{
    // FoF + STM: four threads hammer disjoint key ranges plus one
    // shared counter key; the table must end with every key present
    // and the shared counter equal to the total increment count.
    PHeap heap(benchHeap(false));
    HashTable<StmPolicy> table(heap, 128);
    table.insert(1, 0); // the shared counter
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 300;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const uint64_t base = 1000 + static_cast<uint64_t>(t) * 10000;
            for (uint64_t i = 0; i < kPerThread; ++i) {
                table.insert(base + i, i);
                StmPolicy::run(heap, [&](StmPolicy::Tx &) {});
                uint64_t counter = 0;
                table.lookup(1, &counter);
                table.insert(1, counter + 1); // read-modify-write txns
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t) {
        const uint64_t base = 1000 + static_cast<uint64_t>(t) * 10000;
        for (uint64_t i = 0; i < kPerThread; ++i)
            ASSERT_TRUE(table.lookup(base + i)) << t << ":" << i;
    }
    // NOTE: lookup+insert above are two separate transactions, so the
    // counter may undercount; the structural integrity is the claim.
    EXPECT_EQ(table.size(), 1u + kThreads * kPerThread);
    EXPECT_EQ(table.sumValues() >= 0, true);
}

// Directory server ---------------------------------------------------------

TEST(Directory, ParseValidEntry)
{
    DirectoryEntry entry;
    const auto result = parseEntry(
        "dn: uid=x,dc=example,dc=com\ncn: Alice\nmail: a@b.c\n", &entry);
    EXPECT_EQ(result, DirectoryResult::Success);
    EXPECT_EQ(entry.dn, "uid=x,dc=example,dc=com");
    ASSERT_EQ(entry.attributes.size(), 2u);
    EXPECT_EQ(entry.attributes[0].first, "cn");
    EXPECT_EQ(entry.attributes[0].second, "Alice");
}

TEST(Directory, ParseRejectsMissingDn)
{
    DirectoryEntry entry;
    EXPECT_EQ(parseEntry("cn: Alice\n", &entry),
              DirectoryResult::InvalidSyntax);
    EXPECT_EQ(parseEntry("", &entry), DirectoryResult::InvalidSyntax);
}

TEST(Directory, ParseRejectsMalformedLine)
{
    DirectoryEntry entry;
    EXPECT_EQ(parseEntry("dn: x\nnocolonhere\n", &entry),
              DirectoryResult::InvalidSyntax);
}

TEST(Directory, ValidateRejectsUnknownAttribute)
{
    DirectoryEntry entry;
    entry.dn = "uid=x";
    entry.attributes = {{"flavour", "vanilla"}};
    EXPECT_EQ(validateEntry(entry),
              DirectoryResult::UndefinedAttributeType);
}

TEST(Directory, ValidateRejectsEmptyValue)
{
    DirectoryEntry entry;
    entry.dn = "uid=x";
    entry.attributes = {{"cn", ""}};
    EXPECT_EQ(validateEntry(entry), DirectoryResult::InvalidSyntax);
}

TEST(Directory, RandomEntriesValidate)
{
    Rng rng(1);
    for (uint64_t i = 0; i < 100; ++i) {
        const DirectoryEntry entry = randomEntry(rng, i);
        EXPECT_EQ(validateEntry(entry), DirectoryResult::Success);
        // Round-trips through the wire format.
        DirectoryEntry back;
        EXPECT_EQ(parseEntry(renderEntry(entry), &back),
                  DirectoryResult::Success);
        EXPECT_EQ(back.dn, entry.dn);
        EXPECT_EQ(back.attributes.size(), entry.attributes.size());
    }
}

TEST(Directory, AddThenSearchRoundTrip)
{
    PHeap heap(benchHeap(false));
    DirectoryServer<RawPolicy> server(heap);
    Rng rng(2);
    const DirectoryEntry entry = randomEntry(rng, 0);
    EXPECT_EQ(server.add(renderEntry(entry)), DirectoryResult::Success);
    DirectoryEntry found;
    EXPECT_EQ(server.search(entry.dn, &found), DirectoryResult::Success);
    EXPECT_EQ(found.dn, entry.dn);
    EXPECT_EQ(found.attributes.size(), entry.attributes.size());
}

TEST(Directory, DuplicateAddRejected)
{
    PHeap heap(benchHeap(false));
    DirectoryServer<RawPolicy> server(heap);
    Rng rng(3);
    const std::string text = renderEntry(randomEntry(rng, 0));
    EXPECT_EQ(server.add(text), DirectoryResult::Success);
    EXPECT_EQ(server.add(text), DirectoryResult::EntryAlreadyExists);
    EXPECT_EQ(server.entryCount(), 1u);
}

TEST(Directory, SearchMissReturnsNoSuchObject)
{
    PHeap heap(benchHeap(false));
    DirectoryServer<RawPolicy> server(heap);
    EXPECT_EQ(server.search("uid=ghost"), DirectoryResult::NoSuchObject);
}

TEST(Directory, BulkLoadUnderStmKeepsIndexInvariants)
{
    PHeap heap(benchHeap(true));
    DirectoryServer<StmPolicy> server(heap);
    Rng rng(4);
    for (uint64_t i = 0; i < 500; ++i) {
        EXPECT_EQ(server.add(renderEntry(randomEntry(rng, i))),
                  DirectoryResult::Success);
    }
    EXPECT_EQ(server.entryCount(), 500u);
    EXPECT_TRUE(server.index().checkInvariants());
}

// KvStore (simulated machine side) -----------------------------------------

struct KvFixture : ::testing::Test
{
    KvFixture()
        : dimm(queue, "d",
               [] {
                   NvdimmConfig config;
                   config.capacityBytes = 8 * kMiB;
                   config.flashChannels = 1;
                   return config;
               }())
    {
        space.addModule(dimm);
        cache = std::make_unique<CacheModel>("L3", 2 * kMiB,
                                             CacheTiming{}, space);
    }

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
    std::unique_ptr<CacheModel> cache;
};

TEST_F(KvFixture, PutGetEraseAgainstModel)
{
    KvStore store(*cache, 0, 1024);
    std::map<uint64_t, uint64_t> model;
    Rng rng(5);
    for (int i = 0; i < 3000; ++i) {
        const uint64_t key = rng.next(400) + 1;
        switch (rng.next(3)) {
          case 0:
            EXPECT_TRUE(store.put(key, key * 3));
            model[key] = key * 3;
            break;
          case 1:
            EXPECT_EQ(store.erase(key), model.erase(key) == 1);
            break;
          default: {
            uint64_t value = 0;
            EXPECT_EQ(store.get(key, &value), model.count(key) == 1);
            if (model.count(key)) {
                EXPECT_EQ(value, model[key]);
            }
          }
        }
    }
    EXPECT_EQ(store.size(), model.size());
}

TEST_F(KvFixture, TombstonesAreReused)
{
    KvStore store(*cache, 0, 8);
    for (uint64_t k = 1; k <= 6; ++k)
        EXPECT_TRUE(store.put(k, k));
    EXPECT_TRUE(store.erase(3));
    EXPECT_TRUE(store.put(100, 100)); // may land in the tombstone
    EXPECT_TRUE(store.get(100));
    for (uint64_t k = 1; k <= 6; ++k)
        EXPECT_EQ(store.get(k), k != 3);
}

TEST_F(KvFixture, FullTableRejectsNewKeys)
{
    KvStore store(*cache, 0, 4);
    for (uint64_t k = 1; k <= 4; ++k)
        EXPECT_TRUE(store.put(k, k));
    EXPECT_FALSE(store.put(99, 99));
    // Updating an existing key still works.
    EXPECT_TRUE(store.put(2, 22));
}

TEST_F(KvFixture, AttachFindsExistingStore)
{
    {
        KvStore store(*cache, 4096, 64);
        store.put(42, 4242);
    }
    auto attached = KvStore::attach(*cache, 4096);
    ASSERT_TRUE(attached.has_value());
    uint64_t value = 0;
    EXPECT_TRUE(attached->get(42, &value));
    EXPECT_EQ(value, 4242u);
    EXPECT_EQ(attached->size(), 1u);
}

TEST_F(KvFixture, AttachRejectsGarbage)
{
    EXPECT_FALSE(KvStore::attach(*cache, 1 * kMiB).has_value());
}

TEST_F(KvFixture, ChecksumTracksContent)
{
    KvStore store(*cache, 0, 64);
    const uint64_t empty = store.checksum();
    store.put(1, 2);
    const uint64_t one = store.checksum();
    EXPECT_NE(empty, one);
    store.erase(1);
    EXPECT_EQ(store.checksum(), empty);
}

// BackendStore ----------------------------------------------------------

TEST_F(KvFixture, BackendCheckpointAndLogRecover)
{
    KvStore store(*cache, 0, 256);
    store.put(1, 10);
    store.put(2, 20);

    BackendStore backend;
    backend.checkpoint(store);
    backend.logUpdate({3, 30, false});
    backend.logUpdate({1, 0, true}); // erase key 1 after checkpoint

    KvStore fresh(*cache, 1 * kMiB, 256);
    EXPECT_EQ(backend.recoverInto(&fresh), 4u);
    EXPECT_FALSE(fresh.get(1));
    uint64_t value = 0;
    EXPECT_TRUE(fresh.get(2, &value));
    EXPECT_EQ(value, 20u);
    EXPECT_TRUE(fresh.get(3, &value));
    EXPECT_EQ(value, 30u);
}

TEST(Backend, RecoveryTimeMatchesPaperExample)
{
    // Paper section 2: 256 GB at 0.5 GB/s is more than 8 minutes.
    BackendConfig config;
    config.perStreamBandwidth = 0.5e9;
    config.aggregateBandwidth = 1e12; // not the limiter here
    BackendStore backend(config);
    const Tick t = backend.recoveryTime(256ull * 1000 * 1000 * 1000, 1);
    EXPECT_GT(toSeconds(t), 8 * 60.0);
}

TEST(Backend, StormDividesAggregateBandwidth)
{
    BackendConfig config;
    config.perStreamBandwidth = 0.5e9;
    config.aggregateBandwidth = 2.0e9;
    BackendStore backend(config);
    const uint64_t bytes = 64ull * 1024 * 1024 * 1024;
    const Tick alone = backend.recoveryTime(bytes, 1);
    const Tick storm = backend.recoveryTime(bytes, 100);
    // 100 servers on 2 GB/s -> 20 MB/s each: 25x slower than alone.
    EXPECT_NEAR(static_cast<double>(storm) / static_cast<double>(alone),
                25.0, 0.1);
}

// Cluster ----------------------------------------------------------------

TEST(Cluster, WspBeatsBackendStorm)
{
    ClusterConfig config;
    config.servers = 100;
    config.memoryPerServer = 256ull * 1024 * 1024 * 1024;
    config.nvdimm.capacityBytes = 8 * kGiB;
    const StormReport report = correlatedOutage(config);
    EXPECT_GT(report.backendRecovery, report.backendSingle);
    EXPECT_LT(report.wspRecovery, report.backendSingle);
    EXPECT_GT(report.speedup, 10.0);
}

TEST(Cluster, SingleServerStillFasterWithWsp)
{
    ClusterConfig config;
    config.servers = 1;
    config.memoryPerServer = 64ull * 1024 * 1024 * 1024;
    config.nvdimm.capacityBytes = 8 * kGiB;
    const StormReport report = correlatedOutage(config);
    EXPECT_EQ(report.backendRecovery, report.backendSingle);
    EXPECT_LT(report.wspRecovery, report.backendRecovery);
}

} // namespace
} // namespace wsp::apps
