/**
 * @file
 * Parameterized property tests for the WSP core.
 *
 * Sweeps the central invariant across platforms, PSUs, and a dense
 * ladder of failure-injection points, and covers the awkward corners:
 * power failing *again* during a restore, outages ending inside the
 * residual window, back-to-back failure cycles, and save attempts
 * under the strawman device policy.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "apps/kv_store.h"
#include "core/system.h"
#include "test_seed.h"

namespace wsp {
namespace {

SystemConfig
baseConfig()
{
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(50.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    return config;
}

// Sweep: platform x window --------------------------------------------------

using PlatformWindowParam = std::tuple<int, double>; // platform, window ms

class PlatformWindowSweep
    : public ::testing::TestWithParam<PlatformWindowParam>
{
};

TEST_P(PlatformWindowSweep, InvariantHoldsEverywhere)
{
    const auto [platform_index, window_ms] = GetParam();
    SystemConfig config = baseConfig();
    config.platform = allPlatforms().at(
        static_cast<size_t>(platform_index));
    config.psu.windowJitter = 0;
    config.psu.pwrOkDetectDelay = 0;
    config.psu.busyWindow = fromMillis(window_ms);
    config.psu.idleWindow = fromMillis(window_ms);

    WspSystem system(config);
    system.start();

    apps::KvStore store(system.cache(), 0, 512);
    SCOPED_TRACE(testing::seedTrace(4));
    Rng rng(testing::testSeed(4));
    for (uint64_t i = 1; i <= 200; ++i)
        store.put(i, rng());
    const uint64_t checksum = store.checksum();

    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });

    if (outcome.restore.usedWsp) {
        auto restored = apps::KvStore::attach(system.cache(), 0);
        ASSERT_TRUE(restored.has_value());
        EXPECT_EQ(restored->checksum(), checksum)
            << config.platform.name << " @ " << window_ms << " ms";
        EXPECT_FALSE(backend_ran);
    } else {
        EXPECT_TRUE(backend_ran);
    }
    EXPECT_TRUE(system.wsp().running());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlatformWindowSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.05, 1.0, 2.0, 3.0, 4.0, 10.0,
                                         33.0)),
    [](const auto &info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "_us" +
               std::to_string(
                   static_cast<int>(std::get<1>(info.param) * 1000));
    });

TEST(PlatformWindowSweepCoverage, BothRegimesOccur)
{
    // The grid above must actually include both outcomes; verify with
    // the fastest and slowest platforms at the extreme windows.
    int used_wsp = 0;
    int fell_back = 0;
    for (double ms : {0.05, 33.0}) {
        SystemConfig config = baseConfig();
        config.psu.windowJitter = 0;
        config.psu.pwrOkDetectDelay = 0;
        config.psu.busyWindow = fromMillis(ms);
        config.psu.idleWindow = fromMillis(ms);
        WspSystem system(config);
        system.start();
        auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                                  fromSeconds(30.0));
        (outcome.restore.usedWsp ? used_wsp : fell_back) += 1;
    }
    EXPECT_EQ(used_wsp, 1);
    EXPECT_EQ(fell_back, 1);
}

// PSU preset sweep ------------------------------------------------------

class PsuPresetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PsuPresetSweep, RealPresetsAlwaysFitTheSave)
{
    // Paper section 5.3: measured windows are 2.5-80x the save time on
    // every real configuration, so the save must always complete.
    const PsuPreset presets[] = {psuPresetAmd400W(), psuPresetAmd525W(),
                                 psuPresetIntel750W(),
                                 psuPresetIntel1050W()};
    SystemConfig config = baseConfig();
    config.psu = presets[static_cast<size_t>(GetParam())];
    WspSystem system(config);
    system.start();
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    ASSERT_TRUE(outcome.save.has_value());
    EXPECT_TRUE(outcome.restore.usedWsp);
    const auto fraction = system.wsp().windowFractionUsed();
    ASSERT_TRUE(fraction.has_value());
    // Paper: the save fits within 2-35% of the window.
    EXPECT_LT(*fraction, 0.40);
}

INSTANTIATE_TEST_SUITE_P(AllPsus, PsuPresetSweep,
                         ::testing::Values(0, 1, 2, 3));

// Awkward corners ---------------------------------------------------------

TEST(WspCorners, OutageEndsInsideResidualWindow)
{
    // Power comes back before regulation is lost: no hard power loss,
    // but the save already ran and halted the machine; the boot path
    // restores from the (completed or in-flight) NVDIMM save.
    SystemConfig config = baseConfig();
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 256);
    store.put(5, 55);
    const uint64_t checksum = store.checksum();

    // Outage of 10 ms against a 33 ms window.
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromMillis(10.0));
    EXPECT_TRUE(outcome.restore.usedWsp);
    auto restored = apps::KvStore::attach(system.cache(), 0);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->checksum(), checksum);
}

TEST(WspCorners, ThreeConsecutiveCycles)
{
    SystemConfig config = baseConfig();
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 512);
    SCOPED_TRACE(testing::seedTrace(6));
    Rng rng(testing::testSeed(6));
    uint64_t key = 1;
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 50; ++i)
            store.put(key++, rng());
        const uint64_t checksum = store.checksum();
        auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                                  fromSeconds(10.0));
        ASSERT_TRUE(outcome.restore.usedWsp) << "cycle " << cycle;
        auto restored = apps::KvStore::attach(system.cache(), 0);
        ASSERT_TRUE(restored.has_value());
        EXPECT_EQ(restored->checksum(), checksum) << "cycle " << cycle;
    }
}

TEST(WspCorners, SaveWithHugeDirtyFootprint)
{
    // Dirty the whole cache on the largest platform; the save must
    // still fit comfortably (wbinvd is flat).
    SystemConfig config = baseConfig();
    config.platform = platformIntelX5650();
    config.nvdimm.capacityBytes = 16 * kMiB; // room for 12 MiB of lines
    WspSystem system(config);
    system.start();
    SCOPED_TRACE(testing::seedTrace(7));
    Rng rng(testing::testSeed(7));
    system.machine().fillCachesDirty(
        config.platform.cachePerSocket, rng);
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    ASSERT_TRUE(outcome.save.has_value());
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_LT(toMillis(outcome.save->duration()), 5.0);
}

TEST(WspCorners, DirtyLinesReallyNeedTheFlush)
{
    // Negative control: if the failure hits before the flush step,
    // dirty lines are gone. This is what distinguishes WSP from "DRAM
    // happens to be non-volatile".
    SystemConfig config = baseConfig();
    config.psu.windowJitter = 0;
    config.psu.pwrOkDetectDelay = 0;
    config.psu.busyWindow = fromMicros(1.0); // save can't even start
    config.psu.idleWindow = fromMicros(1.0);
    config.wsp.armNvdimms = true; // modules still self-save
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 256);
    store.put(1, 111); // sits dirty in cache

    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(10.0), [&] { backend_ran = true; });
    // The NVDIMM image exists (auto-save) but the marker was never
    // stamped, so WSP recovery must refuse it.
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_TRUE(backend_ran);
}

TEST(WspCorners, WindowFractionMatchesPaperBand)
{
    // Paper abstract: flush-on-fail completes within 2-35% of the
    // residual window on standard supplies. Check the two testbeds on
    // their own PSUs.
    struct Case
    {
        PlatformSpec platform;
        PsuPreset psu;
    };
    for (auto &[platform, psu] :
         {Case{platformIntelC5528(), psuPresetIntel1050W()},
          Case{platformAmd4180(), psuPresetAmd400W()}}) {
        SystemConfig config = baseConfig();
        config.platform = platform;
        config.psu = psu;
        config.psu.windowJitter = 0;
        WspSystem system(config);
        system.start();
        system.powerFailAndRestore(fromMillis(5.0), fromSeconds(10.0));
        const auto fraction = system.wsp().windowFractionUsed();
        ASSERT_TRUE(fraction.has_value()) << platform.name;
        EXPECT_GT(*fraction, 0.002) << platform.name;
        EXPECT_LT(*fraction, 0.35) << platform.name;
    }
}

TEST(WspCorners, StrawmanPolicyOnIdleDevicesStillTooSlow)
{
    // Even with zero outstanding I/O, ACPI suspend takes seconds and
    // cannot fit any real window (Fig. 9's "idle" bars).
    SystemConfig config = baseConfig();
    config.devices = deviceSetIntel();
    config.wsp.devicePolicy = DevicePolicy::AcpiSuspendOnSave;
    WspSystem system(config);
    system.start();
    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });
    EXPECT_FALSE(outcome.save.has_value());
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_TRUE(backend_ran);
}

TEST(WspCorners, SecondFailureDuringRestoreIsSurvivable)
{
    // Power fails again while the machine is still booting from the
    // first failure. The interrupted restore must go quiet, and a
    // third boot must end with a running system and intact (or
    // back-end-recovered) state — never a torn resume.
    SystemConfig config = baseConfig();
    config.wsp.firmwareBootLatency = fromMillis(200.0);
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 256);
    store.put(9, 99);
    const uint64_t checksum = store.checksum();

    // First failure and outage.
    system.psu().failInputAt(system.queue().now() + fromMillis(5.0));
    system.runFor(fromSeconds(5.0));

    // Boot, but kill the power again mid-firmware (before the boot
    // callback can possibly run).
    bool first_boot_done = false;
    system.wsp().boot(nullptr,
                      [&](RestoreReport) { first_boot_done = true; });
    system.psu().failInputAt(system.queue().now() + fromMillis(50.0));
    system.runFor(fromSeconds(5.0));
    EXPECT_FALSE(first_boot_done); // the interrupted boot went quiet

    // Third attempt with stable power.
    bool backend_ran = false;
    bool second_boot_done = false;
    RestoreReport report;
    system.wsp().boot([&] { backend_ran = true; },
                      [&](RestoreReport r) {
        report = r;
        second_boot_done = true;
    });
    while (!second_boot_done && system.queue().step()) {
    }
    ASSERT_TRUE(second_boot_done);
    EXPECT_TRUE(system.wsp().running());
    if (report.usedWsp) {
        auto restored = apps::KvStore::attach(system.cache(), 0);
        ASSERT_TRUE(restored.has_value());
        EXPECT_EQ(restored->checksum(), checksum);
    } else {
        EXPECT_TRUE(backend_ran);
    }
}

TEST(WspCorners, SecondFailureAfterMarkerClearFallsBack)
{
    // Kill power in the tiny window after the restore consumed the
    // marker (contexts restored) but before the OS resume completes.
    // The third boot must refuse the stale image and use the back end.
    SystemConfig config = baseConfig();
    config.wsp.osResumeLatency = fromMillis(100.0);
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 256);
    store.put(3, 33);

    system.psu().failInputAt(system.queue().now() + fromMillis(5.0));
    system.runFor(fromSeconds(5.0));

    bool first_boot_done = false;
    system.wsp().boot(nullptr,
                      [&](RestoreReport) { first_boot_done = true; });
    // Firmware (100 ms) + NVDIMM restore (~250 ms) land before ~400 ms;
    // the marker clears at the start of the 100 ms OS resume. Fail
    // inside that window.
    const Tick restore_point =
        config.wsp.firmwareBootLatency + fromMillis(260.0);
    system.psu().failInputAt(system.queue().now() + restore_point +
                             fromMillis(20.0));
    system.runFor(fromSeconds(8.0));

    bool backend_ran = false;
    bool done = false;
    RestoreReport report;
    system.wsp().boot([&] { backend_ran = true; },
                      [&](RestoreReport r) {
        report = r;
        done = true;
    });
    while (!done && system.queue().step()) {
    }
    ASSERT_TRUE(done);
    EXPECT_TRUE(system.wsp().running());
    // Whichever path ran, the invariant holds; if the marker was
    // consumed before the kill, the back end must have been engaged.
    if (!report.usedWsp) {
        EXPECT_TRUE(backend_ran);
    }
    (void)first_boot_done;
}

TEST(WspCorners, RestoreIsExactAcrossAllMemoryRegions)
{
    // Write patterns into several distinct regions including near the
    // top-of-memory control structures; all must survive.
    SystemConfig config = baseConfig();
    WspSystem system(config);
    system.start();
    SCOPED_TRACE(testing::seedTrace(8));
    Rng rng(testing::testSeed(8));
    const uint64_t marker_base =
        WspLayout::topOfMemory(system.memory().capacity(),
                               system.machine().coreCount())
            .resumeBase;
    std::vector<uint64_t> bases = {0, 1 * kMiB, 3 * kMiB,
                                   marker_base - 64 * kKiB};
    std::vector<uint64_t> expected;
    for (uint64_t base : bases) {
        const uint64_t value = rng();
        system.cache().writeU64(base, value);
        expected.push_back(value);
    }
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    ASSERT_TRUE(outcome.restore.usedWsp);
    for (size_t i = 0; i < bases.size(); ++i)
        EXPECT_EQ(system.cache().readU64(bases[i]), expected[i]);
}

TEST(WspCorners, SingleCoreMachineSavesAndRestores)
{
    // Degenerate topology: one socket, one core, no hyperthreads.
    // "Halt N-1 processors" halts nobody; everything else holds.
    SystemConfig config = baseConfig();
    config.platform.sockets = 1;
    config.platform.coresPerSocket = 1;
    config.platform.threadsPerCore = 1;
    WspSystem system(config);
    system.start();
    apps::KvStore store(system.cache(), 0, 256);
    store.put(4, 44);
    SCOPED_TRACE(testing::seedTrace(12));
    Rng rng(testing::testSeed(12));
    system.machine().randomizeContexts(rng);
    const CpuContext before = system.machine().core(0).context;

    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    ASSERT_TRUE(outcome.restore.usedWsp);
    EXPECT_EQ(system.machine().core(0).context, before);
    auto restored = apps::KvStore::attach(system.cache(), 0);
    ASSERT_TRUE(restored.has_value());
    uint64_t value = 0;
    EXPECT_TRUE(restored->get(4, &value));
    EXPECT_EQ(value, 44u);
}

TEST(WspCorners, EightModuleSystemRecovers)
{
    SystemConfig config = baseConfig();
    config.nvdimmCount = 8;
    config.nvdimm.capacityBytes = 1 * kMiB;
    WspSystem system(config);
    system.start();
    // Scatter state across every module.
    SCOPED_TRACE(testing::seedTrace(13));
    Rng rng(testing::testSeed(13));
    std::vector<std::pair<uint64_t, uint64_t>> cells;
    for (int i = 0; i < 64; ++i) {
        const uint64_t addr =
            rng.next(system.memory().capacity() - 64 * kKiB) & ~7ull;
        const uint64_t value = rng();
        system.cache().writeU64(addr, value);
        cells.emplace_back(addr, value);
    }
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    ASSERT_TRUE(outcome.restore.usedWsp);
    for (const auto &[addr, value] : cells)
        ASSERT_EQ(system.cache().readU64(addr), value);
    // All eight modules completed their saves and restores. A module
    // may save twice: once on the explicit command (which finishes
    // inside the residual window for these small modules) and again
    // when the armed hardware sees the actual power loss.
    for (size_t i = 0; i < system.memory().moduleCount(); ++i) {
        EXPECT_GE(system.memory().module(i).savesCompleted(), 1u);
        EXPECT_EQ(system.memory().module(i).restoresCompleted(), 1u);
    }
}

TEST(WspCorners, SaveReportAccountsFullDuration)
{
    // The per-step timings must tile the save interval: no step gap
    // and no overlap in the recorded sequence.
    SystemConfig config = baseConfig();
    WspSystem system(config);
    system.start();
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(10.0));
    ASSERT_TRUE(outcome.save.has_value());
    const auto &steps = outcome.save->steps;
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.front().start, outcome.save->started);
    for (size_t i = 1; i < steps.size(); ++i)
        EXPECT_EQ(steps[i].start, steps[i - 1].end) << steps[i].step;
    EXPECT_EQ(steps.back().end, outcome.save->halted);
}

} // namespace
} // namespace wsp
