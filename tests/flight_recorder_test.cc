/**
 * @file
 * Unit tests for the NVRAM black-box flight recorder.
 *
 * The recorder is exercised against a synthetic byte-array backing so
 * every publication step is observable: codec round-trips, the
 * write-record-then-publish-header discipline, staging while the
 * backing is unwritable (and the tail-gap bookkeeping when staging
 * overflows), volatile-phase contiguity breaks, and — the acceptance
 * sweep — a decode at every 64-byte tear position over the recorder
 * region, which must never report a torn slot inside the published
 * window.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "trace/flight_recorder.h"

namespace wsp::trace {
namespace {

class FlightRecorderTest : public ::testing::Test
{
  protected:
    static constexpr size_t kCap = 16;        ///< ring records
    static constexpr uint64_t kBase = 4096;   ///< slot 0 address

    void
    SetUp() override
    {
        auto &recorder = FlightRecorder::instance();
        recorder.clearForTest();
        nvram_.assign(kBase + (kCap + 1) * kFrRecordBytes, 0);
        writable_ = true;

        FlightRecorder::Backing backing;
        backing.base = kBase;
        backing.capacityRecords = kCap;
        backing.writeLine = [this](uint64_t addr,
                                   std::span<const uint8_t> bytes) {
            ASSERT_LE(addr + bytes.size(), nvram_.size());
            std::memcpy(nvram_.data() + addr, bytes.data(),
                        bytes.size());
        };
        backing.writable = [this] { return writable_; };
        recorder.setMode(FrMode::Nvram);
        recorder.attach(this, std::move(backing), 7);
    }

    void
    TearDown() override
    {
        auto &recorder = FlightRecorder::instance();
        recorder.setMode(FrMode::Off);
        recorder.detach(this);
        recorder.clearForTest();
    }

    uint64_t
    headerAddr() const
    {
        return kBase + kCap * kFrRecordBytes;
    }

    /** Reader over the synthetic NVRAM, refusing below @p floor. */
    FrByteReader
    reader(uint64_t floor = 0) const
    {
        return [this, floor](uint64_t addr, std::span<uint8_t> out) {
            if (addr < floor || addr + out.size() > nvram_.size())
                return false;
            std::memcpy(out.data(), nvram_.data() + addr, out.size());
            return true;
        };
    }

    FrDecodeResult
    decode() const
    {
        return frDecode(reader(), headerAddr());
    }

    void
    emitN(unsigned n, FrEvent event = FrEvent::KvBatch)
    {
        for (unsigned i = 0; i < n; ++i)
            frEmit(event, Category::Apps, i, i * 10);
    }

    std::vector<uint8_t> nvram_;
    bool writable_ = true;
};

TEST_F(FlightRecorderTest, RecordCodecRoundTrip)
{
    FrRecord record;
    record.seq = 0x1122334455667788ull;
    record.generation = 3;
    record.simTick = 1234567;
    record.wallNs = 987654321;
    record.a0 = 42;
    record.a1 = ~0ull;
    record.event = FrEvent::SaveMarkerStamp;
    record.category = Category::Nvram;

    uint8_t line[kFrRecordBytes];
    frEncodeRecord(record, line);
    FrRecord back;
    ASSERT_TRUE(frDecodeRecord(line, &back));
    EXPECT_EQ(back.seq, record.seq);
    EXPECT_EQ(back.generation, record.generation);
    EXPECT_EQ(back.simTick, record.simTick);
    EXPECT_EQ(back.wallNs, record.wallNs);
    EXPECT_EQ(back.a0, record.a0);
    EXPECT_EQ(back.a1, record.a1);
    EXPECT_EQ(back.event, record.event);
    EXPECT_EQ(back.category, record.category);

    // Any flipped payload byte must fail the CRC.
    line[17] ^= 0x40;
    EXPECT_FALSE(frDecodeRecord(line, &back));
}

TEST_F(FlightRecorderTest, PublishedRecordsDecodeInOrder)
{
    emitN(5);
    const FrDecodeResult result = decode();
    ASSERT_TRUE(result.headerFound);
    ASSERT_TRUE(result.headerValid);
    EXPECT_TRUE(result.sound());
    EXPECT_EQ(result.generation, 7u);
    EXPECT_EQ(result.capacity, kCap);
    ASSERT_EQ(result.records.size(), 5u);
    for (size_t i = 1; i < result.records.size(); ++i)
        EXPECT_EQ(result.records[i].seq,
                  result.records[i - 1].seq + 1);
    for (size_t i = 0; i < result.records.size(); ++i) {
        EXPECT_EQ(result.records[i].event, FrEvent::KvBatch);
        EXPECT_EQ(result.records[i].a0, i);
        EXPECT_EQ(result.records[i].a1, i * 10);
    }
    EXPECT_EQ(result.headSeq - result.tailSeq, 5u);
    EXPECT_EQ(result.tornSlots, 0u);
    EXPECT_EQ(result.unsavedSlots, 0u);
}

TEST_F(FlightRecorderTest, WrapKeepsNewestCapacityRecords)
{
    emitN(static_cast<unsigned>(2 * kCap + 3));
    const FrDecodeResult result = decode();
    ASSERT_TRUE(result.headerValid);
    EXPECT_TRUE(result.sound());
    ASSERT_EQ(result.records.size(), kCap);
    EXPECT_EQ(result.records.back().seq + 1, result.headSeq);
    // The mirror tracks the same window.
    const auto mirrored = FlightRecorder::instance().mirror();
    ASSERT_EQ(mirrored.size(), kCap);
    EXPECT_EQ(mirrored.back().seq, result.records.back().seq);
}

TEST_F(FlightRecorderTest, InFlightTailSlotIsAcceptable)
{
    emitN(static_cast<unsigned>(kCap + 2));
    FrDecodeResult result = decode();
    ASSERT_TRUE(result.sound());

    // A crash between the slot write and the header publish: the next
    // record reached its slot, the header still vouches only for the
    // previous head.
    FrRecord inflight;
    inflight.seq = result.headSeq;
    inflight.event = FrEvent::SaveHalt;
    inflight.category = Category::Core;
    uint8_t line[kFrRecordBytes];
    frEncodeRecord(inflight, line);
    const uint64_t slot = inflight.seq % kCap;
    std::memcpy(nvram_.data() + kBase + slot * kFrRecordBytes, line,
                kFrRecordBytes);

    result = decode();
    EXPECT_TRUE(result.sound());
    EXPECT_TRUE(result.unpublishedTail);
    EXPECT_EQ(result.tornSlots, 0u);

    // The same slot holding torn garbage is equally acceptable.
    std::memset(nvram_.data() + kBase + slot * kFrRecordBytes + 20, 0xa5,
                16);
    result = decode();
    EXPECT_TRUE(result.sound());
}

TEST_F(FlightRecorderTest, TornSlotInsideWindowIsUnsound)
{
    emitN(static_cast<unsigned>(kCap + 2));
    FrDecodeResult before = decode();
    ASSERT_TRUE(before.sound());

    // Corrupt a *published* slot (two behind the head).
    const uint64_t victim = (before.headSeq - 2) % kCap;
    nvram_[kBase + victim * kFrRecordBytes + 33] ^= 0xff;

    const FrDecodeResult result = decode();
    EXPECT_FALSE(result.sound());
    EXPECT_GE(result.tornSlots, 1u);
    EXPECT_FALSE(result.notes.empty());
}

TEST_F(FlightRecorderTest, HeaderAheadOfSlotIsUnsound)
{
    // The planted-bug shape: a header that vouches for a record whose
    // slot line never reached NVRAM (publish before write). Forge it
    // by zeroing the newest record's slot.
    emitN(static_cast<unsigned>(kCap + 1));
    const FrDecodeResult before = decode();
    const uint64_t newest = (before.headSeq - 1) % kCap;
    std::memset(nvram_.data() + kBase + newest * kFrRecordBytes, 0,
                kFrRecordBytes);

    const FrDecodeResult result = decode();
    EXPECT_FALSE(result.sound());
    EXPECT_GE(result.tornSlots, 1u);
}

TEST_F(FlightRecorderTest, StagedWhileUnwritableDrainsOnFlush)
{
    writable_ = false;
    emitN(3, FrEvent::NvdimmSaveStart);

    // Nothing was published: the region is still all zeros.
    FrDecodeResult result = decode();
    EXPECT_FALSE(result.headerFound);
    EXPECT_TRUE(result.sound()); // nothing provable, nothing violated

    writable_ = true;
    FlightRecorder::instance().flushStaged();
    result = decode();
    ASSERT_TRUE(result.headerValid);
    EXPECT_TRUE(result.sound());
    ASSERT_EQ(result.records.size(), 3u);
    for (const FrRecord &record : result.records)
        EXPECT_EQ(record.event, FrEvent::NvdimmSaveStart);
}

TEST_F(FlightRecorderTest, StagedOverflowDropsOldestAndStaysSound)
{
    auto &recorder = FlightRecorder::instance();
    const uint64_t dropped_before = recorder.stagedDropped();

    writable_ = false;
    emitN(static_cast<unsigned>(kCap + 5));
    EXPECT_EQ(recorder.stagedDropped() - dropped_before, 5u);

    writable_ = true;
    recorder.flushStaged();
    const FrDecodeResult result = decode();
    ASSERT_TRUE(result.headerValid);
    // The dropped records leave a gap below the published window; the
    // header's tail must exclude them so the decode stays sound.
    EXPECT_TRUE(result.sound());
    EXPECT_EQ(result.records.size(), kCap);
    EXPECT_EQ(result.headSeq - result.tailSeq, kCap);
}

TEST_F(FlightRecorderTest, VolatileEmissionsBreakContiguityCleanly)
{
    auto &recorder = FlightRecorder::instance();
    emitN(2);
    recorder.setMode(FrMode::Volatile);
    emitN(4); // mirror-only: their slots are never written
    recorder.setMode(FrMode::Nvram);
    emitN(3);

    const FrDecodeResult result = decode();
    ASSERT_TRUE(result.headerValid);
    EXPECT_TRUE(result.sound());
    // Only the post-volatile records are vouched for; the two early
    // NVRAM records sit below the tail as unclaimed residue.
    ASSERT_EQ(result.records.size(), 3u);
    EXPECT_EQ(result.headSeq - result.tailSeq, 3u);
    EXPECT_GE(result.staleSlots, 1u);
}

TEST_F(FlightRecorderTest, OffModeEmitsNothing)
{
    auto &recorder = FlightRecorder::instance();
    recorder.setMode(FrMode::Off);
    const uint64_t before = recorder.totalEmitted();
    emitN(10);
    EXPECT_EQ(recorder.totalEmitted(), before);
    EXPECT_FALSE(decode().headerFound);
}

TEST_F(FlightRecorderTest, GenerationStampsFollowSetGeneration)
{
    emitN(1);
    FlightRecorder::instance().setGeneration(this, 8);
    emitN(1);
    const FrDecodeResult result = decode();
    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_EQ(result.records[0].generation, 7u);
    EXPECT_EQ(result.records[1].generation, 8u);
    EXPECT_EQ(result.generation, 8u);
}

TEST_F(FlightRecorderTest, HeaderScanFindsRingBelowOtherStructures)
{
    emitN(4);
    // Scan from the top of the synthetic NVRAM, as a tool would scan
    // an image without layout knowledge.
    const auto found =
        frFindHeader(reader(), nvram_.size(), nvram_.size());
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, headerAddr());
    const FrDecodeResult result = frDecode(reader(), *found);
    EXPECT_TRUE(result.sound());
    EXPECT_EQ(result.records.size(), 4u);
}

/**
 * The acceptance sweep: simulate a save torn at every 64-byte
 * boundary of the recorder region. Top-down flash programming means a
 * partial save persists a *suffix* [tear, top); the byte reader
 * refuses everything below the tear, exactly like the image reader
 * refuses bytes outside a module's programmed suffix. No tear
 * position may yield a torn slot inside the published window.
 */
TEST_F(FlightRecorderTest, TearPositionSweepNeverUnsound)
{
    emitN(static_cast<unsigned>(kCap + 7)); // wrapped, full window
    size_t decoded_at_zero = 0;
    for (uint64_t tear = 0; tear <= nvram_.size();
         tear += kFrRecordBytes) {
        const FrDecodeResult result =
            frDecode(reader(tear), headerAddr());
        EXPECT_TRUE(result.sound())
            << "torn decode at tear position " << tear;
        if (tear == 0) {
            decoded_at_zero = result.records.size();
        } else if (result.headerFound) {
            // Slots below the tear are refused, never misread.
            EXPECT_EQ(result.records.size() + result.unsavedSlots,
                      decoded_at_zero)
                << "at tear position " << tear;
        } else {
            // The header line itself is below the tear: nothing is
            // provable and nothing may be claimed.
            EXPECT_TRUE(result.records.empty());
        }
    }
    // The sweep must actually exercise both regimes.
    EXPECT_EQ(decoded_at_zero, kCap);
}

TEST_F(FlightRecorderTest, RestartContiguityAfterColdBoot)
{
    // A cold/fallback boot loses the DRAM the published records lived
    // in; the next save programs their zeroed slots. Without the
    // contiguity restart the old header would vouch for them — torn.
    emitN(6);
    const FrDecodeResult before = decode();
    ASSERT_TRUE(before.sound());
    std::fill(nvram_.begin() + static_cast<ptrdiff_t>(kBase),
              nvram_.begin() +
                  static_cast<ptrdiff_t>(kBase + kCap * kFrRecordBytes),
              uint8_t{0});

    FlightRecorder::instance().restartContiguity(this);
    emitN(2);
    const FrDecodeResult result = decode();
    ASSERT_TRUE(result.headerValid);
    EXPECT_TRUE(result.sound());
    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_EQ(result.headSeq - result.tailSeq, 2u);
}

TEST_F(FlightRecorderTest, MirrorCapBoundsMemory)
{
    emitN(static_cast<unsigned>(4 * kCap));
    EXPECT_EQ(FlightRecorder::instance().mirror().size(), kCap);
}

} // namespace
} // namespace wsp::trace
