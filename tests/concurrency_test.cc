/**
 * @file
 * Concurrency test battery for the sharded serving layer and the
 * parallel save path.
 *
 * Three pillars:
 *
 *  - observational equivalence: an N-shard store driven by real
 *    worker threads must end in exactly the state the sequential
 *    single-shard reference reaches, for any thread interleaving;
 *  - durable linearizability: every operation acknowledged before the
 *    power failure must be present (and every erased key absent)
 *    after the NVRAM image boots on a fresh chassis;
 *  - determinism: the same seed must produce the same summary no
 *    matter how the pool's workers are scheduled, which rests on
 *    Rng::stream() being order-independent and the pool partitioning
 *    statically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <vector>

#include "apps/kv_service.h"
#include "apps/kv_store.h"
#include "crashsim/crash_explorer.h"
#include "crashsim/invariants.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wsp {
namespace {

using apps::KvService;
using apps::KvServiceConfig;
using apps::KvServiceSummary;
using apps::KvStore;
using apps::ShardedKvStore;

// ShardedKvStore basics ------------------------------------------------

TEST(ShardedKvStore, RoutesStoresAndAttaches)
{
    apps::ShardEnvironment environment("sharded-basics", 4 * kMiB);
    std::vector<CacheModel *> caches(4, &environment.cache);
    const std::span<CacheModel *const> span(caches);

    ShardedKvStore store(span, 0, 64);
    EXPECT_EQ(store.shardCount(), 4u);
    for (uint64_t key = 1; key <= 100; ++key)
        ASSERT_TRUE(store.put(key, key * 3));
    EXPECT_EQ(store.size(), 100u);

    uint64_t value = 0;
    ASSERT_TRUE(store.get(42, &value));
    EXPECT_EQ(value, 42u * 3);
    ASSERT_TRUE(store.erase(42));
    EXPECT_FALSE(store.get(42));
    EXPECT_EQ(store.size(), 99u);

    // Shard sizes must partition the total.
    uint64_t total = 0;
    for (uint64_t size : store.shardSizes())
        total += size;
    EXPECT_EQ(total, store.size());

    // Re-attach sees the same state.
    auto attached = ShardedKvStore::attach(span, 0);
    ASSERT_TRUE(attached.has_value());
    EXPECT_EQ(attached->size(), store.size());
    EXPECT_EQ(attached->checksum(), store.checksum());
    EXPECT_EQ(attached->perShardCapacity(), 64u);
}

TEST(ShardedKvStore, ChecksumMatchesSingleStoreOverSamePairs)
{
    apps::ShardEnvironment sharded_env("checksum-sharded", 4 * kMiB);
    apps::ShardEnvironment single_env("checksum-single", 4 * kMiB);
    std::vector<CacheModel *> caches(8, &sharded_env.cache);
    ShardedKvStore sharded(std::span<CacheModel *const>(caches), 0, 64);
    KvStore single(single_env.cache, 0, 512);

    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const uint64_t key = rng.next(400) + 1;
        const uint64_t value = rng() | 1;
        ASSERT_TRUE(sharded.put(key, value));
        ASSERT_TRUE(single.put(key, value));
    }
    EXPECT_EQ(sharded.size(), single.size());
    EXPECT_EQ(sharded.checksum(), single.checksum());
}

// Batched application ---------------------------------------------------

/** Random op mix over a small key range so puts, hits, misses, erases
 *  and capacity rejections all occur. */
std::vector<apps::KvOp>
randomOps(uint64_t seed, size_t count, uint64_t key_range)
{
    Rng rng(seed);
    std::vector<apps::KvOp> ops;
    ops.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const uint64_t key = rng.next(key_range) + 1;
        switch (rng.next(4)) {
        case 0:
        case 1:
            ops.push_back(apps::KvOp::put(key, rng() | 1));
            break;
        case 2:
            ops.push_back(apps::KvOp::get(key));
            break;
        default:
            ops.push_back(apps::KvOp::erase(key));
            break;
        }
    }
    return ops;
}

/** Apply @p ops one by one through the scalar API, accumulating the
 *  counters applyBatch promises to match. */
template <typename Store>
apps::KvBatchResult
applyPerOp(Store &store, const std::vector<apps::KvOp> &ops)
{
    apps::KvBatchResult result;
    for (const apps::KvOp &op : ops) {
        switch (op.kind) {
        case apps::KvOp::Kind::Put:
            if (store.put(op.key, op.value))
                ++result.puts;
            else
                ++result.putsRejected;
            break;
        case apps::KvOp::Kind::Get: {
            ++result.gets;
            uint64_t value = 0;
            if (store.get(op.key, &value)) {
                ++result.getHits;
                result.getValueSum += value;
            }
            break;
        }
        case apps::KvOp::Kind::Erase:
            ++result.erases;
            if (store.erase(op.key))
                ++result.erasesHit;
            break;
        }
    }
    return result;
}

void
expectSameResult(const apps::KvBatchResult &batched,
                 const apps::KvBatchResult &scalar)
{
    EXPECT_EQ(batched.puts, scalar.puts);
    EXPECT_EQ(batched.putsRejected, scalar.putsRejected);
    EXPECT_EQ(batched.gets, scalar.gets);
    EXPECT_EQ(batched.getHits, scalar.getHits);
    EXPECT_EQ(batched.getValueSum, scalar.getValueSum);
    EXPECT_EQ(batched.erases, scalar.erases);
    EXPECT_EQ(batched.erasesHit, scalar.erasesHit);
    EXPECT_EQ(batched.ops(), scalar.ops());
}

TEST(KvBatch, ApplyBatchMatchesPerOpSequence)
{
    apps::ShardEnvironment batch_env("batch-single", 4 * kMiB);
    apps::ShardEnvironment scalar_env("scalar-single", 4 * kMiB);
    // Tight capacity so the mix drives the store full and a slice of
    // the puts take the rejection path.
    KvStore batched(batch_env.cache, 0, 64);
    KvStore scalar(scalar_env.cache, 0, 64);

    const std::vector<apps::KvOp> ops = randomOps(11, 2000, 150);
    const apps::KvBatchResult batch_result = batched.applyBatch(ops);
    const apps::KvBatchResult scalar_result = applyPerOp(scalar, ops);

    expectSameResult(batch_result, scalar_result);
    EXPECT_GT(batch_result.putsRejected, 0u);
    EXPECT_EQ(batched.size(), scalar.size());
    EXPECT_EQ(batched.checksum(), scalar.checksum());
}

TEST(KvBatch, ShardedApplyBatchMatchesPerOpSequence)
{
    apps::ShardEnvironment batch_env("batch-sharded", 4 * kMiB);
    apps::ShardEnvironment scalar_env("scalar-sharded", 4 * kMiB);
    std::vector<CacheModel *> batch_caches(4, &batch_env.cache);
    std::vector<CacheModel *> scalar_caches(4, &scalar_env.cache);
    ShardedKvStore batched(
        std::span<CacheModel *const>(batch_caches), 0, 32);
    ShardedKvStore scalar(
        std::span<CacheModel *const>(scalar_caches), 0, 32);

    const std::vector<apps::KvOp> ops = randomOps(23, 4000, 300);
    const apps::KvBatchResult batch_result = batched.applyBatch(ops);
    const apps::KvBatchResult scalar_result = applyPerOp(scalar, ops);

    // The sharded batch groups ops by shard before applying; the
    // counters are order-independent sums, so they must merge back to
    // exactly the sequential outcome — and so must the store state.
    expectSameResult(batch_result, scalar_result);
    EXPECT_GT(batch_result.putsRejected, 0u);
    EXPECT_EQ(batched.size(), scalar.size());
    EXPECT_EQ(batched.checksum(), scalar.checksum());
    EXPECT_EQ(batched.shardSizes(), scalar.shardSizes());
}

TEST(KvBatch, EmptyBatchIsANoOp)
{
    apps::ShardEnvironment environment("batch-empty", 4 * kMiB);
    KvStore store(environment.cache, 0, 64);
    ASSERT_TRUE(store.put(1, 5));
    const uint64_t checksum = store.checksum();
    const apps::KvBatchResult result =
        store.applyBatch(std::span<const apps::KvOp>{});
    EXPECT_EQ(result.ops(), 0u);
    EXPECT_EQ(store.checksum(), checksum);
    EXPECT_EQ(store.size(), 1u);
}

TEST(ShardedKvStore, AttachRejectsGarbageAndMismatchedShards)
{
    apps::ShardEnvironment environment("attach-reject", 4 * kMiB);
    std::vector<CacheModel *> caches(2, &environment.cache);
    const std::span<CacheModel *const> span(caches);
    // Nothing was ever created here.
    EXPECT_FALSE(ShardedKvStore::attach(span, 0).has_value());

    // Non-power-of-two shard count.
    std::vector<CacheModel *> three(3, &environment.cache);
    EXPECT_FALSE(
        ShardedKvStore::attach(std::span<CacheModel *const>(three), 0)
            .has_value());
}

// Observational equivalence --------------------------------------------

TEST(ShardedEquivalence, ThreadedRunMatchesSequentialReference)
{
    for (const uint64_t seed : {1ull, 17ull, 20260805ull}) {
        KvServiceConfig config;
        config.shards = 4;
        config.threads = 4;
        config.perShardCapacity = 2048;
        config.opsPerThread = 4000;
        config.keysPerWorker = 256;
        config.seed = seed;

        KvService service(config);
        const KvServiceSummary threaded = service.run();
        const KvServiceSummary reference =
            KvService::runReference(config);

        EXPECT_EQ(threaded.opsApplied, reference.opsApplied) << seed;
        EXPECT_EQ(threaded.puts, reference.puts) << seed;
        EXPECT_EQ(threaded.gets, reference.gets) << seed;
        EXPECT_EQ(threaded.getHits, reference.getHits) << seed;
        EXPECT_EQ(threaded.erases, reference.erases) << seed;
        EXPECT_EQ(threaded.finalSize, reference.finalSize) << seed;
        EXPECT_EQ(threaded.finalChecksum, reference.finalChecksum)
            << seed;
    }
}

TEST(ShardedEquivalence, MoreThreadsThanShardsStillEquivalent)
{
    KvServiceConfig config;
    config.shards = 2;
    config.threads = 8;
    config.perShardCapacity = 4096;
    config.opsPerThread = 1500;
    config.keysPerWorker = 128;
    config.seed = 99;

    KvService service(config);
    const KvServiceSummary threaded = service.run();
    const KvServiceSummary reference = KvService::runReference(config);
    EXPECT_EQ(threaded.finalSize, reference.finalSize);
    EXPECT_EQ(threaded.finalChecksum, reference.finalChecksum);
    EXPECT_EQ(threaded.getHits, reference.getHits);
}

TEST(ShardedEquivalence, DirectoryWorkloadCountsExact)
{
    // Every (worker, i) pair produces a unique DN, so the striped
    // directory must hold exactly threads * entries entries.
    const uint64_t total =
        apps::runShardedDirectoryWorkload(/*shards=*/4, /*threads=*/4,
                                          /*entries_per_thread=*/150,
                                          /*seed=*/5);
    EXPECT_EQ(total, 600u);
}

// Durable linearizability ----------------------------------------------

TEST(DurableLinearizability, AckedOpsSurviveParallelSavePowerFailure)
{
    // Generous residual window: the save always completes, so the
    // restore must come back via WSP with the *entire* acked prefix
    // (KvPrefixChecker verifies every acked put/erase key by key).
    crashsim::CrashSchedule schedule;
    schedule.seed = 0xACCEDull;
    schedule.window = fromMillis(200.0);
    schedule.ops = 48;
    schedule.outage = fromMillis(500.0);
    schedule.shards = 4;
    schedule.parallelSave = true;

    crashsim::CrashExplorer explorer(schedule);
    const crashsim::CrashPointResult result =
        explorer.runSchedule(schedule);
    EXPECT_TRUE(result.held()) << [&] {
        std::string all;
        for (const auto &violation : result.violations)
            all += violation + "\n";
        return all;
    }();
    EXPECT_TRUE(result.restore.usedWsp);
    EXPECT_GT(result.appliedOps, 0u);
}

TEST(DurableLinearizability, TightWindowNeverFabricatesAckedState)
{
    // A window too small for the save: WSP recovery must not be used,
    // and the back-end path must reconstruct the acked prefix — the
    // checker fails the run if either side of the contract breaks.
    crashsim::CrashSchedule schedule;
    schedule.seed = 0xBADF00Dull;
    schedule.window = fromMicros(30.0);
    schedule.ops = 48;
    schedule.outage = fromMillis(500.0);
    schedule.shards = 4;
    schedule.parallelSave = true;

    crashsim::CrashExplorer explorer(schedule);
    const crashsim::CrashPointResult result =
        explorer.runSchedule(schedule);
    EXPECT_TRUE(result.held());
    EXPECT_FALSE(result.restore.usedWsp);
    EXPECT_TRUE(result.backendRan);
}

// Thread pool ----------------------------------------------------------

TEST(ThreadPool, PartitionCoversEveryItemExactlyOnce)
{
    for (const uint64_t items : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
        for (const unsigned workers : {1u, 2u, 3u, 8u}) {
            std::vector<unsigned> hits(items, 0);
            uint64_t covered = 0;
            for (unsigned w = 0; w < workers; ++w) {
                const auto [begin, end] =
                    ThreadPool::partition(items, workers, w);
                ASSERT_LE(begin, end);
                for (uint64_t i = begin; i < end; ++i)
                    ++hits[i];
                covered += end - begin;
            }
            EXPECT_EQ(covered, items);
            for (uint64_t i = 0; i < items; ++i)
                EXPECT_EQ(hits[i], 1u) << "item " << i;
        }
    }
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce)
{
    ThreadPool pool(4);
    constexpr uint64_t kItems = 10000;
    std::vector<std::atomic<unsigned>> hits(kItems);
    pool.parallelFor(kItems, [&](uint64_t begin, uint64_t end, unsigned) {
        for (uint64_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t i = 0; i < kItems; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, RunWorkersPassesDistinctIndexes)
{
    ThreadPool pool(6);
    std::vector<std::atomic<unsigned>> seen(6);
    pool.runWorkers([&](unsigned worker) {
        seen[worker].fetch_add(1, std::memory_order_relaxed);
    });
    for (unsigned w = 0; w < 6; ++w)
        EXPECT_EQ(seen[w].load(), 1u);
}

// Determinism ----------------------------------------------------------

TEST(Determinism, SameSeedSameFingerprint)
{
    KvServiceConfig config;
    config.shards = 4;
    config.threads = 8;
    config.perShardCapacity = 2048;
    config.opsPerThread = 3000;
    config.keysPerWorker = 200;
    config.seed = 1234;

    KvService first(config);
    KvService second(config);
    const KvServiceSummary a = first.run();
    const KvServiceSummary b = second.run();
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.shardSizes, b.shardSizes);

    config.seed = 1235;
    KvService third(config);
    EXPECT_NE(third.run().fingerprint(), a.fingerprint());
}

TEST(Determinism, RngStreamIsOrderIndependent)
{
    Rng base(42);
    // stream() must depend only on (state, index) — drawing other
    // streams first, in any order, must not change stream(3).
    Rng direct = base.stream(3);
    (void)base.stream(7);
    (void)base.stream(0);
    Rng again = base.stream(3);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(direct(), again());
}

TEST(Determinism, RngStreamsAreDecorrelated)
{
    Rng base(42);
    Rng a = base.stream(0);
    Rng b = base.stream(1);
    unsigned equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a() == b()) ? 1 : 0;
    EXPECT_EQ(equal, 0u);
}

TEST(Determinism, RngStreamDiffersFromForkSemantics)
{
    // fork() advances the parent; stream() must not.
    Rng a(7);
    Rng b(7);
    (void)a.stream(5);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(a(), b());
}

} // namespace
} // namespace wsp
