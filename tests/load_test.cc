/**
 * @file
 * Traffic-plane battery: the SPSC submission ring, the deterministic
 * op streams (including the quantized Zipf table against the exact
 * YCSB sampler), threaded-vs-sequential equivalence of every dispatch
 * arm, back-pressure under deliberately tiny rings, open-loop pacing,
 * the cache region view backing the zero-allocation hot path, and the
 * threaded-vs-modeled fleet storm differential. The whole suite also
 * runs under TSan via cmake/tsan_smoke.cmake — the equivalence tests
 * pass through every ring and drain path, which is the point.
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "apps/kv_service.h"
#include "apps/workload.h"
#include "fleet/fleet.h"
#include "load/op_stream.h"
#include "load/spsc_ring.h"
#include "load/traffic_plane.h"
#include "machine/cache.h"
#include "test_seed.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/units.h"

using namespace wsp;
using namespace wsp::load;
using apps::KvOp;
using apps::ShardEnvironment;
using apps::ShardedKvStore;
using wsp::testing::testSeed;

namespace {

// SpscRing ------------------------------------------------------------

TEST(SpscRing, FifoAcrossWrapAndFullRejection)
{
    std::vector<uint64_t> storage(8);
    SpscRing<uint64_t> ring(storage.data(), storage.size());
    EXPECT_EQ(ring.capacity(), 8u);

    // Fill to capacity; the ninth push must be refused, not dropped.
    for (uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(uint64_t{99}));

    uint64_t out = 0;
    for (uint64_t i = 0; i < 8; ++i) {
        ASSERT_EQ(ring.tryPop({&out, 1}), 1u);
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(ring.tryPop({&out, 1}), 0u);
    EXPECT_TRUE(ring.emptyConsumer());

    // Positions are free-running; FIFO must survive many wraps.
    for (uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(ring.tryPush(i * 3));
        ASSERT_EQ(ring.tryPop({&out, 1}), 1u);
        EXPECT_EQ(out, i * 3);
    }
}

TEST(SpscRing, SpanPushIsPartialWhenNearlyFull)
{
    std::vector<uint64_t> storage(16);
    SpscRing<uint64_t> ring(storage.data(), storage.size());

    std::vector<uint64_t> items(10);
    for (size_t i = 0; i < items.size(); ++i)
        items[i] = i;
    EXPECT_EQ(ring.tryPush(std::span<const uint64_t>(items)), 10u);
    // Only 6 slots remain: the span push copies what fits.
    for (size_t i = 0; i < items.size(); ++i)
        items[i] = 10 + i;
    EXPECT_EQ(ring.tryPush(std::span<const uint64_t>(items)), 6u);

    std::vector<uint64_t> out(16);
    EXPECT_EQ(ring.tryPop(std::span<uint64_t>(out)), 16u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SpscRing, ThreadedProducerConsumerPreservesOrder)
{
    // Genuinely concurrent: one producer spinning on full, one
    // consumer popping runs. TSan (tsan_smoke) watches the
    // release/acquire pair; the sequence check watches FIFO.
    constexpr uint64_t kItems = 200000;
    std::vector<uint64_t> storage(64);
    SpscRing<uint64_t> ring(storage.data(), storage.size());

    std::thread producer([&] {
        for (uint64_t i = 0; i < kItems; ++i) {
            while (!ring.tryPush(i))
                std::this_thread::yield();
        }
    });

    uint64_t expected = 0;
    std::vector<uint64_t> out(32);
    while (expected < kItems) {
        const size_t n = ring.tryPop(std::span<uint64_t>(out));
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], expected++);
    }
    producer.join();
    EXPECT_TRUE(ring.emptyConsumer());
}

// OpStream ------------------------------------------------------------

OpStream
makeStream(const OpStreamConfig &config, uint64_t seed, unsigned worker)
{
    return OpStream(config, Rng(seed).stream(worker));
}

TEST(OpStream, SameSeedAndWorkerReproduceTheStream)
{
    OpStreamConfig config;
    config.getPermille = 400;
    config.erasePermille = 100;
    const uint64_t seed = testSeed(0x10ad01);

    OpStream a = makeStream(config, seed, 3);
    OpStream b = makeStream(config, seed, 3);
    OpStream other = makeStream(config, seed, 4);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        const KvOp lhs = a.next();
        const KvOp rhs = b.next();
        ASSERT_EQ(lhs.kind, rhs.kind);
        ASSERT_EQ(lhs.key, rhs.key);
        ASSERT_EQ(lhs.value, rhs.value);
        const KvOp third = other.next();
        diverged = diverged || third.key != lhs.key ||
                   third.kind != lhs.kind;
    }
    EXPECT_TRUE(diverged); // different worker, different stream
}

TEST(OpStream, MixTracksPermillesAndKeysStayInRange)
{
    OpStreamConfig config;
    config.keyLo = 100;
    config.keyCount = 512;
    config.getPermille = 400;
    config.erasePermille = 100;
    OpStream stream = makeStream(config, testSeed(0x10ad02), 0);

    constexpr uint64_t kOps = 100000;
    uint64_t gets = 0;
    uint64_t erases = 0;
    for (uint64_t i = 0; i < kOps; ++i) {
        const KvOp op = stream.next();
        gets += op.kind == KvOp::Kind::Get;
        erases += op.kind == KvOp::Kind::Erase;
        ASSERT_GE(op.key, config.keyLo);
        ASSERT_LT(op.key, config.keyLo + config.keyCount);
    }
    // ~5 sigma for a 100k-draw binomial at p=0.4 is about 8 permille.
    EXPECT_NEAR(static_cast<double>(gets) / kOps, 0.400, 0.015);
    EXPECT_NEAR(static_cast<double>(erases) / kOps, 0.100, 0.010);
}

TEST(OpStream, BoundaryPermillesAreExact)
{
    // Regression: the kind thresholds are 32-bit fixed point held in
    // uint64 — a 1000-permille limit is 2^32 (always true), which a
    // uint32 would have wrapped to zero and turned "all gets" into
    // "all puts".
    OpStreamConfig all_gets;
    all_gets.getPermille = 1000;
    all_gets.erasePermille = 0;
    OpStream gets = makeStream(all_gets, testSeed(0x10ad03), 0);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(gets.next().kind, KvOp::Kind::Get);

    OpStreamConfig all_puts;
    all_puts.getPermille = 0;
    all_puts.erasePermille = 0;
    OpStream puts = makeStream(all_puts, testSeed(0x10ad03), 0);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(puts.next().kind, KvOp::Kind::Put);

    OpStreamConfig all_erases;
    all_erases.getPermille = 0;
    all_erases.erasePermille = 1000;
    OpStream erases = makeStream(all_erases, testSeed(0x10ad03), 0);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(erases.next().kind, KvOp::Kind::Erase);
}

TEST(OpStream, ZipfTableMatchesExactSamplerMass)
{
    // The 4096-way quantized inverse CDF against the exact YCSB
    // sampler (apps::ZipfianSampler): per-rank frequencies of the hot
    // head and the aggregate head mass must agree to well within the
    // table's quantization error plus sampling noise.
    constexpr uint64_t kKeys = 512;
    constexpr double kTheta = 0.9;
    constexpr uint64_t kDraws = 200000;
    constexpr uint64_t kHead = 10;

    OpStreamConfig config;
    config.keyLo = 1;
    config.keyCount = kKeys;
    config.getPermille = 0;
    config.erasePermille = 0;
    config.zipfTheta = kTheta;
    OpStream stream = makeStream(config, testSeed(0x10ad04), 0);
    std::vector<uint64_t> table_counts(kKeys + 1, 0);
    for (uint64_t i = 0; i < kDraws; ++i)
        ++table_counts[stream.next().key];

    apps::ZipfianSampler exact(kKeys, kTheta);
    Rng rng(testSeed(0x10ad05));
    std::vector<uint64_t> exact_counts(kKeys + 1, 0);
    for (uint64_t i = 0; i < kDraws; ++i)
        ++exact_counts[exact.next(rng)];

    double table_head = 0.0;
    double exact_head = 0.0;
    for (uint64_t key = 1; key <= kHead; ++key) {
        const double table_freq =
            static_cast<double>(table_counts[key]) / kDraws;
        const double exact_freq =
            static_cast<double>(exact_counts[key]) / kDraws;
        EXPECT_NEAR(table_freq, exact_freq, 0.02)
            << "rank " << key;
        table_head += table_freq;
        exact_head += exact_freq;
    }
    EXPECT_NEAR(table_head, exact_head, 0.03);
    // The head must actually be hot — uniform would give ~2%.
    EXPECT_GT(table_head, 0.25);
}

// Histogram weighted add ---------------------------------------------

TEST(HistogramWeighted, AddCountMatchesRepeatedAdd)
{
    Histogram weighted(0.0, 100.0, 10);
    Histogram repeated(0.0, 100.0, 10);

    weighted.add(5.0, 7);
    weighted.add(55.0, 3);
    weighted.add(-1.0, 2);   // underflow
    weighted.add(1000.0, 4); // overflow
    for (int i = 0; i < 7; ++i)
        repeated.add(5.0);
    for (int i = 0; i < 3; ++i)
        repeated.add(55.0);
    for (int i = 0; i < 2; ++i)
        repeated.add(-1.0);
    for (int i = 0; i < 4; ++i)
        repeated.add(1000.0);

    EXPECT_EQ(weighted.total(), repeated.total());
    EXPECT_EQ(weighted.underflow(), repeated.underflow());
    EXPECT_EQ(weighted.overflow(), repeated.overflow());
    for (size_t i = 0; i < weighted.buckets(); ++i)
        EXPECT_EQ(weighted.bucketCount(i), repeated.bucketCount(i));
    EXPECT_EQ(weighted.percentile(50), repeated.percentile(50));
}

// TrafficPlane --------------------------------------------------------

constexpr unsigned kShards = 8;
constexpr uint64_t kPerShardCapacity = 4096;

/** A fresh sharded store plus the shard environments backing it. */
struct Rig
{
    std::vector<std::unique_ptr<ShardEnvironment>> envs;
    std::unique_ptr<ShardedKvStore> store;

    explicit Rig(const char *tag,
                 CacheModel::LineStore line_store =
                     CacheModel::LineStore::Flat)
    {
        const uint64_t region =
            ShardedKvStore::regionBytes(kShards, kPerShardCapacity);
        std::vector<CacheModel *> caches;
        for (unsigned i = 0; i < kShards; ++i) {
            envs.push_back(std::make_unique<ShardEnvironment>(
                std::string("load_") + tag + std::to_string(i), region,
                line_store));
            caches.push_back(&envs.back()->cache);
        }
        store = std::make_unique<ShardedKvStore>(
            std::span<CacheModel *const>(caches), 0, kPerShardCapacity);
    }
};

bool
sameResult(const apps::KvBatchResult &a, const apps::KvBatchResult &b)
{
    return a.puts == b.puts && a.putsRejected == b.putsRejected &&
           a.gets == b.gets && a.getHits == b.getHits &&
           a.getValueSum == b.getValueSum && a.erases == b.erases &&
           a.erasesHit == b.erasesHit;
}

TEST(TrafficPlane, ThreadedMatchesSequentialReplayAcrossSeeds)
{
    // Disjoint key ranges make per-key op order the worker's own
    // stream order, so the rings plane must match the sequential
    // replay *exactly* — counters, store size, and content checksum —
    // for every seed, not statistically.
    ThreadPool pool(4);
    for (uint64_t trial = 0; trial < 10; ++trial) {
        TrafficPlaneConfig config;
        config.workers = 4;
        config.opsPerWorker = 5000;
        config.keysPerWorker = 512;
        config.seed = testSeed(0x10ad10 + trial);

        Rig threaded("t");
        TrafficPlane plane(*threaded.store, config);
        const TrafficPlaneReport run = plane.run(pool);
        EXPECT_EQ(run.ops(), 4u * 5000u);
        EXPECT_EQ(run.latencyNs.total(), run.ops());

        Rig sequential("s");
        const apps::KvBatchResult reference =
            plane.runSequential(*sequential.store);
        EXPECT_TRUE(sameResult(run.result, reference)) << "seed trial "
                                                       << trial;
        EXPECT_EQ(threaded.store->size(), sequential.store->size());
        EXPECT_EQ(threaded.store->checksum(),
                  sequential.store->checksum());
    }
}

TEST(TrafficPlane, MutexArmsMatchSequentialReplay)
{
    // Both pre-rings dispatch arms must produce the same outcome as
    // the replay too — the bench's A/B comparison is only meaningful
    // if every arm does identical work.
    TrafficPlaneConfig config;
    config.workers = 4;
    config.opsPerWorker = 5000;
    config.seed = testSeed(0x10ad20);
    ThreadPool pool(4);

    Rig sequential("ms");
    TrafficPlane reference_plane(*sequential.store, config);
    const apps::KvBatchResult reference =
        reference_plane.runSequential(*sequential.store);

    Rig perop("mp", CacheModel::LineStore::Reference);
    TrafficPlane perop_plane(*perop.store, config);
    const TrafficPlaneReport perop_run = perop_plane.runMutexPerOp(pool);
    EXPECT_TRUE(sameResult(perop_run.result, reference));
    EXPECT_EQ(perop.store->size(), sequential.store->size());
    EXPECT_EQ(perop.store->checksum(), sequential.store->checksum());
    EXPECT_EQ(perop_run.latencyNs.total(), perop_run.ops());

    Rig batch("mb");
    TrafficPlane batch_plane(*batch.store, config);
    const TrafficPlaneReport batch_run = batch_plane.runMutexBatch(pool);
    EXPECT_TRUE(sameResult(batch_run.result, reference));
    EXPECT_EQ(batch.store->size(), sequential.store->size());
    EXPECT_EQ(batch.store->checksum(), sequential.store->checksum());
}

TEST(TrafficPlane, BackpressureOnTinyRingsKeepsEquivalence)
{
    // Two-frame rings guarantee the producers hit full rings
    // constantly; the stall path (drain your own shards, never drop,
    // never deadlock) must leave the outcome byte-identical to the
    // replay.
    TrafficPlaneConfig config;
    config.workers = 4;
    config.opsPerWorker = 3000;
    config.ringFrames = 2;
    config.burstOps = 16;
    config.drainOps = 8;
    config.seed = testSeed(0x10ad30);
    ThreadPool pool(4);

    Rig threaded("bp");
    TrafficPlane plane(*threaded.store, config);
    const TrafficPlaneReport run = plane.run(pool);
    EXPECT_GT(run.backpressureStalls, 0u);
    EXPECT_EQ(run.ops(), 4u * 3000u);

    Rig sequential("bq");
    const apps::KvBatchResult reference =
        plane.runSequential(*sequential.store);
    EXPECT_TRUE(sameResult(run.result, reference));
    EXPECT_EQ(threaded.store->size(), sequential.store->size());
    EXPECT_EQ(threaded.store->checksum(), sequential.store->checksum());
}

TEST(TrafficPlane, SharedZipfKeysConserveTotals)
{
    // Shared key ranges race on purpose (realistic contention):
    // per-key history depends on interleaving, so only the aggregate
    // invariants hold — every generated op is applied exactly once
    // and the key universe bounds the store.
    TrafficPlaneConfig config;
    config.workers = 4;
    config.opsPerWorker = 5000;
    config.disjointKeys = false;
    config.keysPerWorker = 512;
    config.zipfTheta = 0.9;
    config.getPermille = 400;
    config.erasePermille = 100;
    config.seed = testSeed(0x10ad40);
    ThreadPool pool(4);

    Rig rig("sh");
    TrafficPlane plane(*rig.store, config);
    const TrafficPlaneReport run = plane.run(pool);
    EXPECT_EQ(run.ops(), 4u * 5000u);
    EXPECT_EQ(run.latencyNs.total(), run.ops());
    EXPECT_LE(run.result.getHits, run.result.gets);
    EXPECT_LE(run.result.erasesHit, run.result.erases);
    EXPECT_LE(rig.store->size(), 512u); // shared universe
}

TEST(TrafficPlane, OpenLoopPacingStretchesTheRun)
{
    // Paced mode: the schedule sets intended times, so the run cannot
    // finish faster than the schedule — and every op still lands in
    // the merged histogram (coordinated-omission-safe accounting
    // records by intended time, one sample per op).
    TrafficPlaneConfig config;
    config.workers = 2;
    config.opsPerWorker = 2000;
    config.pacedOpsPerSec = 1e6; // per worker: a 2 ms schedule
    config.seed = testSeed(0x10ad50);
    ThreadPool pool(2);

    Rig rig("pc");
    TrafficPlane plane(*rig.store, config);
    const TrafficPlaneReport run = plane.run(pool);
    EXPECT_EQ(run.ops(), 2u * 2000u);
    EXPECT_EQ(run.latencyNs.total(), run.ops());
    // Bursts are 256 ops, so the last burst's intended time is at
    // least (2000 - 256) us into the schedule.
    EXPECT_GE(run.wallSeconds, (2000.0 - 256.0) * 1e-6);

    Rig sequential("pq");
    const apps::KvBatchResult reference =
        plane.runSequential(*sequential.store);
    EXPECT_TRUE(sameResult(run.result, reference));
}

// CacheModel region view ---------------------------------------------

struct RegionViewFixture : ::testing::Test
{
    RegionViewFixture()
        : dimm(queue, "rv",
               [] {
                   NvdimmConfig config;
                   config.capacityBytes = 4 * kMiB;
                   config.flashChannels = 1;
                   return config;
               }())
    {
        space.addModule(dimm);
    }

    EventQueue queue;
    NvdimmModule dimm;
    NvramSpace space;
};

TEST_F(RegionViewFixture, RegionViewAgreesWithHashPathEverywhere)
{
    // The region view replaces the hash probe for registered lines;
    // it is maintained at the same insert/erase funnel, so every
    // lifecycle event (write, flush, drop, eviction) must keep the
    // two in agreement. Drive the same traffic at a viewed cache and
    // a plain one and compare observable state throughout.
    CacheModel viewed("viewed", 64 * kKiB, CacheTiming{}, space);
    viewed.registerRegionView(0, 64 * CacheModel::kLineSize);

    // In-region write: visible through the cache, invisible to NVRAM
    // until flushed.
    viewed.writeU64(128, 42);
    EXPECT_EQ(viewed.readU64(128), 42u);
    EXPECT_EQ(viewed.dirtyLines(), 1u);
    EXPECT_EQ(space.readU64(128), 0u);
    viewed.flushLine(128);
    EXPECT_EQ(viewed.dirtyLines(), 0u);
    EXPECT_EQ(space.readU64(128), 42u);
    EXPECT_EQ(viewed.readU64(128), 42u); // read-through after flush

    // Out-of-region addresses keep working via the hash path.
    const uint64_t outside = 128 * CacheModel::kLineSize;
    viewed.writeU64(outside, 7);
    EXPECT_EQ(viewed.readU64(outside), 7u);
    EXPECT_EQ(viewed.dirtyLines(), 1u);

    // dropDirty must clear the view too — a stale slot entry would
    // resurrect the dropped write.
    viewed.writeU64(192, 99);
    viewed.dropDirty();
    EXPECT_EQ(viewed.dirtyLines(), 0u);
    EXPECT_EQ(viewed.readU64(192), 0u);
    EXPECT_EQ(viewed.readU64(outside), 0u);

    // Re-registering replaces the view; dirty lines inside the new
    // region are adopted, old-region lines fall back to the hash.
    viewed.writeU64(256, 5);
    viewed.registerRegionView(outside, 16 * CacheModel::kLineSize);
    viewed.writeU64(outside + 64, 11);
    EXPECT_EQ(viewed.readU64(256), 5u);
    EXPECT_EQ(viewed.readU64(outside + 64), 11u);
    EXPECT_EQ(viewed.dirtyLines(), 2u);
}

TEST_F(RegionViewFixture, ReferenceStoreIgnoresRegistration)
{
    CacheModel cache("ref", 64 * kKiB, CacheTiming{}, space,
                     CacheModel::LineStore::Reference);
    cache.registerRegionView(0, 64 * CacheModel::kLineSize); // no-op
    cache.writeU64(128, 42);
    EXPECT_EQ(cache.readU64(128), 42u);
    EXPECT_EQ(cache.dirtyLines(), 1u);
    cache.flushLine(128);
    EXPECT_EQ(space.readU64(128), 42u);
}

TEST_F(RegionViewFixture, RegionViewSurvivesEviction)
{
    // A two-line cache forces LRU eviction; an evicted line's view
    // slot must be cleared so the next probe misses cleanly instead
    // of resolving to a recycled slab slot.
    CacheModel cache("evict", 2 * CacheModel::kLineSize, CacheTiming{},
                     space);
    cache.registerRegionView(0, 64 * CacheModel::kLineSize);
    cache.writeU64(0, 1);
    cache.writeU64(64, 2);
    cache.writeU64(128, 3); // evicts line 0
    EXPECT_EQ(cache.dirtyLines(), 2u);
    EXPECT_EQ(space.readU64(0), 1u);  // written back on eviction
    EXPECT_EQ(cache.readU64(0), 1u);  // reads through NVRAM now
    EXPECT_EQ(cache.readU64(64), 2u);
    EXPECT_EQ(cache.readU64(128), 3u);
}

// Fleet threaded storm ------------------------------------------------

TEST(FleetThreadedStorm, MatchesModeledPlaneWithinTolerance)
{
    // The differential the tentpole promised: real generator threads
    // feeding the storm timeline must reproduce the modeled plane's
    // recovery curve. Victim and recovery counts are exact (the same
    // kill and the same policy); time-to-full-capacity is held to 5%.
    // Request totals may drift further — different key draws change
    // which requests hit dead replicas and pay retry time — so they
    // get a looser 15% band.
    fleet::FleetConfig config;
    config.nodes = 5;
    config.replication = 3;
    config.seed = testSeed(0xf1ee90);

    fleet::Fleet modeled(config);
    const fleet::StormOutcome expected = modeled.runStorm(
        /*mask=*/0b00011, fromSeconds(2.0), fromMillis(33.0),
        /*put_fraction=*/0.5);

    fleet::Fleet threaded(config);
    ThreadPool pool(3); // 2 generators + the timeline worker
    const fleet::StormLoad load; // get 400 / erase 100 / put 500
    const fleet::StormOutcome actual = threaded.runStormThreaded(
        pool, /*mask=*/0b00011, fromSeconds(2.0), fromMillis(33.0),
        load);

    EXPECT_EQ(actual.victims, expected.victims);
    EXPECT_EQ(actual.wspRecoveries, expected.wspRecoveries);
    EXPECT_EQ(actual.backendRefills, expected.backendRefills);
    ASSERT_GT(expected.timeToFullCapacity, 0u);
    EXPECT_NEAR(toSeconds(actual.timeToFullCapacity),
                toSeconds(expected.timeToFullCapacity),
                0.05 * toSeconds(expected.timeToFullCapacity));
    ASSERT_GT(modeled.stats().requests, 0u);
    EXPECT_NEAR(static_cast<double>(threaded.stats().requests),
                static_cast<double>(modeled.stats().requests),
                0.15 * static_cast<double>(modeled.stats().requests));

    EXPECT_GT(actual.generatorOps, 0u);
    EXPECT_TRUE(threaded.checkReplicaConvergence().empty());
    EXPECT_TRUE(modeled.checkReplicaConvergence().empty());
}

TEST(FleetThreadedStorm, OutcomeIsReproducibleAcrossRuns)
{
    // The timeline worker drains the generator rings round-robin, one
    // op per traffic tick, so the applied sequence — and therefore
    // every client-visible outcome — must not depend on how the OS
    // scheduled the threads. (Generator production counts legitimately
    // vary: overproduced frames are dropped at the end.)
    fleet::FleetConfig config;
    config.nodes = 5;
    config.replication = 3;
    config.seed = testSeed(0xf1ee91);

    fleet::StormOutcome outcomes[2];
    fleet::RequestStats stats[2];
    for (int run = 0; run < 2; ++run) {
        fleet::Fleet fleet(config);
        ThreadPool pool(3);
        outcomes[run] = fleet.runStormThreaded(
            pool, /*mask=*/0b00011, fromSeconds(2.0), fromMillis(33.0));
        stats[run] = fleet.stats();
        EXPECT_TRUE(fleet.checkReplicaConvergence().empty());
    }
    EXPECT_EQ(outcomes[0].victims, outcomes[1].victims);
    EXPECT_EQ(outcomes[0].wspRecoveries, outcomes[1].wspRecoveries);
    EXPECT_EQ(outcomes[0].timeToFullCapacity,
              outcomes[1].timeToFullCapacity);
    EXPECT_EQ(stats[0].requests, stats[1].requests);
    EXPECT_EQ(stats[0].ackedWrites, stats[1].ackedWrites);
    EXPECT_EQ(stats[0].succeeded, stats[1].succeeded);
}

} // namespace
