/**
 * @file
 * Unit tests for the power substrate: ultracapacitor, PSU, monitor,
 * tracer.
 */

#include <gtest/gtest.h>

#include "power/load_model.h"
#include "power/power_monitor.h"
#include "power/psu.h"
#include "power/signal_tracer.h"
#include "power/ultracapacitor.h"

namespace wsp {
namespace {

// Ultracapacitor -------------------------------------------------------

UltracapConfig
smallCap()
{
    UltracapConfig config;
    config.ratedCapacitanceF = 5.0;
    config.esrOhm = 0.05;
    config.maxVoltage = 12.0;
    config.minUsableVoltage = 6.0;
    return config;
}

TEST(Ultracap, StartsFullyCharged)
{
    Ultracapacitor cap(smallCap());
    EXPECT_DOUBLE_EQ(cap.voltage(), 12.0);
    // E = 1/2 * 5 * 144 = 360 J.
    EXPECT_NEAR(cap.storedEnergy(), 360.0, 1e-9);
    // Usable above 6 V: 1/2 * 5 * (144 - 36) = 270 J.
    EXPECT_NEAR(cap.usableEnergy(), 270.0, 1e-9);
}

TEST(Ultracap, TerminalVoltageBelowOpenCircuit)
{
    Ultracapacitor cap(smallCap());
    EXPECT_LT(cap.terminalVoltage(10.0), cap.voltage());
    EXPECT_DOUBLE_EQ(cap.terminalVoltage(0.0), cap.voltage());
}

TEST(Ultracap, DischargeDeliversRequestedEnergy)
{
    Ultracapacitor cap(smallCap());
    const double delivered = cap.discharge(6.0, fromSeconds(10.0));
    EXPECT_NEAR(delivered, 60.0, 1e-6);
    EXPECT_LT(cap.voltage(), 12.0);
}

TEST(Ultracap, DischargeStopsAtFloor)
{
    Ultracapacitor cap(smallCap());
    // Ask for far more than the usable energy.
    const double delivered = cap.discharge(50.0, fromSeconds(1000.0));
    EXPECT_LT(delivered, cap.config().ratedCapacitanceF * 144.0);
    EXPECT_FALSE(cap.canSupply(50.0));
    // Voltage never drops below zero and stays near the floor.
    EXPECT_GE(cap.voltage(), 0.0);
    EXPECT_LT(cap.voltage(), 6.5);
}

TEST(Ultracap, SupplyTimeMatchesEnergyBalance)
{
    Ultracapacitor cap(smallCap());
    // 270 J usable at 27 W -> 10 s.
    EXPECT_NEAR(toSeconds(cap.supplyTime(27.0)), 10.0, 0.01);
    EXPECT_EQ(cap.supplyTime(0.0), kTickNever);
}

TEST(Ultracap, DischargeMatchesSupplyTimePrediction)
{
    Ultracapacitor cap(smallCap());
    const Tick predicted = cap.supplyTime(27.0);
    // Run slightly less than the prediction: should still be usable.
    cap.discharge(27.0, predicted - fromMillis(600.0));
    EXPECT_TRUE(cap.canSupply(27.0));
    // A little more drains it past the floor (ESR makes it earlier).
    cap.discharge(27.0, fromSeconds(1.5));
    EXPECT_FALSE(cap.canSupply(27.0));
}

TEST(Ultracap, RechargeFullyCountsCycle)
{
    Ultracapacitor cap(smallCap());
    EXPECT_EQ(cap.cycles(), 0u);
    cap.discharge(50.0, fromSeconds(1000.0));
    cap.rechargeFully();
    EXPECT_EQ(cap.cycles(), 1u);
    EXPECT_DOUBLE_EQ(cap.voltage(), 12.0);
}

TEST(Ultracap, GradualRechargeRestoresVoltage)
{
    Ultracapacitor cap(smallCap());
    cap.discharge(20.0, fromSeconds(5.0));
    const double v_low = cap.voltage();
    cap.recharge(10.0, fromSeconds(5.0));
    EXPECT_GT(cap.voltage(), v_low);
    EXPECT_LE(cap.voltage(), 12.0);
}

TEST(UltracapAging, CurvesMatchFigure1)
{
    // Fig. 1: ultracap retains ~90%+ of capacitance at 100k cycles.
    EXPECT_GE(agingFraction(AgingCurve::BestCase, 100000), 0.95);
    EXPECT_NEAR(agingFraction(AgingCurve::DataSheet, 100000), 0.90, 0.01);
    EXPECT_GE(agingFraction(AgingCurve::WorstCase, 100000), 0.85);
    // Batteries collapse after a few hundred cycles.
    EXPECT_LT(agingFraction(AgingCurve::LiIonBattery, 1000), 0.10);
    EXPECT_GT(agingFraction(AgingCurve::LiIonBattery, 100), 0.9);
}

TEST(UltracapAging, MonotoneNonIncreasing)
{
    for (AgingCurve curve : {AgingCurve::BestCase, AgingCurve::DataSheet,
                             AgingCurve::WorstCase,
                             AgingCurve::LiIonBattery}) {
        double prev = agingFraction(curve, 0);
        EXPECT_NEAR(prev, 1.0, 1e-9);
        for (uint64_t c = 1; c <= 100000; c *= 10) {
            const double f = agingFraction(curve, c);
            EXPECT_LE(f, prev + 1e-12) << agingCurveName(curve);
            prev = f;
        }
    }
}

TEST(UltracapAging, AgedCapStoresLess)
{
    UltracapConfig config = smallCap();
    Ultracapacitor fresh(config);
    Ultracapacitor aged(config);
    for (int i = 0; i < 1000; ++i)
        aged.rechargeFully();
    EXPECT_LT(aged.effectiveCapacitance(), fresh.effectiveCapacitance());
    EXPECT_LT(aged.storedEnergy(), fresh.storedEnergy());
}

TEST(UltracapProvisioning, RequiredCapacitanceMatchesEnergyBalance)
{
    // 100 W for 10 ms with 2x margin = 2 J; between 12 V and 6 V the
    // usable specific energy is (144-36)/2 = 54 J/F -> ~0.037 F.
    const double c = requiredCapacitance(100.0, fromMillis(10.0), 12.0,
                                         6.0, 2.0);
    EXPECT_NEAR(c, 2.0 * 1.0 / 54.0, 1e-6);
    // A bank of exactly that size really delivers the energy.
    UltracapConfig config;
    config.ratedCapacitanceF = c;
    config.esrOhm = 0.0;
    Ultracapacitor cap(config);
    EXPECT_GE(cap.usableEnergy(), 100.0 * 0.010 * 2.0 - 1e-9);
}

TEST(UltracapProvisioning, MarginScalesLinearly)
{
    const double c1 = requiredCapacitance(50.0, fromMillis(5.0), 12.0,
                                          6.0, 1.0);
    const double c3 = requiredCapacitance(50.0, fromMillis(5.0), 12.0,
                                          6.0, 3.0);
    EXPECT_NEAR(c3, 3.0 * c1, 1e-9);
}

TEST(UltracapProvisioning, PaperCostClaimHolds)
{
    // Paper 5.4: a 0.5 F supercapacitor costs less than US$2.
    EXPECT_LT(ultracapCostUsd(0.5, 12.0), 2.0);
    // Bigger banks cost more.
    EXPECT_GT(ultracapCostUsd(50.0, 12.0), ultracapCostUsd(5.0, 12.0));
}

// PSU -------------------------------------------------------------------

TEST(Psu, RailsNominalBeforeFailure)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, psuPresetIntel1050W(), Rng(1));
    EXPECT_TRUE(psu.pwrOk());
    EXPECT_TRUE(psu.outputsValid());
    EXPECT_DOUBLE_EQ(psu.railVoltage(Rail::V12), 12.0);
    EXPECT_DOUBLE_EQ(psu.railVoltage(Rail::V5), 5.0);
    EXPECT_DOUBLE_EQ(psu.railVoltage(Rail::V3_3), 3.3);
}

TEST(Psu, PwrOkDropsAfterDetectDelay)
{
    EventQueue queue;
    PsuPreset preset = psuPresetIntel1050W();
    AtxPowerSupply psu(queue, preset, Rng(1));
    Tick drop_tick = 0;
    psu.pwrOkSignal().observeEdge(false, [&] { drop_tick = queue.now(); });
    psu.failInputAt(fromMillis(5.0));
    queue.runUntil(fromSeconds(1.0));
    EXPECT_EQ(drop_tick, fromMillis(5.0) + preset.pwrOkDetectDelay);
}

TEST(Psu, RailsHoldThroughResidualWindow)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, psuPresetIntel1050W(), Rng(1));
    psu.setLoadWatts(330.0);
    psu.failInputNow();
    const Tick window = psu.residualWindow();
    EXPECT_GE(window, fromMillis(33.0)); // worst case plus jitter
    // Just before regulation ends the rails are still valid.
    queue.runUntil(psu.regulationEndTick() - 1);
    EXPECT_TRUE(psu.outputsValid());
    // Well after, they have drooped.
    queue.runUntil(psu.regulationEndTick() + fromMillis(50.0));
    EXPECT_FALSE(psu.outputsValid());
    EXPECT_LT(psu.railVoltage(Rail::V12), 12.0);
}

TEST(Psu, WindowShrinksWithLoad)
{
    // The AMD 525W preset has distinct busy/idle windows.
    PsuPreset preset = psuPresetAmd525W();
    preset.windowJitter = 0; // deterministic for the comparison

    EventQueue q1;
    AtxPowerSupply busy(q1, preset, Rng(1));
    busy.setLoadWatts(preset.busyLoadWatts);
    busy.failInputNow();

    EventQueue q2;
    AtxPowerSupply idle(q2, preset, Rng(1));
    idle.setLoadWatts(preset.idleLoadWatts);
    idle.failInputNow();

    EXPECT_LT(busy.residualWindow(), idle.residualWindow());
    EXPECT_EQ(busy.residualWindow(), preset.busyWindow);
    EXPECT_EQ(idle.residualWindow(), preset.idleWindow);
}

TEST(Psu, WindowInterpolatesBetweenLoadPoints)
{
    PsuPreset preset = psuPresetAmd525W();
    preset.windowJitter = 0;
    EventQueue queue;
    AtxPowerSupply psu(queue, preset, Rng(1));
    const double mid =
        (preset.busyLoadWatts + preset.idleLoadWatts) / 2.0;
    psu.setLoadWatts(mid);
    psu.failInputNow();
    EXPECT_GT(psu.residualWindow(), preset.busyWindow);
    EXPECT_LT(psu.residualWindow(), preset.idleWindow);
}

TEST(Psu, RestoreInputRecovers)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, psuPresetIntel750W(), Rng(1));
    psu.failInputNow();
    queue.runUntil(psu.regulationEndTick() + fromMillis(100.0));
    EXPECT_FALSE(psu.outputsValid());
    psu.restoreInput();
    EXPECT_TRUE(psu.pwrOk());
    EXPECT_TRUE(psu.outputsValid());
    EXPECT_FALSE(psu.inputFailed());
}

TEST(Psu, JitterNeverShrinksBelowWorstCase)
{
    PsuPreset preset = psuPresetIntel750W();
    for (uint64_t seed = 0; seed < 20; ++seed) {
        EventQueue queue;
        AtxPowerSupply psu(queue, preset, Rng(seed));
        psu.setLoadWatts(preset.busyLoadWatts);
        psu.failInputNow();
        EXPECT_GE(psu.residualWindow(), preset.busyWindow);
        EXPECT_LE(psu.residualWindow(),
                  preset.busyWindow + preset.windowJitter);
    }
}

// PowerMonitor ----------------------------------------------------------

TEST(PowerMonitor, RaisesInterruptAfterLatency)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, psuPresetIntel1050W(), Rng(1));
    PowerMonitor monitor(queue, psu);
    Tick interrupt_at = 0;
    monitor.setPowerFailHandler([&] { interrupt_at = queue.now(); });

    psu.failInputNow();
    queue.runUntil(fromSeconds(1.0));

    const Tick expected = psu.preset().pwrOkDetectDelay +
                          monitor.notifyLatency();
    EXPECT_EQ(interrupt_at, expected);
    EXPECT_EQ(monitor.interruptsRaised(), 1u);
}

TEST(PowerMonitor, CommandsArriveAfterI2cLatency)
{
    EventQueue queue;
    AtxPowerSupply psu(queue, psuPresetIntel1050W(), Rng(1));
    PowerMonitorConfig config;
    PowerMonitor monitor(queue, psu, config);
    std::vector<PowerMonitor::Command> seen;
    Tick arrival = 0;
    monitor.setCommandSink([&](PowerMonitor::Command command) {
        seen.push_back(command);
        arrival = queue.now();
    });
    monitor.sendCommand(PowerMonitor::Command::Save);
    queue.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], PowerMonitor::Command::Save);
    EXPECT_EQ(arrival, config.i2cCommandLatency);
}

// SignalTracer ------------------------------------------------------------

TEST(SignalTracer, SamplesAtConfiguredRate)
{
    EventQueue queue;
    SignalTracer tracer(queue, fromMicros(10.0));
    double level = 1.0;
    tracer.addChannel("ch", [&] { return level; });
    tracer.start();
    queue.runUntil(fromMillis(1.0));
    tracer.stop();
    queue.run();
    // 1 ms at 100 kHz -> 101 samples including both endpoints.
    EXPECT_NEAR(static_cast<double>(tracer.channel("ch").size()), 101, 2);
}

TEST(SignalTracer, DroopDetectionMatchesPaperDefinition)
{
    EventQueue queue;
    SignalTracer tracer(queue, fromMicros(10.0));
    // A rail that droops below 95% of nominal at t = 33 ms.
    tracer.addChannel("rail", [&] {
        return queue.now() < fromMillis(33.0) ? 12.0 : 10.0;
    });
    tracer.start();
    queue.runUntil(fromMillis(40.0));
    tracer.stop();
    queue.run();

    Tick when = 0;
    ASSERT_TRUE(tracer.firstDroop("rail", 12.0, 0.95, fromMicros(250.0),
                                  &when));
    EXPECT_NEAR(toMillis(when), 33.0, 0.05);
}

TEST(SignalTracer, BriefGlitchBelowWindowIgnored)
{
    EventQueue queue;
    SignalTracer tracer(queue, fromMicros(10.0));
    // 100 us glitch: shorter than the 250 us droop definition.
    tracer.addChannel("rail", [&] {
        const Tick t = queue.now();
        const bool glitch = t >= fromMillis(5.0) &&
                            t < fromMillis(5.0) + fromMicros(100.0);
        return glitch ? 10.0 : 12.0;
    });
    tracer.start();
    queue.runUntil(fromMillis(10.0));
    tracer.stop();
    queue.run();

    Tick when = 0;
    EXPECT_FALSE(tracer.firstDroop("rail", 12.0, 0.95, fromMicros(250.0),
                                   &when));
}

TEST(SignalTracer, PsuTraceMeasuresConfiguredWindow)
{
    // End-to-end: measure a PSU's residual window exactly the way the
    // paper does (oscilloscope, 95% droop over 250 us).
    EventQueue queue;
    PsuPreset preset = psuPresetIntel1050W();
    preset.windowJitter = 0;
    AtxPowerSupply psu(queue, preset, Rng(1));
    psu.setLoadWatts(preset.busyLoadWatts);

    SignalTracer tracer(queue, fromMicros(10.0));
    tracer.addChannel("12V", [&] { return psu.railVoltage(Rail::V12); });
    tracer.addChannel("PWR_OK", [&] { return psu.pwrOk() ? 5.0 : 0.0; });
    tracer.start();

    psu.failInputNow();
    queue.runUntil(fromMillis(200.0));
    tracer.stop();
    queue.run();

    Tick pwr_ok_drop = 0;
    ASSERT_TRUE(tracer.firstDroop("PWR_OK", 5.0, 0.95, fromMicros(250.0),
                                  &pwr_ok_drop));
    Tick droop = 0;
    ASSERT_TRUE(tracer.firstDroop("12V", 12.0, 0.95, fromMicros(250.0),
                                  &droop));
    const double window_ms = toMillis(droop - pwr_ok_drop);
    // Measured window ~= configured 33 ms (plus a little droop decay).
    EXPECT_NEAR(window_ms, 33.0, 2.5);
}

// Load model ----------------------------------------------------------

TEST(LoadModel, PresetsAndNames)
{
    EXPECT_EQ(loadClassName(LoadClass::Busy), "Busy");
    EXPECT_EQ(loadClassName(LoadClass::Idle), "Idle");
    const SystemLoad intel = loadIntelTestbed();
    EXPECT_GT(intel.watts(LoadClass::Busy), intel.watts(LoadClass::Idle));
    const SystemLoad amd = loadAmdTestbed();
    EXPECT_LT(amd.busyWatts, intel.busyWatts);
}

} // namespace
} // namespace wsp
