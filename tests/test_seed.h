/**
 * @file
 * Shared seed override for the randomized property tests.
 *
 * Every property test pins its default seed (so CI is reproducible)
 * but derives the actual seed through testSeed(): setting the
 * WSP_TEST_SEED environment variable re-seeds all of them at once,
 * for shaking out seed-sensitive assumptions locally, and every
 * failure message names the seed in effect so a red run can be
 * replayed exactly:
 *
 *     WSP_TEST_SEED=12345 ./test_wsp_property
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace wsp::testing {

/**
 * The seed a property test should run with: WSP_TEST_SEED if set
 * (mixed with @p pinned so distinct call sites still diverge),
 * otherwise @p pinned itself.
 */
inline uint64_t
testSeed(uint64_t pinned)
{
    const char *env = std::getenv("WSP_TEST_SEED");
    if (env == nullptr || *env == '\0')
        return pinned;
    const uint64_t base = std::strtoull(env, nullptr, 0);
    // splitmix64-style mix so every pinned site gets its own stream
    // from one environment value.
    uint64_t z = base + pinned * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** "seed 0x…" trace tag naming the effective seed for replay. */
inline std::string
seedTrace(uint64_t pinned)
{
    char line[64];
    std::snprintf(line, sizeof(line), "seed=%llu (WSP_TEST_SEED %s)",
                  static_cast<unsigned long long>(testSeed(pinned)),
                  std::getenv("WSP_TEST_SEED") != nullptr ? "set"
                                                          : "unset");
    return line;
}

} // namespace wsp::testing
