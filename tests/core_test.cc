/**
 * @file
 * Tests for the WSP core: marker protocol, resume block, save and
 * restore routines, the controller, and the assembled system.
 *
 * The central invariant (DESIGN.md section 5): for a power failure
 * injected at *any* tick, after reboot either the valid marker was
 * intact and the restored memory + contexts equal the pre-failure
 * state exactly, or the marker is invalid and recovery falls back to
 * the back end. Never a torn restore.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/failure_injector.h"
#include "core/system.h"
#include "core/valid_marker.h"

namespace wsp {
namespace {

/** Small system: fast to simulate, no devices unless asked. */
SystemConfig
testConfig(bool with_devices = false)
{
    SystemConfig config;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    if (!with_devices)
        config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(100.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    config.wsp.hostStackBootLatency = fromMillis(50.0);
    return config;
}

/** Write a recognizable pattern through the cache. */
void
writePattern(WspSystem &system, uint64_t base, uint64_t words,
             uint64_t seed)
{
    Rng rng(seed);
    for (uint64_t i = 0; i < words; ++i)
        system.cache().writeU64(base + i * 8, rng());
}

/** Check the pattern, reading through the cache. */
bool
checkPattern(WspSystem &system, uint64_t base, uint64_t words,
             uint64_t seed)
{
    Rng rng(seed);
    for (uint64_t i = 0; i < words; ++i) {
        if (system.cache().readU64(base + i * 8) != rng())
            return false;
    }
    return true;
}

// ValidMarker ------------------------------------------------------------

struct MarkerFixture : ::testing::Test
{
    MarkerFixture() : system(testConfig()) {}
    WspSystem system;
};

TEST_F(MarkerFixture, FreshMarkerInvalid)
{
    ValidMarker marker(system.cache(), 0);
    EXPECT_FALSE(marker.read(system.memory()).valid);
}

TEST_F(MarkerFixture, SetThenReadValid)
{
    ValidMarker marker(system.cache(), 0);
    marker.set(7, 0xabcdull);
    const MarkerState state = marker.read(system.memory());
    EXPECT_TRUE(state.valid);
    EXPECT_EQ(state.bootSequence, 7u);
    EXPECT_EQ(state.resumeChecksum, 0xabcdull);
}

TEST_F(MarkerFixture, ClearInvalidates)
{
    ValidMarker marker(system.cache(), 0);
    marker.set(1, 2);
    marker.clear();
    EXPECT_FALSE(marker.read(system.memory()).valid);
}

TEST_F(MarkerFixture, PrepareWithoutStampInvalid)
{
    ValidMarker marker(system.cache(), 0);
    marker.prepare(1, 2);
    EXPECT_FALSE(marker.read(system.memory()).valid);
}

TEST_F(MarkerFixture, StampFromDifferentBootRejected)
{
    ValidMarker marker(system.cache(), 0);
    marker.set(1, 2);
    // Corrupt the sequence field (simulates a stale line mix).
    system.cache().writeU64(8, 99);
    system.cache().flushLine(8);
    EXPECT_FALSE(marker.read(system.memory()).valid);
}

TEST_F(MarkerFixture, GarbageMemoryInvalid)
{
    ValidMarker marker(system.cache(), 0);
    Rng rng(1);
    for (uint64_t off = 0; off < ValidMarker::kSize; off += 8)
        system.cache().writeU64(off, rng());
    system.cache().flushLine(0);
    system.cache().flushLine(64);
    EXPECT_FALSE(marker.read(system.memory()).valid);
}

TEST_F(MarkerFixture, SetSurvivesWbinvd)
{
    ValidMarker marker(system.cache(), 0);
    marker.set(3, 4);
    system.cache().wbinvd();
    EXPECT_TRUE(marker.read(system.memory()).valid);
}

// ResumeBlock --------------------------------------------------------------

TEST_F(MarkerFixture, ResumeBlockRoundTrip)
{
    ResumeBlock block(system.cache(), 4096, 4);
    Rng rng(2);
    std::vector<CpuContext> contexts(4);
    for (unsigned i = 0; i < 4; ++i) {
        contexts[i].randomize(rng);
        contexts[i].apicId = i;
        block.saveContext(i, contexts[i]);
    }
    block.writeHeader(9);
    EXPECT_EQ(block.bootSequence(system.memory()), 9u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(block.loadContext(system.memory(), i), contexts[i]);
}

TEST_F(MarkerFixture, ResumeBlockChecksumDetectsChange)
{
    ResumeBlock block(system.cache(), 4096, 2);
    Rng rng(3);
    CpuContext ctx;
    ctx.randomize(rng);
    block.saveContext(0, ctx);
    block.writeHeader(1);
    const uint64_t sum = block.checksum(system.memory());
    system.cache().writeU64(4096 + 64 + 8, 0xdeadbeefull);
    system.cache().flushLine(4096 + 64 + 8);
    EXPECT_NE(block.checksum(system.memory()), sum);
}

TEST_F(MarkerFixture, ResumeBlockSizeScalesWithCores)
{
    EXPECT_GT(ResumeBlock::sizeFor(16), ResumeBlock::sizeFor(2));
    // Slots are line-aligned.
    EXPECT_EQ(ResumeBlock::sizeFor(1) % CacheModel::kLineSize, 0u);
}

// Full save/restore cycle ----------------------------------------------

TEST(WspCycle, CleanPowerFailureRecoversEverything)
{
    WspSystem system(testConfig());
    system.start();

    // Application state: dirty in cache AND flushed in NVRAM.
    writePattern(system, 0, 4096, 42);
    Rng ctx_rng(7);
    system.machine().randomizeContexts(ctx_rng);
    const CpuContext before_ctx = system.machine().core(3).context;

    auto outcome = system.powerFailAndRestore(fromMillis(10.0),
                                              fromSeconds(30.0));

    ASSERT_TRUE(outcome.save.has_value());
    EXPECT_TRUE(outcome.save->completed);
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_TRUE(outcome.restore.markerValid);
    EXPECT_TRUE(outcome.restore.checksumOk);

    // All memory state survived, including the dirty cache lines.
    EXPECT_TRUE(checkPattern(system, 0, 4096, 42));
    // Thread contexts restored exactly.
    EXPECT_EQ(system.machine().core(3).context, before_ctx);
    EXPECT_TRUE(system.wsp().running());
}

TEST(WspCycle, SaveCompletesInsideResidualWindow)
{
    WspSystem system(testConfig());
    system.start();
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    ASSERT_TRUE(outcome.save.has_value());
    const auto frac = system.wsp().windowFractionUsed();
    ASSERT_TRUE(frac.has_value());
    // Paper: the save fits within 2-35% of the residual window.
    EXPECT_GT(*frac, 0.0);
    EXPECT_LT(*frac, 0.35);
}

TEST(WspCycle, SaveReportHasAllFigure4Steps)
{
    WspSystem system(testConfig());
    system.start();
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    ASSERT_TRUE(outcome.save.has_value());
    std::vector<std::string> names;
    for (const auto &step : outcome.save->steps)
        names.push_back(step.step);
    const std::vector<std::string> expected = {
        "interrupt control processor",
        "IPI all processors",
        "save processor contexts",
        "flush caches (all sockets)",
        "halt N-1 processors",
        "set up resume block",
        "mark image as valid",
        "initiate NVDIMM save",
        "halt control processor",
    };
    EXPECT_EQ(names, expected);
}

TEST(WspCycle, SecondFailureCycleAlsoRecovers)
{
    WspSystem system(testConfig());
    system.start();
    writePattern(system, 0, 256, 1);
    auto first = system.powerFailAndRestore(fromMillis(5.0),
                                            fromSeconds(30.0));
    EXPECT_TRUE(first.restore.usedWsp);

    // Mutate state after the first recovery, fail again.
    writePattern(system, 64 * kKiB, 256, 2);
    auto second = system.powerFailAndRestore(fromMillis(5.0),
                                             fromSeconds(30.0));
    EXPECT_TRUE(second.restore.usedWsp);
    EXPECT_TRUE(checkPattern(system, 0, 256, 1));
    EXPECT_TRUE(checkPattern(system, 64 * kKiB, 256, 2));
}

TEST(WspCycle, BootSequenceAdvancesPerCycle)
{
    WspSystem system(testConfig());
    system.start();
    const uint64_t seq0 = system.wsp().bootSequence();
    system.powerFailAndRestore(fromMillis(5.0), fromSeconds(30.0));
    EXPECT_EQ(system.wsp().bootSequence(), seq0 + 1);
}

TEST(WspCycle, ColdStartHasNothingToRestore)
{
    WspSystem system(testConfig());
    bool backend_ran = false;
    bool done = false;
    system.wsp().boot([&] { backend_ran = true; },
                      [&](RestoreReport report) {
        EXPECT_FALSE(report.usedWsp);
        EXPECT_FALSE(report.flashValid);
        done = true;
    });
    while (!done && system.queue().step()) {
    }
    EXPECT_TRUE(done);
    EXPECT_TRUE(backend_ran);
    EXPECT_TRUE(system.wsp().running());
}

TEST(WspCycle, MarkerClearedAfterResume)
{
    WspSystem system(testConfig());
    system.start();
    system.powerFailAndRestore(fromMillis(5.0), fromSeconds(30.0));
    // A crash *now* (before any new failure) must not replay the old
    // image: the marker was cleared on resume.
    EXPECT_FALSE(
        system.wsp().marker().read(system.memory()).valid);
}

TEST(WspCycle, DeviceReplayAfterRestore)
{
    WspSystem system(testConfig(/*with_devices=*/true));
    system.start();
    system.devices().find("disk")->submitIo(fromSeconds(5.0));
    system.devices().find("nic")->submitIo(fromSeconds(5.0));

    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_EQ(outcome.restore.deviceReport.opsReplayed, 2u);
    EXPECT_EQ(outcome.restore.deviceReport.devicesRestarted,
              system.devices().devices().size());
}

TEST(WspCycle, OutageShorterThanSaveStillRecovers)
{
    // Power comes back while the NVDIMMs are still saving; the boot
    // path must wait for them. A 512 MiB module on one flash channel
    // takes ~4 s to save, far longer than the 500 ms outage.
    SystemConfig config = testConfig();
    config.nvdimm.capacityBytes = 512 * kMiB;
    config.nvdimm.flashChannels = 1;
    WspSystem system(config);
    system.start();
    writePattern(system, 0, 128, 9);
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromMillis(500.0));
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_TRUE(checkPattern(system, 0, 128, 9));
    // The boot really did have to wait out the in-flight save.
    EXPECT_GT(outcome.restore.duration(), fromSeconds(2.0));
}

// Failure injection -----------------------------------------------------

/**
 * Inject a hard power loss at an arbitrary offset after the failure
 * interrupt and verify the central invariant. Returns whether WSP
 * recovery was used.
 */
bool
injectAndCheck(Tick kill_after_fail, uint64_t pattern_words = 512)
{
    SystemConfig config = testConfig();
    // Shrink the residual window so the kill lands mid-save: override
    // the PSU with a custom preset whose window is the kill offset.
    config.psu.windowJitter = 0;
    config.psu.busyWindow = kill_after_fail;
    config.psu.idleWindow = kill_after_fail;
    config.psu.pwrOkDetectDelay = 0;

    WspSystem system(config);
    system.start();
    writePattern(system, 0, pattern_words, 77);

    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });

    if (outcome.restore.usedWsp) {
        // Recovered image must be exact.
        EXPECT_TRUE(checkPattern(system, 0, pattern_words, 77))
            << "torn restore after kill at "
            << formatTime(kill_after_fail);
        EXPECT_FALSE(backend_ran);
    } else {
        // Fallback must have engaged the back end.
        EXPECT_TRUE(backend_ran)
            << "no recovery at all after kill at "
            << formatTime(kill_after_fail);
    }
    EXPECT_TRUE(system.wsp().running());
    return outcome.restore.usedWsp;
}

TEST(FailureInjection, KillLongBeforeSaveCompletes)
{
    // 1 us window: the save cannot even IPI. Must fall back.
    EXPECT_FALSE(injectAndCheck(fromMicros(1.0)));
}

TEST(FailureInjection, KillDuringCacheFlush)
{
    // The C5528 flush takes ~2.8 ms; kill in the middle of it.
    EXPECT_FALSE(injectAndCheck(fromMillis(1.5)));
}

TEST(FailureInjection, KillJustBeforeMarkerStamp)
{
    // Flush finishes ~2.9 ms after the interrupt; the marker stamp is
    // a few microseconds later. Land in between.
    injectAndCheck(fromMillis(2.95));
}

TEST(FailureInjection, KillAfterFullWindowSucceeds)
{
    // 33 ms (the real preset): plenty of time.
    EXPECT_TRUE(injectAndCheck(fromMillis(33.0)));
}

TEST(FailureInjection, SweepNeverTearsState)
{
    // Property sweep: kill at a ladder of offsets spanning the whole
    // save sequence. The invariant must hold at every point.
    int wsp_recoveries = 0;
    int fallbacks = 0;
    for (double ms : {0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 2.5, 2.8, 2.9,
                      2.95, 3.0, 3.05, 3.1, 3.5, 4.0, 8.0, 33.0}) {
        if (injectAndCheck(fromMillis(ms), 128))
            ++wsp_recoveries;
        else
            ++fallbacks;
    }
    // Both regimes must actually be exercised by the ladder.
    EXPECT_GT(wsp_recoveries, 0);
    EXPECT_GT(fallbacks, 0);
}

TEST(FailureInjection, UndersizedUltracapDetectedOnBoot)
{
    SystemConfig config = testConfig();
    // Sabotage: a bank far too small to finish the flash save.
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.nvdimm.savePowerWatts = 50.0;
    config.nvdimm.ultracap.ratedCapacitanceF = 0.02;

    WspSystem system(config);
    system.start();
    bool backend_ran = false;
    auto outcome = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(60.0), [&] { backend_ran = true; });
    // The CPU-side save succeeded, but the NVDIMM image is invalid.
    EXPECT_FALSE(outcome.restore.usedWsp);
    EXPECT_FALSE(outcome.restore.flashValid);
    EXPECT_TRUE(backend_ran);
}

TEST(FailureInjection, UnarmedModulesStillRecoverViaExplicitCommand)
{
    SystemConfig config = testConfig();
    config.wsp.armNvdimms = false;
    WspSystem system(config);
    system.start();
    writePattern(system, 0, 128, 5);
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    // The explicit I2C save command still reaches the modules inside
    // the residual window.
    EXPECT_TRUE(outcome.restore.usedWsp);
    EXPECT_TRUE(checkPattern(system, 0, 128, 5));
}

// Failure-injector scenarios ---------------------------------------------

TEST(FailureInjectorScenarios, OutageTrainRecoversEveryCycle)
{
    // Five outages back to back: every cycle must recover via WSP
    // with the memory image intact, the back end never consulted, and
    // the boot sequence advancing once per cycle.
    WspSystem system(testConfig());
    system.start();
    writePattern(system, 0, 256, 21);

    FailureInjector injector(system);
    int backend_calls = 0;
    const OutageTrainReport report = injector.outageTrain(
        5, fromMillis(5.0), fromSeconds(1.0), [&] { ++backend_calls; });

    EXPECT_EQ(report.wspRecoveries(), 5);
    EXPECT_TRUE(report.allWsp());
    for (const auto &cycle : report.cycles) {
        EXPECT_FALSE(cycle.backendRan);
        EXPECT_EQ(cycle.reason, "wsp resume");
    }
    EXPECT_EQ(backend_calls, 0);
    EXPECT_TRUE(checkPattern(system, 0, 256, 21));
    EXPECT_TRUE(system.wsp().running());
    EXPECT_EQ(system.wsp().bootSequence(), 1u + 5u);
}

TEST(FailureInjectorScenarios, ShortWindowTrainFallsBackEachCycle)
{
    // A 1 us residual window can never finish a save, so every cycle
    // of the train must take the back-end path — and still leave the
    // system running for the next cycle.
    WspSystem system(
        FailureInjector::withExactWindow(testConfig(), fromMicros(1.0)));
    system.start();

    FailureInjector injector(system);
    int backend_calls = 0;
    const OutageTrainReport report = injector.outageTrain(
        4, fromMillis(5.0), fromSeconds(1.0), [&] { ++backend_calls; });

    EXPECT_EQ(report.wspRecoveries(), 0);
    EXPECT_EQ(report.coldBoots(), 4);
    for (const auto &cycle : report.cycles)
        EXPECT_TRUE(cycle.backendRan || cycle.salvageMode);
    EXPECT_EQ(backend_calls, 4);
    EXPECT_TRUE(system.wsp().running());
}

TEST(FailureInjectorScenarios, DrainStopsAtEsrFloorNotBelow)
{
    // Asking the injector for a target far below the DC-DC floor must
    // terminate at the floor: near it the ESR drop puts the terminal
    // voltage under the usable minimum, so the drain's draw delivers
    // nothing and the loop must break instead of spinning forever.
    WspSystem system(testConfig());
    system.start();
    FailureInjector injector(system);
    injector.drainUltracap(0, 0.5);

    const Ultracapacitor &cap = system.memory().module(0).ultracap();
    EXPECT_GE(cap.voltage(), 5.5);
    EXPECT_LT(cap.voltage(), cap.config().minUsableVoltage + 0.5);
    // Whatever charge remains is unusable for a save.
    EXPECT_LT(cap.usableEnergy(), 5.0);

    // A target above the floor is still honored exactly.
    injector.drainUltracap(1, 8.0);
    EXPECT_LE(system.memory().module(1).ultracap().voltage(), 8.0);
    EXPECT_GT(system.memory().module(1).ultracap().voltage(), 7.0);
}

TEST(FailureInjection, SaveFailedModuleRearmsOnNextBoot)
{
    // A bank too small to finish the flash save leaves the module in
    // SaveFailed. The next boot must not wedge on that state: power
    // restore clears it, recharges the bank, and the following cycle
    // runs the same deterministic fallback again.
    SystemConfig config = testConfig();
    config.nvdimm.capacityBytes = 64 * kMiB;
    config.nvdimm.flashChannels = 1;
    config.nvdimm.savePowerWatts = 50.0;
    config.nvdimm.ultracap.ratedCapacitanceF = 0.02;
    WspSystem system(config);
    system.start();

    int backend_calls = 0;
    auto first = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(60.0), [&] { ++backend_calls; });
    EXPECT_FALSE(first.restore.usedWsp);
    EXPECT_EQ(backend_calls, 1);
    // SaveFailed was cleared on power restore, not carried over.
    EXPECT_EQ(system.memory().module(0).state(), NvdimmState::Active);
    EXPECT_FALSE(system.nvdimms().anySaveFailed());
    EXPECT_TRUE(system.memory().module(0).armed());

    auto second = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(60.0), [&] { ++backend_calls; });
    EXPECT_FALSE(second.restore.usedWsp);
    EXPECT_EQ(backend_calls, 2);
    EXPECT_TRUE(system.wsp().running());
}

TEST(FailureInjectorScenarios, DrainedUltracapRechargesAndRecovers)
{
    // Drain one bank below its usable floor: the first failure cannot
    // finish the flash save, so recovery falls back. Power restore
    // recharges the bank, so a second failure recovers via WSP again.
    WspSystem system(testConfig());
    system.start();
    FailureInjector injector(system);
    // The drain stops at the usable floor (the ESR drop blocks any
    // further draw), leaving the bank with almost no usable energy.
    injector.drainUltracap(0, 5.0);
    ASSERT_LT(system.memory().module(0).ultracap().voltage(), 6.1);

    bool backend_ran = false;
    auto first = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });
    EXPECT_FALSE(first.restore.usedWsp);
    EXPECT_FALSE(system.memory().module(0).flashValid());
    EXPECT_TRUE(backend_ran);

    writePattern(system, 0, 128, 34);
    backend_ran = false;
    auto second = system.powerFailAndRestore(
        fromMillis(5.0), fromSeconds(30.0), [&] { backend_ran = true; });
    EXPECT_TRUE(second.restore.usedWsp);
    EXPECT_FALSE(backend_ran);
    EXPECT_TRUE(checkPattern(system, 0, 128, 34));
}

// Prediction --------------------------------------------------------------

TEST(SavePrediction, MatchesMeasuredDuration)
{
    WspSystem system(testConfig());
    system.start();
    const Tick predicted = system.wsp().saveRoutine().predictDuration();
    auto outcome = system.powerFailAndRestore(fromMillis(5.0),
                                              fromSeconds(30.0));
    ASSERT_TRUE(outcome.save.has_value());
    const Tick measured = outcome.save->duration();
    EXPECT_NEAR(toMillis(predicted), toMillis(measured),
                0.05 * toMillis(measured) + 0.01);
}

TEST(SavePrediction, Under5msOnAllPlatforms)
{
    // Fig. 8's headline: save times consistently under 5 ms.
    for (const PlatformSpec &spec : allPlatforms()) {
        SystemConfig config = testConfig();
        config.platform = spec;
        WspSystem system(config);
        EXPECT_LT(toMillis(system.wsp().saveRoutine().predictDuration()),
                  5.0)
            << spec.name;
    }
}

} // namespace
} // namespace wsp
