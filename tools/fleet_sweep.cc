/**
 * @file
 * Fleet crash-sweep driver.
 *
 * Sweeps the replicated fleet through correlated outage-train storms:
 * every enumerated kill instant of the node save pipeline (and
 * optionally fuzzed random schedules — masks, policies, fleet sizes)
 * must leave the fleet convergent under the NoReplicaDivergence
 * checker, with no acknowledged write lost. A failing schedule is
 * minimized and written as a replay file (the fleet fields serialize
 * through the standard crash-schedule format).
 *
 * Exit codes: 0 = every run held, 3 = violations found, 1 = bad
 * usage or internal error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fleet/fleet_sweep.h"

using namespace wsp;
using namespace wsp::fleet;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fleet_sweep [options]\n"
        "  --nodes=N          fleet size (default 3)\n"
        "  --replication=R    replica factor (default 3)\n"
        "  --kill-mask=M      victim subset bitmask (0 = every node)\n"
        "  --policy=P         0 wsp-local, 1 backend-refill,\n"
        "                     2 degraded-tier (default 0)\n"
        "  --points=N         cap enumerated kill instants (default 24)\n"
        "  --fuzz=N           add N fuzzed random fleet schedules\n"
        "  --train-cycles=N   storms per run (default 1)\n"
        "  --ops=N            pre-storm client writes (default 48)\n"
        "  --seed=N           base seed\n"
        "  --replay-out=PATH  write the minimized failing schedule\n");
}

bool
parseUnsigned(const char *arg, const char *prefix, unsigned *out)
{
    const size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return false;
    *out = static_cast<unsigned>(std::strtoul(arg + n, nullptr, 0));
    return true;
}

bool
parseU64(const char *arg, const char *prefix, uint64_t *out)
{
    const size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return false;
    *out = std::strtoull(arg + n, nullptr, 0);
    return true;
}

void
printFailure(const FleetCrashResult &failure)
{
    std::printf("FAIL %s\n", failure.schedule.summary().c_str());
    for (const std::string &violation : failure.violations)
        std::printf("  %s\n", violation.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    crashsim::CrashSchedule base = FleetSweep::defaultSchedule();
    unsigned points = 24;
    unsigned fuzz_runs = 0;
    unsigned policy = 0;
    std::string replay_out;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        unsigned u = 0;
        uint64_t u64 = 0;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else if (parseUnsigned(arg, "--nodes=", &u)) {
            base.fleetNodes = u;
        } else if (parseUnsigned(arg, "--replication=", &u)) {
            base.fleetReplication = u;
        } else if (parseU64(arg, "--kill-mask=", &u64)) {
            base.fleetKillMask = u64;
        } else if (parseUnsigned(arg, "--policy=", &policy)) {
            if (policy > 2) {
                usage();
                return 1;
            }
            base.fleetPolicy = static_cast<int>(policy);
        } else if (parseUnsigned(arg, "--points=", &points)) {
        } else if (parseUnsigned(arg, "--fuzz=", &fuzz_runs)) {
        } else if (parseUnsigned(arg, "--train-cycles=", &u)) {
            base.trainCycles = u;
        } else if (parseUnsigned(arg, "--ops=", &u)) {
            base.ops = u;
        } else if (parseU64(arg, "--seed=", &u64)) {
            base.seed = u64;
        } else if (std::strncmp(arg, "--replay-out=", 13) == 0) {
            replay_out = arg + 13;
        } else {
            usage();
            return 1;
        }
    }

    FleetSweep sweep(base);
    std::printf("fleet sweep: %s\n", base.summary().c_str());

    FleetSweepReport report = sweep.sweepEnumerated(false, points);
    std::printf("enumerated: %zu kill instants, %zu wsp / %zu salvage "
                "/ %zu refill recoveries, %zu failures\n",
                report.points, report.wspRecoveries,
                report.salvageBoots, report.backendRefills,
                report.failures.size());

    if (fuzz_runs > 0) {
        FleetSweepReport fuzzed = sweep.fuzz(fuzz_runs, base.seed);
        std::printf("fuzz: %zu schedules, %zu failures\n",
                    fuzzed.points, fuzzed.failures.size());
        for (auto &failure : fuzzed.failures)
            report.failures.push_back(std::move(failure));
    }

    if (report.failures.empty()) {
        std::printf("NoReplicaDivergence held at every point\n");
        return 0;
    }

    for (const FleetCrashResult &failure : report.failures)
        printFailure(failure);

    const crashsim::CrashSchedule minimized =
        FleetSweep::minimize(report.failures.front().schedule);
    std::printf("minimized: %s\n", minimized.summary().c_str());
    if (!replay_out.empty()) {
        std::ofstream out(replay_out);
        out << minimized.serialize();
        std::printf("replay file written to %s\n", replay_out.c_str());
    }
    return 3;
}
