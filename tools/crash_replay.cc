/**
 * @file
 * Re-execute a crash schedule written by tools/crash_sweep (or by
 * CrashSchedule::writeFile from a test). The run is bit-for-bit
 * deterministic, so a minimized failing schedule reproduces its
 * violation exactly.
 *
 * Exit codes: 0 = invariants held, 2 = violation reproduced,
 * 1 = unreadable/malformed schedule file.
 */

#include <cstdio>
#include <string>

#include "crashsim/crash_explorer.h"

int
main(int argc, char **argv)
{
    using namespace wsp::crashsim;

    if (argc != 2) {
        std::fprintf(stderr, "usage: crash_replay <schedule-file>\n");
        return 1;
    }

    const auto schedule = CrashSchedule::readFile(argv[1]);
    if (!schedule) {
        std::fprintf(stderr,
                     "crash_replay: cannot parse schedule '%s'\n",
                     argv[1]);
        return 1;
    }

    std::printf("replaying: %s\n", schedule->summary().c_str());
    const CrashPointResult result =
        CrashExplorer::runSchedule(*schedule);

    std::printf("restore: usedWsp=%d flashValid=%d markerValid=%d "
                "checksumOk=%d backend=%d appliedOps=%llu\n",
                result.restore.usedWsp ? 1 : 0,
                result.restore.flashValid ? 1 : 0,
                result.restore.markerValid ? 1 : 0,
                result.restore.checksumOk ? 1 : 0,
                result.backendRan ? 1 : 0,
                static_cast<unsigned long long>(result.appliedOps));

    if (result.held()) {
        std::printf("all invariants held\n");
        return 0;
    }
    for (const std::string &violation : result.violations)
        std::printf("VIOLATION: %s\n", violation.c_str());
    return 2;
}
