/**
 * @file
 * Post-mortem forensics for the NVRAM black-box flight recorder.
 *
 * Takes the surviving evidence of a crash — a serialized NVRAM image
 * (crash_sweep --image-out, NvramImage::writeFile) or a crash-replay
 * schedule file (re-executed deterministically to regenerate the
 * image) — locates the flight-recorder ring in it, and prints the
 * decoded timeline plus per-category/per-event statistics. The
 * timeline can also be exported as a Chrome trace (chrome://tracing /
 * Perfetto), and two images' recorders can be diffed record by
 * record to see where their histories diverge.
 *
 * Exit codes: 0 = decoded and sound (and identical, under --diff),
 * 3 = ring unsound / recorders differ / header missing under
 * --require-header, 1 = bad usage or I/O error.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "crashsim/crash_explorer.h"
#include "crashsim/invariants.h"
#include "nvram/nvram_image.h"
#include "trace/flight_recorder.h"

namespace {

using wsp::NvramImage;
using wsp::crashsim::CrashExplorer;
using wsp::crashsim::CrashSchedule;
using wsp::crashsim::decodeBlackBox;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: wsp_inspect [options]\n"
        "  --image=PATH      NVRAM image file (crash_sweep --image-out)\n"
        "  --replay=PATH     crash-replay schedule; re-runs it and\n"
        "                    inspects the image the crash leaves behind\n"
        "  --diff=PATH       second image: diff the two recorders\n"
        "  --trace-out=PATH  export the timeline as a Chrome trace\n"
        "  --require-header  fail (exit 3) when no recorder header\n"
        "                    survived in the image\n"
        "  --quiet           stats only, no per-record timeline\n");
}

/** Load the image to inspect from either source. */
bool
loadImage(const std::string &image_path, const std::string &replay_path,
          NvramImage *out)
{
    if (!image_path.empty()) {
        auto image = NvramImage::readFile(image_path);
        if (!image) {
            std::fprintf(stderr, "cannot load NVRAM image '%s'\n",
                         image_path.c_str());
            return false;
        }
        *out = std::move(*image);
        return true;
    }
    auto schedule = CrashSchedule::readFile(replay_path);
    if (!schedule) {
        std::fprintf(stderr, "cannot load crash schedule '%s'\n",
                     replay_path.c_str());
        return false;
    }
    std::printf("replaying: %s\n", schedule->summary().c_str());
    CrashExplorer::runSchedule(*schedule, out);
    return true;
}

void
printSummary(const char *label, const wsp::trace::FrDecodeResult &d)
{
    std::printf("%s:\n", label);
    if (!d.headerFound) {
        std::printf("  no flight-recorder header found\n");
        for (const std::string &note : d.notes)
            std::printf("  note: %s\n", note.c_str());
        return;
    }
    std::printf("  header %s, generation %llu, capacity %zu records\n",
                d.headerValid ? "valid" : "CORRUPT",
                static_cast<unsigned long long>(d.generation),
                d.capacity);
    std::printf("  published seq [%llu, %llu), %llu emitted lifetime\n",
                static_cast<unsigned long long>(d.tailSeq),
                static_cast<unsigned long long>(d.headSeq),
                static_cast<unsigned long long>(d.totalEmitted));
    std::printf("  %zu records decoded, %zu torn, %zu unsaved, "
                "%zu stale%s\n",
                d.records.size(), d.tornSlots, d.unsavedSlots,
                d.staleSlots,
                d.unpublishedTail ? ", in-flight tail present" : "");
    for (const std::string &note : d.notes)
        std::printf("  note: %s\n", note.c_str());
    std::printf("  verdict: %s\n",
                d.sound() ? "SOUND (publish discipline held)"
                          : "UNSOUND (torn records inside the "
                            "published window)");
}

void
printStats(const wsp::trace::FrDecodeResult &d)
{
    std::map<std::string, size_t> by_category;
    std::map<std::string, size_t> by_event;
    for (const wsp::trace::FrRecord &r : d.records) {
        ++by_category[wsp::trace::categoryName(r.category)];
        ++by_event[wsp::trace::frEventName(r.event)];
    }
    std::printf("per-category:\n");
    for (const auto &[name, count] : by_category)
        std::printf("  %-10s %zu\n", name.c_str(), count);
    std::printf("per-event:\n");
    for (const auto &[name, count] : by_event)
        std::printf("  %-22s %zu\n", name.c_str(), count);
}

/** Chrome trace (JSON object format): one instant event per record. */
bool
writeChromeTrace(const std::string &path,
                 const wsp::trace::FrDecodeResult &d)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write trace to '%s'\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    for (const wsp::trace::FrRecord &r : d.records) {
        // Event and category names are fixed ASCII identifiers, so no
        // JSON string escaping is needed here.
        std::fprintf(
            f,
            "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
            "\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
            "\"args\":{\"seq\":%llu,\"generation\":%llu,"
            "\"a0\":%llu,\"a1\":%llu}}",
            first ? "" : ",", wsp::trace::frEventName(r.event),
            wsp::trace::categoryName(r.category),
            static_cast<double>(r.simTick) / 1e3, // ns -> us
            static_cast<unsigned>(r.category),
            static_cast<unsigned long long>(r.seq),
            static_cast<unsigned long long>(r.generation),
            static_cast<unsigned long long>(r.a0),
            static_cast<unsigned long long>(r.a1));
        first = false;
    }
    std::fprintf(f, "\n]}\n");
    const bool ok = std::fflush(f) == 0;
    std::fclose(f);
    return ok;
}

/** Diff two decoded recorders record by record; @return differences. */
size_t
diffRecorders(const wsp::trace::FrDecodeResult &a,
              const wsp::trace::FrDecodeResult &b)
{
    size_t differences = 0;
    std::map<uint64_t, const wsp::trace::FrRecord *> b_by_seq;
    for (const auto &r : b.records)
        b_by_seq[r.seq] = &r;

    constexpr size_t kMaxPrinted = 32;
    const auto report = [&differences](const char *fmt, auto... args) {
        if (differences < kMaxPrinted)
            std::printf(fmt, args...);
        else if (differences == kMaxPrinted)
            std::printf("  ... further differences suppressed\n");
        ++differences;
    };

    for (const auto &r : a.records) {
        const auto it = b_by_seq.find(r.seq);
        if (it == b_by_seq.end()) {
            report("  only in first:  seq %llu %s\n",
                   static_cast<unsigned long long>(r.seq),
                   wsp::trace::frDescribe(r).c_str());
            continue;
        }
        const wsp::trace::FrRecord &o = *it->second;
        // Wall-clock stamps are host noise; everything else in the
        // record is part of the simulated history being compared.
        if (r.event != o.event || r.category != o.category ||
            r.generation != o.generation || r.simTick != o.simTick ||
            r.a0 != o.a0 || r.a1 != o.a1) {
            report("  seq %llu differs:\n    first:  %s\n"
                   "    second: %s\n",
                   static_cast<unsigned long long>(r.seq),
                   wsp::trace::frDescribe(r).c_str(),
                   wsp::trace::frDescribe(o).c_str());
        }
        b_by_seq.erase(it);
    }
    for (const auto &[seq, r] : b_by_seq)
        report("  only in second: seq %llu %s\n",
               static_cast<unsigned long long>(seq),
               wsp::trace::frDescribe(*r).c_str());
    return differences;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string image_path;
    std::string replay_path;
    std::string diff_path;
    std::string trace_out;
    bool require_header = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--image=", 0) == 0)
            image_path = arg.substr(8);
        else if (arg.rfind("--replay=", 0) == 0)
            replay_path = arg.substr(9);
        else if (arg.rfind("--diff=", 0) == 0)
            diff_path = arg.substr(7);
        else if (arg.rfind("--trace-out=", 0) == 0)
            trace_out = arg.substr(12);
        else if (arg == "--require-header")
            require_header = true;
        else if (arg == "--quiet")
            quiet = true;
        else {
            usage();
            return 1;
        }
    }
    if (image_path.empty() == replay_path.empty()) {
        usage(); // exactly one evidence source
        return 1;
    }

    NvramImage image;
    if (!loadImage(image_path, replay_path, &image))
        return 1;
    const wsp::trace::FrDecodeResult decode = decodeBlackBox(image);
    printSummary("flight recorder", decode);

    if (!quiet) {
        std::printf("timeline:\n");
        for (const std::string &line :
             wsp::trace::frFormatTimeline(decode))
            std::printf("  %s\n", line.c_str());
    }
    if (decode.headerFound)
        printStats(decode);

    if (!trace_out.empty()) {
        if (!writeChromeTrace(trace_out, decode))
            return 1;
        std::printf("chrome trace: %s (%zu events)\n",
                    trace_out.c_str(), decode.records.size());
    }

    bool failed = !decode.sound();
    if (require_header && !(decode.headerFound && decode.headerValid))
        failed = true;

    if (!diff_path.empty()) {
        auto other = NvramImage::readFile(diff_path);
        if (!other) {
            std::fprintf(stderr, "cannot load NVRAM image '%s'\n",
                         diff_path.c_str());
            return 1;
        }
        const wsp::trace::FrDecodeResult other_decode =
            decodeBlackBox(*other);
        printSummary("diff target", other_decode);
        std::printf("diff:\n");
        const size_t differences =
            diffRecorders(decode, other_decode);
        if (differences == 0)
            std::printf("  recorders identical (%zu records)\n",
                        decode.records.size());
        failed |= differences != 0 || !other_decode.sound();
    }

    return failed ? 3 : 0;
}
