/**
 * @file
 * Validator for the trace/metrics exporter output, used by the ctest
 * smoke test (cmake/trace_smoke.cmake): parse the files a bench wrote
 * and check their shape, so a broken exporter fails CI instead of
 * producing a file Perfetto silently rejects.
 *
 * Usage: trace_check --trace=<trace.json> --metrics=<metrics.json>
 * Either flag may be omitted; at least one file must be given.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/json_lite.h"

namespace {

using wsp::trace::json::Value;

int failures = 0;

void
fail(const char *fmt, const std::string &detail)
{
    std::fprintf(stderr, "trace_check: FAIL: ");
    std::fprintf(stderr, fmt, detail.c_str());
    std::fprintf(stderr, "\n");
    ++failures;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in) {
        fail("cannot open '%s'", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

/** A Chrome trace-event document: traceEvents with sane records. */
void
checkTrace(const std::string &path)
{
    std::string text;
    if (!readFile(path, &text))
        return;

    Value doc;
    if (!wsp::trace::json::parse(text, &doc) || !doc.isObject()) {
        fail("'%s' is not a valid JSON object", path);
        return;
    }
    const Value *events = doc.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        fail("'%s' has no traceEvents array", path);
        return;
    }

    size_t begins = 0;
    size_t ends = 0;
    size_t timed = 0;
    for (const Value &event : events->array) {
        const Value *ph = event.find("ph");
        if (!event.isObject() || ph == nullptr ||
            ph->type != Value::Type::String) {
            fail("'%s' has an event without a ph phase", path);
            return;
        }
        if (ph->string == "M")
            continue; // metadata carries no timestamp
        if (event.find("name") == nullptr ||
            event.find("ts") == nullptr ||
            event.find("pid") == nullptr) {
            fail("'%s' has a timed event missing name/ts/pid", path);
            return;
        }
        ++timed;
        if (ph->string == "B")
            ++begins;
        if (ph->string == "E")
            ++ends;
    }
    if (timed == 0)
        fail("'%s' contains no timed events (tracing was off?)", path);
    if (begins != ends) {
        char detail[96];
        std::snprintf(detail, sizeof(detail), "%s: %zu B vs %zu E",
                      path.c_str(), begins, ends);
        fail("unbalanced spans in %s", detail);
    }
    std::printf("trace_check: %s: %zu timed events, %zu spans OK\n",
                path.c_str(), timed, begins);
}

/** A flat metrics object: every member is a number. */
void
checkMetrics(const std::string &path)
{
    std::string text;
    if (!readFile(path, &text))
        return;

    Value doc;
    if (!wsp::trace::json::parse(text, &doc) || !doc.isObject()) {
        fail("'%s' is not a valid JSON object", path);
        return;
    }
    if (doc.object.empty()) {
        fail("'%s' contains no metrics", path);
        return;
    }
    for (const auto &entry : doc.object) {
        if (entry.second.type != Value::Type::Number) {
            fail("metric '%s' is not a number",
                 path + "' member '" + entry.first);
            return;
        }
    }
    std::printf("trace_check: %s: %zu metrics OK\n", path.c_str(),
                doc.object.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            trace_path = arg + 8;
        } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
            metrics_path = arg + 10;
        } else {
            std::fprintf(stderr,
                         "usage: trace_check [--trace=FILE] "
                         "[--metrics=FILE]\n");
            return 2;
        }
    }
    if (trace_path.empty() && metrics_path.empty()) {
        std::fprintf(stderr, "trace_check: nothing to check\n");
        return 2;
    }

    if (!trace_path.empty())
        checkTrace(trace_path);
    if (!metrics_path.empty())
        checkMetrics(metrics_path);
    return failures == 0 ? 0 : 1;
}
