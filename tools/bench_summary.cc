/**
 * @file
 * Perf-trajectory collator for the bench record files.
 *
 * Every bench run with --metrics-out= appends one JSON line to
 * BENCH_<name>.json (bench id, host, UTC stamp, wall seconds, seed,
 * counter snapshot). This tool scans a directory for those files and
 * prints the runs as one table, so a series of runs across commits
 * reads as a trajectory: is the wall time drifting, did the seed
 * change, which counters moved.
 *
 * Usage: bench_summary [dir] [--counter=NAME[,NAME...]]
 *                      [--gate=NAME:PCT]
 * (default dir: current directory; each named counter gets a column)
 *
 * --gate=NAME:PCT turns the trajectory into a regression gate: for
 * each bench whose records carry counter NAME, the newest record
 * must not fall more than PCT percent below the previous one
 * (higher-is-better counters such as ops/sec). Fewer than two
 * records is a pass — a gate cannot regress against nothing.
 *
 * Schema: beyond the common fields, benches may append extra
 * top-level integer fields via bench::recordField(). fleet_storm
 * records MUST carry "nodes" and "replication" (the fleet shape a
 * run measured), and kv_throughput records MUST carry "workers"
 * (rates at different worker counts are not one trajectory); a
 * record without its required fields is an old or broken writer,
 * and silently collating it would misattribute its numbers, so it
 * is a hard error, not a skipped line.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "trace/json_lite.h"
#include "util/table.h"
#include "util/units.h"

namespace fs = std::filesystem;
using wsp::trace::json::Parser;
using wsp::trace::json::Value;

namespace {

struct Run
{
    std::string bench;
    std::string utc;
    std::string host;
    double wallSeconds = 0.0;
    std::string seed;
    size_t counters = 0;
    /// --counter=A,B extracts, one per requested name ("-" absent).
    std::vector<std::string> counterValues;
    /// Same extraction numerically (NaN when absent), for --gate.
    std::vector<double> numericValues;
};

/** Counter values are integral u64s; avoid the %g round-trip. */
std::string
formatCounter(double value)
{
    if (value == static_cast<double>(static_cast<long long>(value)))
        return std::to_string(static_cast<long long>(value));
    return wsp::formatDouble(value, 3);
}

std::string
stringField(const Value &record, const char *key)
{
    const Value *field = record.find(key);
    return field != nullptr && field->type == Value::Type::String
               ? field->string
               : std::string("?");
}

bool
collectFile(const fs::path &path,
            const std::vector<std::string> &counter_names,
            std::vector<Run> *runs)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_summary: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    bool ok = true;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        Value record;
        if (!Parser(line).parse(&record) || !record.isObject()) {
            std::fprintf(stderr, "bench_summary: %s:%zu: malformed "
                         "record skipped\n",
                         path.c_str(), lineno);
            ok = false;
            continue;
        }
        Run run;
        run.bench = stringField(record, "bench");
        // Records without their shape fields are uncomparable across
        // runs; fail loudly rather than tabulating them bare.
        std::vector<const char *> required;
        if (run.bench == "fleet_storm")
            required = {"nodes", "replication"};
        else if (run.bench == "kv_throughput")
            required = {"workers"};
        for (const char *key : required) {
            const Value *field = record.find(key);
            if (field == nullptr ||
                field->type != Value::Type::Number) {
                std::fprintf(stderr,
                             "bench_summary: %s:%zu: %s record lacks "
                             "required integer field '%s'\n",
                             path.c_str(), lineno, run.bench.c_str(),
                             key);
                ok = false;
            }
        }
        run.utc = stringField(record, "utc");
        run.host = stringField(record, "host");
        if (const Value *wall = record.find("wall_seconds"))
            run.wallSeconds = wall->number;
        // Seeds are 64-bit and stored unquoted; reparse the raw text
        // so they do not round-trip through a double.
        const size_t pos = line.find("\"seed\":");
        if (pos != std::string::npos) {
            size_t end = line.find_first_of(",}", pos + 7);
            run.seed = line.substr(pos + 7, end - (pos + 7));
        }
        const Value *counters = record.find("counters");
        if (counters != nullptr)
            run.counters = counters->object.size();
        for (const std::string &name : counter_names) {
            const Value *value =
                counters != nullptr ? counters->find(name.c_str())
                                    : nullptr;
            const bool present =
                value != nullptr && value->type == Value::Type::Number;
            run.counterValues.push_back(
                present ? formatCounter(value->number)
                        : std::string("-"));
            run.numericValues.push_back(
                present ? value->number
                        : std::numeric_limits<double>::quiet_NaN());
        }
        runs->push_back(std::move(run));
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = ".";
    std::vector<std::string> counter_names;
    std::string gate_counter;
    double gate_pct = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_summary [dir] [--counter=NAME[,NAME...]]"
                " [--gate=NAME:PCT]\n"
                "collates BENCH_*.json records (written by benches "
                "run with --metrics-out=) into one table;\n"
                "--counter adds a column per named counter tracking "
                "its value across the runs\n(comma-separated and/or "
                "repeated);\n"
                "--gate fails (exit 1) when the newest record's "
                "counter NAME drops more than PCT%% below\nthe "
                "previous record's (per bench; fewer than two records "
                "passes)\n");
            return 0;
        }
        if (arg.rfind("--gate=", 0) == 0) {
            const std::string spec = arg.substr(7);
            const size_t colon = spec.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 == spec.size()) {
                std::fprintf(stderr, "bench_summary: --gate wants "
                             "NAME:PCT, got '%s'\n",
                             spec.c_str());
                return 1;
            }
            gate_counter = spec.substr(0, colon);
            gate_pct = std::strtod(spec.c_str() + colon + 1, nullptr);
            if (gate_pct < 0.0 || gate_pct >= 100.0) {
                std::fprintf(stderr, "bench_summary: --gate percent "
                             "must be in [0, 100), got %.3f\n",
                             gate_pct);
                return 1;
            }
            continue;
        }
        if (arg.rfind("--counter=", 0) == 0) {
            // Comma-separated list; the flag may also repeat.
            std::string names = arg.substr(10);
            size_t start = 0;
            while (start <= names.size()) {
                const size_t comma = names.find(',', start);
                const size_t end =
                    comma == std::string::npos ? names.size() : comma;
                if (end > start)
                    counter_names.push_back(
                        names.substr(start, end - start));
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else {
            dir = arg;
        }
    }

    // The gate counter is also a display column (and shares the
    // nobody-carries-it typo check below).
    size_t gate_index = counter_names.size();
    if (!gate_counter.empty()) {
        const auto it = std::find(counter_names.begin(),
                                  counter_names.end(), gate_counter);
        gate_index = static_cast<size_t>(it - counter_names.begin());
        if (it == counter_names.end())
            counter_names.push_back(gate_counter);
    }

    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 + 6 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            files.push_back(entry.path());
        }
    }
    if (ec) {
        std::fprintf(stderr, "bench_summary: cannot scan '%s': %s\n",
                     dir.c_str(), ec.message().c_str());
        return 1;
    }
    if (files.empty()) {
        std::printf("no BENCH_*.json records under '%s'\n", dir.c_str());
        return 0;
    }
    std::sort(files.begin(), files.end());

    std::vector<Run> runs;
    bool ok = true;
    for (const fs::path &path : files)
        ok = collectFile(path, counter_names, &runs) && ok;

    // A counter name no record carries is almost certainly a typo (or
    // a renamed counter); a silent column of "-" would read as "the
    // counter never moved". Fail loudly instead.
    for (size_t c = 0; c < counter_names.size(); ++c) {
        bool found = false;
        for (const Run &run : runs)
            found = found || run.counterValues[c] != "-";
        if (!found && !runs.empty()) {
            std::fprintf(stderr,
                         "bench_summary: counter '%s' appears in none "
                         "of the %zu runs under '%s' (misspelled or "
                         "renamed?)\n",
                         counter_names[c].c_str(), runs.size(),
                         dir.c_str());
            ok = false;
        }
    }

    // Trajectory order: per bench, oldest first (the UTC stamps are
    // ISO-8601, so lexicographic is chronological).
    std::stable_sort(runs.begin(), runs.end(),
                     [](const Run &a, const Run &b) {
        return a.bench != b.bench ? a.bench < b.bench : a.utc < b.utc;
    });

    wsp::Table table("Bench trajectory (" + std::to_string(runs.size()) +
                     " runs)");
    std::vector<std::string> header = {"bench",    "utc",  "host",
                                       "wall (s)", "seed", "counters"};
    for (const std::string &name : counter_names)
        header.push_back(name);
    table.setHeader(header);
    for (const Run &run : runs) {
        std::vector<std::string> row = {
            run.bench, run.utc, run.host,
            wsp::formatDouble(run.wallSeconds, 3), run.seed,
            std::to_string(run.counters)};
        for (const std::string &value : run.counterValues)
            row.push_back(value);
        table.addRow(row);
    }
    table.print();

    // Regression gate: per bench, newest vs previous record of the
    // gated counter (runs are already bench-then-UTC ordered).
    if (!gate_counter.empty()) {
        size_t gated_benches = 0;
        for (size_t i = 0; i < runs.size();) {
            size_t j = i;
            std::vector<double> values;
            while (j < runs.size() && runs[j].bench == runs[i].bench) {
                const double v = runs[j].numericValues[gate_index];
                if (!std::isnan(v))
                    values.push_back(v);
                ++j;
            }
            if (values.size() >= 2) {
                ++gated_benches;
                const double previous = values[values.size() - 2];
                const double newest = values.back();
                const double floor =
                    previous * (1.0 - gate_pct / 100.0);
                if (newest < floor) {
                    std::fprintf(
                        stderr,
                        "bench_summary: GATE FAIL: %s '%s' fell %.2f%% "
                        "(%s -> %s, allowed drop %.2f%%)\n",
                        runs[i].bench.c_str(), gate_counter.c_str(),
                        100.0 * (1.0 - newest / previous),
                        formatCounter(previous).c_str(),
                        formatCounter(newest).c_str(), gate_pct);
                    ok = false;
                } else {
                    std::printf("gate: %s '%s' %s -> %s (within "
                                "%.2f%%)\n",
                                runs[i].bench.c_str(),
                                gate_counter.c_str(),
                                formatCounter(previous).c_str(),
                                formatCounter(newest).c_str(),
                                gate_pct);
                }
            }
            i = j;
        }
        if (gated_benches == 0)
            std::printf("gate: fewer than two records carry '%s'; "
                        "nothing to compare, pass\n",
                        gate_counter.c_str());
    }
    return ok ? 0 : 1;
}
