/**
 * @file
 * Crash-point sweep driver.
 *
 * Enumerates every distinguishable power-failure instant of the
 * standard crash scenario, proves recovery at each one, optionally
 * fuzzes beyond the enumerable points and sweeps the pheap
 * disciplines. With --broken-marker the deliberately broken
 * marker-before-flush save order is used instead; the sweep is then
 * expected to catch it, minimize the failing schedule, and (with
 * --replay-out) write a replay file for tools/crash_replay.
 *
 * Exit codes: 0 = every invariant held, 3 = violations found,
 * 1 = bad usage or internal error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "crashsim/crash_explorer.h"
#include "crashsim/pheap_crash.h"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: crash_sweep [options]\n"
        "  --broken-marker     use the marker-before-flush save order\n"
        "  --fuzz=N            add N fuzzed random schedules\n"
        "  --points=N          cap enumerated crash points (default 160)\n"
        "  --pheap             also sweep the pheap disciplines\n"
        "  --pheap-txns=N      transactions per pheap sweep (default 6)\n"
        "  --replay-out=PATH   write the minimized failing schedule\n"
        "  --image-out=PATH    write the surviving NVRAM image of the\n"
        "                      first failing schedule (or of the base\n"
        "                      schedule when everything held); the\n"
        "                      file is decodable by tools/wsp_inspect\n"
        "  --no-black-box      disable the NVRAM flight recorder\n"
        "  --salvage           register KV salvage regions + recovery\n"
        "  --media-faults=N    inject N silent flash faults per run\n"
        "  --media-fault-seed=N  seed of the fault placement\n"
        "  --media-fault-kind=K  0=bit-flip 1=bad-block 2=torn-write\n"
        "  --degrade-tier=K    force degraded saves cut at tier K\n"
        "  --drop-save-cmds=N  drop the next N NVDIMM commands\n"
        "  --trust-directory   planted bug: skip restore-side CRCs\n"
        "  --train-cycles=N    outage-train cycles per run (default 1)\n"
        "  --no-incremental    force full saves (delta engine off)\n"
        "  --lazy-restore      lazy page-in restores on boot\n"
        "  --condition=NAME    correctness condition to enforce:\n"
        "                      all (default), durable-lin, buffered,\n"
        "                      detectable\n"
        "  --ack-delay-us=N    respond N microseconds after each op\n"
        "                      applies (must stay below op spacing)\n"
        "  --ack-before-apply  planted bug: acknowledge each op before\n"
        "                      its mutation runs (violates durable\n"
        "                      linearizability; buffered forgives it)\n"
        "  --ops=N             operations in the KV workload\n"
        "  --fail-delay-us=N   AC failure N microseconds into the run\n"
        "  --incremental-equivalence  also compare full-vs-delta flash\n"
        "                      images at every enumerated window\n"
        "  --seed=N            base RNG seed\n"
        "  --stop-on-first     stop the sweep at the first violation\n");
}

bool
parseUint(const char *text, uint64_t *out)
{
    char *end = nullptr;
    *out = std::strtoull(text, &end, 0);
    return end != nullptr && *end == '\0' && end != text;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wsp::crashsim;

    CrashSchedule base;
    uint64_t fuzz_runs = 0;
    uint64_t max_points = 160;
    uint64_t pheap_txns = 6;
    bool sweep_pheap = false;
    bool stop_on_first = false;
    bool equivalence = false;
    std::string replay_out;
    std::string image_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--broken-marker") {
            base.saveOrder = wsp::SaveOrder::MarkerBeforeFlush;
        } else if (arg.rfind("--fuzz=", 0) == 0) {
            if (!parseUint(arg.c_str() + 7, &fuzz_runs)) {
                usage();
                return 1;
            }
        } else if (arg.rfind("--points=", 0) == 0) {
            if (!parseUint(arg.c_str() + 9, &max_points) ||
                max_points == 0) {
                usage();
                return 1;
            }
        } else if (arg == "--pheap") {
            sweep_pheap = true;
        } else if (arg.rfind("--pheap-txns=", 0) == 0) {
            if (!parseUint(arg.c_str() + 13, &pheap_txns)) {
                usage();
                return 1;
            }
        } else if (arg.rfind("--replay-out=", 0) == 0) {
            replay_out = arg.substr(13);
        } else if (arg.rfind("--image-out=", 0) == 0) {
            image_out = arg.substr(12);
        } else if (arg == "--no-black-box") {
            base.blackBox = false;
        } else if (arg == "--salvage") {
            base.salvage = true;
        } else if (arg.rfind("--media-faults=", 0) == 0) {
            uint64_t n = 0;
            if (!parseUint(arg.c_str() + 15, &n)) {
                usage();
                return 1;
            }
            base.mediaFaults = static_cast<unsigned>(n);
        } else if (arg.rfind("--media-fault-seed=", 0) == 0) {
            if (!parseUint(arg.c_str() + 19, &base.mediaFaultSeed)) {
                usage();
                return 1;
            }
        } else if (arg.rfind("--media-fault-kind=", 0) == 0) {
            uint64_t kind = 0;
            if (!parseUint(arg.c_str() + 19, &kind) || kind > 2) {
                usage();
                return 1;
            }
            base.mediaFaultKind = static_cast<int>(kind);
        } else if (arg.rfind("--degrade-tier=", 0) == 0) {
            uint64_t tier = 0;
            if (!parseUint(arg.c_str() + 15, &tier) || tier > 1) {
                usage();
                return 1;
            }
            base.degradeTier = static_cast<int>(tier);
        } else if (arg.rfind("--drop-save-cmds=", 0) == 0) {
            uint64_t n = 0;
            if (!parseUint(arg.c_str() + 17, &n)) {
                usage();
                return 1;
            }
            base.dropSaveCommands = static_cast<unsigned>(n);
        } else if (arg == "--trust-directory") {
            base.trustDirectory = true;
        } else if (arg.rfind("--train-cycles=", 0) == 0) {
            uint64_t n = 0;
            if (!parseUint(arg.c_str() + 15, &n) || n == 0) {
                usage();
                return 1;
            }
            base.trainCycles = static_cast<unsigned>(n);
        } else if (arg == "--no-incremental") {
            base.incrementalSave = false;
        } else if (arg == "--lazy-restore") {
            base.lazyRestore = true;
        } else if (arg.rfind("--condition=", 0) == 0) {
            const auto mode = conditionModeFromName(arg.substr(12));
            if (!mode) {
                usage();
                return 1;
            }
            base.condition = *mode;
        } else if (arg.rfind("--ack-delay-us=", 0) == 0) {
            uint64_t us = 0;
            if (!parseUint(arg.c_str() + 15, &us)) {
                usage();
                return 1;
            }
            base.ackDelay = wsp::fromMicros(static_cast<double>(us));
        } else if (arg == "--ack-before-apply") {
            base.ackBeforeApply = true;
        } else if (arg.rfind("--ops=", 0) == 0) {
            uint64_t n = 0;
            if (!parseUint(arg.c_str() + 6, &n) || n == 0) {
                usage();
                return 1;
            }
            base.ops = static_cast<unsigned>(n);
        } else if (arg.rfind("--fail-delay-us=", 0) == 0) {
            uint64_t us = 0;
            if (!parseUint(arg.c_str() + 16, &us)) {
                usage();
                return 1;
            }
            base.failDelay = wsp::fromMicros(static_cast<double>(us));
        } else if (arg == "--incremental-equivalence") {
            equivalence = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseUint(arg.c_str() + 7, &base.seed)) {
                usage();
                return 1;
            }
        } else if (arg == "--stop-on-first") {
            stop_on_first = true;
        } else {
            usage();
            return 1;
        }
    }

    if (base.ackDelay >= base.opSpacing) {
        std::fprintf(stderr,
                     "--ack-delay-us must stay below the op spacing "
                     "(%.0f us)\n",
                     wsp::toMicros(base.opSpacing));
        return 1;
    }

    CrashExplorer explorer(base);
    bool violated = false;

    SweepReport sweep = explorer.sweepEnumerated(
        stop_on_first, static_cast<size_t>(max_points));
    std::printf("enumerated sweep: %zu points, %zu WSP recoveries, "
                "%zu fallbacks, %zu failing\n",
                sweep.points, sweep.wspRecoveries, sweep.fallbacks,
                sweep.failures.size());
    for (const CrashPointResult &failure : sweep.failures) {
        std::printf("  FAIL %s\n", failure.schedule.summary().c_str());
        for (const std::string &violation : failure.violations)
            std::printf("       %s\n", violation.c_str());
        if (!failure.timeline.empty()) {
            std::printf("       black-box timeline:\n");
            for (const std::string &line : failure.timeline)
                std::printf("         %s\n", line.c_str());
        }
    }
    violated |= !sweep.allHeld();

    if (fuzz_runs > 0 && !(violated && stop_on_first)) {
        SweepReport fuzzed = explorer.fuzz(
            static_cast<unsigned>(fuzz_runs), base.seed ^ 0xf0f0ull);
        std::printf("fuzz: %zu runs, %zu WSP recoveries, %zu "
                    "fallbacks, %zu failing\n",
                    fuzzed.points, fuzzed.wspRecoveries,
                    fuzzed.fallbacks, fuzzed.failures.size());
        for (CrashPointResult &failure : fuzzed.failures) {
            std::printf("  FAIL %s\n",
                        failure.schedule.summary().c_str());
            if (!failure.timeline.empty()) {
                std::printf("       black-box timeline:\n");
                for (const std::string &line : failure.timeline)
                    std::printf("         %s\n", line.c_str());
            }
            sweep.failures.push_back(std::move(failure));
        }
        violated |= !fuzzed.allHeld();
    }

    if (equivalence && !(violated && stop_on_first)) {
        CrashExplorer::EquivalenceReport eq =
            explorer.incrementalEquivalenceSweep(
                static_cast<size_t>(max_points));
        std::printf("incremental equivalence: %zu windows, %zu with "
                    "both images complete, %zu mismatching\n",
                    eq.points, eq.bothComplete,
                    eq.mismatchWindows.size());
        for (wsp::Tick window : eq.mismatchWindows)
            std::printf("  FAIL full-vs-delta images differ at "
                        "window %.3f ms\n", wsp::toMillis(window));
        violated |= !eq.allEqual();
    }

    if (sweep_pheap && !(violated && stop_on_first)) {
        const std::string scratch = "/tmp";
        for (PheapDiscipline discipline : allPheapDisciplines()) {
            PheapSweepReport report = sweepPheapCrashPoints(
                discipline, base.seed,
                static_cast<int>(pheap_txns), scratch);
            std::printf("pheap %s: %zu crash points, %zu recoveries, "
                        "%zu violations\n",
                        pheapDisciplineName(discipline),
                        report.crashPoints, report.recoveries,
                        report.violations.size());
            for (const std::string &violation : report.violations)
                std::printf("  FAIL %s\n", violation.c_str());
            violated |= !report.allHeld();
        }
    }

    if (!image_out.empty()) {
        // Deterministic re-run of the most interesting schedule, with
        // the surviving image lifted out for offline forensics.
        CrashSchedule to_capture =
            sweep.failures.empty() ? base
                                   : sweep.failures.front().schedule;
        wsp::NvramImage image;
        CrashExplorer::runSchedule(to_capture, &image);
        if (!image.writeFile(image_out)) {
            std::fprintf(stderr, "cannot write image to '%s'\n",
                         image_out.c_str());
            return 1;
        }
        std::printf("nvram image: %s\n  %s\n", image_out.c_str(),
                    to_capture.summary().c_str());
    }

    if (!violated) {
        std::printf("all invariants held\n");
        return 0;
    }

    if (!sweep.failures.empty() && !replay_out.empty()) {
        std::printf("minimizing first failing schedule...\n");
        const CrashSchedule minimized =
            CrashExplorer::minimize(sweep.failures.front().schedule);
        if (!minimized.writeFile(replay_out))
            return 1;
        std::printf("replay file: %s\n  %s\n", replay_out.c_str(),
                    minimized.summary().c_str());
    }
    return 3;
}
