file(REMOVE_RECURSE
  "libwsp_machine.a"
)
