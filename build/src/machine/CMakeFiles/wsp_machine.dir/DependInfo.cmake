
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache.cc" "src/machine/CMakeFiles/wsp_machine.dir/cache.cc.o" "gcc" "src/machine/CMakeFiles/wsp_machine.dir/cache.cc.o.d"
  "/root/repo/src/machine/cpu_context.cc" "src/machine/CMakeFiles/wsp_machine.dir/cpu_context.cc.o" "gcc" "src/machine/CMakeFiles/wsp_machine.dir/cpu_context.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/machine/CMakeFiles/wsp_machine.dir/machine.cc.o" "gcc" "src/machine/CMakeFiles/wsp_machine.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvram/CMakeFiles/wsp_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
