file(REMOVE_RECURSE
  "CMakeFiles/wsp_machine.dir/cache.cc.o"
  "CMakeFiles/wsp_machine.dir/cache.cc.o.d"
  "CMakeFiles/wsp_machine.dir/cpu_context.cc.o"
  "CMakeFiles/wsp_machine.dir/cpu_context.cc.o.d"
  "CMakeFiles/wsp_machine.dir/machine.cc.o"
  "CMakeFiles/wsp_machine.dir/machine.cc.o.d"
  "libwsp_machine.a"
  "libwsp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
