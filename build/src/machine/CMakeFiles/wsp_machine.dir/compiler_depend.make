# Empty compiler generated dependencies file for wsp_machine.
# This may be replaced when dependencies are built.
