# Empty compiler generated dependencies file for wsp_core.
# This may be replaced when dependencies are built.
