file(REMOVE_RECURSE
  "libwsp_core.a"
)
