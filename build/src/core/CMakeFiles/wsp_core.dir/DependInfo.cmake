
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/restore_routine.cc" "src/core/CMakeFiles/wsp_core.dir/restore_routine.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/restore_routine.cc.o.d"
  "/root/repo/src/core/resume_block.cc" "src/core/CMakeFiles/wsp_core.dir/resume_block.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/resume_block.cc.o.d"
  "/root/repo/src/core/save_routine.cc" "src/core/CMakeFiles/wsp_core.dir/save_routine.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/save_routine.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/wsp_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/system.cc.o.d"
  "/root/repo/src/core/valid_marker.cc" "src/core/CMakeFiles/wsp_core.dir/valid_marker.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/valid_marker.cc.o.d"
  "/root/repo/src/core/wsp_controller.cc" "src/core/CMakeFiles/wsp_core.dir/wsp_controller.cc.o" "gcc" "src/core/CMakeFiles/wsp_core.dir/wsp_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/wsp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/wsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/wsp_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
