file(REMOVE_RECURSE
  "CMakeFiles/wsp_core.dir/restore_routine.cc.o"
  "CMakeFiles/wsp_core.dir/restore_routine.cc.o.d"
  "CMakeFiles/wsp_core.dir/resume_block.cc.o"
  "CMakeFiles/wsp_core.dir/resume_block.cc.o.d"
  "CMakeFiles/wsp_core.dir/save_routine.cc.o"
  "CMakeFiles/wsp_core.dir/save_routine.cc.o.d"
  "CMakeFiles/wsp_core.dir/system.cc.o"
  "CMakeFiles/wsp_core.dir/system.cc.o.d"
  "CMakeFiles/wsp_core.dir/valid_marker.cc.o"
  "CMakeFiles/wsp_core.dir/valid_marker.cc.o.d"
  "CMakeFiles/wsp_core.dir/wsp_controller.cc.o"
  "CMakeFiles/wsp_core.dir/wsp_controller.cc.o.d"
  "libwsp_core.a"
  "libwsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
