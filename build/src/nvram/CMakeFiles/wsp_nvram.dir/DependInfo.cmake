
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvram/controller.cc" "src/nvram/CMakeFiles/wsp_nvram.dir/controller.cc.o" "gcc" "src/nvram/CMakeFiles/wsp_nvram.dir/controller.cc.o.d"
  "/root/repo/src/nvram/nvdimm.cc" "src/nvram/CMakeFiles/wsp_nvram.dir/nvdimm.cc.o" "gcc" "src/nvram/CMakeFiles/wsp_nvram.dir/nvdimm.cc.o.d"
  "/root/repo/src/nvram/nvram_space.cc" "src/nvram/CMakeFiles/wsp_nvram.dir/nvram_space.cc.o" "gcc" "src/nvram/CMakeFiles/wsp_nvram.dir/nvram_space.cc.o.d"
  "/root/repo/src/nvram/sparse_memory.cc" "src/nvram/CMakeFiles/wsp_nvram.dir/sparse_memory.cc.o" "gcc" "src/nvram/CMakeFiles/wsp_nvram.dir/sparse_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
