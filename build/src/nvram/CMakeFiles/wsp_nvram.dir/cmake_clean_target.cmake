file(REMOVE_RECURSE
  "libwsp_nvram.a"
)
