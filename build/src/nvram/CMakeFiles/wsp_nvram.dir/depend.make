# Empty dependencies file for wsp_nvram.
# This may be replaced when dependencies are built.
