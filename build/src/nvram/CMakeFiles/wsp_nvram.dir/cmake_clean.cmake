file(REMOVE_RECURSE
  "CMakeFiles/wsp_nvram.dir/controller.cc.o"
  "CMakeFiles/wsp_nvram.dir/controller.cc.o.d"
  "CMakeFiles/wsp_nvram.dir/nvdimm.cc.o"
  "CMakeFiles/wsp_nvram.dir/nvdimm.cc.o.d"
  "CMakeFiles/wsp_nvram.dir/nvram_space.cc.o"
  "CMakeFiles/wsp_nvram.dir/nvram_space.cc.o.d"
  "CMakeFiles/wsp_nvram.dir/sparse_memory.cc.o"
  "CMakeFiles/wsp_nvram.dir/sparse_memory.cc.o.d"
  "libwsp_nvram.a"
  "libwsp_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
