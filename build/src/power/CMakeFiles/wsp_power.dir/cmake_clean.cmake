file(REMOVE_RECURSE
  "CMakeFiles/wsp_power.dir/load_model.cc.o"
  "CMakeFiles/wsp_power.dir/load_model.cc.o.d"
  "CMakeFiles/wsp_power.dir/power_monitor.cc.o"
  "CMakeFiles/wsp_power.dir/power_monitor.cc.o.d"
  "CMakeFiles/wsp_power.dir/psu.cc.o"
  "CMakeFiles/wsp_power.dir/psu.cc.o.d"
  "CMakeFiles/wsp_power.dir/signal_tracer.cc.o"
  "CMakeFiles/wsp_power.dir/signal_tracer.cc.o.d"
  "CMakeFiles/wsp_power.dir/ultracapacitor.cc.o"
  "CMakeFiles/wsp_power.dir/ultracapacitor.cc.o.d"
  "libwsp_power.a"
  "libwsp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
