file(REMOVE_RECURSE
  "libwsp_power.a"
)
