# Empty dependencies file for wsp_power.
# This may be replaced when dependencies are built.
