# Empty compiler generated dependencies file for wsp_power.
# This may be replaced when dependencies are built.
