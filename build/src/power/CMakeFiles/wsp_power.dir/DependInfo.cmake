
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/load_model.cc" "src/power/CMakeFiles/wsp_power.dir/load_model.cc.o" "gcc" "src/power/CMakeFiles/wsp_power.dir/load_model.cc.o.d"
  "/root/repo/src/power/power_monitor.cc" "src/power/CMakeFiles/wsp_power.dir/power_monitor.cc.o" "gcc" "src/power/CMakeFiles/wsp_power.dir/power_monitor.cc.o.d"
  "/root/repo/src/power/psu.cc" "src/power/CMakeFiles/wsp_power.dir/psu.cc.o" "gcc" "src/power/CMakeFiles/wsp_power.dir/psu.cc.o.d"
  "/root/repo/src/power/signal_tracer.cc" "src/power/CMakeFiles/wsp_power.dir/signal_tracer.cc.o" "gcc" "src/power/CMakeFiles/wsp_power.dir/signal_tracer.cc.o.d"
  "/root/repo/src/power/ultracapacitor.cc" "src/power/CMakeFiles/wsp_power.dir/ultracapacitor.cc.o" "gcc" "src/power/CMakeFiles/wsp_power.dir/ultracapacitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
