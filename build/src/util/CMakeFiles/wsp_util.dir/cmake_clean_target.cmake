file(REMOVE_RECURSE
  "libwsp_util.a"
)
