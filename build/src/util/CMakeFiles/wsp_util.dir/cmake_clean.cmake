file(REMOVE_RECURSE
  "CMakeFiles/wsp_util.dir/logging.cc.o"
  "CMakeFiles/wsp_util.dir/logging.cc.o.d"
  "CMakeFiles/wsp_util.dir/stats.cc.o"
  "CMakeFiles/wsp_util.dir/stats.cc.o.d"
  "CMakeFiles/wsp_util.dir/table.cc.o"
  "CMakeFiles/wsp_util.dir/table.cc.o.d"
  "CMakeFiles/wsp_util.dir/units.cc.o"
  "CMakeFiles/wsp_util.dir/units.cc.o.d"
  "libwsp_util.a"
  "libwsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
