# Empty dependencies file for wsp_util.
# This may be replaced when dependencies are built.
