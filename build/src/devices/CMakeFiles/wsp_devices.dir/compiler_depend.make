# Empty compiler generated dependencies file for wsp_devices.
# This may be replaced when dependencies are built.
