
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/device.cc" "src/devices/CMakeFiles/wsp_devices.dir/device.cc.o" "gcc" "src/devices/CMakeFiles/wsp_devices.dir/device.cc.o.d"
  "/root/repo/src/devices/device_manager.cc" "src/devices/CMakeFiles/wsp_devices.dir/device_manager.cc.o" "gcc" "src/devices/CMakeFiles/wsp_devices.dir/device_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
