file(REMOVE_RECURSE
  "CMakeFiles/wsp_devices.dir/device.cc.o"
  "CMakeFiles/wsp_devices.dir/device.cc.o.d"
  "CMakeFiles/wsp_devices.dir/device_manager.cc.o"
  "CMakeFiles/wsp_devices.dir/device_manager.cc.o.d"
  "libwsp_devices.a"
  "libwsp_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
