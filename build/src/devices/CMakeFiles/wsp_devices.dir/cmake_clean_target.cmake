file(REMOVE_RECURSE
  "libwsp_devices.a"
)
