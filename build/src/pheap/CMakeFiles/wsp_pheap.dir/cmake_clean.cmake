file(REMOVE_RECURSE
  "CMakeFiles/wsp_pheap.dir/flush.cc.o"
  "CMakeFiles/wsp_pheap.dir/flush.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/heap.cc.o"
  "CMakeFiles/wsp_pheap.dir/heap.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/redo_log.cc.o"
  "CMakeFiles/wsp_pheap.dir/redo_log.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/region.cc.o"
  "CMakeFiles/wsp_pheap.dir/region.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/stm.cc.o"
  "CMakeFiles/wsp_pheap.dir/stm.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/tornbit_log.cc.o"
  "CMakeFiles/wsp_pheap.dir/tornbit_log.cc.o.d"
  "CMakeFiles/wsp_pheap.dir/undo_log.cc.o"
  "CMakeFiles/wsp_pheap.dir/undo_log.cc.o.d"
  "libwsp_pheap.a"
  "libwsp_pheap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_pheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
