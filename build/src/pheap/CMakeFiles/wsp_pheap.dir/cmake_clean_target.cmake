file(REMOVE_RECURSE
  "libwsp_pheap.a"
)
