
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pheap/flush.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/flush.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/flush.cc.o.d"
  "/root/repo/src/pheap/heap.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/heap.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/heap.cc.o.d"
  "/root/repo/src/pheap/redo_log.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/redo_log.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/redo_log.cc.o.d"
  "/root/repo/src/pheap/region.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/region.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/region.cc.o.d"
  "/root/repo/src/pheap/stm.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/stm.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/stm.cc.o.d"
  "/root/repo/src/pheap/tornbit_log.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/tornbit_log.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/tornbit_log.cc.o.d"
  "/root/repo/src/pheap/undo_log.cc" "src/pheap/CMakeFiles/wsp_pheap.dir/undo_log.cc.o" "gcc" "src/pheap/CMakeFiles/wsp_pheap.dir/undo_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
