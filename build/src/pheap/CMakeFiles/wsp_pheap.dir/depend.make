# Empty dependencies file for wsp_pheap.
# This may be replaced when dependencies are built.
