# Empty dependencies file for wsp_sim.
# This may be replaced when dependencies are built.
