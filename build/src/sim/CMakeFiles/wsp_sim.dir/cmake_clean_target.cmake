file(REMOVE_RECURSE
  "libwsp_sim.a"
)
