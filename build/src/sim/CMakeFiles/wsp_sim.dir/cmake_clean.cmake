file(REMOVE_RECURSE
  "CMakeFiles/wsp_sim.dir/event_queue.cc.o"
  "CMakeFiles/wsp_sim.dir/event_queue.cc.o.d"
  "libwsp_sim.a"
  "libwsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
