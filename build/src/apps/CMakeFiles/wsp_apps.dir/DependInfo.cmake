
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/backend_store.cc" "src/apps/CMakeFiles/wsp_apps.dir/backend_store.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/backend_store.cc.o.d"
  "/root/repo/src/apps/checkpoint.cc" "src/apps/CMakeFiles/wsp_apps.dir/checkpoint.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/checkpoint.cc.o.d"
  "/root/repo/src/apps/cluster.cc" "src/apps/CMakeFiles/wsp_apps.dir/cluster.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/cluster.cc.o.d"
  "/root/repo/src/apps/directory_server.cc" "src/apps/CMakeFiles/wsp_apps.dir/directory_server.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/directory_server.cc.o.d"
  "/root/repo/src/apps/kv_store.cc" "src/apps/CMakeFiles/wsp_apps.dir/kv_store.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/kv_store.cc.o.d"
  "/root/repo/src/apps/ldap_protocol.cc" "src/apps/CMakeFiles/wsp_apps.dir/ldap_protocol.cc.o" "gcc" "src/apps/CMakeFiles/wsp_apps.dir/ldap_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/wsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/wsp_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/pheap/CMakeFiles/wsp_pheap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
