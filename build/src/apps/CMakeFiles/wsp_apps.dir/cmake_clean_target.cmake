file(REMOVE_RECURSE
  "libwsp_apps.a"
)
