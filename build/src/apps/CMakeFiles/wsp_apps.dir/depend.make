# Empty dependencies file for wsp_apps.
# This may be replaced when dependencies are built.
