file(REMOVE_RECURSE
  "CMakeFiles/wsp_apps.dir/backend_store.cc.o"
  "CMakeFiles/wsp_apps.dir/backend_store.cc.o.d"
  "CMakeFiles/wsp_apps.dir/checkpoint.cc.o"
  "CMakeFiles/wsp_apps.dir/checkpoint.cc.o.d"
  "CMakeFiles/wsp_apps.dir/cluster.cc.o"
  "CMakeFiles/wsp_apps.dir/cluster.cc.o.d"
  "CMakeFiles/wsp_apps.dir/directory_server.cc.o"
  "CMakeFiles/wsp_apps.dir/directory_server.cc.o.d"
  "CMakeFiles/wsp_apps.dir/kv_store.cc.o"
  "CMakeFiles/wsp_apps.dir/kv_store.cc.o.d"
  "CMakeFiles/wsp_apps.dir/ldap_protocol.cc.o"
  "CMakeFiles/wsp_apps.dir/ldap_protocol.cc.o.d"
  "libwsp_apps.a"
  "libwsp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
