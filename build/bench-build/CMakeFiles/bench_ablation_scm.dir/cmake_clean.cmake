file(REMOVE_RECURSE
  "../bench/ablation_scm"
  "../bench/ablation_scm.pdb"
  "CMakeFiles/bench_ablation_scm.dir/ablation_scm.cc.o"
  "CMakeFiles/bench_ablation_scm.dir/ablation_scm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
