# Empty dependencies file for bench_ablation_scm.
# This may be replaced when dependencies are built.
