# Empty compiler generated dependencies file for bench_table2_flush_instr.
# This may be replaced when dependencies are built.
