file(REMOVE_RECURSE
  "../bench/table2_flush_instr"
  "../bench/table2_flush_instr.pdb"
  "CMakeFiles/bench_table2_flush_instr.dir/table2_flush_instr.cc.o"
  "CMakeFiles/bench_table2_flush_instr.dir/table2_flush_instr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_flush_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
