file(REMOVE_RECURSE
  "../bench/fig9_device_save"
  "../bench/fig9_device_save.pdb"
  "CMakeFiles/bench_fig9_device_save.dir/fig9_device_save.cc.o"
  "CMakeFiles/bench_fig9_device_save.dir/fig9_device_save.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_device_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
