# Empty dependencies file for bench_fig9_device_save.
# This may be replaced when dependencies are built.
