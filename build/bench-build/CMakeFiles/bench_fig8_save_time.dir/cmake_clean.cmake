file(REMOVE_RECURSE
  "../bench/fig8_save_time"
  "../bench/fig8_save_time.pdb"
  "CMakeFiles/bench_fig8_save_time.dir/fig8_save_time.cc.o"
  "CMakeFiles/bench_fig8_save_time.dir/fig8_save_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_save_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
