# Empty dependencies file for bench_fig8_save_time.
# This may be replaced when dependencies are built.
