file(REMOVE_RECURSE
  "../bench/fig2_nvdimm_save"
  "../bench/fig2_nvdimm_save.pdb"
  "CMakeFiles/bench_fig2_nvdimm_save.dir/fig2_nvdimm_save.cc.o"
  "CMakeFiles/bench_fig2_nvdimm_save.dir/fig2_nvdimm_save.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nvdimm_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
