# Empty dependencies file for bench_fig2_nvdimm_save.
# This may be replaced when dependencies are built.
