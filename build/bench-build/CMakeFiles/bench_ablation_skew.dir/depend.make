# Empty dependencies file for bench_ablation_skew.
# This may be replaced when dependencies are built.
