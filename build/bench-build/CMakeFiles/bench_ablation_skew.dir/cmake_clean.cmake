file(REMOVE_RECURSE
  "../bench/ablation_skew"
  "../bench/ablation_skew.pdb"
  "CMakeFiles/bench_ablation_skew.dir/ablation_skew.cc.o"
  "CMakeFiles/bench_ablation_skew.dir/ablation_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
