# Empty dependencies file for bench_fig5_hashtable.
# This may be replaced when dependencies are built.
