file(REMOVE_RECURSE
  "../bench/fig5_hashtable"
  "../bench/fig5_hashtable.pdb"
  "CMakeFiles/bench_fig5_hashtable.dir/fig5_hashtable.cc.o"
  "CMakeFiles/bench_fig5_hashtable.dir/fig5_hashtable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
