file(REMOVE_RECURSE
  "../bench/fig7_residual_windows"
  "../bench/fig7_residual_windows.pdb"
  "CMakeFiles/bench_fig7_residual_windows.dir/fig7_residual_windows.cc.o"
  "CMakeFiles/bench_fig7_residual_windows.dir/fig7_residual_windows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_residual_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
