file(REMOVE_RECURSE
  "../bench/ablation_flush_instr"
  "../bench/ablation_flush_instr.pdb"
  "CMakeFiles/bench_ablation_flush_instr.dir/ablation_flush_instr.cc.o"
  "CMakeFiles/bench_ablation_flush_instr.dir/ablation_flush_instr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flush_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
