# Empty dependencies file for bench_ablation_flush_instr.
# This may be replaced when dependencies are built.
