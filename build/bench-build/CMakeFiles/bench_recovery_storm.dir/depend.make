# Empty dependencies file for bench_recovery_storm.
# This may be replaced when dependencies are built.
