file(REMOVE_RECURSE
  "../bench/recovery_storm"
  "../bench/recovery_storm.pdb"
  "CMakeFiles/bench_recovery_storm.dir/recovery_storm.cc.o"
  "CMakeFiles/bench_recovery_storm.dir/recovery_storm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
