
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench_primitives.cc" "bench-build/CMakeFiles/microbench_primitives.dir/microbench_primitives.cc.o" "gcc" "bench-build/CMakeFiles/microbench_primitives.dir/microbench_primitives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/wsp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/pheap/CMakeFiles/wsp_pheap.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/wsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/wsp_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
