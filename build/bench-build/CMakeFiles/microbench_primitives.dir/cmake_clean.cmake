file(REMOVE_RECURSE
  "../bench/microbench_primitives"
  "../bench/microbench_primitives.pdb"
  "CMakeFiles/microbench_primitives.dir/microbench_primitives.cc.o"
  "CMakeFiles/microbench_primitives.dir/microbench_primitives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
