# Empty compiler generated dependencies file for microbench_primitives.
# This may be replaced when dependencies are built.
