file(REMOVE_RECURSE
  "../bench/ablation_devices"
  "../bench/ablation_devices.pdb"
  "CMakeFiles/bench_ablation_devices.dir/ablation_devices.cc.o"
  "CMakeFiles/bench_ablation_devices.dir/ablation_devices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
