file(REMOVE_RECURSE
  "../bench/fig6_residual_trace"
  "../bench/fig6_residual_trace.pdb"
  "CMakeFiles/bench_fig6_residual_trace.dir/fig6_residual_trace.cc.o"
  "CMakeFiles/bench_fig6_residual_trace.dir/fig6_residual_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_residual_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
