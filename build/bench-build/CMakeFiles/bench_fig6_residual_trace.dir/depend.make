# Empty dependencies file for bench_fig6_residual_trace.
# This may be replaced when dependencies are built.
