file(REMOVE_RECURSE
  "../bench/table1_openldap"
  "../bench/table1_openldap.pdb"
  "CMakeFiles/bench_table1_openldap.dir/table1_openldap.cc.o"
  "CMakeFiles/bench_table1_openldap.dir/table1_openldap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_openldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
