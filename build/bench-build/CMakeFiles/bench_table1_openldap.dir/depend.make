# Empty dependencies file for bench_table1_openldap.
# This may be replaced when dependencies are built.
