file(REMOVE_RECURSE
  "../bench/fig1_ultracap_aging"
  "../bench/fig1_ultracap_aging.pdb"
  "CMakeFiles/bench_fig1_ultracap_aging.dir/fig1_ultracap_aging.cc.o"
  "CMakeFiles/bench_fig1_ultracap_aging.dir/fig1_ultracap_aging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ultracap_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
