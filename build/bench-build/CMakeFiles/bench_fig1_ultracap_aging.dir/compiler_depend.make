# Empty compiler generated dependencies file for bench_fig1_ultracap_aging.
# This may be replaced when dependencies are built.
