# Empty dependencies file for bench_ablation_restore_mode.
# This may be replaced when dependencies are built.
