file(REMOVE_RECURSE
  "../bench/ablation_restore_mode"
  "../bench/ablation_restore_mode.pdb"
  "CMakeFiles/bench_ablation_restore_mode.dir/ablation_restore_mode.cc.o"
  "CMakeFiles/bench_ablation_restore_mode.dir/ablation_restore_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restore_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
