file(REMOVE_RECURSE
  "CMakeFiles/test_nvram.dir/nvram_test.cc.o"
  "CMakeFiles/test_nvram.dir/nvram_test.cc.o.d"
  "test_nvram"
  "test_nvram.pdb"
  "test_nvram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
