# Empty compiler generated dependencies file for test_nvram.
# This may be replaced when dependencies are built.
