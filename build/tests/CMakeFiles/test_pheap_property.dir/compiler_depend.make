# Empty compiler generated dependencies file for test_pheap_property.
# This may be replaced when dependencies are built.
