file(REMOVE_RECURSE
  "CMakeFiles/test_pheap_property.dir/pheap_property_test.cc.o"
  "CMakeFiles/test_pheap_property.dir/pheap_property_test.cc.o.d"
  "test_pheap_property"
  "test_pheap_property.pdb"
  "test_pheap_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pheap_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
