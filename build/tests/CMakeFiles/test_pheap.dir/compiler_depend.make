# Empty compiler generated dependencies file for test_pheap.
# This may be replaced when dependencies are built.
