file(REMOVE_RECURSE
  "CMakeFiles/test_pheap.dir/pheap_test.cc.o"
  "CMakeFiles/test_pheap.dir/pheap_test.cc.o.d"
  "test_pheap"
  "test_pheap.pdb"
  "test_pheap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
