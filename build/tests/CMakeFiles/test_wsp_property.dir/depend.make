# Empty dependencies file for test_wsp_property.
# This may be replaced when dependencies are built.
