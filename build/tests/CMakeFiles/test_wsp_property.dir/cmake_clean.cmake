file(REMOVE_RECURSE
  "CMakeFiles/test_wsp_property.dir/wsp_property_test.cc.o"
  "CMakeFiles/test_wsp_property.dir/wsp_property_test.cc.o.d"
  "test_wsp_property"
  "test_wsp_property.pdb"
  "test_wsp_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
