# Empty dependencies file for test_devices.
# This may be replaced when dependencies are built.
