file(REMOVE_RECURSE
  "CMakeFiles/test_devices.dir/devices_test.cc.o"
  "CMakeFiles/test_devices.dir/devices_test.cc.o.d"
  "test_devices"
  "test_devices.pdb"
  "test_devices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
