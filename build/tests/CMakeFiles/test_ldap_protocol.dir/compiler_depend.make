# Empty compiler generated dependencies file for test_ldap_protocol.
# This may be replaced when dependencies are built.
