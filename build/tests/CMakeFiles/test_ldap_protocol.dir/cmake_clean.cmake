file(REMOVE_RECURSE
  "CMakeFiles/test_ldap_protocol.dir/ldap_protocol_test.cc.o"
  "CMakeFiles/test_ldap_protocol.dir/ldap_protocol_test.cc.o.d"
  "test_ldap_protocol"
  "test_ldap_protocol.pdb"
  "test_ldap_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldap_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
