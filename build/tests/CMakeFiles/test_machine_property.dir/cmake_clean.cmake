file(REMOVE_RECURSE
  "CMakeFiles/test_machine_property.dir/machine_property_test.cc.o"
  "CMakeFiles/test_machine_property.dir/machine_property_test.cc.o.d"
  "test_machine_property"
  "test_machine_property.pdb"
  "test_machine_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
