# Empty dependencies file for test_machine_property.
# This may be replaced when dependencies are built.
