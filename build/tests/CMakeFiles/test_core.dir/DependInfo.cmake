
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/test_core.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/wsp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/wsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/wsp_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
