# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_nvram[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_pheap[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_ldap_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_pheap_property[1]_include.cmake")
include("/root/repo/build/tests/test_wsp_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_machine_property[1]_include.cmake")
