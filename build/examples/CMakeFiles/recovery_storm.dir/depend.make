# Empty dependencies file for recovery_storm.
# This may be replaced when dependencies are built.
