file(REMOVE_RECURSE
  "CMakeFiles/recovery_storm.dir/recovery_storm.cpp.o"
  "CMakeFiles/recovery_storm.dir/recovery_storm.cpp.o.d"
  "recovery_storm"
  "recovery_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
