file(REMOVE_RECURSE
  "CMakeFiles/wspsim.dir/wspsim.cpp.o"
  "CMakeFiles/wspsim.dir/wspsim.cpp.o.d"
  "wspsim"
  "wspsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wspsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
