# Empty compiler generated dependencies file for wspsim.
# This may be replaced when dependencies are built.
