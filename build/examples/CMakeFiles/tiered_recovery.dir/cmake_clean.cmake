file(REMOVE_RECURSE
  "CMakeFiles/tiered_recovery.dir/tiered_recovery.cpp.o"
  "CMakeFiles/tiered_recovery.dir/tiered_recovery.cpp.o.d"
  "tiered_recovery"
  "tiered_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
