# Empty compiler generated dependencies file for tiered_recovery.
# This may be replaced when dependencies are built.
