file(REMOVE_RECURSE
  "CMakeFiles/device_policies.dir/device_policies.cpp.o"
  "CMakeFiles/device_policies.dir/device_policies.cpp.o.d"
  "device_policies"
  "device_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
