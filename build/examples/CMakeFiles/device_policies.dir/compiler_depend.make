# Empty compiler generated dependencies file for device_policies.
# This may be replaced when dependencies are built.
