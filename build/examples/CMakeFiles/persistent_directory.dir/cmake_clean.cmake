file(REMOVE_RECURSE
  "CMakeFiles/persistent_directory.dir/persistent_directory.cpp.o"
  "CMakeFiles/persistent_directory.dir/persistent_directory.cpp.o.d"
  "persistent_directory"
  "persistent_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
