# Empty compiler generated dependencies file for persistent_directory.
# This may be replaced when dependencies are built.
