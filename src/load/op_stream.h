/**
 * @file
 * Deterministic per-worker operation streams for the load generator.
 *
 * Each producer worker owns one OpStream seeded from
 * Rng(seed).stream(worker), so streams are order-independent: the
 * same (seed, worker) pair yields the same op sequence no matter how
 * many workers run or how the OS schedules them. That is what lets
 * the threaded plane be checked against a sequential replay of the
 * same streams (tests/load_test.cc).
 *
 * The generator itself is built for the hot loop: one raw 64-bit
 * draw per op, split into key bits and kind bits, compared against
 * integer thresholds — no doubles, no branmispredict-prone rejection
 * loops. Zipfian popularity uses a quantized inverse-CDF table built
 * once at construction (4096-way), so a skewed draw costs one extra
 * L1 load instead of the two std::pow calls the exact YCSB sampler
 * (apps::ZipfianSampler) pays per draw; the exact sampler remains
 * the reference and the table is validated against it in tests.
 *
 * Key-range modes:
 *  - disjoint (keyLo = 1 + worker * keyCount): each worker owns a
 *    private key range, so per-key op order is the worker's own
 *    stream order and threaded-vs-sequential equivalence is *exact*.
 *  - shared (same range for all workers): realistic contention; only
 *    aggregate op-mix totals are deterministic, not per-key history.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/kv_store.h"
#include "util/logging.h"
#include "util/rng.h"

namespace wsp::load {

/** Mix and popularity of one worker's stream. */
struct OpStreamConfig
{
    uint64_t keyLo = 1;        ///< first key (0 is reserved)
    uint64_t keyCount = 512;   ///< keys in [keyLo, keyLo + keyCount)
    uint32_t getPermille = 400;   ///< reads per 1000 ops
    uint32_t erasePermille = 100; ///< erases per 1000 ops; rest put
    double zipfTheta = 0.0;       ///< 0 = uniform, else (0,1) skew
};

/** Cheap deterministic op generator (one rng draw per op). */
class OpStream
{
  public:
    OpStream(const OpStreamConfig &config, Rng rng)
        : rng_(rng), keyLo_(config.keyLo), keyCount_(config.keyCount)
    {
        WSP_CHECK(config.keyCount >= 1);
        WSP_CHECK(config.getPermille + config.erasePermille <= 1000);
        // Kind thresholds in 32-bit fixed point against the high
        // draw word: draw < getLimit_ is a get, < eraseLimit_ an
        // erase, else a put. Held as uint64 so a 1000-permille
        // threshold is 2^32 (always true), not a wrapped zero.
        getLimit_ = (static_cast<uint64_t>(config.getPermille) << 32) / 1000;
        eraseLimit_ =
            getLimit_ +
            (static_cast<uint64_t>(config.erasePermille) << 32) / 1000;
        if (config.zipfTheta > 0.0)
            buildZipfTable(config.zipfTheta);
    }

    /** Next op of this worker's stream. */
    apps::KvOp next()
    {
        // Branch-free: kind comes from a 3-entry table indexed by two
        // threshold comparisons, and the payload draw is taken
        // unconditionally (gets and erases simply ignore it). Random
        // kinds would mispredict a kind branch ~half the time, which
        // costs more than the always-taken second draw.
        static constexpr apps::KvOp::Kind kKinds[3] = {
            apps::KvOp::Kind::Get, apps::KvOp::Kind::Erase,
            apps::KvOp::Kind::Put};
        const uint64_t draw = rng_();
        const uint64_t payload = rng_();
        const auto kindBits = static_cast<uint32_t>(draw >> 32);
        const auto keyBits = static_cast<uint32_t>(draw);
        uint64_t key;
        if (zipf_.empty()) {
            // Lemire-style range reduction on the low 32 bits.
            key = keyLo_ + ((static_cast<uint64_t>(keyBits) * keyCount_) >>
                            32);
        } else {
            key = keyLo_ + zipf_[keyBits >> kZipfShift];
        }
        const unsigned kind = static_cast<unsigned>(kindBits >= getLimit_) +
                              static_cast<unsigned>(kindBits >= eraseLimit_);
        return apps::KvOp{kKinds[kind], key, payload};
    }

    /** Fill @p out with the next out.size() ops. */
    void fill(std::span<apps::KvOp> out)
    {
        for (apps::KvOp &op : out)
            op = next();
    }

  private:
    static constexpr unsigned kZipfBits = 12; ///< 4096-way table
    static constexpr unsigned kZipfShift = 32 - kZipfBits;

    void buildZipfTable(double theta)
    {
        // Quantized inverse CDF: bin i of the uniform unit interval
        // maps to the smallest key whose Zipf CDF covers the bin's
        // midpoint. Hot keys (small ranks) absorb many bins; the
        // cold tail shares the rest. Exactness is bounded by the bin
        // width (2^-12); the distribution test compares hot-key mass
        // against apps::ZipfianSampler.
        const size_t bins = size_t{1} << kZipfBits;
        zipf_.resize(bins);
        std::vector<double> cdf(keyCount_);
        double zeta = 0.0;
        for (uint64_t k = 0; k < keyCount_; ++k) {
            zeta += 1.0 / std::pow(static_cast<double>(k + 1), theta);
            cdf[k] = zeta;
        }
        size_t k = 0;
        for (size_t bin = 0; bin < bins; ++bin) {
            const double target =
                (static_cast<double>(bin) + 0.5) /
                static_cast<double>(bins) * zeta;
            while (k + 1 < keyCount_ && cdf[k] < target)
                ++k;
            zipf_[bin] = static_cast<uint32_t>(k);
        }
    }

    Rng rng_;
    uint64_t keyLo_;
    uint64_t keyCount_;
    uint64_t getLimit_ = 0;
    uint64_t eraseLimit_ = 0;
    std::vector<uint32_t> zipf_; ///< empty = uniform
};

} // namespace wsp::load
