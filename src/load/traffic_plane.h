/**
 * @file
 * Threaded traffic plane: open-loop load generation into per-shard
 * submission rings, drained by shard-owning consumers into batched
 * store application.
 *
 * This is the serving tier's front door (DESIGN.md §15). The fleet
 * and service layers previously *modeled* client traffic as analytic
 * arrivals; this plane pushes real operations from real threads:
 *
 *  - W pool workers each run a deterministic OpStream
 *    (Rng::stream(w), disjoint or shared key ranges, uniform or
 *    Zipfian popularity).
 *  - Every (producer, shard) pair is connected by an SPSC ring of
 *    fixed KvOp frames carved from one util::Arena at construction —
 *    the steady-state request path allocates nothing: no per-request
 *    std::function, no queue nodes, no batch vectors.
 *  - Shard s is owned by worker s mod W. Each worker alternates
 *    producing its stream (routing ops by ShardedKvStore::shardOf at
 *    enqueue time) and draining the rings of its owned shards, so a
 *    run is already grouped per shard and applies through
 *    applyShardBatch without the counting sort the mutex-batch
 *    dispatch pays.
 *  - Back-pressure: a full ring never drops or blocks on a condvar —
 *    the producer counts the stall and spends the wait draining its
 *    own shards (or yielding when it owns none), which is also what
 *    makes the scheme deadlock-free on any core count.
 *  - Latency is recorded coordinated-omission-safely: the *intended*
 *    time of an op comes from the pacing schedule (or the burst
 *    stamp in unpaced mode), never from when the op actually got
 *    enqueued, so a stalled server inflates the tail instead of
 *    hiding it. Completion is stamped once per drained batch; each
 *    worker records into its own Histogram and the plane merges them
 *    (Histogram::merge) at the end.
 *
 * The pre-PR dispatch (every worker calling ShardedKvStore::applyBatch
 * under per-shard mutexes, with its counting-sort grouping pass) is
 * kept as runMutexBatch() — bench/kv_throughput measures both planes
 * in one binary, and tests check the rings plane against a
 * sequential replay of the same streams.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/kv_store.h"
#include "load/op_stream.h"
#include "load/spsc_ring.h"
#include "util/arena.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace wsp::load {

/** One queued request: the op plus its schedule-intended time. */
struct OpFrame
{
    apps::KvOp op;
    int64_t intendedNs = 0;
};

/** Shape of one traffic-plane run. */
struct TrafficPlaneConfig
{
    unsigned workers = 4;          ///< producer (and consumer) threads
    uint64_t opsPerWorker = 100000;
    uint64_t keysPerWorker = 512;
    bool disjointKeys = true;      ///< private key ranges (exact equiv)
    uint32_t getPermille = 400;
    uint32_t erasePermille = 100;  ///< remainder are puts
    double zipfTheta = 0.0;        ///< 0 = uniform
    uint64_t seed = 42;

    size_t ringFrames = 2048;      ///< per (producer, shard) ring
    size_t burstOps = 256;         ///< producer generation burst
    size_t drainOps = 512;         ///< max frames per consumer batch
    double pacedOpsPerSec = 0.0;   ///< open-loop arrival rate; 0 = max
    bool pinWorkers = false;       ///< pin pool threads to cores

    double latencyHiMs = 10.0;     ///< histogram range
    size_t latencyBuckets = 400;
};

/** Outcome of a run, merged across workers in worker order. */
struct TrafficPlaneReport
{
    apps::KvBatchResult result;
    double wallSeconds = 0.0;
    uint64_t backpressureStalls = 0; ///< full-ring push attempts
    Histogram latencyNs{0.0, 1.0, 1};

    uint64_t ops() const { return result.ops(); }
    double opsPerSec() const
    {
        return wallSeconds > 0.0 ? static_cast<double>(ops()) / wallSeconds
                                 : 0.0;
    }
};

/**
 * The plane. Construction wires the ring matrix over an arena; run()
 * / runMutexBatch() drive one full load through the store (repeated
 * runs continue mutating it, like KvService::run).
 */
class TrafficPlane
{
  public:
    TrafficPlane(apps::ShardedKvStore &store, TrafficPlaneConfig config);
    ~TrafficPlane(); // defined where WorkerSlot is complete

    const TrafficPlaneConfig &config() const { return config_; }

    /** The rings plane described above. @p pool must have exactly
     *  config.workers threads. */
    TrafficPlaneReport run(ThreadPool &pool);

    /**
     * The pre-PR request path: every generated op goes through the
     * store's front door individually (put/get/erase), so each op
     * pays one shard-mutex acquisition and one size-header round
     * trip — mutex-per-shard dispatch exactly as a server dispatched
     * requests before the rings existed. This is the baseline arm of
     * bench/kv_throughput's ≥5x gate.
     */
    TrafficPlaneReport runMutexPerOp(ThreadPool &pool);

    /**
     * Hand-batched middle arm (the PR 7 shape): each worker
     * generates a burst into a local buffer and applies it via
     * ShardedKvStore::applyBatch (counting sort + per-shard locks,
     * one lock and one header update per shard per batch). Isolates
     * what batching alone buys over runMutexPerOp, and what the
     * rings buy over batching. Latency is recorded per batch with
     * the same intended-time rules, so all arms' histograms are
     * comparable.
     */
    TrafficPlaneReport runMutexBatch(ThreadPool &pool);

    /**
     * Sequential replay of the same per-worker streams (worker 0
     * fully, then worker 1, ...) into @p store — the equivalence
     * reference for the threaded planes. In disjoint-keys mode the
     * merged counters and final store state match run()'s exactly.
     */
    apps::KvBatchResult runSequential(apps::ShardedKvStore &store) const;

    /** Per-worker stream, as both planes and the replay build it. */
    OpStream makeStream(unsigned worker) const;

  private:
    struct WorkerSlot; // per-worker scratch + outcome, cache separated

    SpscRing<OpFrame> &ring(unsigned producer, unsigned shard)
    {
        return *rings_[producer * shardCount_ + shard];
    }

    /** Drain every ring of the shards @p worker owns; returns frames
     *  applied. */
    uint64_t drainOwnedShards(unsigned worker, WorkerSlot &slot);

    apps::ShardedKvStore &store_;
    TrafficPlaneConfig config_;
    unsigned shardCount_;

    util::Arena arena_;
    std::vector<SpscRing<OpFrame> *> rings_; ///< [producer][shard]
    std::vector<WorkerSlot> slots_;
    std::atomic<unsigned> producersDone_{0};
};

} // namespace wsp::load
