#include "load/traffic_plane.h"

#include <chrono>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"

namespace wsp::load {

namespace {

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

/**
 * Per-worker scratch and outcome. Everything a worker touches per op
 * lives here, preallocated before the clock starts, so the hot loop
 * never allocates. Slots are heap objects in a vector, but each
 * worker only ever touches its own; the trailing pad keeps the
 * outcome counters of neighbouring slots off a shared cache line.
 */
struct TrafficPlane::WorkerSlot
{
    std::vector<unsigned> ownedShards; ///< shards s with s % W == w
    std::vector<OpFrame> drainFrames;  ///< pop scratch (drainOps)
    std::vector<apps::KvOp> drainOps;  ///< apply scratch (drainOps)
    std::vector<apps::KvOp> batchOps;  ///< mutex-batch gen scratch

    apps::KvBatchResult result;
    Histogram latencyNs{0.0, 1.0, 1};
    uint64_t stalls = 0;
    uint64_t consumed = 0;
    char pad[64] = {};
};

TrafficPlane::TrafficPlane(apps::ShardedKvStore &store,
                           TrafficPlaneConfig config)
    : store_(store), config_(config), shardCount_(store.shardCount())
{
    WSP_CHECK(config_.workers >= 1);
    WSP_CHECK(config_.ringFrames >= 2 &&
              (config_.ringFrames & (config_.ringFrames - 1)) == 0);
    WSP_CHECK(config_.burstOps >= 1 && config_.drainOps >= 1);

    // Ring matrix: producer-major, one SPSC ring per (producer,
    // shard) pair, frames and ring headers all carved from the arena.
    rings_.reserve(static_cast<size_t>(config_.workers) * shardCount_);
    for (unsigned p = 0; p < config_.workers; ++p) {
        for (unsigned s = 0; s < shardCount_; ++s) {
            auto *frames = arena_.allocate<OpFrame>(config_.ringFrames);
            auto *ring = static_cast<SpscRing<OpFrame> *>(arena_.allocate(
                sizeof(SpscRing<OpFrame>), alignof(SpscRing<OpFrame>)));
            rings_.push_back(new (ring)
                                 SpscRing<OpFrame>(frames,
                                                   config_.ringFrames));
        }
    }

    slots_.resize(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w) {
        WorkerSlot &slot = slots_[w];
        for (unsigned s = w; s < shardCount_; s += config_.workers)
            slot.ownedShards.push_back(s);
        slot.drainFrames.resize(config_.drainOps);
        slot.drainOps.resize(config_.drainOps);
        slot.batchOps.resize(config_.burstOps);
    }
}

// SpscRing is trivially destructible apart from its atomics, and the
// arena owns the storage; nothing to tear down per ring.
TrafficPlane::~TrafficPlane() = default;

OpStream
TrafficPlane::makeStream(unsigned worker) const
{
    OpStreamConfig sc;
    sc.keyCount = config_.keysPerWorker;
    sc.keyLo = config_.disjointKeys
                   ? 1 + static_cast<uint64_t>(worker) * config_.keysPerWorker
                   : 1;
    sc.getPermille = config_.getPermille;
    sc.erasePermille = config_.erasePermille;
    sc.zipfTheta = config_.zipfTheta;
    return OpStream(sc, Rng(config_.seed).stream(worker));
}

uint64_t
TrafficPlane::drainOwnedShards(unsigned /*worker*/, WorkerSlot &slot)
{
    uint64_t applied = 0;
    for (unsigned s : slot.ownedShards) {
        for (unsigned p = 0; p < config_.workers; ++p) {
            const size_t n = ring(p, s).tryPop(
                std::span<OpFrame>(slot.drainFrames.data(),
                                   config_.drainOps));
            if (n == 0)
                continue;
            for (size_t i = 0; i < n; ++i)
                slot.drainOps[i] = slot.drainFrames[i].op;
            slot.result.merge(store_.applyShardBatch(
                s, std::span<const apps::KvOp>(slot.drainOps.data(), n)));
            // One clock read per drained run: every frame in the run
            // completes "now". Intended time rode in on the frame, so
            // queueing delay (including back-pressure stalls upstream)
            // is part of the recorded latency. Frames arrive in
            // producer bursts sharing one intended stamp, so runs of
            // equal stamps collapse into weighted adds.
            const int64_t done = nowNs();
            size_t i = 0;
            while (i < n) {
                const int64_t intended = slot.drainFrames[i].intendedNs;
                size_t j = i + 1;
                while (j < n && slot.drainFrames[j].intendedNs == intended)
                    ++j;
                slot.latencyNs.add(static_cast<double>(done - intended),
                                   j - i);
                i = j;
            }
            slot.consumed += n;
            applied += n;
        }
    }
    return applied;
}

TrafficPlaneReport
TrafficPlane::run(ThreadPool &pool)
{
    WSP_CHECKF(pool.threadCount() == config_.workers,
               "pool has %u threads, config wants %u", pool.threadCount(),
               config_.workers);
    const Histogram empty(0.0, config_.latencyHiMs * 1e6,
                                config_.latencyBuckets);
    for (WorkerSlot &slot : slots_) {
        slot.result = apps::KvBatchResult{};
        slot.latencyNs = empty;
        slot.stalls = 0;
        slot.consumed = 0;
    }
    producersDone_.store(0, std::memory_order_relaxed);
    if (config_.pinWorkers)
        pool.pinToCores();

    const unsigned workers = config_.workers;
    const double nsPerOp = config_.pacedOpsPerSec > 0.0
                               ? 1e9 / config_.pacedOpsPerSec
                               : 0.0;
    const int64_t wallStart = nowNs();

    pool.runWorkers([&](unsigned w) {
        WorkerSlot &slot = slots_[w];
        OpStream stream = makeStream(w);
        const uint64_t total = config_.opsPerWorker;
        const int64_t start = nowNs();
        uint64_t produced = 0;
        while (produced < total) {
            const uint64_t burst = std::min<uint64_t>(
                config_.burstOps, total - produced);
            int64_t intended;
            if (nsPerOp > 0.0) {
                // Open loop: the schedule, not the server, sets the
                // intended time. A slow server makes the wait loop
                // vanish and latency grow — never the other way round.
                intended = start + static_cast<int64_t>(
                                       static_cast<double>(produced) *
                                       nsPerOp);
                while (nowNs() < intended) {
                    if (slot.ownedShards.empty() ||
                        drainOwnedShards(w, slot) == 0)
                        std::this_thread::yield();
                }
            } else {
                intended = nowNs(); // one stamp per burst
            }
            for (uint64_t i = 0; i < burst; ++i) {
                const OpFrame frame{stream.next(), intended};
                SpscRing<OpFrame> &target =
                    ring(w, store_.shardOf(frame.op.key));
                while (!target.tryPush(frame)) {
                    // Back-pressure: the consumer is behind. Spend
                    // the stall draining our own shards — that is
                    // also what makes a full ring unable to deadlock
                    // the worker graph.
                    ++slot.stalls;
                    if (slot.ownedShards.empty() ||
                        drainOwnedShards(w, slot) == 0)
                        std::this_thread::yield();
                }
            }
            produced += burst;
            if (!slot.ownedShards.empty())
                drainOwnedShards(w, slot);
        }
        // Release-publish our completed stream, then keep consuming
        // until every producer is done AND every owned ring reads
        // empty. The release/acquire pair on producersDone_ makes the
        // final tail positions visible before the emptiness check can
        // succeed, so no frame is abandoned.
        producersDone_.fetch_add(1, std::memory_order_release);
        if (slot.ownedShards.empty())
            return;
        for (;;) {
            if (drainOwnedShards(w, slot) == 0)
                std::this_thread::yield(); // single-core friendliness
            if (producersDone_.load(std::memory_order_acquire) != workers)
                continue;
            bool empty = true;
            for (unsigned s : slot.ownedShards) {
                for (unsigned p = 0; p < workers && empty; ++p)
                    empty = ring(p, s).emptyConsumer();
                if (!empty)
                    break;
            }
            if (empty)
                return;
        }
    });

    TrafficPlaneReport report;
    report.wallSeconds =
        static_cast<double>(nowNs() - wallStart) * 1e-9;
    report.latencyNs = empty;
    for (const WorkerSlot &slot : slots_) {
        report.result.merge(slot.result);
        report.latencyNs.merge(slot.latencyNs);
        report.backpressureStalls += slot.stalls;
    }
    return report;
}

TrafficPlaneReport
TrafficPlane::runMutexPerOp(ThreadPool &pool)
{
    WSP_CHECKF(pool.threadCount() == config_.workers,
               "pool has %u threads, config wants %u", pool.threadCount(),
               config_.workers);
    const Histogram empty(0.0, config_.latencyHiMs * 1e6,
                          config_.latencyBuckets);
    for (WorkerSlot &slot : slots_) {
        slot.result = apps::KvBatchResult{};
        slot.latencyNs = empty;
        slot.stalls = 0;
        slot.consumed = 0;
    }
    if (config_.pinWorkers)
        pool.pinToCores();

    const double nsPerOp = config_.pacedOpsPerSec > 0.0
                               ? 1e9 / config_.pacedOpsPerSec
                               : 0.0;
    const int64_t wallStart = nowNs();

    pool.runWorkers([&](unsigned w) {
        WorkerSlot &slot = slots_[w];
        OpStream stream = makeStream(w);
        const uint64_t total = config_.opsPerWorker;
        const int64_t start = nowNs();
        uint64_t produced = 0;
        while (produced < total) {
            const uint64_t burst = std::min<uint64_t>(
                config_.burstOps, total - produced);
            int64_t intended;
            if (nsPerOp > 0.0) {
                intended = start + static_cast<int64_t>(
                                       static_cast<double>(produced) *
                                       nsPerOp);
                while (nowNs() < intended)
                    std::this_thread::yield();
            } else {
                intended = nowNs();
            }
            // One front-door call per op: shard lock + size-header
            // round trip every time, no coalescing anywhere.
            for (uint64_t i = 0; i < burst; ++i) {
                const apps::KvOp op = stream.next();
                switch (op.kind) {
                case apps::KvOp::Kind::Put:
                    if (store_.put(op.key, op.value))
                        ++slot.result.puts;
                    else
                        ++slot.result.putsRejected;
                    break;
                case apps::KvOp::Kind::Get: {
                    ++slot.result.gets;
                    uint64_t value = 0;
                    if (store_.get(op.key, &value)) {
                        ++slot.result.getHits;
                        slot.result.getValueSum += value;
                    }
                    break;
                }
                case apps::KvOp::Kind::Erase:
                    ++slot.result.erases;
                    if (store_.erase(op.key))
                        ++slot.result.erasesHit;
                    break;
                }
            }
            const int64_t done = nowNs();
            slot.latencyNs.add(static_cast<double>(done - intended), burst);
            slot.consumed += burst;
            produced += burst;
        }
    });

    TrafficPlaneReport report;
    report.wallSeconds =
        static_cast<double>(nowNs() - wallStart) * 1e-9;
    report.latencyNs = empty;
    for (const WorkerSlot &slot : slots_) {
        report.result.merge(slot.result);
        report.latencyNs.merge(slot.latencyNs);
        report.backpressureStalls += slot.stalls;
    }
    return report;
}

TrafficPlaneReport
TrafficPlane::runMutexBatch(ThreadPool &pool)
{
    WSP_CHECKF(pool.threadCount() == config_.workers,
               "pool has %u threads, config wants %u", pool.threadCount(),
               config_.workers);
    const Histogram empty(0.0, config_.latencyHiMs * 1e6,
                                config_.latencyBuckets);
    for (WorkerSlot &slot : slots_) {
        slot.result = apps::KvBatchResult{};
        slot.latencyNs = empty;
        slot.stalls = 0;
        slot.consumed = 0;
    }
    if (config_.pinWorkers)
        pool.pinToCores();

    const double nsPerOp = config_.pacedOpsPerSec > 0.0
                               ? 1e9 / config_.pacedOpsPerSec
                               : 0.0;
    const int64_t wallStart = nowNs();

    pool.runWorkers([&](unsigned w) {
        WorkerSlot &slot = slots_[w];
        OpStream stream = makeStream(w);
        const uint64_t total = config_.opsPerWorker;
        const int64_t start = nowNs();
        uint64_t produced = 0;
        while (produced < total) {
            const uint64_t burst = std::min<uint64_t>(
                config_.burstOps, total - produced);
            int64_t intended;
            if (nsPerOp > 0.0) {
                intended = start + static_cast<int64_t>(
                                       static_cast<double>(produced) *
                                       nsPerOp);
                while (nowNs() < intended)
                    std::this_thread::yield();
            } else {
                intended = nowNs();
            }
            std::span<apps::KvOp> batch(slot.batchOps.data(), burst);
            stream.fill(batch);
            slot.result.merge(store_.applyBatch(batch));
            const int64_t done = nowNs();
            slot.latencyNs.add(static_cast<double>(done - intended), burst);
            slot.consumed += burst;
            produced += burst;
        }
    });

    TrafficPlaneReport report;
    report.wallSeconds =
        static_cast<double>(nowNs() - wallStart) * 1e-9;
    report.latencyNs = empty;
    for (const WorkerSlot &slot : slots_) {
        report.result.merge(slot.result);
        report.latencyNs.merge(slot.latencyNs);
        report.backpressureStalls += slot.stalls;
    }
    return report;
}

apps::KvBatchResult
TrafficPlane::runSequential(apps::ShardedKvStore &store) const
{
    apps::KvBatchResult merged;
    std::vector<apps::KvOp> batch(config_.burstOps);
    for (unsigned w = 0; w < config_.workers; ++w) {
        OpStream stream = makeStream(w);
        uint64_t produced = 0;
        while (produced < config_.opsPerWorker) {
            const uint64_t burst = std::min<uint64_t>(
                config_.burstOps, config_.opsPerWorker - produced);
            std::span<apps::KvOp> run(batch.data(), burst);
            stream.fill(run);
            merged.merge(store.applyBatch(run));
            produced += burst;
        }
    }
    return merged;
}

} // namespace wsp::load
