/**
 * @file
 * Single-producer / single-consumer submission ring.
 *
 * The traffic plane (traffic_plane.h) connects every producer worker
 * to every store shard with one of these: the producer routes each
 * generated op to its shard's ring, the shard's owning consumer
 * drains runs and applies them as batches. One producer, one consumer
 * — the only synchronization is a pair of monotonically increasing
 * positions published with release stores and read with acquire
 * loads; there are no locks, no CAS loops, and after construction no
 * allocation (storage is carved from a util::Arena by the caller).
 *
 * Layout follows the classic cached-index design: each side keeps a
 * local copy of the other side's position and refreshes it only when
 * the ring *appears* full/empty, so steady-state pushes and pops
 * touch a single shared cache line each. Positions are free-running
 * uint64s (never wrapped), so full/empty tests are plain subtraction
 * and the ABA problem cannot arise.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "util/logging.h"

namespace wsp::load {

/**
 * Fixed-capacity SPSC ring over caller-provided storage. T must be
 * trivially copyable (frames are memcpy'd in and out in runs).
 */
template <typename T>
class SpscRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring frames are copied as raw runs");

  public:
    /** @p storage must hold @p capacity items; capacity is a power
     *  of two. The ring does not own the storage (arena-backed). */
    SpscRing(T *storage, size_t capacity)
        : buf_(storage), mask_(capacity - 1)
    {
        WSP_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    size_t capacity() const { return mask_ + 1; }

    // Producer side ----------------------------------------------------

    /**
     * Push up to items.size() frames; returns how many were copied
     * in (possibly 0 when full — the caller counts that as a
     * back-pressure stall and decides how to wait).
     */
    size_t tryPush(std::span<const T> items)
    {
        const uint64_t tail = tail_.load(std::memory_order_relaxed);
        size_t free = capacity() - static_cast<size_t>(tail - cachedHead_);
        if (free < items.size()) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            free = capacity() - static_cast<size_t>(tail - cachedHead_);
            if (free == 0)
                return 0;
        }
        const size_t n = items.size() < free ? items.size() : free;
        for (size_t i = 0; i < n; ++i)
            buf_[static_cast<size_t>(tail + i) & mask_] = items[i];
        tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /** Single-frame convenience push. */
    bool tryPush(const T &item) { return tryPush({&item, 1}) == 1; }

    /** Frames the producer believes are in flight (an upper bound:
     *  its view of the consumer position may be stale). */
    size_t sizeProducer() const
    {
        return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                                   cachedHead_);
    }

    // Consumer side ----------------------------------------------------

    /**
     * Pop up to out.size() frames; returns how many were copied out
     * (0 when empty).
     */
    size_t tryPop(std::span<T> out)
    {
        const uint64_t head = head_.load(std::memory_order_relaxed);
        size_t avail = static_cast<size_t>(cachedTail_ - head);
        if (avail == 0) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            avail = static_cast<size_t>(cachedTail_ - head);
            if (avail == 0)
                return 0;
        }
        const size_t n = out.size() < avail ? out.size() : avail;
        for (size_t i = 0; i < n; ++i)
            out[i] = buf_[static_cast<size_t>(head + i) & mask_];
        head_.store(head + n, std::memory_order_release);
        return n;
    }

    /** True when the consumer's view says no frames are pending;
     *  refreshes its view first, so producers that have finished
     *  publishing cannot be missed. */
    bool emptyConsumer()
    {
        const uint64_t head = head_.load(std::memory_order_relaxed);
        cachedTail_ = tail_.load(std::memory_order_acquire);
        return cachedTail_ == head;
    }

  private:
    T *buf_;
    size_t mask_;

    // Producer-owned line: its position plus its cached view of the
    // consumer. Consumer-owned line likewise. alignas keeps the two
    // sides off each other's cache line (no false sharing).
    alignas(64) std::atomic<uint64_t> tail_{0};
    uint64_t cachedHead_ = 0;
    alignas(64) std::atomic<uint64_t> head_{0};
    uint64_t cachedTail_ = 0;
};

} // namespace wsp::load
