#include "devices/device_manager.h"

#include <cstdio>

#include "trace/flight_recorder.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

namespace {

/** Emit a per-device span edge ("nic suspend" B/E). */
void
traceDeviceEdge(const std::string &device, const char *what,
                trace::Phase phase)
{
    if (!trace::enabled(trace::Category::Devices))
        return;
    char span[trace::Record::kNameBytes];
    std::snprintf(span, sizeof(span), "%s %s", device.c_str(), what);
    trace::TraceManager::instance().emit(trace::Category::Devices, phase,
                                         span);
}

} // namespace

std::string
devicePolicyName(DevicePolicy policy)
{
    switch (policy) {
      case DevicePolicy::AcpiSuspendOnSave:
        return "acpi-suspend-on-save";
      case DevicePolicy::PnpRestartOnRestore:
        return "pnp-restart-on-restore";
      case DevicePolicy::VirtualizedReplay:
        return "virtualized-replay";
    }
    return "unknown";
}

DeviceManager::DeviceManager(EventQueue &queue)
    : SimObject(queue, "device-manager")
{
}

Device &
DeviceManager::addDevice(DeviceConfig config, Rng rng)
{
    devices_.push_back(std::make_unique<Device>(queue_, std::move(config),
                                                rng));
    return *devices_.back();
}

Device *
DeviceManager::find(const std::string &name)
{
    for (auto &device : devices_) {
        if (device->name() == name)
            return device.get();
    }
    return nullptr;
}

void
DeviceManager::startBusyAll()
{
    for (auto &device : devices_)
        device->startBusyWorkload();
}

void
DeviceManager::stopBusyAll()
{
    for (auto &device : devices_)
        device->stopBusyWorkload();
}

void
DeviceManager::suspendAll(std::function<void(Tick)> done)
{
    suspendNext(0, now(), std::move(done));
}

void
DeviceManager::suspendNext(size_t index, Tick started,
                           std::function<void(Tick)> done)
{
    if (index >= devices_.size()) {
        if (done)
            done(now() - started);
        return;
    }
    traceDeviceEdge(devices_[index]->name(), "suspend",
                    trace::Phase::Begin);
    devices_[index]->suspend([this, index, started,
                              done = std::move(done)](Tick) mutable {
        traceDeviceEdge(devices_[index]->name(), "suspend",
                        trace::Phase::End);
        trace::StatRegistry::instance().counter("devices.suspends").add();
        suspendNext(index + 1, started, std::move(done));
    });
}

void
DeviceManager::suspendAllParallel(std::function<void(Tick)> done)
{
    suspendWave(0, now(), std::move(done));
}

void
DeviceManager::suspendWave(unsigned wave, Tick started,
                           std::function<void(Tick)> done)
{
    // Collect this wave's members and remember whether later waves
    // exist; when the current wave is empty we either advance or
    // finish.
    std::vector<Device *> members;
    bool later = false;
    for (auto &device : devices_) {
        if (device->config().suspendWave == wave)
            members.push_back(device.get());
        else if (device->config().suspendWave > wave)
            later = true;
    }
    if (members.empty()) {
        if (later) {
            suspendWave(wave + 1, started, std::move(done));
        } else if (done) {
            done(now() - started);
        }
        return;
    }

    auto remaining = std::make_shared<size_t>(members.size());
    auto shared_done =
        std::make_shared<std::function<void(Tick)>>(std::move(done));
    trace::frEmit(trace::FrEvent::DeviceSuspendWave,
                  trace::Category::Devices, wave, members.size());
    for (Device *device : members) {
        traceDeviceEdge(device->name(), "suspend", trace::Phase::Begin);
        device->suspend([this, device, wave, started, later, remaining,
                         shared_done](Tick) {
            traceDeviceEdge(device->name(), "suspend", trace::Phase::End);
            trace::StatRegistry::instance().counter("devices.suspends").add();
            WSP_CHECK(*remaining > 0);
            if (--*remaining > 0)
                return;
            if (later)
                suspendWave(wave + 1, started, std::move(*shared_done));
            else if (*shared_done)
                (*shared_done)(now() - started);
        });
    }
}

void
DeviceManager::restoreAll(DevicePolicy policy, Tick host_stack_boot,
                          std::function<void(DeviceRestoreReport)> done)
{
    const Tick started = now();
    DeviceRestoreReport report;

    switch (policy) {
      case DevicePolicy::AcpiSuspendOnSave:
        // Devices were suspended cleanly before the failure; resume
        // them sequentially from their saved state.
        queue_.scheduleAfter(0, [this, started,
                                 done = std::move(done)]() mutable {
            DeviceRestoreReport r;
            resumeChain(0, started, r, std::move(done));
        });
        return;

      case DevicePolicy::PnpRestartOnRestore:
        restartNext(0, policy, started, report, std::move(done));
        return;

      case DevicePolicy::VirtualizedReplay:
        // A fresh host OS instance boots its whole device stack, then
        // the hypervisor replays the outstanding virtual I/O.
        queue_.scheduleAfter(host_stack_boot, [this, policy, started,
                                               report,
                                               done = std::move(done)]() mutable {
            restartNext(0, policy, started, report, std::move(done));
        });
        return;
    }
}

void
DeviceManager::resumeChain(size_t index, Tick started,
                           DeviceRestoreReport report,
                           std::function<void(DeviceRestoreReport)> done)
{
    if (index >= devices_.size()) {
        report.latency = now() - started;
        if (done)
            done(report);
        return;
    }
    traceDeviceEdge(devices_[index]->name(), "resume",
                    trace::Phase::Begin);
    devices_[index]->resume([this, index, started, report,
                             done = std::move(done)](Tick) mutable {
        traceDeviceEdge(devices_[index]->name(), "resume",
                        trace::Phase::End);
        ++report.devicesRestarted;
        trace::StatRegistry::instance().counter("devices.restarts").add();
        resumeChain(index + 1, started, report, std::move(done));
    });
}

void
DeviceManager::restartNext(size_t index, DevicePolicy policy, Tick started,
                           DeviceRestoreReport report,
                           std::function<void(DeviceRestoreReport)> done)
{
    if (index >= devices_.size()) {
        report.latency = now() - started;
        if (done)
            done(report);
        return;
    }

    Device &device = *devices_[index];
    if (policy == DevicePolicy::PnpRestartOnRestore &&
        !device.config().supportsPnpRestart) {
        // Cannot "unplug" this device: the strategy is incomplete
        // (paper section 4) — count it and move on.
        ++report.devicesUnsupported;
        restartNext(index + 1, policy, started, report, std::move(done));
        return;
    }

    traceDeviceEdge(device.name(), "restart", trace::Phase::Begin);
    device.restart([this, index, policy, started, report,
                    dev = &device, done = std::move(done)](Tick) mutable {
        traceDeviceEdge(dev->name(), "restart", trace::Phase::End);
        ++report.devicesRestarted;
        auto &registry = trace::StatRegistry::instance();
        registry.counter("devices.restarts").add();
        if (policy == DevicePolicy::VirtualizedReplay) {
            const size_t replayed = dev->replayLostOps();
            report.opsReplayed += replayed;
            registry.counter("devices.ops_replayed").add(replayed);
        }
        restartNext(index + 1, policy, started, report, std::move(done));
    });
}

void
DeviceManager::coldBootAll(std::function<void(Tick)> done)
{
    // A normal boot re-initializes everything; forgotten I/O belongs
    // to the pre-failure world and is dropped, not replayed.
    const Tick started = now();
    for (auto &device : devices_)
        device->dropLostOps();
    restartNext(0, DevicePolicy::VirtualizedReplay, started,
                DeviceRestoreReport{},
                [this, started, done = std::move(done)](DeviceRestoreReport) {
        done(now() - started);
    });
}

void
DeviceManager::onPowerLost()
{
    for (auto &device : devices_)
        device->onPowerLost();
}

size_t
DeviceManager::totalLostOps() const
{
    size_t total = 0;
    for (const auto &device : devices_)
        total += device->lostOps().size();
    return total;
}

std::vector<DeviceConfig>
deviceSetIntel()
{
    return {gpuConfig(), diskConfig(), nicConfig(), usbConfig(),
            legacyUartConfig()};
}

std::vector<DeviceConfig>
deviceSetAmd()
{
    // Lower-powered testbed: weaker GPU and a slower disk stack.
    DeviceConfig gpu = gpuConfig();
    gpu.suspendFixed = fromMillis(2100.0);
    DeviceConfig disk = diskConfig();
    disk.suspendFixed = fromMillis(1500.0);
    DeviceConfig nic = nicConfig();
    nic.suspendFixed = fromMillis(1100.0);
    return {gpu, disk, nic, usbConfig(), legacyUartConfig()};
}

} // namespace wsp
