/**
 * @file
 * Device manager: system-wide suspend, restart, and replay.
 *
 * Implements the three device-recovery strategies from paper
 * section 4 over a set of Device models:
 *
 *  - AcpiSuspendOnSave: the strawman. Devices are put into D3
 *    sequentially on the save path, mirroring how the ACPI S3
 *    transition walks the device tree. Fig. 9 measures this path.
 *  - PnpRestartOnRestore: nothing on the save path; on restore, every
 *    PnP-capable device is reset. Devices without PnP support (legacy
 *    hardware, the paging disk) make this strategy incomplete.
 *  - VirtualizedReplay: nothing on the save path; on restore a fresh
 *    host device stack is brought up and outstanding operations are
 *    replayed against the virtual devices.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "devices/device.h"
#include "sim/sim_object.h"

namespace wsp {

/** Device-recovery strategies (paper section 4). */
enum class DevicePolicy {
    AcpiSuspendOnSave,
    PnpRestartOnRestore,
    VirtualizedReplay,
};

/** Human-readable policy name. */
std::string devicePolicyName(DevicePolicy policy);

/** Outcome of a restore-path device recovery. */
struct DeviceRestoreReport
{
    Tick latency = 0;          ///< total restore-path device time
    size_t devicesRestarted = 0;
    size_t devicesUnsupported = 0; ///< PnP restart impossible
    size_t opsReplayed = 0;
};

/** Owner and orchestrator of the machine's devices. */
class DeviceManager : public SimObject
{
  public:
    explicit DeviceManager(EventQueue &queue);

    /** Create and attach a device from a config. */
    Device &addDevice(DeviceConfig config, Rng rng);

    const std::vector<std::unique_ptr<Device>> &devices() const
    {
        return devices_;
    }

    Device *find(const std::string &name);

    /** Start busy workloads on every device. */
    void startBusyAll();

    /** Stop busy workloads. */
    void stopBusyAll();

    /**
     * Sequentially suspend every device (ACPI S3 walk); @p done
     * receives the total latency. This is what Fig. 9 measures.
     */
    void suspendAll(std::function<void(Tick total)> done);

    /**
     * Suspend independent devices concurrently, in waves: all devices
     * with DeviceConfig::suspendWave == W suspend in parallel once
     * every device of waves < W is in D3. The total is the sum over
     * waves of each wave's slowest device — the best case a
     * dependency-aware ACPI walk could reach.
     */
    void suspendAllParallel(std::function<void(Tick total)> done);

    /**
     * Restore-path recovery per @p policy; @p done receives a report.
     * For VirtualizedReplay, @p host_stack_boot models booting the
     * fresh host OS device stack before replay.
     */
    void restoreAll(DevicePolicy policy, Tick host_stack_boot,
                    std::function<void(DeviceRestoreReport)> done);

    /**
     * Cold-boot every device (normal boot path): reset each one, drop
     * any recorded lost operations without replaying them.
     */
    void coldBootAll(std::function<void(Tick total)> done);

    /** Propagate a power loss to every device. */
    void onPowerLost();

    /** Total operations lost across devices (pending replay). */
    size_t totalLostOps() const;

  private:
    void suspendNext(size_t index, Tick started,
                     std::function<void(Tick)> done);
    void suspendWave(unsigned wave, Tick started,
                     std::function<void(Tick)> done);
    void resumeChain(size_t index, Tick started, DeviceRestoreReport report,
                     std::function<void(DeviceRestoreReport)> done);
    void restartNext(size_t index, DevicePolicy policy, Tick started,
                     DeviceRestoreReport report,
                     std::function<void(DeviceRestoreReport)> done);

    std::vector<std::unique_ptr<Device>> devices_;
};

/** The Intel testbed's device set (GPU + disk + NIC dominate). */
std::vector<DeviceConfig> deviceSetIntel();

/** The AMD testbed's device set. */
std::vector<DeviceConfig> deviceSetAmd();

} // namespace wsp
