/**
 * @file
 * Device model with power states and in-flight I/O.
 *
 * WSP keeps memory and processor state across a power failure, but
 * devices are power-cycled, so their driver state becomes stale and
 * in-flight I/O is lost (paper section 4, "Device restart"). The
 * paper examines three strategies:
 *
 *  1. the strawman: ACPI-suspend every device on the save path (slow
 *     and unbounded: it drains outstanding I/O and runs per-driver
 *     timeouts; measured in Fig. 9 at several *seconds*),
 *  2. restart devices on the restore path (fast save, but complex and
 *     impossible for legacy or paging devices),
 *  3. virtualize devices and replay outstanding I/O in the
 *     hypervisor on restore (the paper's preferred direction).
 *
 * The Device model carries what all three need: a D0/D3 power state,
 * an in-flight operation queue with drain behaviour, per-device
 * suspend/resume/reset latencies (calibrated so the Fig. 9 totals
 * and their busy/idle gap reproduce), and loss/replay bookkeeping.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_object.h"
#include "util/rng.h"
#include "util/units.h"

namespace wsp {

/** ACPI-style device power states (only the end points matter). */
enum class DevicePowerState { D0, D3 };

/** One in-flight device operation. */
struct IoOp
{
    uint64_t id = 0;
    Tick issued = 0;
    Tick duration = 0;
    bool replayed = false;
};

/** Per-device latency and behaviour parameters. */
struct DeviceConfig
{
    std::string name;

    /**
     * Fixed cost of a D0->D3 transition once the queue is drained:
     * driver bookkeeping, firmware handshakes, and the conservative
     * timeouts Windows drivers take even when idle (the reason
     * Fig. 9's idle bars are still seconds).
     */
    Tick suspendFixed = fromMillis(200.0);

    /** Fixed cost of a D3->D0 resume with saved state. */
    Tick resumeFixed = fromMillis(100.0);

    /** Cost of a cold reset + re-initialization (restart path). */
    Tick resetFixed = fromMillis(50.0);

    /** Mean duration of one I/O operation on this device. */
    Tick ioMeanLatency = fromMillis(5.0);

    /** Maximum queue depth the busy workload keeps outstanding. */
    unsigned busyQueueDepth = 16;

    /** Jitter applied to suspendFixed per run (fraction of fixed). */
    double suspendJitter = 0.05;

    /**
     * True for devices whose driver drains the queue serially while
     * quiescing (rotational disks flushing write caches); false for
     * devices whose outstanding operations complete in parallel.
     */
    bool serialDrain = false;

    /**
     * False for devices that cannot be re-plugged through PnP: legacy
     * devices or the disk holding the paging file (paper section 4).
     */
    bool supportsPnpRestart = true;

    /**
     * Suspend-dependency wave for the parallel suspend path: devices
     * in wave W suspend concurrently, but only after every device in
     * waves < W is in D3. Most devices are independent (wave 0); the
     * paging disk is wave 1 because other drivers may still page
     * while quiescing.
     */
    unsigned suspendWave = 0;
};

/** A device with an operation queue and modelled power transitions. */
class Device : public SimObject
{
  public:
    Device(EventQueue &queue, DeviceConfig config, Rng rng);

    const DeviceConfig &config() const { return config_; }
    DevicePowerState powerState() const { return power_; }
    size_t inflight() const { return inflight_.size(); }
    bool suspended() const { return power_ == DevicePowerState::D3; }

    /**
     * Submit one operation with the given duration (0 = draw from the
     * device's latency distribution). Completion is event-driven.
     */
    uint64_t submitIo(Tick duration = 0);

    /** Keep @p depth operations outstanding until told otherwise. */
    void startBusyWorkload(unsigned depth = 0);

    /** Stop replenishing the busy workload (queue drains naturally). */
    void stopBusyWorkload();

    /**
     * ACPI-style suspend: refuse new I/O, drain the queue, then run
     * the fixed suspend cost and enter D3. @p done receives the total
     * suspend latency.
     */
    void suspend(std::function<void(Tick latency)> done);

    /** D3->D0 resume with preserved driver state. */
    void resume(std::function<void(Tick latency)> done);

    /**
     * Cold restart on the restore path: device was power-cycled, no
     * drain is possible; costs resetFixed and clears driver state.
     */
    void restart(std::function<void(Tick latency)> done);

    /**
     * Model system power loss: the device drops to D3 uncleanly and
     * every in-flight operation is lost (recorded for replay).
     */
    void onPowerLost();

    /** Operations lost to power failures and not yet replayed. */
    const std::vector<IoOp> &lostOps() const { return lostOps_; }

    /**
     * Re-issue lost operations (virtualized replay path). Returns the
     * number re-submitted; clears the lost list.
     */
    size_t replayLostOps();

    /** Forget lost operations without replaying them (cold boot). */
    void dropLostOps() { lostOps_.clear(); }

    uint64_t opsCompleted() const { return opsCompleted_; }
    uint64_t opsLostTotal() const { return opsLostTotal_; }

  private:
    void completeIo(uint64_t id);
    void maybeFinishSuspend();
    Tick drawIoLatency();

    DeviceConfig config_;
    Rng rng_;
    DevicePowerState power_ = DevicePowerState::D0;
    std::vector<IoOp> inflight_;
    std::vector<IoOp> lostOps_;
    uint64_t nextOpId_ = 1;
    uint64_t opsCompleted_ = 0;
    uint64_t opsLostTotal_ = 0;
    bool busyWorkload_ = false;
    unsigned busyDepth_ = 0;
    bool suspending_ = false;
    Tick suspendStart_ = 0;
    std::function<void(Tick)> suspendDone_;
};

/** GPU: the slowest device to suspend on the Intel testbed (Fig. 9). */
DeviceConfig gpuConfig();

/** SATA disk; holds the paging file, so no PnP restart. */
DeviceConfig diskConfig();

/** Network interface. */
DeviceConfig nicConfig();

/** USB controller (quick). */
DeviceConfig usbConfig();

/** Legacy (non-PnP) device, e.g. a serial UART. */
DeviceConfig legacyUartConfig();

} // namespace wsp
