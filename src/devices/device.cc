#include "devices/device.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

Device::Device(EventQueue &queue, DeviceConfig config, Rng rng)
    : SimObject(queue, config.name), config_(std::move(config)), rng_(rng)
{
    WSP_CHECK(config_.ioMeanLatency > 0);
}

Tick
Device::drawIoLatency()
{
    const double mean = static_cast<double>(config_.ioMeanLatency);
    const double draw = rng_.exponential(mean);
    return static_cast<Tick>(std::clamp(draw, mean / 4.0, mean * 4.0));
}

uint64_t
Device::submitIo(Tick duration)
{
    if (power_ != DevicePowerState::D0 || suspending_)
        return 0; // device refuses new work while leaving D0
    IoOp op;
    op.id = nextOpId_++;
    op.issued = now();
    op.duration = duration ? duration : drawIoLatency();
    inflight_.push_back(op);
    queue_.scheduleAfter(op.duration,
                         [this, id = op.id] { completeIo(id); });
    return op.id;
}

void
Device::completeIo(uint64_t id)
{
    auto it = std::find_if(inflight_.begin(), inflight_.end(),
                           [id](const IoOp &op) { return op.id == id; });
    if (it == inflight_.end())
        return; // lost to a power failure or drained synchronously
    inflight_.erase(it);
    ++opsCompleted_;

    if (busyWorkload_ && !suspending_ && power_ == DevicePowerState::D0) {
        while (inflight_.size() < busyDepth_)
            submitIo();
    }
    if (suspending_)
        maybeFinishSuspend();
}

void
Device::startBusyWorkload(unsigned depth)
{
    busyWorkload_ = true;
    busyDepth_ = depth ? depth : config_.busyQueueDepth;
    while (inflight_.size() < busyDepth_ && !suspending_ &&
           power_ == DevicePowerState::D0) {
        submitIo();
    }
}

void
Device::stopBusyWorkload()
{
    busyWorkload_ = false;
}

void
Device::suspend(std::function<void(Tick)> done)
{
    WSP_CHECKF(power_ == DevicePowerState::D0 && !suspending_,
               "%s: suspend from invalid state", name().c_str());
    suspending_ = true;
    suspendStart_ = now();
    suspendDone_ = std::move(done);

    if (config_.serialDrain && !inflight_.empty()) {
        // The driver quiesces the device by pushing the whole queue
        // through one element at a time (and flushing write caches):
        // cost is the sum of the remaining service times.
        Tick drain = 0;
        for (const auto &op : inflight_) {
            const Tick end = op.issued + op.duration;
            drain += end > now() ? end - now() : 0;
        }
        opsCompleted_ += inflight_.size();
        inflight_.clear();
        queue_.scheduleAfter(drain, [this] { maybeFinishSuspend(); });
        return;
    }
    maybeFinishSuspend();
}

void
Device::maybeFinishSuspend()
{
    if (!suspending_ || !inflight_.empty())
        return;
    // Queue drained: pay the fixed driver/firmware cost (with a small
    // run-to-run jitter) and drop to D3.
    const double jitter =
        1.0 + config_.suspendJitter * (2.0 * rng_.uniform() - 1.0);
    const auto fixed = static_cast<Tick>(
        static_cast<double>(config_.suspendFixed) * jitter);
    queue_.scheduleAfter(fixed, [this] {
        if (!suspending_)
            return; // a power loss beat us to it
        suspending_ = false;
        power_ = DevicePowerState::D3;
        if (suspendDone_) {
            auto done = std::move(suspendDone_);
            suspendDone_ = nullptr;
            done(now() - suspendStart_);
        }
    });
}

void
Device::resume(std::function<void(Tick)> done)
{
    WSP_CHECKF(power_ == DevicePowerState::D3,
               "%s: resume from D0", name().c_str());
    const Tick start = now();
    queue_.scheduleAfter(config_.resumeFixed, [this, start,
                                               done = std::move(done)] {
        power_ = DevicePowerState::D0;
        if (done)
            done(now() - start);
    });
}

void
Device::restart(std::function<void(Tick)> done)
{
    // Cold reset: no drain possible, the device was power-cycled.
    const Tick start = now();
    suspending_ = false;
    suspendDone_ = nullptr;
    queue_.scheduleAfter(config_.resetFixed, [this, start,
                                              done = std::move(done)] {
        power_ = DevicePowerState::D0;
        if (done)
            done(now() - start);
    });
}

void
Device::onPowerLost()
{
    // Every outstanding operation is lost; remember it for replay.
    for (auto &op : inflight_)
        lostOps_.push_back(op);
    opsLostTotal_ += inflight_.size();
    inflight_.clear();
    suspending_ = false;
    suspendDone_ = nullptr;
    busyWorkload_ = false;
    power_ = DevicePowerState::D3;
}

size_t
Device::replayLostOps()
{
    WSP_CHECKF(power_ == DevicePowerState::D0,
               "%s: replay while not in D0", name().c_str());
    const size_t count = lostOps_.size();
    for (auto &op : lostOps_) {
        op.replayed = true;
        submitIo(op.duration);
    }
    lostOps_.clear();
    return count;
}

DeviceConfig
gpuConfig()
{
    DeviceConfig config;
    config.name = "gpu";
    config.suspendFixed = fromMillis(2600.0);
    config.resumeFixed = fromMillis(900.0);
    config.resetFixed = fromMillis(400.0);
    config.ioMeanLatency = fromMillis(2.0);
    config.busyQueueDepth = 8;
    return config;
}

DeviceConfig
diskConfig()
{
    DeviceConfig config;
    config.name = "disk";
    config.suspendFixed = fromMillis(1700.0);
    config.resumeFixed = fromMillis(600.0);
    config.resetFixed = fromMillis(250.0);
    config.ioMeanLatency = fromMillis(8.0);
    config.busyQueueDepth = 32;
    config.serialDrain = true;
    config.supportsPnpRestart = false; // holds the paging file
    config.suspendWave = 1; // other drivers may page while quiescing
    return config;
}

DeviceConfig
nicConfig()
{
    DeviceConfig config;
    config.name = "nic";
    config.suspendFixed = fromMillis(1300.0);
    config.resumeFixed = fromMillis(400.0);
    config.resetFixed = fromMillis(150.0);
    config.ioMeanLatency = fromMicros(300.0);
    config.busyQueueDepth = 64;
    return config;
}

DeviceConfig
usbConfig()
{
    DeviceConfig config;
    config.name = "usb";
    config.suspendFixed = fromMillis(250.0);
    config.resumeFixed = fromMillis(120.0);
    config.resetFixed = fromMillis(80.0);
    config.ioMeanLatency = fromMillis(1.0);
    config.busyQueueDepth = 4;
    return config;
}

DeviceConfig
legacyUartConfig()
{
    DeviceConfig config;
    config.name = "uart";
    config.suspendFixed = fromMillis(150.0);
    config.resumeFixed = fromMillis(60.0);
    config.resetFixed = fromMillis(40.0);
    config.ioMeanLatency = fromMillis(4.0);
    config.busyQueueDepth = 1;
    config.supportsPnpRestart = false; // legacy, not enumerable
    return config;
}

} // namespace wsp
