/**
 * @file
 * Paper-style table and figure rendering for bench output.
 *
 * Every bench binary regenerates one table or figure from the paper
 * and prints it through these helpers so the output format is uniform:
 * an aligned text table (optionally also CSV), an ASCII line chart for
 * figures, and a ShapeCheck summary that records whether the measured
 * result preserves the paper's qualitative shape.
 */

#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace wsp {

/** Aligned text table with a title, column headers, and string cells. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render as an aligned text table. */
    std::string render() const;

    /** Render as CSV (header + rows). */
    std::string renderCsv() const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * ASCII line chart over one or more series, for figure benches.
 * Series are drawn with distinct glyphs and listed in a legend.
 */
class AsciiChart
{
  public:
    AsciiChart(std::string title, std::string x_label, std::string y_label)
        : title_(std::move(title)), xLabel_(std::move(x_label)),
          yLabel_(std::move(y_label))
    {}

    void addSeries(const Series &series);

    /** Use a log10 y-axis (series must be strictly positive). */
    void setLogY(bool log_y) { logY_ = log_y; }

    /** Render to a character grid of the given size. */
    std::string render(size_t width = 72, size_t height = 20) const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    bool logY_ = false;
    std::vector<Series> series_;
};

/**
 * Records qualitative expectations ("who wins, by roughly what factor,
 * where crossovers fall") and reports PASS/FAIL per expectation. Bench
 * main()s return nonzero when any expectation fails so the harness can
 * flag drift from the paper's shape.
 */
class ShapeCheck
{
  public:
    explicit ShapeCheck(std::string experiment)
        : experiment_(std::move(experiment))
    {}

    /** Expect @p value to lie within [lo, hi]. */
    void expectBetween(const std::string &what, double value, double lo,
                       double hi);

    /** Expect @p a > @p b. */
    void expectGreater(const std::string &what, double a, double b);

    /** Expect ratio a/b to lie within [lo, hi]. */
    void expectRatio(const std::string &what, double a, double b, double lo,
                     double hi);

    /** Expect a boolean condition, described by @p what. */
    void expectTrue(const std::string &what, bool ok);

    /** Print the PASS/FAIL summary; returns true when all passed. */
    bool summarize() const;

    bool allPassed() const { return failures_ == 0; }

  private:
    void record(const std::string &what, bool ok, const std::string &detail);

    std::string experiment_;
    std::vector<std::string> lines_;
    int failures_ = 0;
};

} // namespace wsp
