/**
 * @file
 * Status and error reporting for the wsp library.
 *
 * Follows the gem5 convention: inform() and warn() report conditions to
 * the user without stopping execution; fatal() terminates because of a
 * user error (bad configuration or arguments); panic() terminates
 * because of an internal library bug and aborts so a core dump or
 * debugger can capture the state.
 */

#pragma once

#include <cstdarg>
#include <string>

namespace wsp {

/** Verbosity levels for non-fatal log output. */
enum class LogLevel {
    Quiet = 0,   ///< suppress inform(); warnings still shown
    Normal = 1,  ///< inform() and warn() shown
    Debug = 2,   ///< additionally show debugLog() messages
};

/** Set the global verbosity for inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Get the current global verbosity. */
LogLevel logLevel();

/**
 * Apply the WSP_LOG_LEVEL environment variable if set. Accepts
 * "quiet"/"normal"/"debug" or the numeric levels "0"/"1"/"2"; an
 * unrecognized value is warned about and ignored. Called once by
 * bench_util's init(); safe to call repeatedly.
 */
void configureLogLevelFromEnv();

/**
 * Install a sink that also receives every formatted debugLog() line
 * (without the "debug: " prefix), regardless of the current level.
 * The tracing layer uses this to turn debug messages into trace
 * instants. Pass nullptr to uninstall.
 */
void setDebugSink(void (*sink)(const char *message));

/** Print an informational message (printf-style) when verbosity allows. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug-level trace message (shown only at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate with an error caused by the caller (bad configuration or
 * arguments). Exits with status 1; does not dump core.
 */
[[noreturn]]
void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal invariant violation (a wsp bug).
 * Calls std::abort() so the failure is debuggable.
 */
[[noreturn]]
void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Check an invariant; panic when it does not hold.
 *
 * Unlike assert(), this stays active in release builds: the library
 * models crash-consistency protocols whose invariants must never be
 * silently skipped.
 */
#define WSP_CHECK(cond)                                               \
    do {                                                              \
        if (!(cond)) {                                                \
            ::wsp::panic("check failed (%s) at %s:%d",                \
                         #cond, __FILE__, __LINE__);                  \
        }                                                             \
    } while (0)

/** WSP_CHECK with an additional printf-style explanation. */
#define WSP_CHECKF(cond, ...)                                         \
    do {                                                              \
        if (!(cond)) {                                                \
            ::wsp::warn("check failed (%s) at %s:%d",                 \
                        #cond, __FILE__, __LINE__);                   \
            ::wsp::panic(__VA_ARGS__);                                \
        }                                                             \
    } while (0)

} // namespace wsp
