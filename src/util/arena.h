/**
 * @file
 * Slab and arena allocation for simulation hot paths.
 *
 * The event engine and the trace layer both burn through small,
 * uniform objects at rates where the general-purpose heap becomes the
 * profile: a malloc/free pair per scheduled event or per staged trace
 * record costs more than the work the object represents. This header
 * provides the three shapes those paths need:
 *
 *  - Arena: a chunked bump allocator. Allocation is a pointer bump;
 *    individual frees do not exist; reset() recycles every chunk in
 *    place so a long-lived owner (the trace ring, a per-run scratch)
 *    reuses the same pages forever.
 *  - Slab<T>: a generational slot store over a single growable array.
 *    acquire()/release() recycle fixed slots through a free list with
 *    no per-object allocation, and every slot carries a generation
 *    counter so a stale handle can be rejected after reuse — the
 *    EventQueue builds its tombstone-free cancellation on this.
 *  - ArenaAllocator<T>: a std-allocator adapter over Arena, for
 *    containers whose whole lifetime matches the arena's (the trace
 *    record ring). deallocate() is a no-op by design; reclaim by
 *    resetting the arena after the container is emptied.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/logging.h"

namespace wsp::util {

/**
 * Chunked bump allocator. Not thread-safe; owners that share an arena
 * across threads must serialize externally (the trace ring allocates
 * only at configuration time, from one thread).
 */
class Arena
{
  public:
    static constexpr size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
        : chunkBytes_(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align. Never null. */
    void *allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        WSP_CHECK(align != 0 && (align & (align - 1)) == 0);
        // Align the absolute address, not the chunk offset: chunk
        // bases are only max_align_t-aligned, so stronger requests
        // (cache-line payloads) need the padding computed from the
        // real pointer. nextChunk(bytes + align) leaves room for it.
        if (current_ >= chunks_.size())
            nextChunk(bytes + align);
        size_t offset = alignedOffset(align, cursor_);
        if (offset + bytes > chunks_[current_].size) {
            nextChunk(bytes + align);
            offset = alignedOffset(align, 0);
        }
        cursor_ = offset + bytes;
        allocated_ += bytes;
        return chunks_[current_].data.get() + offset;
    }

    /** Typed convenience: uninitialized storage for @p count Ts. */
    template <typename T>
    T *allocate(size_t count)
    {
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Recycle every chunk: subsequent allocations reuse the existing
     * memory from the start. Outstanding pointers become invalid.
     */
    void reset()
    {
        current_ = 0;
        cursor_ = 0;
        allocated_ = 0;
    }

    /** Total bytes handed out since construction/reset(). */
    size_t bytesAllocated() const { return allocated_; }

    /** Chunks currently owned (high-water mark; reset() keeps them). */
    size_t chunkCount() const { return chunks_.size(); }

    /** Bytes of backing memory owned across all chunks. */
    size_t bytesReserved() const
    {
        size_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.size;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
    };

    /** Chunk offset at or past @p from where an @p align'd slot starts. */
    size_t alignedOffset(size_t align, size_t from) const
    {
        const auto base = reinterpret_cast<uintptr_t>(
            chunks_[current_].data.get());
        const uintptr_t address =
            (base + from + align - 1) & ~(static_cast<uintptr_t>(align) - 1);
        return static_cast<size_t>(address - base);
    }

    /** Advance to the next chunk able to hold @p need bytes. */
    void nextChunk(size_t need)
    {
        // First allocation lands in chunk 0; afterwards move past the
        // exhausted chunk, reusing recycled ones when large enough.
        size_t index = chunks_.empty() ? 0 : current_ + 1;
        while (index < chunks_.size() && chunks_[index].size < need)
            ++index;
        if (index >= chunks_.size()) {
            const size_t size = need > chunkBytes_ ? need : chunkBytes_;
            chunks_.push_back(
                Chunk{std::make_unique<char[]>(size), size});
            index = chunks_.size() - 1;
        }
        current_ = index;
        cursor_ = 0;
    }

    size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    size_t current_ = 0;
    size_t cursor_ = 0;
    size_t allocated_ = 0;
};

/**
 * Generational slot slab: fixed-size slots recycled through a free
 * list, each tagged with a generation that increments on release.
 *
 * Handles are (index, generation) pairs. A handle taken before a
 * slot's release never matches the slot again, which is what lets the
 * EventQueue drop its cancelled/live bookkeeping sets entirely: a
 * cancel with a stale handle simply fails the generation check.
 *
 * T must be default-constructible; slots are reused in place (the
 * owner is responsible for clearing payload state on release if T
 * holds resources — see EventQueue, which moves the callback out).
 *
 * Generations live in their own dense array rather than next to the
 * payloads: a stale-handle check then touches a few bytes of hot,
 * tightly packed memory instead of dragging a payload-sized cache
 * line in, and payload lines are only touched when the payload is.
 */
template <typename T>
class Slab
{
  public:
    Slab() = default;
    Slab(const Slab &) = delete;
    Slab &operator=(const Slab &) = delete;

    /** Acquire a slot; O(1) amortized, allocation-free when recycling. */
    uint32_t acquire()
    {
        if (!freeList_.empty()) {
            const uint32_t index = freeList_.back();
            freeList_.pop_back();
            return index;
        }
        values_.emplace_back();
        generations_.push_back(0);
        return static_cast<uint32_t>(values_.size() - 1);
    }

    /**
     * Release @p index back to the free list, bumping its generation
     * so outstanding handles to the old incarnation go stale.
     */
    void release(uint32_t index)
    {
        ++generations_[index];
        freeList_.push_back(index);
    }

    T &operator[](uint32_t index) { return values_[index]; }
    const T &operator[](uint32_t index) const { return values_[index]; }

    /** Current generation of slot @p index. */
    uint32_t generation(uint32_t index) const
    {
        return generations_[index];
    }

    /** True when @p index names a slot and @p generation is current. */
    bool alive(uint32_t index, uint32_t generation) const
    {
        return index < generations_.size() &&
               generations_[index] == generation;
    }

    /** Slots ever created (live + free). */
    size_t capacity() const { return values_.size(); }

    /** Slots currently acquired. */
    size_t liveCount() const { return values_.size() - freeList_.size(); }

  private:
    std::vector<T> values_;
    std::vector<uint32_t> generations_;
    std::vector<uint32_t> freeList_;
};

/**
 * std-allocator adapter over an Arena. deallocate() is a no-op: use
 * only for containers that live as long as the arena, or reset the
 * arena after dropping every container bound to it.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *allocate(size_t count)
    {
        return arena_->template allocate<T>(count);
    }

    void deallocate(T *, size_t) {}

    Arena *arena() const { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U> &other) const
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_;
};

} // namespace wsp::util
