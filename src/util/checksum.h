/**
 * @file
 * Checksums for crash-consistency markers and logs.
 */

#pragma once

#include <cstdint>
#include <span>

namespace wsp {

/** FNV-1a 64-bit hash over a byte span. */
constexpr uint64_t
fnv1a(std::span<const uint8_t> bytes, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t hash = seed;
    for (uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** FNV-1a over a single 64-bit word (for marker fields). */
constexpr uint64_t
fnv1aU64(uint64_t value, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t hash = seed;
    for (int i = 0; i < 8; ++i) {
        hash ^= value & 0xff;
        hash *= 0x100000001b3ull;
        value >>= 8;
    }
    return hash;
}

} // namespace wsp
