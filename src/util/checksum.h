/**
 * @file
 * Checksums for crash-consistency markers and logs.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace wsp {

/** FNV-1a 64-bit hash over a byte span. */
constexpr uint64_t
fnv1a(std::span<const uint8_t> bytes, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t hash = seed;
    for (uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** FNV-1a over a single 64-bit word (for marker fields). */
constexpr uint64_t
fnv1aU64(uint64_t value, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t hash = seed;
    for (int i = 0; i < 8; ++i) {
        hash ^= value & 0xff;
        hash *= 0x100000001b3ull;
        value >>= 8;
    }
    return hash;
}

namespace detail {

/** Reflected ECMA-182 polynomial (CRC-64/XZ). */
constexpr uint64_t kCrc64Poly = 0xc96c5795d7870f42ull;

constexpr std::array<uint64_t, 256>
makeCrc64Table()
{
    std::array<uint64_t, 256> table{};
    for (uint64_t i = 0; i < 256; ++i) {
        uint64_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kCrc64Poly : 0);
        table[i] = crc;
    }
    return table;
}

inline constexpr std::array<uint64_t, 256> kCrc64Table = makeCrc64Table();

} // namespace detail

/**
 * CRC-64 (ECMA-182, reflected) over a byte span. Unlike FNV-1a, a CRC
 * detects every burst error shorter than the polynomial — the media
 * faults flash actually suffers (bit flips, torn lines, bad blocks) —
 * which is why the per-region salvage directory binds CRCs and not
 * hashes. Incremental use: feed the previous return value as @p crc.
 */
constexpr uint64_t
crc64(std::span<const uint8_t> bytes, uint64_t crc = 0)
{
    crc = ~crc;
    for (uint8_t byte : bytes)
        crc = detail::kCrc64Table[(crc ^ byte) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace wsp
