#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace wsp {

namespace {

LogLevel globalLevel = LogLevel::Normal;

/** Shared formatter: prefix + user message + newline to the stream. */
void
emit(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    emit(stdout, "info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit(stdout, "debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace wsp
