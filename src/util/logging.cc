#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wsp {

namespace {

LogLevel globalLevel = LogLevel::Normal;

/** Extra consumer of formatted debugLog() lines (the trace layer). */
void (*debugSink)(const char *message) = nullptr;

/** Shared formatter: prefix + user message + newline to the stream. */
void
emit(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
configureLogLevelFromEnv()
{
    const char *value = std::getenv("WSP_LOG_LEVEL");
    if (value == nullptr || *value == '\0')
        return;
    if (std::strcmp(value, "quiet") == 0 || std::strcmp(value, "0") == 0)
        globalLevel = LogLevel::Quiet;
    else if (std::strcmp(value, "normal") == 0 ||
             std::strcmp(value, "1") == 0)
        globalLevel = LogLevel::Normal;
    else if (std::strcmp(value, "debug") == 0 ||
             std::strcmp(value, "2") == 0)
        globalLevel = LogLevel::Debug;
    else
        warn("WSP_LOG_LEVEL=%s not recognized; expected "
             "quiet|normal|debug (or 0|1|2)", value);
}

void
setDebugSink(void (*sink)(const char *message))
{
    debugSink = sink;
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    emit(stdout, "info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    void (*sink)(const char *) = debugSink;
    const bool print = globalLevel >= LogLevel::Debug;
    if (!print && sink == nullptr)
        return;
    // Format once so the console line and the sink see the same text.
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (print)
        std::fprintf(stdout, "debug: %s\n", buf);
    if (sink != nullptr)
        sink(buf);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace wsp
