/**
 * @file
 * Physical units and human-readable formatting.
 *
 * The simulation substrate keeps time as integer nanoseconds (Tick)
 * so event ordering is exact, and converts to floating-point seconds
 * only at model boundaries (energy integration, reporting). Electrical
 * quantities are plain doubles in SI units: volts, amperes, watts,
 * joules, farads.
 */

#pragma once

#include <cstdint>
#include <string>

namespace wsp {

/** Simulated time in integer nanoseconds. */
using Tick = uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kTickNever = ~0ull;

// Time literals -----------------------------------------------------

constexpr Tick kNanosecond = 1;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert ticks to floating-point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) * 1e-6;
}

/** Convert ticks to floating-point microseconds. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) * 1e-3;
}

/** Convert floating-point seconds to ticks (rounded to nearest ns). */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * 1e9 + 0.5);
}

/** Convert floating-point milliseconds to ticks. */
constexpr Tick
fromMillis(double ms)
{
    return fromSeconds(ms * 1e-3);
}

/** Convert floating-point microseconds to ticks. */
constexpr Tick
fromMicros(double us)
{
    return fromSeconds(us * 1e-6);
}

// Data sizes ---------------------------------------------------------

constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;

// Formatting ---------------------------------------------------------

/** Format ticks with an auto-selected unit, e.g. "33.0 ms". */
std::string formatTime(Tick t);

/** Format a byte count with an auto-selected unit, e.g. "8.0 MiB". */
std::string formatBytes(uint64_t bytes);

/** Format a rate in bytes/second, e.g. "2.1 GiB/s". */
std::string formatBandwidth(double bytes_per_second);

/** Format a double with @p digits significant decimals. */
std::string formatDouble(double value, int digits = 2);

} // namespace wsp
