#include "util/flit.h"

namespace wsp::util {

namespace {
constexpr uint64_t kLineSize = 64;
constexpr uint64_t lineBase(uint64_t addr) { return addr & ~(kLineSize - 1); }
} // namespace

uint64_t
FlitTracker::declareOp(uint8_t kind, uint64_t a, uint64_t b)
{
    FlitOp op;
    op.id = ops_.size();
    op.kind = kind;
    op.a = a;
    op.b = b;
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

void
FlitTracker::beginApply(uint64_t id)
{
    FlitOp &op = ops_.at(id);
    op.invoked = true;
    op.invokeTick = now();
    currentOp_ = id;
}

void
FlitTracker::endApply()
{
    if (currentOp_ != kNoOp) {
        FlitOp &op = ops_[currentOp_];
        op.applied = true;
        // An op whose stores were all clean hits (or that stored
        // nothing) has no outstanding line: it persisted the moment
        // it applied.
        if (op.persistTick == kNoTick && opPersisted(op))
            op.persistTick = now();
    }
    currentOp_ = kNoOp;
}

void
FlitTracker::respond(uint64_t id, bool ok, uint64_t b)
{
    FlitOp &op = ops_.at(id);
    // A response implies the operation started: a caller that hears an
    // acknowledgement before any mutation ran (the ack-before-apply
    // bug) still produced an invoked op the checkers must account for.
    if (!op.invoked) {
        op.invoked = true;
        op.invokeTick = now();
    }
    op.responded = true;
    op.ok = ok;
    op.b = b;
    op.responseTick = now();
}

void
FlitTracker::onStore(uint64_t addr, uint64_t len)
{
    const uint64_t first = lineBase(addr);
    const uint64_t last = len > 0 ? lineBase(addr + len - 1) : first;
    for (uint64_t line = first; line <= last; line += kLineSize) {
        LineState &ls = lines_[line];
        ++ls.pending;
        ls.lastStoreSeq = ++storeSeq_;
        if (currentOp_ == kNoOp)
            continue;
        FlitOp &op = ops_[currentOp_];
        bool found = false;
        for (auto &entry : op.lines) {
            if (entry.first == line) {
                entry.second = ls.lastStoreSeq;
                found = true;
                break;
            }
        }
        if (!found)
            op.lines.emplace_back(line, ls.lastStoreSeq);
        op.persistTick = kNoTick;
    }
}

void
FlitTracker::onWriteback(uint64_t line_base)
{
    LineState &ls = lines_[lineBase(line_base)];
    ls.pending = 0;
    ls.lastWritebackSeq = ls.lastStoreSeq;
    ls.lastWritebackTick = now();
    settleOpsOn(lineBase(line_base));
}

void
FlitTracker::onLineLost(uint64_t line_base)
{
    // The counter clears (the line is gone from the cache) but
    // lastWritebackSeq does not advance: pending stores never reached
    // the NV domain, so the ops that issued them stay unpersisted.
    // Remember the discarded interval so a later write-back of the
    // reestablished line cannot retroactively certify the dead stores.
    LineState &ls = lines_[lineBase(line_base)];
    ls.pending = 0;
    ls.wbAtLoss = ls.lastWritebackSeq;
    ls.lostSeq = ls.lastStoreSeq;
}

uint64_t
FlitTracker::pendingStores(uint64_t line_base) const
{
    auto it = lines_.find(lineBase(line_base));
    return it == lines_.end() ? 0 : it->second.pending;
}

bool
FlitTracker::opPersisted(const FlitOp &op) const
{
    for (const auto &[line, seq] : op.lines) {
        auto it = lines_.find(line);
        if (it == lines_.end() || it->second.lastWritebackSeq < seq)
            return false;
        // Written back, unless the store died in a cache loss first.
        const LineState &ls = it->second;
        if (seq > ls.wbAtLoss && seq <= ls.lostSeq)
            return false;
    }
    return true;
}

bool
FlitTracker::opPersisted(const FlitOp &op,
                         const std::function<bool(uint64_t)> &covered) const
{
    if (!opPersisted(op))
        return false;
    for (const auto &[line, seq] : op.lines) {
        (void)seq;
        if (!covered(line))
            return false;
    }
    return true;
}

size_t
FlitTracker::outstandingLines() const
{
    size_t count = 0;
    for (const auto &[line, ls] : lines_) {
        (void)line;
        if (ls.pending > 0)
            ++count;
    }
    return count;
}

void
FlitTracker::settleOpsOn(uint64_t line_base)
{
    for (FlitOp &op : ops_) {
        if (op.persistTick != kNoTick || op.lines.empty())
            continue;
        bool touches = false;
        for (const auto &entry : op.lines) {
            if (entry.first == line_base) {
                touches = true;
                break;
            }
        }
        if (touches && opPersisted(op))
            op.persistTick = now();
    }
}

void
FlitTracker::reset()
{
    ops_.clear();
    lines_.clear();
    currentOp_ = kNoOp;
    storeSeq_ = 0;
}

} // namespace wsp::util
