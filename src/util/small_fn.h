/**
 * @file
 * Small-buffer-optimized move-only callback for the event engine.
 *
 * std::function<void()> spills any capture beyond two words to the
 * general-purpose heap, which puts a malloc/free pair on the hot path
 * of every scheduled event whose closure carries more than a `this`
 * pointer. SmallFn widens the inline buffer so the closures the
 * simulation actually schedules (an object pointer plus a few
 * arguments) stay in place inside the event slot, and drops the
 * copyability std::function insists on — events are moved into the
 * queue and fired once, so move-only is the honest contract.
 *
 * Callables larger than the buffer (or with stronger alignment than
 * max_align_t) still work via a heap fallback; the EventQueue's slab
 * keeps that rare by sizing its slots for the common captures.
 */

#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wsp::util {

/** Move-only void() callable with @p InlineBytes of in-place space. */
template <size_t InlineBytes = 48>
class SmallFn
{
  public:
    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (storage_.buffer) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
        } else {
            storage_.heap = new Fn(std::forward<F>(fn));
            ops_ = heapOps<Fn>();
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { destroy(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(target()); }

    /** True when the callable lives in the inline buffer. */
    bool isInline() const { return ops_ != nullptr && ops_->isInline; }

    /** Compile-time: would @p Fn avoid the heap fallback? */
    template <typename Fn>
    static constexpr bool fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *target);
        /** Move-construct into @p to and destroy @p from (inline only;
         *  nullptr when a raw byte copy relocates the callable). */
        void (*relocate)(void *from, void *to);
        /** nullptr when the callable is trivially destructible. */
        void (*destroy)(void *target);
        bool isInline;
    };

    void *target()
    {
        return ops_->isInline ? static_cast<void *>(storage_.buffer)
                              : storage_.heap;
    }

    void moveFrom(SmallFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ == nullptr)
            return;
        if (!ops_->isInline)
            storage_.heap = other.storage_.heap;
        else if (ops_->relocate == nullptr)
            // Trivially relocatable (the overwhelmingly common case for
            // sim closures): one fixed-size copy, no indirect call.
            std::memcpy(storage_.buffer, other.storage_.buffer,
                        InlineBytes);
        else
            ops_->relocate(other.storage_.buffer, storage_.buffer);
        other.ops_ = nullptr;
    }

    void destroy()
    {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr)
                ops_->destroy(target());
            ops_ = nullptr;
        }
    }

    template <typename Fn>
    static const Ops *inlineOps()
    {
        static constexpr Ops ops = {
            [](void *target) { (*static_cast<Fn *>(target))(); },
            std::is_trivially_copyable_v<Fn>
                ? nullptr
                : +[](void *from, void *to) {
                      Fn *source = static_cast<Fn *>(from);
                      new (to) Fn(std::move(*source));
                      source->~Fn();
                  },
            std::is_trivially_destructible_v<Fn>
                ? nullptr
                : +[](void *target) { static_cast<Fn *>(target)->~Fn(); },
            true,
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *heapOps()
    {
        static constexpr Ops ops = {
            [](void *target) { (*static_cast<Fn *>(target))(); },
            nullptr, // heap callables relocate by pointer swap
            [](void *target) { delete static_cast<Fn *>(target); },
            false,
        };
        return &ops;
    }

    union Storage
    {
        alignas(std::max_align_t) unsigned char buffer[InlineBytes];
        void *heap;
    };

    Storage storage_;
    const Ops *ops_ = nullptr;
};

} // namespace wsp::util
