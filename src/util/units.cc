#include "util/units.h"

#include <cstdio>

namespace wsp {

namespace {

/** snprintf into a std::string. */
std::string
format(const char *fmt, double value, const char *unit)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value, unit);
    return buf;
}

} // namespace

std::string
formatTime(Tick t)
{
    const double ns = static_cast<double>(t);
    if (ns >= 1e9)
        return format("%.3f %s", ns * 1e-9, "s");
    if (ns >= 1e6)
        return format("%.3f %s", ns * 1e-6, "ms");
    if (ns >= 1e3)
        return format("%.3f %s", ns * 1e-3, "us");
    return format("%.0f %s", ns, "ns");
}

std::string
formatBytes(uint64_t bytes)
{
    const double b = static_cast<double>(bytes);
    if (bytes >= kGiB)
        return format("%.2f %s", b / static_cast<double>(kGiB), "GiB");
    if (bytes >= kMiB)
        return format("%.2f %s", b / static_cast<double>(kMiB), "MiB");
    if (bytes >= kKiB)
        return format("%.2f %s", b / static_cast<double>(kKiB), "KiB");
    return format("%.0f %s", b, "B");
}

std::string
formatBandwidth(double bytes_per_second)
{
    if (bytes_per_second >= static_cast<double>(kGiB))
        return format("%.2f %s", bytes_per_second / static_cast<double>(kGiB),
                      "GiB/s");
    if (bytes_per_second >= static_cast<double>(kMiB))
        return format("%.2f %s", bytes_per_second / static_cast<double>(kMiB),
                      "MiB/s");
    return format("%.0f %s", bytes_per_second, "B/s");
}

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace wsp
