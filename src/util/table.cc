#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"
#include "util/units.h"

namespace wsp {

void
Table::setHeader(std::vector<std::string> header)
{
    WSP_CHECK(rows_.empty());
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    WSP_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (size_t c = 0; c < row.size(); ++c) {
            line += " " + row[c];
            line.append(widths[c] - row[c].size() + 1, ' ');
            line += "|";
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (size_t w : widths) {
        rule.append(w + 2, '-');
        rule += "+";
    }
    rule += "\n";

    std::string out = "== " + title_ + " ==\n" + rule;
    out += render_row(header_);
    out += rule;
    for (const auto &row : rows_)
        out += render_row(row);
    out += rule;
    return out;
}

std::string
Table::renderCsv() const
{
    auto csv_row = [](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += ",";
            line += row[c];
        }
        return line + "\n";
    };
    std::string out = csv_row(header_);
    for (const auto &row : rows_)
        out += csv_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
AsciiChart::addSeries(const Series &series)
{
    WSP_CHECK(!series.xs.empty());
    series_.push_back(series);
}

std::string
AsciiChart::render(size_t width, size_t height) const
{
    WSP_CHECK(!series_.empty());

    double x_min = series_.front().xs.front();
    double x_max = x_min;
    double y_min = series_.front().ys.front();
    double y_max = y_min;
    for (const auto &s : series_) {
        for (double x : s.xs) {
            x_min = std::min(x_min, x);
            x_max = std::max(x_max, x);
        }
        for (double y : s.ys) {
            y_min = std::min(y_min, y);
            y_max = std::max(y_max, y);
        }
    }
    if (logY_) {
        WSP_CHECK(y_min > 0.0);
        y_min = std::log10(y_min);
        y_max = std::log10(y_max);
    }
    if (x_max == x_min)
        x_max = x_min + 1.0;
    if (y_max == y_min)
        y_max = y_min + 1.0;

    static const char kGlyphs[] = "*o+x#@%&";
    std::vector<std::string> grid(height, std::string(width, ' '));

    for (size_t si = 0; si < series_.size(); ++si) {
        const auto &s = series_[si];
        const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
        for (size_t i = 0; i < s.xs.size(); ++i) {
            double y = s.ys[i];
            if (logY_)
                y = std::log10(std::max(y, 1e-300));
            const double xf = (s.xs[i] - x_min) / (x_max - x_min);
            const double yf = (y - y_min) / (y_max - y_min);
            auto col = static_cast<size_t>(
                xf * static_cast<double>(width - 1) + 0.5);
            auto row = static_cast<size_t>(
                yf * static_cast<double>(height - 1) + 0.5);
            grid[height - 1 - row][col] = glyph;
        }
    }

    char buf[128];
    std::string out = "== " + title_ + " ==\n";
    const double y_top = logY_ ? std::pow(10.0, y_max) : y_max;
    const double y_bot = logY_ ? std::pow(10.0, y_min) : y_min;
    std::snprintf(buf, sizeof(buf), "%s (top=%.4g bottom=%.4g%s)\n",
                  yLabel_.c_str(), y_top, y_bot, logY_ ? ", log scale" : "");
    out += buf;
    for (const auto &row : grid)
        out += "  |" + row + "\n";
    out += "  +" + std::string(width, '-') + "\n";
    std::snprintf(buf, sizeof(buf), "   %s: left=%.4g right=%.4g\n",
                  xLabel_.c_str(), x_min, x_max);
    out += buf;
    for (size_t si = 0; si < series_.size(); ++si) {
        std::snprintf(buf, sizeof(buf), "   %c %s\n",
                      kGlyphs[si % (sizeof(kGlyphs) - 1)],
                      series_[si].name.c_str());
        out += buf;
    }
    return out;
}

void
AsciiChart::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
ShapeCheck::expectBetween(const std::string &what, double value, double lo,
                          double hi)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "value %.4g, expected [%.4g, %.4g]",
                  value, lo, hi);
    record(what, value >= lo && value <= hi, buf);
}

void
ShapeCheck::expectGreater(const std::string &what, double a, double b)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.4g vs %.4g", a, b);
    record(what, a > b, buf);
}

void
ShapeCheck::expectRatio(const std::string &what, double a, double b,
                        double lo, double hi)
{
    const double ratio = (b == 0.0) ? 0.0 : a / b;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "ratio %.3g, expected [%.3g, %.3g]",
                  ratio, lo, hi);
    record(what, b != 0.0 && ratio >= lo && ratio <= hi, buf);
}

void
ShapeCheck::expectTrue(const std::string &what, bool ok)
{
    record(what, ok, ok ? "holds" : "violated");
}

void
ShapeCheck::record(const std::string &what, bool ok,
                   const std::string &detail)
{
    lines_.push_back(std::string(ok ? "  [PASS] " : "  [FAIL] ") + what +
                     " (" + detail + ")");
    if (!ok)
        ++failures_;
}

bool
ShapeCheck::summarize() const
{
    std::printf("shape check: %s\n", experiment_.c_str());
    for (const auto &line : lines_)
        std::printf("%s\n", line.c_str());
    std::printf("shape check result: %s (%d of %zu failed)\n",
                failures_ == 0 ? "PASS" : "FAIL", failures_, lines_.size());
    return failures_ == 0;
}

} // namespace wsp
