/**
 * @file
 * FliT-style per-object flush tracking and operation histories.
 *
 * FliT (arXiv 2108.04202) makes persistence boundaries cheap and
 * declarative: every persistent object carries a small counter that
 * stores increment and flushes clear, so a load can tell in O(1)
 * whether the object has an outstanding (unflushed) store. This
 * library is the simulator's version of that idea, at cache-line
 * granularity, plus the piece the formal correctness conditions need
 * on top: per-operation history records.
 *
 * A data structure (KvStore, ShardedKvStore, the pheap logs) declares
 * its persistence boundaries by routing stores through a FlitTracker;
 * the cache model reports write-backs and losses into the same
 * tracker. The tracker then knows, for every operation, the three
 * instants the correctness-conditions taxonomy (arXiv 2208.11114) is
 * built from:
 *
 *   - invocation  (the operation started executing),
 *   - response    (the caller observed the result),
 *   - persist     (the last line the operation dirtied reached the
 *                  NV domain — the FliT counters of all its lines
 *                  dropped to zero).
 *
 * The crashsim conditions checkers (src/crashsim/conditions/) consume
 * these records to decide durable linearizability, buffered durable
 * linearizability, and detectable execution at any crash instant.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace wsp::util {

/** "Never happened" sentinel for history ticks. */
constexpr Tick kNoTick = ~0ull;

/** One operation's history record (invocation, response, persist). */
struct FlitOp
{
    uint64_t id = 0;   ///< dense, in declaration order
    uint8_t kind = 0;  ///< application-defined opcode
    uint64_t a = 0;    ///< first operand (e.g. key)
    uint64_t b = 0;    ///< second operand (e.g. value)
    bool ok = false;   ///< response outcome

    bool invoked = false;   ///< started executing
    bool applied = false;   ///< mutation reached the data structure
    bool responded = false; ///< caller observed the result

    Tick invokeTick = kNoTick;
    Tick responseTick = kNoTick;

    /**
     * Instant the operation's last outstanding store was written back
     * to the NV domain; kNoTick while any line still carries a
     * nonzero flush counter (or was lost with the cache).
     */
    Tick persistTick = kNoTick;

    /** (line base, store sequence) of every line the op dirtied. */
    std::vector<std::pair<uint64_t, uint64_t>> lines;
};

/**
 * Per-line flush counters plus the operation histories built on them.
 * Single-threaded, like the simulator's event loop.
 */
class FlitTracker
{
  public:
    /** Clock the tracker stamps history ticks with. */
    void setClock(std::function<Tick()> clock) { clock_ = std::move(clock); }

    // Operation lifecycle ----------------------------------------------

    /** Declare an operation (not yet invoked); returns its id. */
    uint64_t declareOp(uint8_t kind, uint64_t a, uint64_t b);

    /** The operation started executing; its stores are attributed to
     *  it until endApply(). */
    void beginApply(uint64_t id);

    /** The operation finished mutating the data structure. */
    void endApply();

    /** The caller observed the result (@p ok, result operand @p b). */
    void respond(uint64_t id, bool ok, uint64_t b);

    // Store / flush plumbing -------------------------------------------

    /**
     * A store of @p len bytes at @p addr by the current operation:
     * bumps the flush counter of every line it touches (FliT's
     * store-side increment). Stores outside beginApply/endApply are
     * counted per line but belong to no operation.
     */
    void onStore(uint64_t addr, uint64_t len);

    /** Line @p line_base was written back to the NV domain (FliT's
     *  flush-side clear). */
    void onWriteback(uint64_t line_base);

    /** Line @p line_base was lost with the cache (power loss without
     *  write-back): its pending stores will never persist. */
    void onLineLost(uint64_t line_base);

    // Queries ----------------------------------------------------------

    /** FliT counter: stores to @p line_base since its last write-back. */
    uint64_t pendingStores(uint64_t line_base) const;

    /** Every store of @p op reached the NV domain (all counters it
     *  contributed to have been cleared since). */
    bool opPersisted(const FlitOp &op) const;

    /**
     * As opPersisted(), additionally requiring every line to satisfy
     * @p covered — e.g. "lies in the flash-programmed suffix of its
     * NVDIMM module", for images where DRAM content decayed.
     */
    bool opPersisted(const FlitOp &op,
                     const std::function<bool(uint64_t)> &covered) const;

    const std::vector<FlitOp> &ops() const { return ops_; }
    FlitOp &op(uint64_t id) { return ops_.at(id); }

    /** Lines with a nonzero flush counter right now. */
    size_t outstandingLines() const;

    /** Forget all operations and counters. */
    void reset();

  private:
    struct LineState
    {
        uint64_t pending = 0;          ///< FliT counter
        uint64_t lastStoreSeq = 0;     ///< seq of the newest store
        uint64_t lastWritebackSeq = 0; ///< seq when last cleared
        Tick lastWritebackTick = kNoTick;

        /**
         * Stores with seq in (wbAtLoss, lostSeq] were discarded with
         * the cache: a write-back after the loss must not certify
         * them (it only covers stores issued since).
         */
        uint64_t lostSeq = 0;
        uint64_t wbAtLoss = 0;
    };

    Tick now() const { return clock_ ? clock_() : 0; }

    /** Stamp persistTick on ops completed by clearing @p line_base. */
    void settleOpsOn(uint64_t line_base);

    std::function<Tick()> clock_;
    std::vector<FlitOp> ops_;
    std::unordered_map<uint64_t, LineState> lines_;
    uint64_t currentOp_ = kNoOp;
    uint64_t storeSeq_ = 0;

    static constexpr uint64_t kNoOp = ~0ull;
};

} // namespace wsp::util
