#include "util/thread_pool.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/logging.h"

namespace wsp {

ThreadPool::ThreadPool(unsigned threads)
{
    WSP_CHECK(threads >= 1);
    workers_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop(unsigned worker)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
        }
        (*job)(worker);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::runWorkers(const std::function<void(unsigned)> &fn)
{
    std::unique_lock<std::mutex> lock(mutex_);
    WSP_CHECKF(remaining_ == 0, "ThreadPool::runWorkers re-entered");
    job_ = &fn;
    remaining_ = threadCount();
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void
ThreadPool::pinToCores()
{
#ifdef __linux__
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        return;
    for (unsigned w = 0; w < workers_.size(); ++w) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(w % cores, &set);
        // Best effort: a restricted affinity mask (cgroups, taskset)
        // can legitimately refuse a core; the pool still works, just
        // unpinned.
        (void)pthread_setaffinity_np(workers_[w].native_handle(),
                                     sizeof(set), &set);
    }
#endif
}

void
ThreadPool::parallelFor(
    uint64_t items,
    const std::function<void(uint64_t, uint64_t, unsigned)> &fn)
{
    const unsigned workers = threadCount();
    runWorkers([items, workers, &fn](unsigned w) {
        const auto [begin, end] = partition(items, workers, w);
        if (begin < end)
            fn(begin, end, w);
    });
}

} // namespace wsp
