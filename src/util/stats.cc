#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace wsp {

void
RunningStat::add(double sample)
{
    ++count_;
    sum_ += sample;
    if (count_ == 1) {
        mean_ = sample;
        min_ = sample;
        max_ = sample;
        m2_ = 0.0;
        return;
    }
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    WSP_CHECK(buckets >= 1);
    WSP_CHECK(hi > lo);
}

void
Histogram::add(double sample)
{
    ++total_;
    if (sample < lo_) {
        ++underflow_;
        return;
    }
    if (sample >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (sample - lo_) / (hi_ - lo_);
    auto idx = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

void
Histogram::add(double sample, uint64_t count)
{
    total_ += count;
    if (sample < lo_) {
        underflow_ += count;
        return;
    }
    if (sample >= hi_) {
        overflow_ += count;
        return;
    }
    const double frac = (sample - lo_) / (hi_ - lo_);
    auto idx = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    counts_[idx] += count;
}

bool
Histogram::mergeCompatible(const Histogram &other) const
{
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
}

void
Histogram::merge(const Histogram &other)
{
    WSP_CHECK(mergeCompatible(other));
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::quantile(double q) const
{
    WSP_CHECK(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return lo_;
    const auto target = static_cast<uint64_t>(
        q * static_cast<double>(total_));
    uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return bucketLo(i) + width / 2.0;
    }
    return hi_;
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<size_t>(
            static_cast<double>(counts_[i]) /
            static_cast<double>(peak) * static_cast<double>(width));
        std::snprintf(line, sizeof(line), "%12.4g | ", bucketLo(i));
        out += line;
        out.append(bar_len, '#');
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
    }
    return out;
}

double
Series::at(double x) const
{
    WSP_CHECK(!xs.empty());
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    for (size_t i = 1; i < xs.size(); ++i) {
        if (x <= xs[i]) {
            const double span = xs[i] - xs[i - 1];
            if (span <= 0.0)
                return ys[i];
            const double frac = (x - xs[i - 1]) / span;
            return ys[i - 1] + frac * (ys[i] - ys[i - 1]);
        }
    }
    return ys.back();
}

double
Series::maxY() const
{
    double best = ys.empty() ? 0.0 : ys.front();
    for (double y : ys)
        best = std::max(best, y);
    return best;
}

double
Series::minY() const
{
    double best = ys.empty() ? 0.0 : ys.front();
    for (double y : ys)
        best = std::min(best, y);
    return best;
}

bool
findCrossover(const Series &a, const Series &b, double *x_out)
{
    WSP_CHECK(a.size() == b.size());
    for (size_t i = 1; i < a.size(); ++i) {
        const double d0 = a.ys[i - 1] - b.ys[i - 1];
        const double d1 = a.ys[i] - b.ys[i];
        if (d0 == 0.0) {
            *x_out = a.xs[i - 1];
            return true;
        }
        if ((d0 < 0.0 && d1 >= 0.0) || (d0 > 0.0 && d1 <= 0.0)) {
            // Interpolate the zero of (a - b) within this segment.
            const double frac = d0 / (d0 - d1);
            *x_out = a.xs[i - 1] + frac * (a.xs[i] - a.xs[i - 1]);
            return true;
        }
    }
    return false;
}

} // namespace wsp
