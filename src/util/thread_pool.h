/**
 * @file
 * Fixed-size worker thread pool with deterministic partitioning.
 *
 * The serving layer (apps/kv_service.h) drives real host threads at
 * the sharded stores, so benchmarks measure genuine concurrency, not
 * simulated time. Determinism is preserved by construction:
 *
 *  - work is partitioned *statically* by worker index (no stealing),
 *    so which worker executes which item never depends on scheduling,
 *  - each worker draws randomness from its own Rng::stream(worker),
 *    never from a shared generator,
 *  - per-worker results are merged in worker-index order.
 *
 * Under those rules the same seed produces bit-identical results at
 * any thread count the partition was computed for, regardless of how
 * the OS schedules the workers.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace wsp {

/** Persistent pool of worker threads, joined on destruction. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Run @p fn(worker) once per worker, concurrently, and block
     * until every invocation returns. The worker index is the only
     * identity a task needs: partition(), Rng::stream() and
     * per-worker output slots all key off it.
     */
    void runWorkers(const std::function<void(unsigned worker)> &fn);

    /**
     * Pin worker w to CPU core w mod hardware_concurrency (Linux;
     * a no-op elsewhere). The traffic plane uses this so a shard's
     * owning consumer keeps its store's cache-model state resident on
     * one core instead of migrating. Idempotent; safe while idle.
     */
    void pinToCores();

    /**
     * Static contiguous split of @p items across @p workers: the
     * half-open range worker @p w owns. Early workers get the
     * remainder, so ranges differ in size by at most one.
     */
    static std::pair<uint64_t, uint64_t>
    partition(uint64_t items, unsigned workers, unsigned w)
    {
        const uint64_t base = items / workers;
        const uint64_t extra = items % workers;
        const uint64_t begin =
            static_cast<uint64_t>(w) * base + (w < extra ? w : extra);
        return {begin, begin + base + (w < extra ? 1 : 0)};
    }

    /**
     * parallelFor over [0, @p items): each worker runs
     * @p fn(begin, end, worker) on its static partition. Blocks until
     * all partitions complete.
     */
    void parallelFor(uint64_t items,
                     const std::function<void(uint64_t begin, uint64_t end,
                                              unsigned worker)> &fn);

  private:
    void workerLoop(unsigned worker);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(unsigned)> *job_ = nullptr;
    uint64_t generation_ = 0;
    unsigned remaining_ = 0;
    bool shutdown_ = false;
};

} // namespace wsp
