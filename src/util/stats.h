/**
 * @file
 * Statistics helpers used by benches and timing models.
 *
 * RunningStat accumulates mean/variance/min/max in one pass (Welford's
 * algorithm); Histogram buckets samples for latency distributions;
 * Series records (x, y) points for figure-style output.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsp {

/** One-pass accumulator for count, mean, stddev, min, and max. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Remove all samples. */
    void reset();

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width linear histogram over [lo, hi); out-of-range samples
 * land in saturating underflow/overflow buckets.
 */
class Histogram
{
  public:
    /** @param buckets number of in-range buckets (>= 1). */
    Histogram(double lo, double hi, size_t buckets);

    void add(double sample);

    /**
     * Record @p sample @p count times in one bucket update. The
     * traffic plane's consumers complete whole drained runs at one
     * clock reading, so every frame sharing an intended time shares a
     * latency sample — recording them as a weighted add keeps the
     * hot path at one bucket increment per run instead of per op.
     */
    void add(double sample, uint64_t count);

    /**
     * True when @p other has identical bucketing (same [lo, hi) range
     * and bucket count), i.e. a merge is lossless.
     */
    bool mergeCompatible(const Histogram &other) const;

    /**
     * Fold another histogram's counts into this one. The fleet merges
     * per-node latency histograms this way instead of re-recording
     * every sample at the aggregation point. Requires
     * mergeCompatible(other).
     */
    void merge(const Histogram &other);

    size_t buckets() const { return counts_.size(); }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }

    /** Lower edge of bucket @p i. */
    double bucketLo(size_t i) const;

    /** Approximate quantile (0 <= q <= 1) from bucket midpoints. */
    double quantile(double q) const;

    /** Percentile form of quantile(): percentile(99) == quantile(0.99). */
    double percentile(double p) const { return quantile(p / 100.0); }

    /** Render a fixed-width ASCII bar chart. */
    std::string render(size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/** An (x, y) series with a name; the unit of exchange for figures. */
struct Series
{
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;

    void
    add(double x, double y)
    {
        xs.push_back(x);
        ys.push_back(y);
    }

    size_t size() const { return xs.size(); }

    /** Linear interpolation of y at @p x; clamps outside the range. */
    double at(double x) const;

    /** Largest y value (0 when empty). */
    double maxY() const;

    /** Smallest y value (0 when empty). */
    double minY() const;
};

/**
 * Find the x position where series @p a crosses from below @p b to
 * above it (or vice versa). Returns false when they never cross.
 * Both series must be sampled at identical x positions.
 */
bool findCrossover(const Series &a, const Series &b, double *x_out);

} // namespace wsp
