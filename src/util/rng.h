/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload generators, jitter
 * in timing models, failure injection points) draws from Rng so that
 * every experiment is reproducible from its seed. The core generator
 * is xoshiro256**, seeded through SplitMix64 as its authors recommend.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace wsp {

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
constexpr uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * <random> distributions, though the member helpers below cover the
 * library's needs without the standard library's cross-platform
 * variability.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a seed; equal seeds give equal sequences. */
    explicit Rng(uint64_t seed = 0x57535021ull) { reseed(seed); }

    /** Reset the generator to the sequence for @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be positive. */
    uint64_t
    next(uint64_t bound)
    {
        WSP_CHECK(bound > 0);
        // Lemire's multiply-shift rejection method: unbiased and fast.
        uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<uint64_t>(m);
        if (low < bound) {
            const uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        WSP_CHECK(lo <= hi);
        const auto span = static_cast<uint64_t>(hi - lo) + 1;
        // span == 0 means the full 64-bit range.
        const uint64_t draw = (span == 0) ? (*this)() : next(span);
        return lo + static_cast<int64_t>(draw);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Normal draw via Box-Muller (the full pair is not cached). */
    double
    gaussian(double mean, double stddev)
    {
        // Reject u1 == 0 so log() stays finite.
        double u1 = uniform();
        while (u1 <= 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double radius = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        return mean + stddev * radius * std::cos(theta);
    }

    /** Exponential draw with the given mean (mean > 0). */
    double
    exponential(double mean)
    {
        WSP_CHECK(mean > 0.0);
        double u = uniform();
        while (u <= 0.0)
            u = uniform();
        return -mean * std::log(u);
    }

    /**
     * Fork an independent child stream; children of distinct indexes
     * are decorrelated from each other and from the parent. NOTE:
     * fork() advances this generator, so the child depends on how
     * many draws preceded it. Concurrent workers must use stream()
     * instead, which is order-independent.
     */
    Rng
    fork(uint64_t index)
    {
        uint64_t sm = (*this)() ^ (index * 0x9e3779b97f4a7c15ull);
        return Rng(splitMix64(sm));
    }

    /**
     * Independently-seeded stream for worker @p index, derived from
     * this generator's current state WITHOUT advancing it. Unlike
     * fork(), the result depends only on (state, index), never on the
     * order or number of other stream() calls — so a thread pool can
     * hand worker w stream(w) and stay deterministic no matter how
     * the workers are scheduled.
     */
    Rng
    stream(uint64_t index) const
    {
        uint64_t sm = state_[0] ^ rotl(state_[1], 17) ^
                      rotl(state_[2], 31) ^ rotl(state_[3], 47) ^
                      ((index + 1) * 0x9e3779b97f4a7c15ull);
        // Two splitmix rounds decorrelate adjacent indexes.
        (void)splitMix64(sm);
        return Rng(splitMix64(sm));
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
};

} // namespace wsp
