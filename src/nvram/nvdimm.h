/**
 * @file
 * Flash-backed NVDIMM module model (AgigaRAM-style).
 *
 * A battery-free NVDIMM pairs commodity DRAM with an equal amount of
 * NAND flash and an ultracapacitor bank (paper section 2). During
 * normal operation the flash is invisible; when commanded (or when
 * armed and host power is lost) the module copies DRAM to flash,
 * powered entirely by its own ultracapacitor, so the save completes
 * even after the system PSU is dead. On the next boot the module
 * copies flash back into DRAM before the OS resumes.
 *
 * The model reproduces the externally visible contract and the
 * timing/energy envelope from the paper:
 *  - the DRAM must be put into self-refresh before save or restore,
 *  - save time scales with capacity over parallel flash channels and
 *    stays under ~10 s for modules up to 8 GiB,
 *  - the ultracapacitor must hold at least the save's energy; Fig. 2
 *    shows the voltage/power trajectory during a 1 GiB save,
 *  - DRAM content is lost (poisoned) if host power disappears while
 *    the module is neither in self-refresh nor saving.
 */

#pragma once

#include <string>
#include <vector>

#include "nvram/sparse_memory.h"
#include "power/ultracapacitor.h"
#include "sim/sim_object.h"
#include "util/units.h"

namespace wsp {

/** Configuration of one NVDIMM module. */
struct NvdimmConfig
{
    uint64_t capacityBytes = 1 * kGiB;

    /**
     * Number of parallel DRAM-to-flash channels. Vendors scale the
     * flash with the DRAM, so the default is one channel per GiB,
     * which keeps the save time roughly constant across sizes.
     */
    unsigned flashChannels = 0; ///< 0 = auto (one per GiB, min 1)

    /** Per-channel flash program bandwidth (save path). */
    double channelSaveBw = 130.0 * 1024 * 1024;

    /** Per-channel flash read bandwidth (restore path). */
    double channelRestoreBw = 260.0 * 1024 * 1024;

    /** Module power draw while saving (controller + flash + DRAM). */
    double savePowerWatts = 0.0; ///< 0 = auto (2 W + 4 W per channel)

    /** Latency of entering/leaving DRAM self-refresh. */
    Tick selfRefreshLatency = fromMicros(5.0);

    /**
     * Program only pages dirtied since the last completed save when a
     * valid baseline exists (falls back to a full save on epoch
     * mismatch, after media faults, or when no baseline is open).
     */
    bool incrementalSave = true;

    /**
     * Lazy page-in restore: startRestore() maps the flash image
     * copy-on-read instead of eagerly streaming every byte, so the
     * modelled restore latency is the mapping setup, not
     * capacity/bandwidth. Content is identical either way.
     */
    bool lazyRestore = false;

    /** Fixed mapping/metadata setup cost of a lazy restore. */
    Tick lazyRestoreFixedLatency = fromMillis(1.0);

    /** Per-2MiB-extent mapping cost of a lazy restore. */
    Tick lazyRestorePerChunk = fromMicros(10.0);

    /**
     * Self-check every save completion: assert flash is byte-identical
     * to DRAM (what a full save would have produced) and that a failed
     * save's programmed suffix matches DRAM. Mismatches are counted,
     * not fatal — the crashsim IncrementalSaveSound checker reads the
     * count. Costs a full image comparison per save; off by default.
     */
    bool verifySaves = false;

    UltracapConfig ultracap;
};

/** Externally visible module states. */
enum class NvdimmState {
    Active,      ///< normal DRAM operation, host load/store allowed
    SelfRefresh, ///< DRAM in self-refresh, host access disallowed
    Saving,      ///< DRAM-to-flash copy in progress (ultracap powered)
    Restoring,   ///< flash-to-DRAM copy in progress (host powered)
    SaveFailed,  ///< save aborted (energy or command protocol error)
};

/** Human-readable state name. */
std::string nvdimmStateName(NvdimmState state);

/**
 * Injectable flash media faults (section 6, "NVRAM failures"). All
 * three are silent at the device level — the module still reports its
 * image valid — which is exactly why restore-side region checksums
 * exist.
 */
enum class MediaFaultKind {
    BitFlip,   ///< single bit flipped at the target address
    BadBlock,  ///< whole 4 KiB flash block returns garbage
    TornWrite, ///< one 64 B line left half-programmed (zeroed)
};

/** Human-readable media fault name. */
std::string mediaFaultKindName(MediaFaultKind kind);

/**
 * One NVDIMM module.
 *
 * Host byte access is only legal in Active state; the WSP save path
 * transitions Active -> SelfRefresh -> Saving, and the boot path
 * SelfRefresh/Active -> Restoring -> Active.
 */
class NvdimmModule : public SimObject
{
  public:
    NvdimmModule(EventQueue &queue, std::string name, NvdimmConfig config);

    const NvdimmConfig &config() const { return config_; }
    uint64_t capacity() const { return config_.capacityBytes; }
    NvdimmState state() const { return state_; }
    Ultracapacitor &ultracap() { return ultracap_; }
    const Ultracapacitor &ultracap() const { return ultracap_; }

    /** Effective number of flash channels (resolving the auto value). */
    unsigned flashChannels() const;

    /** Module power draw while saving (resolving the auto value). */
    double savePowerWatts() const;

    /** Predicted full DRAM-to-flash save duration (worst case). */
    Tick saveDuration() const;

    /**
     * Predicted restore duration: the eager flash-to-DRAM stream, or
     * the mapping setup cost when lazyRestore is configured.
     */
    Tick restoreDuration() const;

    /** The eager capacity/bandwidth restore time, lazy or not. */
    Tick fullRestoreDuration() const;

    /** Energy required to complete a full save, in joules. */
    double saveEnergy() const;

    // Incremental save --------------------------------------------------

    /**
     * True when the next save may program only the dirty delta: a
     * valid un-tainted flash image whose baseline epoch matches the
     * DRAM dirty bitmap. Any media fault, adopted image, or wholesale
     * DRAM change (poison/restore) forces the next save back to full.
     */
    bool incrementalEligible() const;

    /** Bytes the next save must program (dirty delta or capacity). */
    uint64_t pendingSaveBytes() const;

    /** Predicted duration of the next save at its pending size. */
    Tick pendingSaveDuration() const;

    /**
     * Energy the next save needs, in joules — the bill HealthMonitor
     * margins and degraded-tier decisions are charged against. Scales
     * with dirty pages once a baseline exists.
     */
    double pendingSaveEnergy() const;

    // Host access (Active state only) ---------------------------------

    void hostRead(uint64_t addr, std::span<uint8_t> out) const;
    void hostWrite(uint64_t addr, std::span<const uint8_t> data);

    // Command interface (driven by the NvdimmController) ---------------

    /** Arm the module: auto-save if host power dies in self-refresh. */
    void arm() { armed_ = true; }
    void disarm() { armed_ = false; }
    bool armed() const { return armed_; }

    /** Whether the host 12 V rail currently energizes the module. */
    bool hostPowered() const { return hostPower_; }

    /** Put the DRAM into self-refresh (required before save/restore). */
    void enterSelfRefresh();

    /** Leave self-refresh and return to Active. */
    void exitSelfRefresh();

    /**
     * Begin the DRAM-to-flash save; requires SelfRefresh. The copy is
     * powered by the module ultracapacitor and survives host power
     * loss; it fails cleanly if the ultracapacitor runs out.
     */
    void startSave();

    /**
     * Begin the flash-to-DRAM restore; requires SelfRefresh (the boot
     * firmware re-initializes the memory controller first) and a valid
     * flash image. Host power must be present throughout.
     */
    void startRestore();

    /** A completed save produced a valid flash image. */
    bool flashValid() const { return flashValid_; }

    /**
     * Bytes of the last save attempt that reached flash. The copy
     * engine programs DRAM into flash from the top of the address
     * space downwards, so a partial save always covers the suffix
     * [capacity - flashSavedBytes, capacity) — the platform's control
     * structures (marker, resume block, salvage directory) live at the
     * top precisely so they hit flash first and a failed save degrades
     * from the bulk data up. Equals capacity when flashValid().
     */
    uint64_t flashSavedBytes() const { return flashSavedBytes_; }

    /** True when the flash holds anything restorable (full or partial). */
    bool flashRestorable() const
    {
        return flashValid_ || flashSavedBytes_ > 0;
    }

    /**
     * Boot-epoch metadata, kept in the module controller's persistent
     * config area (tiny EEPROM writes, cost-free at this fidelity).
     * The platform publishes its boot sequence here on every boot;
     * the save engine stamps the epoch into the flash image, so a
     * restore can reject an image from an older epoch — the stale
     * image a failed save would otherwise leave restorable as current.
     */
    uint64_t epoch() const { return epoch_; }
    void setEpoch(uint64_t epoch) { epoch_ = epoch; }

    /** Epoch whose save produced (or last overwrote) the flash image. */
    uint64_t flashGeneration() const { return flashGeneration_; }

    /**
     * Corrupt the flash image in place without touching the validity
     * flag — the silent media faults of section 6. Legal whenever no
     * save is mid-flight over the same cells.
     */
    void injectFlashFault(MediaFaultKind kind, uint64_t addr);

    /** Deep copy of the current flash content (crashsim capture). */
    SparseMemory cloneFlash() const { return flash_.snapshot(); }

    /**
     * Replace the flash content and validity, as if this module had
     * been pulled from a crashed machine and socketed here: the DRAM
     * side is poisoned (it was unpowered in transit). Only legal in
     * Active state, i.e. on a freshly built system. The persistent
     * metadata (epoch, generation, saved bytes) travels with the DIMM.
     */
    void adoptFlashImage(const SparseMemory &flash, bool valid,
                         uint64_t flash_generation = 0,
                         uint64_t epoch = 0,
                         uint64_t saved_bytes = ~0ull);

    /** True while a save or restore is in flight. */
    bool busy() const;

    /**
     * Notify the module that host power is gone. Active-state DRAM
     * content is lost; an armed module in self-refresh starts its
     * save automatically (hardware-triggered save).
     */
    void hostPowerLost();

    /** Notify the module that host power has returned. */
    void hostPowerRestored();

    /** Number of completed saves / restores (for stats and tests). */
    uint64_t savesCompleted() const { return savesCompleted_; }
    uint64_t restoresCompleted() const { return restoresCompleted_; }

    /** Completed saves that programmed only the dirty delta. */
    uint64_t incrementalSavesCompleted() const
    {
        return incrementalSavesCompleted_;
    }

    /** Completed restores that took the lazy page-in path. */
    uint64_t lazyRestoresCompleted() const
    {
        return lazyRestoresCompleted_;
    }

    /** Bytes the last completed or failed save actually programmed. */
    uint64_t lastSaveProgrammedBytes() const
    {
        return lastSaveProgrammedBytes_;
    }

    /**
     * verifySaves failures: saves whose flash image did not match the
     * byte-identical full-save result. Always zero when the
     * incremental engine is sound.
     */
    uint64_t saveMismatches() const { return saveMismatches_; }

    /** Direct dirty-state access (tests, health gauges). */
    const SparseMemory &dram() const { return dram_; }

  private:
    /** One integration step of the in-flight save. */
    void saveStep();
    void finishSave();
    void failSave(const char *reason);
    void finishRestore();

    /** Open a fresh dirty baseline: flash == DRAM right now. */
    void establishBaseline();

    /** Advance the in-flight save to @p target_bytes programmed. */
    void programProgress(uint64_t target_bytes);

    /** Extend the programmed flash suffix to @p target_bytes. */
    void programFlashTo(uint64_t target_bytes);

    /** Program the next dirty pages (top-down) up to @p target_bytes. */
    void programIncrementalTo(uint64_t target_bytes);

    NvdimmConfig config_;
    Ultracapacitor ultracap_;
    SparseMemory dram_;
    SparseMemory flash_;
    bool flashValid_ = false;
    bool armed_ = false;
    bool hostPower_ = true;
    NvdimmState state_ = NvdimmState::Active;

    Tick saveStarted_ = 0;
    Tick saveDeadline_ = 0;
    Tick saveTotalDuration_ = 0;
    Tick lastSaveStep_ = 0;
    Tick savePoweredTime_ = 0;
    uint64_t flashSavedBytes_ = 0;
    uint64_t flashGeneration_ = 0;
    uint64_t epoch_ = 0;
    uint64_t savesCompleted_ = 0;
    uint64_t restoresCompleted_ = 0;

    // Incremental-save engine state ------------------------------------
    bool flashTainted_ = false;   ///< media fault since last full image
    bool baselineValid_ = false;  ///< flash matched DRAM at baseline
    uint64_t baselineEpoch_ = 0;  ///< dram_ dirty epoch of the baseline
    bool saveIncremental_ = false;    ///< in-flight save is a delta
    uint64_t savePendingBytes_ = 0;   ///< bytes this save must program
    uint64_t saveProgrammedBytes_ = 0;
    std::vector<uint64_t> savePlan_;  ///< dirty pages, highest first
    size_t savePlanCursor_ = 0;
    uint64_t incrementalSavesCompleted_ = 0;
    uint64_t lazyRestoresCompleted_ = 0;
    uint64_t lastSaveProgrammedBytes_ = 0;
    uint64_t saveMismatches_ = 0;

    /** Integration step for ultracap discharge during a save. */
    static constexpr Tick kSaveStep = fromMillis(10.0);
};

} // namespace wsp
