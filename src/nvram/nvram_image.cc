#include "nvram/nvram_image.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/logging.h"

namespace wsp {

namespace {

/** "WSPIMG1\0" little-endian. */
constexpr uint64_t kImageMagic = 0x0031474d49505357ull;

bool
putU64(std::FILE *f, uint64_t value)
{
    uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<uint8_t>(value >> (8 * i));
    return std::fwrite(bytes, 1, sizeof(bytes), f) == sizeof(bytes);
}

bool
getU64(std::FILE *f, uint64_t *value)
{
    uint8_t bytes[8];
    if (std::fread(bytes, 1, sizeof(bytes), f) != sizeof(bytes))
        return false;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes[i];
    *value = v;
    return true;
}

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

NvramImage
NvramImage::capture(const NvramSpace &space)
{
    NvramImage image;
    image.modules_.reserve(space.moduleCount());
    for (size_t i = 0; i < space.moduleCount(); ++i) {
        const NvdimmModule &module = space.module(i);
        WSP_CHECKF(!module.busy(),
                   "capture while %s is mid save/restore",
                   module.name().c_str());
        image.modules_.push_back(ModuleImage{
            module.cloneFlash(), module.flashValid(),
            module.flashGeneration(), module.epoch(),
            module.flashSavedBytes()});
    }
    return image;
}

void
NvramImage::adoptInto(NvramSpace &space) const
{
    WSP_CHECKF(space.moduleCount() == modules_.size(),
               "image has %zu modules, space has %zu", modules_.size(),
               space.moduleCount());
    for (size_t i = 0; i < modules_.size(); ++i)
        space.module(i).adoptFlashImage(
            modules_[i].flash, modules_[i].valid, modules_[i].generation,
            modules_[i].epoch, modules_[i].savedBytes);
}

bool
NvramImage::writeFile(const std::string &path) const
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (!putU64(f.get(), kImageMagic) ||
        !putU64(f.get(), modules_.size()))
        return false;
    std::vector<uint8_t> page(SparseMemory::kPageSize);
    for (const ModuleImage &module : modules_) {
        // Collect the non-zero pages first so the page count can
        // precede them (a sparse image stays sparse on disk).
        std::vector<uint64_t> live;
        for (uint64_t p = 0; p < module.flash.totalPages(); ++p) {
            const uint64_t base = p * SparseMemory::kPageSize;
            const uint64_t len = std::min(
                SparseMemory::kPageSize, module.flash.capacity() - base);
            module.flash.read(base,
                              std::span<uint8_t>(page.data(), len));
            const bool zero = std::all_of(
                page.begin(), page.begin() + static_cast<long>(len),
                [](uint8_t b) { return b == 0; });
            if (!zero)
                live.push_back(p);
        }
        if (!putU64(f.get(), module.flash.capacity()) ||
            !putU64(f.get(), module.valid ? 1 : 0) ||
            !putU64(f.get(), module.generation) ||
            !putU64(f.get(), module.epoch) ||
            !putU64(f.get(), module.savedBytes) ||
            !putU64(f.get(), live.size()))
            return false;
        for (uint64_t p : live) {
            const uint64_t base = p * SparseMemory::kPageSize;
            const uint64_t len = std::min(
                SparseMemory::kPageSize, module.flash.capacity() - base);
            std::fill(page.begin(), page.end(), 0);
            module.flash.read(base,
                              std::span<uint8_t>(page.data(), len));
            if (!putU64(f.get(), p) ||
                std::fwrite(page.data(), 1, page.size(), f.get()) !=
                    page.size())
                return false;
        }
    }
    return std::fflush(f.get()) == 0;
}

std::optional<NvramImage>
NvramImage::readFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return std::nullopt;
    uint64_t magic = 0;
    uint64_t count = 0;
    if (!getU64(f.get(), &magic) || magic != kImageMagic ||
        !getU64(f.get(), &count) || count > 4096)
        return std::nullopt;
    NvramImage image;
    image.modules_.reserve(count);
    std::vector<uint8_t> page(SparseMemory::kPageSize);
    for (uint64_t m = 0; m < count; ++m) {
        uint64_t capacity = 0, valid = 0, generation = 0, epoch = 0;
        uint64_t saved_bytes = 0, pages = 0;
        if (!getU64(f.get(), &capacity) || !getU64(f.get(), &valid) ||
            !getU64(f.get(), &generation) || !getU64(f.get(), &epoch) ||
            !getU64(f.get(), &saved_bytes) || !getU64(f.get(), &pages))
            return std::nullopt;
        if (capacity == 0 ||
            pages > (capacity + SparseMemory::kPageSize - 1) /
                        SparseMemory::kPageSize)
            return std::nullopt;
        ModuleImage module{SparseMemory(capacity), valid != 0,
                           generation, epoch, saved_bytes};
        for (uint64_t i = 0; i < pages; ++i) {
            uint64_t p = 0;
            if (!getU64(f.get(), &p) ||
                std::fread(page.data(), 1, page.size(), f.get()) !=
                    page.size())
                return std::nullopt;
            const uint64_t base = p * SparseMemory::kPageSize;
            if (base >= capacity)
                return std::nullopt;
            const uint64_t len =
                std::min(SparseMemory::kPageSize, capacity - base);
            module.flash.write(
                base, std::span<const uint8_t>(page.data(), len));
        }
        image.modules_.push_back(std::move(module));
    }
    return image;
}

bool
NvramImage::allValid() const
{
    for (const auto &module : modules_) {
        if (!module.valid)
            return false;
    }
    return true;
}

} // namespace wsp
