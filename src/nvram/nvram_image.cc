#include "nvram/nvram_image.h"

#include "util/logging.h"

namespace wsp {

NvramImage
NvramImage::capture(const NvramSpace &space)
{
    NvramImage image;
    image.modules_.reserve(space.moduleCount());
    for (size_t i = 0; i < space.moduleCount(); ++i) {
        const NvdimmModule &module = space.module(i);
        WSP_CHECKF(!module.busy(),
                   "capture while %s is mid save/restore",
                   module.name().c_str());
        image.modules_.push_back(ModuleImage{
            module.cloneFlash(), module.flashValid(),
            module.flashGeneration(), module.epoch(),
            module.flashSavedBytes()});
    }
    return image;
}

void
NvramImage::adoptInto(NvramSpace &space) const
{
    WSP_CHECKF(space.moduleCount() == modules_.size(),
               "image has %zu modules, space has %zu", modules_.size(),
               space.moduleCount());
    for (size_t i = 0; i < modules_.size(); ++i)
        space.module(i).adoptFlashImage(
            modules_[i].flash, modules_[i].valid, modules_[i].generation,
            modules_[i].epoch, modules_[i].savedBytes);
}

bool
NvramImage::allValid() const
{
    for (const auto &module : modules_) {
        if (!module.valid)
            return false;
    }
    return true;
}

} // namespace wsp
