/**
 * @file
 * Portable snapshot of the non-volatile half of an NVRAM space.
 *
 * After a power failure the only state that survives is what each
 * NVDIMM's ultracapacitor-powered save managed to put into flash.
 * NvramImage captures exactly that — per-module flash content plus
 * the valid flag — so crash exploration can lift the surviving image
 * out of a dead system and socket it into a *fresh* WspSystem, the
 * way a field engineer would move the DIMMs to a replacement chassis.
 * Everything volatile (DRAM, caches, core contexts) is deliberately
 * absent: a restore must succeed from flash alone or not at all.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nvram/nvram_space.h"

namespace wsp {

/** Flash-side snapshot of every module in an NvramSpace. */
class NvramImage
{
  public:
    /** Per-module surviving state. */
    struct ModuleImage
    {
        SparseMemory flash;
        bool valid = false;
        uint64_t generation = 0; ///< epoch stamped by the save
        uint64_t epoch = 0;      ///< module's persistent epoch register
        uint64_t savedBytes = 0; ///< programmed suffix of the last save
    };

    /** Capture the flash content and validity of every module. */
    static NvramImage capture(const NvramSpace &space);

    /**
     * Install this image into @p space's modules (capacities and
     * module count must match). DRAM sides are poisoned; the restore
     * path must rebuild them from flash.
     */
    void adoptInto(NvramSpace &space) const;

    size_t moduleCount() const { return modules_.size(); }
    const ModuleImage &module(size_t i) const { return modules_.at(i); }

    /** True when every captured module holds a valid flash image. */
    bool allValid() const;

    /**
     * Serialize to a portable binary file ("WSPIMG1" container: per
     * module the valid/generation/epoch/savedBytes metadata plus only
     * the non-zero flash pages). @return false on I/O failure.
     */
    bool writeFile(const std::string &path) const;

    /** Load an image previously written by writeFile(). */
    static std::optional<NvramImage> readFile(const std::string &path);

  private:
    std::vector<ModuleImage> modules_;
};

} // namespace wsp
