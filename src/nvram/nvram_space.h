/**
 * @file
 * Physical address space over a set of NVDIMM modules.
 *
 * WSP assumes *all* system memory is non-volatile (paper section 3.2):
 * the machine's physical address space is simply the concatenation of
 * its NVDIMMs. NvramSpace routes host loads and stores to the module
 * owning each address range and is where the cache model writes back
 * dirty lines and where the WSP valid marker and resume block live.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nvram/nvdimm.h"

namespace wsp {

/** Concatenated byte-addressable space over NVDIMM modules. */
class NvramSpace
{
  public:
    NvramSpace() = default;

    /** Append a module; its range starts at the current capacity. */
    void addModule(NvdimmModule &module);

    /** Total bytes across all modules. */
    uint64_t capacity() const { return capacity_; }

    size_t moduleCount() const { return ranges_.size(); }
    NvdimmModule &module(size_t i) { return *ranges_.at(i).module; }
    const NvdimmModule &module(size_t i) const
    {
        return *ranges_.at(i).module;
    }

    /** Base physical address of module @p i. */
    uint64_t moduleBase(size_t i) const { return ranges_.at(i).base; }

    /** Read bytes, splitting across module boundaries as needed. */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Write bytes, splitting across module boundaries as needed. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Read one little-endian 64-bit word. */
    uint64_t readU64(uint64_t addr) const;

    /** Write one little-endian 64-bit word. */
    void writeU64(uint64_t addr, uint64_t value);

  private:
    struct Range
    {
        uint64_t base;
        NvdimmModule *module;
    };

    /** Locate the range containing @p addr. */
    const Range &rangeFor(uint64_t addr) const;

    std::vector<Range> ranges_;
    uint64_t capacity_ = 0;
};

} // namespace wsp
