/**
 * @file
 * Sparse byte-addressable memory backing.
 *
 * NVDIMM models can be configured with multi-gigabyte capacities for
 * timing and energy purposes while a host-side experiment touches
 * only a few megabytes. SparseMemory backs such an address space with
 * demand-allocated 4 KiB pages: untouched pages read as zero and cost
 * nothing. It also supports the poison state used to model DRAM
 * content loss when a module loses power outside self-refresh.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>

#include "util/units.h"

namespace wsp {

/** Demand-paged byte array with snapshot and poison support. */
class SparseMemory
{
  public:
    static constexpr uint64_t kPageSize = 4 * kKiB;

    /** Byte returned from a poisoned (content-lost) memory. */
    static constexpr uint8_t kPoisonByte = 0x5a;

    explicit SparseMemory(uint64_t capacity);

    uint64_t capacity() const { return capacity_; }

    /** Copy bytes out of the memory; zero-filled where untouched. */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Copy bytes into the memory, allocating pages as needed. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Read one little-endian 64-bit word. */
    uint64_t readU64(uint64_t addr) const;

    /** Write one little-endian 64-bit word. */
    void writeU64(uint64_t addr, uint64_t value);

    /** Number of pages currently allocated. */
    size_t allocatedPages() const { return pages_.size(); }

    /** Bytes of backing storage in use. */
    uint64_t allocatedBytes() const { return pages_.size() * kPageSize; }

    /** Drop all content (reads become zero again). */
    void clear();

    /**
     * Mark all content lost: subsequent reads return kPoisonByte until
     * the next write to the page, modelling un-refreshed DRAM decay.
     */
    void poison();

    bool poisoned() const { return poisoned_; }

    /** Deep copy (used for flash backup images). */
    SparseMemory snapshot() const;

    /** Replace contents with @p image (used for flash restore). */
    void restoreFrom(const SparseMemory &image);

    /**
     * Copy @p len bytes at @p addr from @p src into this memory while
     * preserving sparsity: where @p src has no page, the destination
     * range reads as zero afterwards but no page is materialized (a
     * full-page gap drops the destination page instead). This is the
     * incremental flash-programming primitive — a GiB-scale module
     * copying mostly-untouched DRAM must not allocate backing for it.
     */
    void copyRangeFrom(const SparseMemory &src, uint64_t addr,
                       uint64_t len);

    /** Byte-wise equality of content (capacity must match). */
    bool contentEquals(const SparseMemory &other) const;

  private:
    using Page = std::unique_ptr<uint8_t[]>;

    /** Page for writing; allocates (and un-poisons) on demand. */
    uint8_t *pageForWrite(uint64_t page_index);

    uint64_t capacity_;
    std::map<uint64_t, Page> pages_;
    bool poisoned_ = false;
};

} // namespace wsp
