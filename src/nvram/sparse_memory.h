/**
 * @file
 * Sparse byte-addressable memory backing.
 *
 * NVDIMM models can be configured with multi-gigabyte capacities for
 * timing and energy purposes while a host-side experiment touches
 * only a few megabytes. SparseMemory backs such an address space with
 * demand-allocated 4 KiB pages: untouched pages read as zero and cost
 * nothing. It also supports the poison state used to model DRAM
 * content loss when a module loses power outside self-refresh.
 *
 * The page index is a flat two-level table (a vector of fixed-size
 * chunks, each covering 2 MiB of address space) rather than a tree,
 * so the hot read/write path costs two array indexings instead of a
 * map walk. Pages are reference-counted and copy-on-write: snapshot()
 * and restoreFrom() copy page *pointers*, and a page is cloned only
 * when written while shared — which is what makes whole-image flash
 * snapshots and restores cheap enough to model per crash point.
 *
 * For the incremental save path the memory also keeps a per-page
 * dirty bitmap versioned by an epoch counter: resetDirty() opens a
 * new epoch with everything clean, every mutation marks its pages,
 * and wholesale content changes (clear, poison, restoreFrom) drop to
 * the conservative all-dirty state.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/units.h"

namespace wsp {

/** Demand-paged byte array with snapshot, poison and dirty tracking. */
class SparseMemory
{
  public:
    static constexpr uint64_t kPageSize = 4 * kKiB;

    /** Pages per second-level chunk (2 MiB of address space). */
    static constexpr uint64_t kPagesPerChunk = 512;

    /** Byte returned from a poisoned (content-lost) memory. */
    static constexpr uint8_t kPoisonByte = 0x5a;

    explicit SparseMemory(uint64_t capacity);

    SparseMemory(SparseMemory &&) = default;
    SparseMemory &operator=(SparseMemory &&) = default;

    uint64_t capacity() const { return capacity_; }

    /** Pages the capacity spans (the last one may be partial). */
    uint64_t totalPages() const
    {
        return (capacity_ + kPageSize - 1) / kPageSize;
    }

    /** Copy bytes out of the memory; zero-filled where untouched. */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Copy bytes into the memory, allocating pages as needed. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Read one little-endian 64-bit word. */
    uint64_t readU64(uint64_t addr) const;

    /** Write one little-endian 64-bit word. */
    void writeU64(uint64_t addr, uint64_t value);

    /** Number of pages currently allocated. */
    size_t allocatedPages() const { return pageCount_; }

    /** Bytes of backing storage in use. */
    uint64_t allocatedBytes() const { return pageCount_ * kPageSize; }

    /** Drop all content (reads become zero again). */
    void clear();

    /**
     * Mark all content lost: subsequent reads return kPoisonByte until
     * the next write to the page, modelling un-refreshed DRAM decay.
     */
    void poison();

    bool poisoned() const { return poisoned_; }

    /** Logical copy (copy-on-write; used for flash backup images). */
    SparseMemory snapshot() const;

    /** Replace contents with @p image (used for flash restore). */
    void restoreFrom(const SparseMemory &image);

    /**
     * Copy @p len bytes at @p addr from @p src into this memory while
     * preserving sparsity: where @p src has no page, the destination
     * range reads as zero afterwards but no page is materialized (a
     * full-page gap drops the destination page instead). This is the
     * incremental flash-programming primitive — a GiB-scale module
     * copying mostly-untouched DRAM must not allocate backing for it.
     */
    void copyRangeFrom(const SparseMemory &src, uint64_t addr,
                       uint64_t len);

    /** Byte-wise equality of content (capacity must match). */
    bool contentEquals(const SparseMemory &other) const;

    /**
     * Byte-wise equality of [addr, addr+len) against the same range
     * of @p other (both capacities must cover the range).
     */
    bool rangeEquals(const SparseMemory &other, uint64_t addr,
                     uint64_t len) const;

    // Dirty-epoch tracking ---------------------------------------------
    //
    // A fresh memory, and any memory after a wholesale content change
    // (clear, poison, restoreFrom), is conservatively *all dirty*: a
    // consumer that never called resetDirty() sees every page dirty
    // and pays full cost, exactly as before the tracking existed. The
    // save engine calls resetDirty() once flash matches DRAM; from
    // then on the bitmap names exactly the pages a delta save must
    // program, and the epoch lets it detect that its baseline is the
    // one the bitmap is relative to.

    /** True when no baseline epoch is open (every page counts dirty). */
    bool allDirty() const { return allDirty_; }

    /** Epoch the dirty bitmap is relative to (bumped by resetDirty). */
    uint64_t dirtyEpoch() const { return dirtyEpoch_; }

    /** Pages dirtied since the last resetDirty (all when allDirty). */
    uint64_t dirtyPageCount() const
    {
        return allDirty_ ? totalPages() : dirtyCount_;
    }

    /** Bytes a per-page delta copy must move (capped at capacity). */
    uint64_t dirtyBytes() const
    {
        return std::min(dirtyPageCount() * kPageSize, capacity_);
    }

    /**
     * Dirty page indices, highest first — the order the top-down
     * flash programmer wants. Legal only when !allDirty().
     */
    std::vector<uint64_t> dirtyPagesDescending() const;

    /** Open a new epoch: every page clean, epoch incremented. */
    void resetDirty();

  private:
    using Page = std::shared_ptr<uint8_t[]>;

    struct Chunk
    {
        Page pages[kPagesPerChunk];
        uint32_t used = 0; ///< non-null entries
    };

    /** Backing bytes of a page, or nullptr when unallocated. */
    const uint8_t *pageData(uint64_t page_index) const;

    /** Page for writing; allocates, un-poisons, un-shares on demand. */
    uint8_t *pageForWrite(uint64_t page_index);

    /** Slot for @p page_index, materializing its chunk. */
    Page &slotForWrite(uint64_t page_index);

    /** Drop the page (reads fall back to fill) if present. */
    void erasePage(uint64_t page_index);

    /** Adopt @p src's page wholesale (COW share). */
    void sharePage(uint64_t page_index, const Page &src);

    void markDirty(uint64_t page_index);

    uint64_t capacity_;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    size_t pageCount_ = 0;
    bool poisoned_ = false;

    std::vector<uint64_t> dirtyBits_; ///< sized on first resetDirty()
    uint64_t dirtyCount_ = 0;
    uint64_t dirtyEpoch_ = 0;
    bool allDirty_ = true;
};

} // namespace wsp
