#include "nvram/controller.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

NvdimmController::NvdimmController(EventQueue &queue)
    : SimObject(queue, "nvdimm-controller")
{
}

void
NvdimmController::attach(NvdimmModule &module)
{
    modules_.push_back(&module);
}

void
NvdimmController::armAll()
{
    for (auto *module : modules_)
        module->arm();
}

void
NvdimmController::disarmAll()
{
    for (auto *module : modules_)
        module->disarm();
}

void
NvdimmController::saveAll()
{
    WSP_CHECKF(!modules_.empty(), "saveAll with no modules attached");
    for (auto *module : modules_) {
        // A module without host power cannot process bus commands: it
        // either already ran its hardware-triggered save (flash holds
        // the image, DRAM is powered down and decayed) or is saving
        // from its ultracap right now. Programming decayed DRAM over
        // a good image would destroy it — the real hardware simply
        // never sees the command.
        if (!module->hostPowered())
            continue;
        if (module->state() == NvdimmState::Active)
            module->enterSelfRefresh();
        if (module->state() == NvdimmState::SelfRefresh)
            module->startSave();
    }
}

void
NvdimmController::restoreAll(std::function<void()> done)
{
    WSP_CHECKF(!modules_.empty(), "restoreAll with no modules attached");
    WSP_CHECKF(allFlashValid(),
               "restoreAll with an invalid flash image present");
    for (auto *module : modules_) {
        if (module->state() == NvdimmState::Active)
            module->enterSelfRefresh();
        module->startRestore();
    }
    // Modules restore in parallel; the slowest bounds the barrier.
    queue_.scheduleAfter(maxRestoreDuration() + 1,
                         [this, done = std::move(done)] {
        for (auto *module : modules_) {
            WSP_CHECKF(module->state() == NvdimmState::SelfRefresh,
                       "%s: unexpected state %s after restore barrier",
                       module->name().c_str(),
                       nvdimmStateName(module->state()).c_str());
            module->exitSelfRefresh();
        }
        if (done)
            done();
    });
}

void
NvdimmController::restoreAvailable(std::function<void()> done)
{
    WSP_CHECKF(!modules_.empty(),
               "restoreAvailable with no modules attached");
    WSP_CHECKF(anyRestorable(),
               "restoreAvailable with no flash content anywhere");
    Tick worst = 0;
    for (auto *module : modules_) {
        if (!module->flashRestorable())
            continue;
        if (module->state() == NvdimmState::Active)
            module->enterSelfRefresh();
        module->startRestore();
        worst = std::max(worst, module->restoreDuration());
    }
    queue_.scheduleAfter(worst + 1, [this, done = std::move(done)] {
        for (auto *module : modules_) {
            if (module->state() == NvdimmState::SelfRefresh)
                module->exitSelfRefresh();
        }
        if (done)
            done();
    });
}

bool
NvdimmController::anyRestorable() const
{
    return std::any_of(modules_.begin(), modules_.end(),
                       [](const NvdimmModule *m) {
        return m->flashRestorable();
    });
}

bool
NvdimmController::anySaving() const
{
    return std::any_of(modules_.begin(), modules_.end(),
                       [](const NvdimmModule *m) {
        return m->state() == NvdimmState::Saving;
    });
}

uint64_t
NvdimmController::totalSavesCompleted() const
{
    uint64_t total = 0;
    for (const auto *module : modules_)
        total += module->savesCompleted();
    return total;
}

void
NvdimmController::publishEpoch(uint64_t epoch)
{
    for (auto *module : modules_)
        module->setEpoch(epoch);
}

uint64_t
NvdimmController::currentEpoch() const
{
    uint64_t epoch = 0;
    for (const auto *module : modules_)
        epoch = std::max(epoch, module->epoch());
    return epoch;
}

bool
NvdimmController::allFlashValid() const
{
    return std::all_of(modules_.begin(), modules_.end(),
                       [](const NvdimmModule *m) { return m->flashValid(); });
}

bool
NvdimmController::allIdle() const
{
    return std::none_of(modules_.begin(), modules_.end(),
                        [](const NvdimmModule *m) { return m->busy(); });
}

bool
NvdimmController::anySaveFailed() const
{
    return std::any_of(modules_.begin(), modules_.end(),
                       [](const NvdimmModule *m) {
        return m->state() == NvdimmState::SaveFailed;
    });
}

Tick
NvdimmController::maxSaveDuration() const
{
    Tick worst = 0;
    for (const auto *module : modules_)
        worst = std::max(worst, module->saveDuration());
    return worst;
}

Tick
NvdimmController::maxRestoreDuration() const
{
    Tick worst = 0;
    for (const auto *module : modules_)
        worst = std::max(worst, module->restoreDuration());
    return worst;
}

void
NvdimmController::resetToActive()
{
    for (auto *module : modules_) {
        WSP_CHECKF(!module->busy(), "%s: resetToActive while busy",
                   module->name().c_str());
        if (module->state() == NvdimmState::SelfRefresh)
            module->exitSelfRefresh();
    }
}

void
NvdimmController::hostPowerLost()
{
    for (auto *module : modules_)
        module->hostPowerLost();
}

void
NvdimmController::hostPowerRestored()
{
    for (auto *module : modules_)
        module->hostPowerRestored();
}

PowerMonitor::CommandSink
NvdimmController::commandSink()
{
    return [this](PowerMonitor::Command command) {
        switch (command) {
          case PowerMonitor::Command::Save:
            saveAll();
            break;
          case PowerMonitor::Command::Restore:
            restoreAll(nullptr);
            break;
          case PowerMonitor::Command::Arm:
            armAll();
            break;
          case PowerMonitor::Command::Disarm:
            disarmAll();
            break;
        }
    };
}

} // namespace wsp
