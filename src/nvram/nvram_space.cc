#include "nvram/nvram_space.h"

#include <algorithm>

#include "util/logging.h"

namespace wsp {

void
NvramSpace::addModule(NvdimmModule &module)
{
    ranges_.push_back(Range{capacity_, &module});
    capacity_ += module.capacity();
}

const NvramSpace::Range &
NvramSpace::rangeFor(uint64_t addr) const
{
    WSP_CHECKF(addr < capacity_,
               "address %llu beyond NVRAM capacity %llu",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(capacity_));
    // Ranges are sorted by construction; find the last base <= addr.
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), addr,
        [](uint64_t a, const Range &r) { return a < r.base; });
    WSP_CHECK(it != ranges_.begin());
    return *(it - 1);
}

void
NvramSpace::read(uint64_t addr, std::span<uint8_t> out) const
{
    size_t done = 0;
    while (done < out.size()) {
        const Range &range = rangeFor(addr + done);
        const uint64_t offset = addr + done - range.base;
        const uint64_t room = range.module->capacity() - offset;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(room, out.size() - done));
        range.module->hostRead(offset,
                               out.subspan(done, chunk));
        done += chunk;
    }
}

void
NvramSpace::write(uint64_t addr, std::span<const uint8_t> data)
{
    size_t done = 0;
    while (done < data.size()) {
        const Range &range = rangeFor(addr + done);
        const uint64_t offset = addr + done - range.base;
        const uint64_t room = range.module->capacity() - offset;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(room, data.size() - done));
        range.module->hostWrite(offset, data.subspan(done, chunk));
        done += chunk;
    }
}

uint64_t
NvramSpace::readU64(uint64_t addr) const
{
    uint8_t bytes[8];
    read(addr, bytes);
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

void
NvramSpace::writeU64(uint64_t addr, uint64_t value)
{
    uint8_t bytes[8];
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
    write(addr, bytes);
}

} // namespace wsp
