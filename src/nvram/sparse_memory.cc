#include "nvram/sparse_memory.h"

#include <cstring>

#include "util/logging.h"

namespace wsp {

SparseMemory::SparseMemory(uint64_t capacity) : capacity_(capacity)
{
    WSP_CHECK(capacity_ > 0);
    chunks_.resize((totalPages() + kPagesPerChunk - 1) / kPagesPerChunk);
}

const uint8_t *
SparseMemory::pageData(uint64_t page_index) const
{
    const auto &chunk = chunks_[page_index / kPagesPerChunk];
    if (!chunk)
        return nullptr;
    return chunk->pages[page_index % kPagesPerChunk].get();
}

SparseMemory::Page &
SparseMemory::slotForWrite(uint64_t page_index)
{
    auto &chunk = chunks_[page_index / kPagesPerChunk];
    if (!chunk)
        chunk = std::make_unique<Chunk>();
    return chunk->pages[page_index % kPagesPerChunk];
}

uint8_t *
SparseMemory::pageForWrite(uint64_t page_index)
{
    Page &slot = slotForWrite(page_index);
    if (!slot) {
        slot = Page(new uint8_t[kPageSize]);
        // After content loss, pages come back as poison rather than
        // zero: only explicitly rewritten bytes are trustworthy.
        std::memset(slot.get(), poisoned_ ? kPoisonByte : 0, kPageSize);
        ++chunks_[page_index / kPagesPerChunk]->used;
        ++pageCount_;
    } else if (slot.use_count() > 1) {
        // Shared with a snapshot: clone before the write lands.
        Page clone(new uint8_t[kPageSize]);
        std::memcpy(clone.get(), slot.get(), kPageSize);
        slot = std::move(clone);
    }
    return slot.get();
}

void
SparseMemory::erasePage(uint64_t page_index)
{
    auto &chunk = chunks_[page_index / kPagesPerChunk];
    if (!chunk)
        return;
    Page &slot = chunk->pages[page_index % kPagesPerChunk];
    if (!slot)
        return;
    slot.reset();
    --pageCount_;
    if (--chunk->used == 0)
        chunk.reset();
}

void
SparseMemory::sharePage(uint64_t page_index, const Page &src)
{
    Page &slot = slotForWrite(page_index);
    if (!slot) {
        ++chunks_[page_index / kPagesPerChunk]->used;
        ++pageCount_;
    }
    slot = src;
}

void
SparseMemory::markDirty(uint64_t page_index)
{
    if (allDirty_)
        return; // no baseline open; everything already counts dirty
    uint64_t &word = dirtyBits_[page_index / 64];
    const uint64_t bit = 1ull << (page_index % 64);
    if (!(word & bit)) {
        word |= bit;
        ++dirtyCount_;
    }
}

void
SparseMemory::resetDirty()
{
    dirtyBits_.assign((totalPages() + 63) / 64, 0);
    dirtyCount_ = 0;
    allDirty_ = false;
    ++dirtyEpoch_;
}

std::vector<uint64_t>
SparseMemory::dirtyPagesDescending() const
{
    WSP_CHECK(!allDirty_);
    std::vector<uint64_t> pages;
    pages.reserve(dirtyCount_);
    for (size_t w = dirtyBits_.size(); w-- > 0;) {
        uint64_t word = dirtyBits_[w];
        while (word != 0) {
            const int bit = 63 - __builtin_clzll(word);
            pages.push_back(w * 64 + static_cast<uint64_t>(bit));
            word &= ~(1ull << bit);
        }
    }
    return pages;
}

void
SparseMemory::read(uint64_t addr, std::span<uint8_t> out) const
{
    WSP_CHECKF(addr + out.size() <= capacity_,
               "read [%llu, %llu) beyond capacity %llu",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + out.size()),
               static_cast<unsigned long long>(capacity_));
    size_t done = 0;
    while (done < out.size()) {
        const uint64_t cur = addr + done;
        const uint64_t page_index = cur / kPageSize;
        const uint64_t offset = cur % kPageSize;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize - offset, out.size() - done));
        const uint8_t *page = pageData(page_index);
        if (page != nullptr) {
            std::memcpy(out.data() + done, page + offset, chunk);
        } else {
            std::memset(out.data() + done,
                        poisoned_ ? kPoisonByte : 0, chunk);
        }
        done += chunk;
    }
}

void
SparseMemory::write(uint64_t addr, std::span<const uint8_t> data)
{
    WSP_CHECKF(addr + data.size() <= capacity_,
               "write [%llu, %llu) beyond capacity %llu",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + data.size()),
               static_cast<unsigned long long>(capacity_));
    size_t done = 0;
    while (done < data.size()) {
        const uint64_t cur = addr + done;
        const uint64_t page_index = cur / kPageSize;
        const uint64_t offset = cur % kPageSize;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize - offset, data.size() - done));
        std::memcpy(pageForWrite(page_index) + offset, data.data() + done,
                    chunk);
        markDirty(page_index);
        done += chunk;
    }
}

uint64_t
SparseMemory::readU64(uint64_t addr) const
{
    uint8_t bytes[8];
    read(addr, bytes);
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

void
SparseMemory::writeU64(uint64_t addr, uint64_t value)
{
    uint8_t bytes[8];
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
    write(addr, bytes);
}

void
SparseMemory::clear()
{
    for (auto &chunk : chunks_)
        chunk.reset();
    pageCount_ = 0;
    poisoned_ = false;
    allDirty_ = true; // wholesale change invalidates any baseline
}

void
SparseMemory::poison()
{
    // Dropping the pages and setting the flag makes every byte read as
    // poison until rewritten.
    for (auto &chunk : chunks_)
        chunk.reset();
    pageCount_ = 0;
    poisoned_ = true;
    allDirty_ = true;
}

SparseMemory
SparseMemory::snapshot() const
{
    SparseMemory copy(capacity_);
    copy.poisoned_ = poisoned_;
    copy.pageCount_ = pageCount_;
    for (size_t i = 0; i < chunks_.size(); ++i) {
        if (chunks_[i])
            copy.chunks_[i] = std::make_unique<Chunk>(*chunks_[i]);
    }
    return copy;
}

void
SparseMemory::restoreFrom(const SparseMemory &image)
{
    WSP_CHECK(image.capacity_ == capacity_);
    for (size_t i = 0; i < chunks_.size(); ++i) {
        chunks_[i] = image.chunks_[i]
                         ? std::make_unique<Chunk>(*image.chunks_[i])
                         : nullptr;
    }
    pageCount_ = image.pageCount_;
    poisoned_ = image.poisoned_;
    allDirty_ = true; // caller resets once flash and DRAM agree
}

void
SparseMemory::copyRangeFrom(const SparseMemory &src, uint64_t addr,
                            uint64_t len)
{
    WSP_CHECKF(addr + len <= capacity_ && addr + len <= src.capacity_,
               "copyRangeFrom [%llu, %llu) beyond capacity",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + len));
    // A poisoned destination has no meaningful "rest of the page" to
    // preserve; the flash side this primitive serves is never poisoned.
    WSP_CHECK(!poisoned_);
    while (len > 0) {
        const uint64_t page_index = addr / kPageSize;
        const uint64_t offset = addr % kPageSize;
        const uint64_t chunk =
            std::min<uint64_t>(kPageSize - offset, len);
        const uint8_t *src_page = src.pageData(page_index);
        if (src_page != nullptr) {
            if (chunk == kPageSize) {
                // Whole page: adopt the source page by reference; a
                // later write to either side clones first.
                const auto &src_chunk =
                    src.chunks_[page_index / kPagesPerChunk];
                sharePage(page_index,
                          src_chunk->pages[page_index % kPagesPerChunk]);
            } else {
                std::memcpy(pageForWrite(page_index) + offset,
                            src_page + offset, chunk);
            }
            markDirty(page_index);
        } else if (src.poisoned_) {
            std::memset(pageForWrite(page_index) + offset, kPoisonByte,
                        chunk);
            markDirty(page_index);
        } else if (pageData(page_index) != nullptr) {
            // Source reads as zero there; make the destination match
            // without allocating.
            if (chunk == kPageSize)
                erasePage(page_index);
            else
                std::memset(pageForWrite(page_index) + offset, 0, chunk);
            markDirty(page_index);
        }
        addr += chunk;
        len -= chunk;
    }
}

bool
SparseMemory::contentEquals(const SparseMemory &other) const
{
    if (capacity_ != other.capacity_)
        return false;
    return rangeEquals(other, 0, capacity_);
}

bool
SparseMemory::rangeEquals(const SparseMemory &other, uint64_t addr,
                          uint64_t len) const
{
    WSP_CHECKF(addr + len <= capacity_ && addr + len <= other.capacity_,
               "rangeEquals [%llu, %llu) beyond capacity",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + len));
    // Stream both in page-sized chunks through read() so the poison
    // and zero-fill rules apply uniformly; shared COW pages and
    // matching gaps compare by pointer without touching the bytes.
    std::vector<uint8_t> a(kPageSize);
    std::vector<uint8_t> b(kPageSize);
    while (len > 0) {
        const uint64_t page_index = addr / kPageSize;
        const uint64_t offset = addr % kPageSize;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize - offset, len));
        const uint8_t *here = pageData(page_index);
        const uint8_t *there = other.pageData(page_index);
        if (here == nullptr && there == nullptr) {
            if (poisoned_ != other.poisoned_)
                return false; // poison fill vs zero fill
        } else if (here != there) {
            read(addr, std::span<uint8_t>(a.data(), chunk));
            other.read(addr, std::span<uint8_t>(b.data(), chunk));
            if (std::memcmp(a.data(), b.data(), chunk) != 0)
                return false;
        }
        addr += chunk;
        len -= chunk;
    }
    return true;
}

} // namespace wsp
