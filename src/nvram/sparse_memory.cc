#include "nvram/sparse_memory.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace wsp {

SparseMemory::SparseMemory(uint64_t capacity) : capacity_(capacity)
{
    WSP_CHECK(capacity_ > 0);
}

uint8_t *
SparseMemory::pageForWrite(uint64_t page_index)
{
    auto it = pages_.find(page_index);
    if (it != pages_.end())
        return it->second.get();
    auto page = std::make_unique<uint8_t[]>(kPageSize);
    // After content loss, pages come back as poison rather than zero:
    // only explicitly rewritten bytes are trustworthy.
    std::memset(page.get(), poisoned_ ? kPoisonByte : 0, kPageSize);
    uint8_t *raw = page.get();
    pages_.emplace(page_index, std::move(page));
    return raw;
}

void
SparseMemory::read(uint64_t addr, std::span<uint8_t> out) const
{
    WSP_CHECKF(addr + out.size() <= capacity_,
               "read [%llu, %llu) beyond capacity %llu",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + out.size()),
               static_cast<unsigned long long>(capacity_));
    size_t done = 0;
    while (done < out.size()) {
        const uint64_t cur = addr + done;
        const uint64_t page_index = cur / kPageSize;
        const uint64_t offset = cur % kPageSize;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize - offset, out.size() - done));
        auto it = pages_.find(page_index);
        if (it != pages_.end()) {
            std::memcpy(out.data() + done, it->second.get() + offset,
                        chunk);
        } else {
            std::memset(out.data() + done,
                        poisoned_ ? kPoisonByte : 0, chunk);
        }
        done += chunk;
    }
}

void
SparseMemory::write(uint64_t addr, std::span<const uint8_t> data)
{
    WSP_CHECKF(addr + data.size() <= capacity_,
               "write [%llu, %llu) beyond capacity %llu",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + data.size()),
               static_cast<unsigned long long>(capacity_));
    size_t done = 0;
    while (done < data.size()) {
        const uint64_t cur = addr + done;
        const uint64_t page_index = cur / kPageSize;
        const uint64_t offset = cur % kPageSize;
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize - offset, data.size() - done));
        std::memcpy(pageForWrite(page_index) + offset, data.data() + done,
                    chunk);
        done += chunk;
    }
}

uint64_t
SparseMemory::readU64(uint64_t addr) const
{
    uint8_t bytes[8];
    read(addr, bytes);
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes[i];
    return value;
}

void
SparseMemory::writeU64(uint64_t addr, uint64_t value)
{
    uint8_t bytes[8];
    for (auto &byte : bytes) {
        byte = static_cast<uint8_t>(value & 0xff);
        value >>= 8;
    }
    write(addr, bytes);
}

void
SparseMemory::clear()
{
    pages_.clear();
    poisoned_ = false;
}

void
SparseMemory::poison()
{
    // Dropping the pages and setting the flag makes every byte read as
    // poison until rewritten.
    pages_.clear();
    poisoned_ = true;
}

SparseMemory
SparseMemory::snapshot() const
{
    SparseMemory copy(capacity_);
    copy.poisoned_ = poisoned_;
    for (const auto &[index, page] : pages_) {
        auto dup = std::make_unique<uint8_t[]>(kPageSize);
        std::memcpy(dup.get(), page.get(), kPageSize);
        copy.pages_.emplace(index, std::move(dup));
    }
    return copy;
}

void
SparseMemory::restoreFrom(const SparseMemory &image)
{
    WSP_CHECK(image.capacity_ == capacity_);
    *this = image.snapshot();
}

void
SparseMemory::copyRangeFrom(const SparseMemory &src, uint64_t addr,
                            uint64_t len)
{
    WSP_CHECKF(addr + len <= capacity_ && addr + len <= src.capacity_,
               "copyRangeFrom [%llu, %llu) beyond capacity",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(addr + len));
    // A poisoned destination has no meaningful "rest of the page" to
    // preserve; the flash side this primitive serves is never poisoned.
    WSP_CHECK(!poisoned_);
    while (len > 0) {
        const uint64_t page_index = addr / kPageSize;
        const uint64_t offset = addr % kPageSize;
        const uint64_t chunk =
            std::min<uint64_t>(kPageSize - offset, len);
        const auto sit = src.pages_.find(page_index);
        if (sit != src.pages_.end()) {
            std::memcpy(pageForWrite(page_index) + offset,
                        sit->second.get() + offset, chunk);
        } else if (src.poisoned_) {
            std::memset(pageForWrite(page_index) + offset, kPoisonByte,
                        chunk);
        } else {
            // Source reads as zero there; make the destination match
            // without allocating.
            const auto dit = pages_.find(page_index);
            if (dit != pages_.end()) {
                if (chunk == kPageSize)
                    pages_.erase(dit);
                else
                    std::memset(dit->second.get() + offset, 0, chunk);
            }
        }
        addr += chunk;
        len -= chunk;
    }
}

bool
SparseMemory::contentEquals(const SparseMemory &other) const
{
    if (capacity_ != other.capacity_)
        return false;
    // Stream both in page-sized chunks through read() so the poison
    // and zero-fill rules apply uniformly.
    std::vector<uint8_t> a(kPageSize);
    std::vector<uint8_t> b(kPageSize);
    for (uint64_t addr = 0; addr < capacity_; addr += kPageSize) {
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(kPageSize, capacity_ - addr));
        const uint64_t page_index = addr / kPageSize;
        const bool here = pages_.count(page_index) > 0;
        const bool there = other.pages_.count(page_index) > 0;
        if (!here && !there && poisoned_ == other.poisoned_)
            continue; // identical fill, skip the memcmp
        read(addr, std::span<uint8_t>(a.data(), chunk));
        other.read(addr, std::span<uint8_t>(b.data(), chunk));
        if (std::memcmp(a.data(), b.data(), chunk) != 0)
            return false;
    }
    return true;
}

} // namespace wsp
