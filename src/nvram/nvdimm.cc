#include "nvram/nvdimm.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "trace/flight_recorder.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace wsp {

namespace {

/** Trailing ordinal of a module name ("nvdimm3" -> 3). */
uint64_t
moduleOrdinal(const std::string &name)
{
    uint64_t value = 0;
    uint64_t scale = 1;
    for (size_t i = name.size(); i > 0; --i) {
        const char c = name[i - 1];
        if (c < '0' || c > '9')
            break;
        value += static_cast<uint64_t>(c - '0') * scale;
        scale *= 10;
    }
    return value;
}

/** Emit a per-module span edge ("nvdimm0 save" B/E) on its track. */
void
traceModuleEdge(const std::string &module, const char *what,
                trace::Phase phase)
{
    if (!trace::enabled(trace::Category::Nvram))
        return;
    char span[trace::Record::kNameBytes];
    std::snprintf(span, sizeof(span), "%s %s", module.c_str(), what);
    trace::TraceManager::instance().emit(trace::Category::Nvram, phase,
                                         span);
}

} // namespace

std::string
nvdimmStateName(NvdimmState state)
{
    switch (state) {
      case NvdimmState::Active:
        return "active";
      case NvdimmState::SelfRefresh:
        return "self-refresh";
      case NvdimmState::Saving:
        return "saving";
      case NvdimmState::Restoring:
        return "restoring";
      case NvdimmState::SaveFailed:
        return "save-failed";
    }
    return "unknown";
}

std::string
mediaFaultKindName(MediaFaultKind kind)
{
    switch (kind) {
      case MediaFaultKind::BitFlip:
        return "bit-flip";
      case MediaFaultKind::BadBlock:
        return "bad-block";
      case MediaFaultKind::TornWrite:
        return "torn-write";
    }
    return "unknown";
}

NvdimmModule::NvdimmModule(EventQueue &queue, std::string name,
                           NvdimmConfig config)
    : SimObject(queue, std::move(name)), config_(config),
      ultracap_(config.ultracap), dram_(config.capacityBytes),
      flash_(config.capacityBytes)
{
    WSP_CHECK(config_.capacityBytes > 0);
    WSP_CHECK(config_.channelSaveBw > 0.0);
    WSP_CHECK(config_.channelRestoreBw > 0.0);
}

unsigned
NvdimmModule::flashChannels() const
{
    if (config_.flashChannels > 0)
        return config_.flashChannels;
    const auto per_gib = static_cast<unsigned>(
        (config_.capacityBytes + kGiB - 1) / kGiB);
    return std::max(per_gib, 1u);
}

double
NvdimmModule::savePowerWatts() const
{
    if (config_.savePowerWatts > 0.0)
        return config_.savePowerWatts;
    return 2.0 + 4.0 * static_cast<double>(flashChannels());
}

Tick
NvdimmModule::saveDuration() const
{
    const double bw =
        config_.channelSaveBw * static_cast<double>(flashChannels());
    return fromSeconds(static_cast<double>(config_.capacityBytes) / bw);
}

Tick
NvdimmModule::fullRestoreDuration() const
{
    const double bw =
        config_.channelRestoreBw * static_cast<double>(flashChannels());
    return fromSeconds(static_cast<double>(config_.capacityBytes) / bw);
}

Tick
NvdimmModule::restoreDuration() const
{
    if (!config_.lazyRestore)
        return fullRestoreDuration();
    // Lazy page-in: set up the copy-on-read mapping of the flash
    // image instead of streaming it. The cost is per mapped extent,
    // not per byte, so multi-GiB images resume in milliseconds.
    const uint64_t chunks =
        (dram_.totalPages() + SparseMemory::kPagesPerChunk - 1) /
        SparseMemory::kPagesPerChunk;
    return config_.lazyRestoreFixedLatency +
           config_.lazyRestorePerChunk * static_cast<Tick>(chunks);
}

double
NvdimmModule::saveEnergy() const
{
    return savePowerWatts() * toSeconds(saveDuration());
}

bool
NvdimmModule::incrementalEligible() const
{
    return config_.incrementalSave && flashValid_ && baselineValid_ &&
           !flashTainted_ && !dram_.allDirty() &&
           dram_.dirtyEpoch() == baselineEpoch_;
}

uint64_t
NvdimmModule::pendingSaveBytes() const
{
    if (!incrementalEligible())
        return config_.capacityBytes;
    // Even an empty delta programs at least one page of control
    // metadata, so the save never models as instantaneous.
    return std::max(dram_.dirtyBytes(), SparseMemory::kPageSize);
}

Tick
NvdimmModule::pendingSaveDuration() const
{
    const double bw =
        config_.channelSaveBw * static_cast<double>(flashChannels());
    return std::max<Tick>(
        1, fromSeconds(static_cast<double>(pendingSaveBytes()) / bw));
}

double
NvdimmModule::pendingSaveEnergy() const
{
    return savePowerWatts() * toSeconds(pendingSaveDuration());
}

void
NvdimmModule::establishBaseline()
{
    dram_.resetDirty();
    baselineEpoch_ = dram_.dirtyEpoch();
    baselineValid_ = true;
}

void
NvdimmModule::hostRead(uint64_t addr, std::span<uint8_t> out) const
{
    WSP_CHECKF(state_ == NvdimmState::Active,
               "%s: host read while %s", name().c_str(),
               nvdimmStateName(state_).c_str());
    dram_.read(addr, out);
}

void
NvdimmModule::hostWrite(uint64_t addr, std::span<const uint8_t> data)
{
    WSP_CHECKF(state_ == NvdimmState::Active,
               "%s: host write while %s", name().c_str(),
               nvdimmStateName(state_).c_str());
    dram_.write(addr, data);
}

void
NvdimmModule::adoptFlashImage(const SparseMemory &flash, bool valid,
                              uint64_t flash_generation, uint64_t epoch,
                              uint64_t saved_bytes)
{
    WSP_CHECKF(state_ == NvdimmState::Active,
               "%s: adoptFlashImage requires Active (state %s)",
               name().c_str(), nvdimmStateName(state_).c_str());
    WSP_CHECKF(flash.capacity() == config_.capacityBytes,
               "%s: adopted image capacity mismatch", name().c_str());
    flash_.restoreFrom(flash);
    flashValid_ = valid;
    flashGeneration_ = flash_generation;
    epoch_ = epoch;
    flashSavedBytes_ = saved_bytes == ~0ull
                           ? (valid ? config_.capacityBytes : 0)
                           : saved_bytes;
    dram_.poison();
    // A socketed image has no relation to this module's DRAM history.
    baselineValid_ = false;
    flashTainted_ = false;
}

void
NvdimmModule::injectFlashFault(MediaFaultKind kind, uint64_t addr)
{
    WSP_CHECKF(addr < config_.capacityBytes,
               "%s: media fault beyond capacity", name().c_str());
    WSP_CHECKF(state_ != NvdimmState::Saving,
               "%s: media fault injection while saving", name().c_str());
    switch (kind) {
      case MediaFaultKind::BitFlip: {
        uint8_t byte = 0;
        flash_.read(addr, std::span<uint8_t>(&byte, 1));
        byte ^= static_cast<uint8_t>(1u << (addr % 8));
        flash_.write(addr, std::span<const uint8_t>(&byte, 1));
        break;
      }
      case MediaFaultKind::BadBlock: {
        const uint64_t block = addr / SparseMemory::kPageSize *
                               SparseMemory::kPageSize;
        std::vector<uint8_t> garbage(SparseMemory::kPageSize, 0xa5);
        flash_.write(block, garbage);
        break;
      }
      case MediaFaultKind::TornWrite: {
        const uint64_t line = addr / 64 * 64;
        const std::array<uint8_t, 32> zeros{};
        flash_.write(line + 32, zeros); // second half never programmed
        break;
      }
    }
    // The image no longer matches what the save wrote; a delta save
    // on top of it would persist the corruption, so the next save
    // falls back to full.
    flashTainted_ = true;
    trace::StatRegistry::instance().counter("nvram.media_faults").add();
    trace::frEmit(trace::FrEvent::MediaFault, trace::Category::Nvram,
                  moduleOrdinal(name()), addr);
    warn("%s: injected %s flash fault at 0x%llx (silent)",
         name().c_str(), mediaFaultKindName(kind).c_str(),
         static_cast<unsigned long long>(addr));
}

void
NvdimmModule::enterSelfRefresh()
{
    WSP_CHECKF(state_ == NvdimmState::Active,
               "%s: enterSelfRefresh from %s", name().c_str(),
               nvdimmStateName(state_).c_str());
    state_ = NvdimmState::SelfRefresh;
}

void
NvdimmModule::exitSelfRefresh()
{
    WSP_CHECKF(state_ == NvdimmState::SelfRefresh,
               "%s: exitSelfRefresh from %s", name().c_str(),
               nvdimmStateName(state_).c_str());
    state_ = NvdimmState::Active;
}

bool
NvdimmModule::busy() const
{
    return state_ == NvdimmState::Saving ||
           state_ == NvdimmState::Restoring;
}

void
NvdimmModule::startSave()
{
    WSP_CHECKF(state_ == NvdimmState::SelfRefresh,
               "%s: startSave requires self-refresh (state %s)",
               name().c_str(), nvdimmStateName(state_).c_str());
    state_ = NvdimmState::Saving;
    saveStarted_ = now();
    lastSaveStep_ = now();
    // Mode decision happens here, before any flash flag is touched:
    // the delta path needs the previous image still marked valid.
    saveIncremental_ = incrementalEligible();
    savePendingBytes_ = pendingSaveBytes();
    saveTotalDuration_ = pendingSaveDuration();
    saveDeadline_ = now() + saveTotalDuration_;
    savePoweredTime_ = 0;
    saveProgrammedBytes_ = 0;
    savePlan_.clear();
    savePlanCursor_ = 0;
    baselineValid_ = false; // flash diverges from the baseline now
    if (saveIncremental_) {
        // Delta save: program only the dirty pages, highest address
        // first so the control structures at the top of memory stay
        // first in line. Every clean page already equals DRAM in
        // flash (that is what the baseline means), so the up-to-date
        // suffix extends down to the next unprogrammed dirty page.
        savePlan_ = dram_.dirtyPagesDescending();
        flashSavedBytes_ =
            savePlan_.empty()
                ? config_.capacityBytes
                : config_.capacityBytes -
                      std::min(config_.capacityBytes,
                               (savePlan_.front() + 1) *
                                   SparseMemory::kPageSize);
    } else {
        // Full save: programming flash consumes the previous image
        // block by block — from the moment the erase starts, the old
        // save is gone. A restore attempt against a module that died
        // mid-save sees only the partial suffix this attempt managed
        // to program.
        flashSavedBytes_ = 0;
    }
    flashValid_ = false;
    flashGeneration_ = epoch_;
    auto &registry = trace::StatRegistry::instance();
    registry.counter("nvram.saves_started").add();
    registry.gauge("nvram.dirty_pages")
        .set(static_cast<double>(dram_.dirtyPageCount()));
    registry.gauge("nvram.pending_save_bytes")
        .set(static_cast<double>(savePendingBytes_));
    // The module is Saving now, so this record stages in the recorder
    // until the ring's backing module is writable again — exactly the
    // black-box semantics wanted: the epoch choice survives the crash
    // via the staged drain on the next boot.
    trace::frEmit(trace::FrEvent::NvdimmSaveStart, trace::Category::Nvram,
                  saveIncremental_ ? 1 : 0, savePendingBytes_);
    traceModuleEdge(name(), "save", trace::Phase::Begin);
    debugLog("%s: %s save started, %llu bytes, duration %s, "
             "energy %.1f J",
             name().c_str(), saveIncremental_ ? "incremental" : "full",
             static_cast<unsigned long long>(savePendingBytes_),
             formatTime(saveTotalDuration_).c_str(),
             savePowerWatts() * toSeconds(saveTotalDuration_));
    queue_.scheduleAfter(std::min(kSaveStep, saveTotalDuration_),
                         [this] { saveStep(); });
}

void
NvdimmModule::programFlashTo(uint64_t target_bytes)
{
    target_bytes = std::min(target_bytes, config_.capacityBytes);
    if (target_bytes <= flashSavedBytes_)
        return;
    // Top-down: the suffix [capacity - target, capacity) is in flash.
    flash_.copyRangeFrom(dram_, config_.capacityBytes - target_bytes,
                         target_bytes - flashSavedBytes_);
    flashSavedBytes_ = target_bytes;
    saveProgrammedBytes_ = target_bytes;
}

void
NvdimmModule::programIncrementalTo(uint64_t target_bytes)
{
    while (saveProgrammedBytes_ < target_bytes &&
           savePlanCursor_ < savePlan_.size()) {
        const uint64_t page = savePlan_[savePlanCursor_];
        const uint64_t base = page * SparseMemory::kPageSize;
        const uint64_t len = std::min(SparseMemory::kPageSize,
                                      config_.capacityBytes - base);
        flash_.copyRangeFrom(dram_, base, len);
        saveProgrammedBytes_ += len;
        ++savePlanCursor_;
        // The up-to-date suffix now reaches down to the page above
        // the next dirty page still waiting (clean pages in between
        // match DRAM by the baseline invariant).
        flashSavedBytes_ =
            savePlanCursor_ < savePlan_.size()
                ? config_.capacityBytes -
                      std::min(config_.capacityBytes,
                               (savePlan_[savePlanCursor_] + 1) *
                                   SparseMemory::kPageSize)
                : config_.capacityBytes;
    }
}

void
NvdimmModule::programProgress(uint64_t target_bytes)
{
    if (saveIncremental_)
        programIncrementalTo(target_bytes);
    else
        programFlashTo(target_bytes);
}

void
NvdimmModule::saveStep()
{
    if (state_ != NvdimmState::Saving)
        return;

    // Drain the ultracapacitor for the time elapsed since the last
    // step. The module always runs the save engine from its own bank
    // so the copy is immune to host power state.
    const Tick elapsed = now() - lastSaveStep_;
    lastSaveStep_ = now();
    const double wanted_j = savePowerWatts() * toSeconds(elapsed);
    const double delivered_j = ultracap_.discharge(savePowerWatts(),
                                                   elapsed);
    // Flash was programmed only for the portion of the step the bank
    // actually powered; a bank that died mid-step leaves that much of
    // the copy in flash.
    savePoweredTime_ +=
        wanted_j <= 0.0
            ? elapsed
            : static_cast<Tick>(
                  static_cast<double>(elapsed) *
                  std::clamp(delivered_j / wanted_j, 0.0, 1.0));
    programProgress(static_cast<uint64_t>(
        static_cast<double>(savePendingBytes_) *
        std::min(1.0, static_cast<double>(savePoweredTime_) /
                          static_cast<double>(saveTotalDuration_))));
    if (!ultracap_.canSupply(savePowerWatts())) {
        failSave("ultracapacitor exhausted");
        return;
    }
    if (now() >= saveDeadline_) {
        finishSave();
        return;
    }
    queue_.scheduleAfter(std::min<Tick>(kSaveStep, saveDeadline_ - now()),
                         [this] { saveStep(); });
}

void
NvdimmModule::finishSave()
{
    if (saveIncremental_)
        programIncrementalTo(~0ull);
    else
        programFlashTo(config_.capacityBytes);
    flashSavedBytes_ = config_.capacityBytes;
    flashValid_ = true;
    flashTainted_ = false;
    lastSaveProgrammedBytes_ = saveProgrammedBytes_;
    state_ = NvdimmState::SelfRefresh;
    ++savesCompleted_;
    if (saveIncremental_)
        ++incrementalSavesCompleted_;
    // The image now matches DRAM exactly: open the dirty baseline the
    // next delta save will be relative to.
    establishBaseline();
    if (config_.verifySaves && !flash_.contentEquals(dram_)) {
        // A completed save — delta or full — must leave flash
        // byte-identical to DRAM; anything else is an engine bug.
        ++saveMismatches_;
        trace::StatRegistry::instance()
            .counter("nvram.save_verify_mismatches")
            .add();
        warn("%s: save verify MISMATCH (%s save, %llu bytes "
             "programmed)",
             name().c_str(), saveIncremental_ ? "incremental" : "full",
             static_cast<unsigned long long>(saveProgrammedBytes_));
    }
    auto &registry = trace::StatRegistry::instance();
    registry.counter("nvram.saves_completed").add();
    registry.counter("nvram.bytes_saved").add(saveProgrammedBytes_);
    if (saveIncremental_)
        registry.counter("nvram.incremental_saves").add();
    trace::frEmit(trace::FrEvent::NvdimmSaveDone, trace::Category::Nvram,
                  saveProgrammedBytes_, saveIncremental_ ? 1 : 0);
    traceModuleEdge(name(), "save", trace::Phase::End);
    debugLog("%s: %s save completed at %s (%llu bytes programmed)",
             name().c_str(), saveIncremental_ ? "incremental" : "full",
             formatTime(now()).c_str(),
             static_cast<unsigned long long>(saveProgrammedBytes_));
    if (!hostPower_) {
        // With the image safely in flash the module powers down; the
        // DRAM side is no longer maintained.
        dram_.poison();
        state_ = NvdimmState::Active;
    }
}

void
NvdimmModule::failSave(const char *reason)
{
    warn("%s: save FAILED (%s) after %s", name().c_str(), reason,
         formatTime(now() - saveStarted_).c_str());
    lastSaveProgrammedBytes_ = saveProgrammedBytes_;
    if (config_.verifySaves && flashSavedBytes_ > 0 &&
        !dram_.poisoned()) {
        // Even a failed save must leave its up-to-date suffix
        // byte-identical to DRAM — the salvage path restores from it.
        const uint64_t base = config_.capacityBytes - flashSavedBytes_;
        if (!flash_.rangeEquals(dram_, base, flashSavedBytes_)) {
            ++saveMismatches_;
            trace::StatRegistry::instance()
                .counter("nvram.save_verify_mismatches")
                .add();
            warn("%s: failed-save suffix verify MISMATCH "
                 "(%llu bytes claimed)",
                 name().c_str(),
                 static_cast<unsigned long long>(flashSavedBytes_));
        }
    }
    flashValid_ = false;
    state_ = NvdimmState::SaveFailed;
    trace::StatRegistry::instance().counter("nvram.save_failures").add();
    trace::frEmit(trace::FrEvent::NvdimmSaveFailed,
                  trace::Category::Nvram, saveProgrammedBytes_, 0);
    traceModuleEdge(name(), "save", trace::Phase::End);
    TRACE_INSTANT(Nvram, "NVDIMM save failed");
    if (!hostPower_)
        dram_.poison();
}

void
NvdimmModule::startRestore()
{
    WSP_CHECKF(hostPower_, "%s: restore requires host power",
               name().c_str());
    WSP_CHECKF(state_ == NvdimmState::SelfRefresh,
               "%s: startRestore requires self-refresh (state %s)",
               name().c_str(), nvdimmStateName(state_).c_str());
    // A partial image (failed save) is restorable too: the firmware
    // reads back whatever suffix was programmed so the salvage path
    // can recover checksummed-intact regions from it.
    WSP_CHECKF(flashRestorable(),
               "%s: restore without any flash content", name().c_str());
    state_ = NvdimmState::Restoring;
    traceModuleEdge(name(), "restore", trace::Phase::Begin);
    queue_.scheduleAfter(restoreDuration(), [this] { finishRestore(); });
}

void
NvdimmModule::finishRestore()
{
    if (state_ != NvdimmState::Restoring)
        return;
    // Functionally both restore modes produce the same bytes: the
    // copy-on-write page table makes even the eager restore a pointer
    // copy, and the lazy mode only changes the modelled latency.
    dram_.restoreFrom(flash_);
    // DRAM now equals flash byte for byte, so the next save may be a
    // delta relative to this image (if the image is a complete one).
    establishBaseline();
    state_ = NvdimmState::SelfRefresh;
    ++restoresCompleted_;
    if (config_.lazyRestore)
        ++lazyRestoresCompleted_;
    auto &registry = trace::StatRegistry::instance();
    registry.counter("nvram.restores_completed").add();
    registry.counter("nvram.bytes_restored").add(config_.capacityBytes);
    if (config_.lazyRestore) {
        registry.counter("nvram.lazy_restores").add();
        trace::frEmit(trace::FrEvent::LazyPageIn, trace::Category::Nvram,
                      moduleOrdinal(name()),
                      config_.capacityBytes / SparseMemory::kPageSize);
    }
    traceModuleEdge(name(), "restore", trace::Phase::End);
    debugLog("%s: restore completed at %s", name().c_str(),
             formatTime(now()).c_str());
}

void
NvdimmModule::hostPowerLost()
{
    hostPower_ = false;
    TRACE_INSTANT(Nvram, "host power lost");
    switch (state_) {
      case NvdimmState::Active:
        if (armed_) {
            // Hardware-triggered save: an armed module forces its
            // DRAM into self-refresh and saves on its own when it
            // sees power disappear (AgigaRAM behaviour). Whatever the
            // host failed to flush is simply not in the image; the
            // WSP valid marker is what distinguishes a usable image
            // from a torn one.
            state_ = NvdimmState::SelfRefresh;
            startSave();
        } else {
            // DRAM without refresh or backup: contents decay. The
            // flash image, if any, is unaffected.
            dram_.poison();
        }
        break;
      case NvdimmState::SelfRefresh:
        if (armed_) {
            // Hardware-triggered save, as above.
            startSave();
        } else {
            // Self-refresh is powered by the ultracap only briefly;
            // without a save the content is eventually lost. Model
            // that as immediate loss for determinism.
            dram_.poison();
            state_ = NvdimmState::Active;
        }
        break;
      case NvdimmState::Saving:
        break; // save continues on ultracap power
      case NvdimmState::Restoring:
        // Restore needs host power; the partial DRAM image is junk,
        // but the flash image stays valid for a retry.
        dram_.poison();
        state_ = NvdimmState::Active;
        break;
      case NvdimmState::SaveFailed:
        dram_.poison();
        break;
    }
}

void
NvdimmModule::hostPowerRestored()
{
    hostPower_ = true;
    TRACE_INSTANT(Nvram, "host power restored");
    // The bank recharges from the 12 V rail; model the recharge as
    // complete by the time the host is back up (tens of seconds).
    if (ultracap_.voltage() < ultracap_.config().maxVoltage)
        ultracap_.rechargeFully();
    if (state_ == NvdimmState::SaveFailed)
        state_ = NvdimmState::Active;
}

} // namespace wsp
