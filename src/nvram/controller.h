/**
 * @file
 * NVDIMM controller: command fan-out across all modules.
 *
 * In the paper's prototype the power-monitor microcontroller talks to
 * the AgigaRAM modules over an I2C bus, translating host commands into
 * per-module save/restore operations (section 4). NVDIMMs save and
 * restore in parallel since they share no resources. This class is
 * the bus endpoint: it owns no modules but fans commands out to every
 * attached one and tracks collective completion.
 */

#pragma once

#include <functional>
#include <vector>

#include "nvram/nvdimm.h"
#include "power/power_monitor.h"
#include "sim/sim_object.h"

namespace wsp {

/** Fan-out controller for a set of NVDIMM modules. */
class NvdimmController : public SimObject
{
  public:
    explicit NvdimmController(EventQueue &queue);

    /** Attach a module; modules save/restore in parallel. */
    void attach(NvdimmModule &module);

    const std::vector<NvdimmModule *> &modules() const { return modules_; }

    /** Arm every module for hardware-triggered save on power loss. */
    void armAll();

    /** Disarm every module. */
    void disarmAll();

    /**
     * Begin a save on every module: enter self-refresh where needed,
     * then start the parallel DRAM-to-flash copies.
     */
    void saveAll();

    /**
     * Begin a restore on every module (boot path); @p done runs after
     * the slowest module finishes and all are back in Active state.
     */
    void restoreAll(std::function<void()> done);

    /**
     * Begin a restore on every module that has any flash content —
     * full images and the partial suffix of a failed save alike —
     * leaving empty modules untouched; @p done runs after the slowest
     * restore and every module is back in Active state. Used by the
     * salvage path, where allFlashValid() may be false.
     */
    void restoreAvailable(std::function<void()> done);

    /** True when every module holds a valid flash image. */
    bool allFlashValid() const;

    /** True when any module holds restorable flash content. */
    bool anyRestorable() const;

    /** True when no module is mid save/restore. */
    bool allIdle() const;

    /** True if any module's last save failed. */
    bool anySaveFailed() const;

    /** True while any module is mid-save. */
    bool anySaving() const;

    /** Sum of completed saves across modules. */
    uint64_t totalSavesCompleted() const;

    /**
     * Publish the platform's boot sequence into every module's
     * persistent epoch register (done on every boot / start). The save
     * engine stamps this epoch into its flash image; restore rejects
     * images whose marker generation does not match the epoch.
     */
    void publishEpoch(uint64_t epoch);

    /** The published epoch (max over modules; equal in practice). */
    uint64_t currentEpoch() const;

    /** Worst-case save duration over the attached modules. */
    Tick maxSaveDuration() const;

    /** Worst-case restore duration over the attached modules. */
    Tick maxRestoreDuration() const;

    /**
     * Return every idle module to Active (cold-boot path: memory
     * content is about to be rebuilt, self-refresh gates host access).
     */
    void resetToActive();

    /** Fan out a host power-loss notification. */
    void hostPowerLost();

    /** Fan out a host power-restored notification. */
    void hostPowerRestored();

    /**
     * Adapter for PowerMonitor::setCommandSink: maps bus commands to
     * the collective operations above.
     */
    PowerMonitor::CommandSink commandSink();

  private:
    std::vector<NvdimmModule *> modules_;
};

} // namespace wsp
