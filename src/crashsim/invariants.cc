#include "crashsim/invariants.h"

#include <cstdio>

#include "apps/kv_store.h"
#include "util/rng.h"

namespace wsp::crashsim {

namespace {

/** Keys are drawn from [1, kKeyUniverse] so absence is checkable. */
constexpr uint64_t kKeyUniverse = 128;

/**
 * Attach the checker's store as @p shards stripes over the system's
 * (single) cache. The striped layout with shards == 1 is bit-for-bit
 * the plain KvStore layout, so one code path covers both regimes.
 */
std::optional<apps::ShardedKvStore>
attachCheckerStore(WspSystem &system, unsigned shards)
{
    std::vector<CacheModel *> caches(shards, &system.cache());
    return apps::ShardedKvStore::attach(
        std::span<CacheModel *const>(caches), KvPrefixChecker::kBase);
}

apps::ShardedKvStore
createCheckerStore(WspSystem &system, unsigned shards)
{
    std::vector<CacheModel *> caches(shards, &system.cache());
    return apps::ShardedKvStore(std::span<CacheModel *const>(caches),
                                KvPrefixChecker::kBase,
                                KvPrefixChecker::kCapacity / shards);
}

} // namespace

void
addViolation(std::vector<std::string> *violations, const char *fmt, ...)
{
    char line[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    violations->emplace_back(line);
}

// KvPrefixChecker ------------------------------------------------------

void
KvPrefixChecker::prepare(WspSystem &system, const CrashSchedule &schedule)
{
    model_.clear();
    appliedOps_ = 0;
    shards_ = schedule.shards;
    WSP_CHECKF(shards_ >= 1 && kCapacity % shards_ == 0,
               "kv-prefix shard count must divide the capacity");

    createCheckerStore(system, shards_);

    // Pre-draw the whole operation stream so determinism does not
    // depend on how far the run gets before the lights go out.
    Rng rng(schedule.seed ^ 0x6b76ull); // "kv"
    struct Op
    {
        bool isPut;
        uint64_t key;
        uint64_t value;
    };
    auto ops = std::make_shared<std::vector<Op>>();
    ops->reserve(schedule.ops);
    for (unsigned i = 0; i < schedule.ops; ++i) {
        Op op;
        op.isPut = rng.chance(0.8);
        op.key = rng.next(kKeyUniverse) + 1;
        op.value = rng.next(1u << 20) + 1;
        ops->push_back(op);
    }

    // Each operation is its own event: every op boundary is a
    // distinguishable crash point, and ops silently stop applying
    // while the machine is down (then resume if a train cycle brings
    // it back with time to spare).
    EventQueue &queue = system.queue();
    for (unsigned i = 0; i < schedule.ops; ++i) {
        queue.scheduleAfter(
            static_cast<Tick>(i + 1) * schedule.opSpacing,
            [this, &system, ops, i]() {
                if (!system.wsp().running() ||
                    !system.machine().powerOn())
                    return;
                auto store = attachCheckerStore(system, shards_);
                if (!store)
                    return;
                const Op &op = (*ops)[i];
                if (op.isPut) {
                    if (store->put(op.key, op.value))
                        model_[op.key] = op.value;
                } else {
                    store->erase(op.key);
                    model_.erase(op.key);
                }
                ++appliedOps_;
            });
    }
}

void
KvPrefixChecker::onBackendRecovery(WspSystem &system)
{
    // "Fetch from the storage back end": rebuild the store from the
    // model, exactly what a real KV server would do from its log.
    apps::ShardedKvStore store = createCheckerStore(system, shards_);
    for (const auto &[key, value] : model_)
        store.put(key, value);
}

void
KvPrefixChecker::check(WspSystem &crashed, WspSystem &revived,
                       const RestoreReport &restore, bool backend_ran,
                       std::vector<std::string> *violations)
{
    (void)crashed;
    if (!restore.usedWsp && !backend_ran) {
        addViolation(violations,
                     "kv-prefix: neither WSP restore nor back-end "
                     "recovery ran; store state is undefined");
        return;
    }

    // Whether the image came back verbatim (WSP) or was rebuilt from
    // the back end, the revived store must equal the applied prefix.
    auto store = attachCheckerStore(revived, shards_);
    if (!store) {
        addViolation(violations,
                     "kv-prefix: no valid store header after %s "
                     "(applied ops: %llu)",
                     restore.usedWsp ? "WSP restore" : "back-end recovery",
                     static_cast<unsigned long long>(appliedOps_));
        return;
    }

    if (store->size() != model_.size())
        addViolation(violations,
                     "kv-prefix: size %llu != expected %llu",
                     static_cast<unsigned long long>(store->size()),
                     static_cast<unsigned long long>(model_.size()));

    uint64_t expected_checksum = 0;
    for (const auto &[key, value] : model_) {
        // Mirrors KvStore::checksum()'s slot hash.
        expected_checksum += key * 0x9e3779b97f4a7c15ull + value;
        uint64_t got = 0;
        if (!store->get(key, &got))
            addViolation(violations,
                         "kv-prefix: key %llu missing (expected %llu)",
                         static_cast<unsigned long long>(key),
                         static_cast<unsigned long long>(value));
        else if (got != value)
            addViolation(violations,
                         "kv-prefix: key %llu holds %llu, expected %llu",
                         static_cast<unsigned long long>(key),
                         static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(value));
    }

    for (uint64_t key = 1; key <= kKeyUniverse; ++key) {
        if (model_.count(key) != 0)
            continue;
        if (store->get(key))
            addViolation(violations,
                         "kv-prefix: stale key %llu present after "
                         "recovery",
                         static_cast<unsigned long long>(key));
    }

    if (store->checksum() != expected_checksum)
        addViolation(violations,
                     "kv-prefix: checksum %llu != expected %llu",
                     static_cast<unsigned long long>(store->checksum()),
                     static_cast<unsigned long long>(expected_checksum));
}

// MarkerAtomicityChecker -----------------------------------------------

void
MarkerAtomicityChecker::check(WspSystem &crashed, WspSystem &revived,
                              const RestoreReport &restore,
                              bool backend_ran,
                              std::vector<std::string> *violations)
{
    (void)revived;
    const SaveReport &save = crashed.wsp().saveRoutine().progress();

    // A marker that decodes as valid must have been stamped by the
    // save routine; it can never materialize out of a torn write.
    if (restore.markerValid &&
        !SaveRoutine::stepReached(save, "mark image as valid"))
        addViolation(violations,
                     "marker-atomicity: marker decoded as valid but the "
                     "stamp step never completed");

    // The paper's protocol: the marker vouches for the image, so a WSP
    // resume implies the caches were flushed before the crash. The
    // deliberately broken marker-before-flush order violates exactly
    // this.
    if (restore.usedWsp &&
        !SaveRoutine::stepReached(save, "flush caches (all sockets)"))
        addViolation(violations,
                     "marker-atomicity: WSP resume from an image whose "
                     "caches were never flushed (marker stamped before "
                     "wbinvd?)");

    const bool image_usable = restore.flashValid &&
                              restore.markerValid && restore.checksumOk;
    if (restore.usedWsp != image_usable)
        addViolation(violations,
                     "marker-atomicity: usedWsp=%d inconsistent with "
                     "flashValid=%d markerValid=%d checksumOk=%d",
                     restore.usedWsp ? 1 : 0, restore.flashValid ? 1 : 0,
                     restore.markerValid ? 1 : 0,
                     restore.checksumOk ? 1 : 0);

    // Exactly one recovery path must run.
    if (restore.usedWsp == backend_ran)
        addViolation(violations,
                     "marker-atomicity: usedWsp=%d and backend_ran=%d; "
                     "exactly one recovery path must run",
                     restore.usedWsp ? 1 : 0, backend_ran ? 1 : 0);
}

// DeviceReinitChecker --------------------------------------------------

void
DeviceReinitChecker::prepare(WspSystem &system,
                             const CrashSchedule &schedule)
{
    (void)schedule;
    deviceCount_ = system.devices().devices().size();
}

void
DeviceReinitChecker::check(WspSystem &crashed, WspSystem &revived,
                           const RestoreReport &restore, bool backend_ran,
                           std::vector<std::string> *violations)
{
    (void)crashed;
    (void)revived;
    (void)backend_ran;
    if (!restore.usedWsp || deviceCount_ == 0)
        return;

    // Every device must be accounted for on the restore path: either
    // restarted or explicitly reported unsupported — none skipped.
    const size_t accounted = restore.deviceReport.devicesRestarted +
                             restore.deviceReport.devicesUnsupported;
    if (accounted != deviceCount_)
        addViolation(violations,
                     "device-reinit: %zu of %zu devices accounted for "
                     "after WSP resume",
                     accounted, deviceCount_);
}

std::vector<std::unique_ptr<InvariantChecker>>
standardCheckers()
{
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    checkers.push_back(std::make_unique<KvPrefixChecker>());
    checkers.push_back(std::make_unique<MarkerAtomicityChecker>());
    checkers.push_back(std::make_unique<DeviceReinitChecker>());
    return checkers;
}

} // namespace wsp::crashsim
