#include "crashsim/invariants.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "apps/kv_store.h"
#include "core/salvage_directory.h"
#include "crashsim/conditions/kv_conditions.h"
#include "util/rng.h"

namespace wsp::crashsim {

namespace {

/** "kv<i>.meta" / "kv<i>.data" → "kv<i>"; other names pass through. */
std::string
shardKey(const std::string &region_name)
{
    return region_name.substr(0, region_name.find('.'));
}

} // namespace

void
addViolation(std::vector<std::string> *violations, const char *fmt, ...)
{
    char line[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    violations->emplace_back(line);
}

// MarkerAtomicityChecker -----------------------------------------------

void
MarkerAtomicityChecker::check(WspSystem &crashed, WspSystem &revived,
                              const RestoreReport &restore,
                              bool backend_ran,
                              std::vector<std::string> *violations)
{
    (void)revived;
    const SaveReport &save = crashed.wsp().saveRoutine().progress();

    // A marker that decodes as valid must have been stamped by the
    // save routine; it can never materialize out of a torn write.
    if (restore.markerValid &&
        !SaveRoutine::stepReached(save, "mark image as valid"))
        addViolation(violations,
                     "marker-atomicity: marker decoded as valid but the "
                     "stamp step never completed");

    // The paper's protocol: the marker vouches for the image, so a WSP
    // resume implies the caches were flushed before the crash. The
    // deliberately broken marker-before-flush order violates exactly
    // this.
    if (restore.usedWsp &&
        !SaveRoutine::stepReached(save, "flush caches (all sockets)"))
        addViolation(violations,
                     "marker-atomicity: WSP resume from an image whose "
                     "caches were never flushed (marker stamped before "
                     "wbinvd?)");

    // Whole-system resume demands the full chain of vouchers: intact
    // flash, a stamped marker from the current generation, a matching
    // resume checksum, an undegraded (bulk-tier) image, and a
    // decodable marker-bound directory.
    const bool image_usable =
        restore.flashValid && restore.markerValid &&
        restore.generationOk && restore.checksumOk &&
        restore.imageTierCut == SaveTier::Bulk && restore.directoryOk;
    if (restore.usedWsp != image_usable)
        addViolation(violations,
                     "marker-atomicity: usedWsp=%d inconsistent with "
                     "flashValid=%d markerValid=%d generationOk=%d "
                     "checksumOk=%d tierCut=%s directoryOk=%d",
                     restore.usedWsp ? 1 : 0, restore.flashValid ? 1 : 0,
                     restore.markerValid ? 1 : 0,
                     restore.generationOk ? 1 : 0,
                     restore.checksumOk ? 1 : 0,
                     saveTierName(restore.imageTierCut).c_str(),
                     restore.directoryOk ? 1 : 0);

    // Exactly one recovery path must run.
    const int paths = (restore.usedWsp ? 1 : 0) + (backend_ran ? 1 : 0) +
                      (restore.salvageMode ? 1 : 0);
    if (paths != 1)
        addViolation(violations,
                     "marker-atomicity: usedWsp=%d backend_ran=%d "
                     "salvageMode=%d; exactly one recovery path must run",
                     restore.usedWsp ? 1 : 0, backend_ran ? 1 : 0,
                     restore.salvageMode ? 1 : 0);
}

// DeviceReinitChecker --------------------------------------------------

void
DeviceReinitChecker::prepare(WspSystem &system,
                             const CrashSchedule &schedule)
{
    (void)schedule;
    deviceCount_ = system.devices().devices().size();
}

void
DeviceReinitChecker::check(WspSystem &crashed, WspSystem &revived,
                           const RestoreReport &restore, bool backend_ran,
                           std::vector<std::string> *violations)
{
    (void)crashed;
    (void)revived;
    (void)backend_ran;
    if (!restore.usedWsp || deviceCount_ == 0)
        return;

    // Every device must be accounted for on the restore path: either
    // restarted or explicitly reported unsupported — none skipped.
    const size_t accounted = restore.deviceReport.devicesRestarted +
                             restore.deviceReport.devicesUnsupported;
    if (accounted != deviceCount_)
        addViolation(violations,
                     "device-reinit: %zu of %zu devices accounted for "
                     "after WSP resume",
                     accounted, deviceCount_);
}

// Media-fault planning ------------------------------------------------

std::vector<PlannedMediaFault>
plannedMediaFaults(const CrashSchedule &schedule, size_t module_count,
                   uint64_t module_capacity)
{
    std::vector<PlannedMediaFault> faults;
    if (!schedule.salvage || schedule.mediaFaults == 0 ||
        module_count == 0)
        return faults;
    Rng rng(schedule.mediaFaultSeed ^ schedule.seed ^ 0x666c74ull); // "flt"
    const uint64_t kv_bytes = apps::ShardedKvStore::regionBytes(
        schedule.shards,
        conditions::KvConditionsChecker::kCapacity / schedule.shards);
    for (unsigned i = 0; i < schedule.mediaFaults; ++i) {
        PlannedMediaFault fault;
        fault.kind =
            schedule.mediaFaultKind >= 0
                ? static_cast<MediaFaultKind>(schedule.mediaFaultKind)
                : static_cast<MediaFaultKind>(rng.next(3));
        if (i == 0) {
            // The first fault always hits the KV region (module 0 owns
            // the low addresses), so every faulted run proves at least
            // one quarantine-and-recover.
            fault.module = 0;
            fault.addr = conditions::KvConditionsChecker::kBase +
                         rng.next(std::min(kv_bytes, module_capacity));
        } else {
            fault.module = static_cast<size_t>(rng.next(module_count));
            fault.addr = rng.next(module_capacity);
        }
        faults.push_back(fault);
    }
    return faults;
}

/** Global NVRAM extent a planned fault clobbers. */
namespace {

struct FaultExtent
{
    uint64_t base = 0;
    uint64_t size = 0;
};

FaultExtent
faultExtent(const PlannedMediaFault &fault, uint64_t module_base)
{
    switch (fault.kind) {
      case MediaFaultKind::BitFlip:
        return {module_base + fault.addr, 1};
      case MediaFaultKind::BadBlock:
        return {module_base + fault.addr / SparseMemory::kPageSize *
                                  SparseMemory::kPageSize,
                SparseMemory::kPageSize};
      case MediaFaultKind::TornWrite:
        // The first half-line programmed; the second half did not.
        return {module_base + fault.addr / 64 * 64 + 32, 32};
    }
    return {};
}

bool
overlaps(uint64_t a, uint64_t an, uint64_t b, uint64_t bn)
{
    return a < b + bn && b < a + an;
}

} // namespace

// SalvageSoundChecker --------------------------------------------------

void
SalvageSoundChecker::prepare(WspSystem &system,
                             const CrashSchedule &schedule)
{
    (void)system;
    schedule_ = schedule;
}

void
SalvageSoundChecker::check(WspSystem &crashed, WspSystem &revived,
                           const RestoreReport &restore, bool backend_ran,
                           std::vector<std::string> *violations)
{
    (void)revived;
    (void)backend_ran;
    if (restore.regions.empty())
        return;

    NvramSpace &memory = crashed.memory();
    std::vector<FaultExtent> faulted;
    for (const PlannedMediaFault &fault :
         plannedMediaFaults(schedule_, memory.moduleCount(),
                            memory.module(0).capacity()))
        faulted.push_back(
            faultExtent(fault, memory.moduleBase(fault.module)));

    // A region byte reached flash iff its module programmed it: the
    // copy engine writes the suffix [capacity - savedBytes, capacity)
    // of each module, top down.
    const auto flashCovered = [&memory](uint64_t base, uint64_t size) {
        for (size_t i = 0; i < memory.moduleCount(); ++i) {
            const NvdimmModule &module = memory.module(i);
            const uint64_t mbase = memory.moduleBase(i);
            const uint64_t mend = mbase + module.capacity();
            const uint64_t lo = std::max(base, mbase);
            const uint64_t hi = std::min(base + size, mend);
            if (lo >= hi)
                continue;
            if (lo < mend - module.flashSavedBytes())
                return false;
        }
        return true;
    };

    // Once a shard was quarantined, its recovery rebuilt the shard's
    // bytes in place — later CRC checks over sibling regions of the
    // same shard compare the replayed layout against the saved one,
    // so their verdicts are exempt from the intact-must-salvage rule.
    std::set<std::string> rebuilt;
    for (const RegionOutcome &region : restore.regions) {
        if (region.saved && !region.salvaged && !region.quarantined)
            addViolation(violations,
                         "salvage-sound: region '%s' neither salvaged "
                         "nor quarantined",
                         region.name.c_str());
        if (!region.saved && region.salvaged)
            addViolation(violations,
                         "salvage-sound: region '%s' was never saved "
                         "yet came back salvaged",
                         region.name.c_str());

        bool hit = false;
        for (const FaultExtent &extent : faulted)
            hit = hit || overlaps(region.base, region.size, extent.base,
                                  extent.size);
        if (region.saved && !hit && !region.salvaged &&
            rebuilt.count(shardKey(region.name)) == 0 &&
            flashCovered(region.base, region.size))
            addViolation(violations,
                         "salvage-sound: intact region '%s' (saved, "
                         "fully in flash, no fault) was quarantined",
                         region.name.c_str());

        if (region.quarantined)
            rebuilt.insert(shardKey(region.name));
    }
}

// NoSilentCorruptionChecker --------------------------------------------

void
NoSilentCorruptionChecker::prepare(WspSystem &system,
                                   const CrashSchedule &schedule)
{
    (void)system;
    schedule_ = schedule;
}

void
NoSilentCorruptionChecker::check(WspSystem &crashed, WspSystem &revived,
                                 const RestoreReport &restore,
                                 bool backend_ran,
                                 std::vector<std::string> *violations)
{
    (void)crashed;
    (void)backend_ran;
    if (restore.regions.empty())
        return;

    // Shards a quarantine rebuilt hold the replayed model's byte
    // layout, not the saved image's, so the saved CRCs no longer
    // apply to any of their regions.
    std::set<std::string> rebuilt;
    for (const RegionOutcome &region : restore.regions) {
        if (!region.quarantined)
            continue;
        rebuilt.insert(shardKey(region.name));
        if (schedule_.salvage && !region.recovered)
            addViolation(violations,
                         "no-silent-corruption: quarantined region '%s' "
                         "was never handed to recovery",
                         region.name.c_str());
    }

    const uint64_t base = revived.wsp().salvageDirectory().base();
    auto image = SalvageDirectory::read(revived.memory(), base);
    if (!image) {
        addViolation(violations,
                     "no-silent-corruption: salvage directory "
                     "unreadable after a region-verified recovery");
        return;
    }

    for (const RegionOutcome &region : restore.regions) {
        if (!region.salvaged || rebuilt.count(shardKey(region.name)) != 0)
            continue;
        const SalvageDirectoryEntry *entry = nullptr;
        for (const SalvageDirectoryEntry &candidate : image->entries) {
            if (candidate.name == region.name)
                entry = &candidate;
        }
        if (entry == nullptr)
            continue;
        const uint64_t crc = SalvageDirectory::regionCrc(
            revived.memory(), region.base, region.size);
        if (crc != entry->crc)
            addViolation(violations,
                         "no-silent-corruption: region '%s' was revived "
                         "with content that fails its saved CRC "
                         "(got %llx, directory says %llx)",
                         region.name.c_str(),
                         static_cast<unsigned long long>(crc),
                         static_cast<unsigned long long>(entry->crc));
    }
}

void
IncrementalSaveSoundChecker::check(WspSystem &crashed, WspSystem &revived,
                                   const RestoreReport &restore,
                                   bool backend_ran,
                                   std::vector<std::string> *violations)
{
    (void)restore;
    (void)backend_ran;
    const auto report = [violations](const char *which, size_t i,
                                     uint64_t mismatches) {
        if (mismatches > 0)
            addViolation(violations,
                         "incremental-save-sound: %s module %zu recorded "
                         "%llu save image mismatch(es) against DRAM",
                         which, i,
                         static_cast<unsigned long long>(mismatches));
    };
    for (size_t i = 0; i < crashed.memory().moduleCount(); ++i)
        report("crashed", i, crashed.memory().module(i).saveMismatches());
    for (size_t i = 0; i < revived.memory().moduleCount(); ++i)
        report("revived", i, revived.memory().module(i).saveMismatches());
}

trace::FrByteReader
imageByteReader(const NvramImage &image)
{
    return [&image](uint64_t addr, std::span<uint8_t> out) -> bool {
        uint64_t base = 0;
        for (size_t i = 0; i < image.moduleCount(); ++i) {
            const NvramImage::ModuleImage &module = image.module(i);
            const uint64_t capacity = module.flash.capacity();
            if (addr >= base + capacity) {
                base += capacity;
                continue;
            }
            const uint64_t local = addr - base;
            if (local + out.size() > capacity)
                return false; // straddles a module boundary
            // Only the programmed suffix carries this save's bytes;
            // anything below it is residue of an older image the
            // metadata does not claim.
            const uint64_t claimed_from =
                capacity - std::min(capacity, module.savedBytes);
            if (local < claimed_from)
                return false;
            module.flash.read(local, out);
            return true;
        }
        return false;
    };
}

trace::FrDecodeResult
decodeBlackBox(const NvramImage &image)
{
    uint64_t top = 0;
    for (size_t i = 0; i < image.moduleCount(); ++i)
        top += image.module(i).flash.capacity();
    const trace::FrByteReader read = imageByteReader(image);
    // The recorder header sits just below the salvage directory at
    // the top of memory; 2 MiB of scan comfortably covers the control
    // structures above it without assuming the exact layout.
    const auto header = trace::frFindHeader(read, top, 2 * kMiB);
    if (!header) {
        trace::FrDecodeResult result;
        result.notes.push_back(
            "no flight-recorder header in the surviving image");
        return result;
    }
    return trace::frDecode(read, *header);
}

void
BlackBoxSoundChecker::prepare(WspSystem &system,
                              const CrashSchedule &schedule)
{
    (void)system;
    schedule_ = schedule;
}

void
BlackBoxSoundChecker::check(WspSystem &crashed, WspSystem &revived,
                            const RestoreReport &restore,
                            bool backend_ran,
                            std::vector<std::string> *violations)
{
    (void)revived;
    (void)restore;
    (void)backend_ran;
    if (!schedule_.blackBox)
        return;
    const NvramImage image = crashed.captureNvramImage();
    const trace::FrDecodeResult decode = decodeBlackBox(image);
    if (!decode.sound()) {
        addViolation(violations,
                     "black-box-sound: %zu torn slot(s) inside the "
                     "published window (head %llu, tail %llu): %s",
                     decode.tornSlots,
                     static_cast<unsigned long long>(decode.headSeq),
                     static_cast<unsigned long long>(decode.tailSeq),
                     decode.notes.empty() ? "(no detail)"
                                          : decode.notes.front().c_str());
    }
}

std::vector<std::unique_ptr<InvariantChecker>>
standardCheckers()
{
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    // The conditions battery leads (the explorer assumes it is
    // front()); its companion detectability checker must follow it,
    // since it judges the history the battery's check() assembled.
    auto battery = std::make_unique<conditions::KvConditionsChecker>();
    auto detectable =
        std::make_unique<conditions::DetectableExecutionChecker>(
            battery.get());
    checkers.push_back(std::move(battery));
    checkers.push_back(std::move(detectable));
    checkers.push_back(std::make_unique<MarkerAtomicityChecker>());
    checkers.push_back(std::make_unique<DeviceReinitChecker>());
    checkers.push_back(std::make_unique<SalvageSoundChecker>());
    checkers.push_back(std::make_unique<NoSilentCorruptionChecker>());
    checkers.push_back(std::make_unique<IncrementalSaveSoundChecker>());
    checkers.push_back(std::make_unique<BlackBoxSoundChecker>());
    return checkers;
}

} // namespace wsp::crashsim
