/**
 * @file
 * Pluggable invariant checkers for crash-point exploration.
 *
 * A checker sees three moments of a crash run:
 *
 *  - prepare():  the pre-crash system, where it installs a workload
 *    and records what it expects to survive,
 *  - onBackendRecovery(): invoked inside same-system train cycles
 *    whenever WSP recovery fell back, so the checker can rebuild its
 *    application state from the "storage back end" (its own model),
 *  - check():    after the surviving NVRAM image was socketed into a
 *    fresh system and booted, where it appends human-readable
 *    violation strings for anything that does not hold.
 *
 * The central invariant (DESIGN.md §5) splits into the concrete
 * checks here: the surviving KV state must satisfy the formal
 * persistency conditions (durable linearizability and friends —
 * DESIGN.md §13, crashsim/conditions/); the valid marker must never
 * vouch for an unflushed image; devices must all be reinitialized; and
 * exactly one of {WSP restore, region salvage, back-end recovery}
 * must happen.
 *
 * The salvage regime (schedule.salvage) adds two checkers over the
 * per-region outcomes: SalvageSound — a region the save persisted and
 * nothing corrupted must come back salvaged, never thrown away — and
 * NoSilentCorruption — a region reported salvaged must actually hold
 * the bytes its saved CRC vouches for, and every quarantined region
 * must have been handed to recovery.
 */

#pragma once

#include <cstdarg>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "crashsim/crash_schedule.h"
#include "nvram/nvram_image.h"
#include "trace/flight_recorder.h"

namespace wsp::crashsim {

/** Append a printf-formatted violation to @p violations. */
void addViolation(std::vector<std::string> *violations, const char *fmt,
                  ...) __attribute__((format(printf, 2, 3)));

/** Interface of one invariant checker. */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    virtual const char *name() const = 0;

    /** Install workload / record expectations on the pre-crash system. */
    virtual void prepare(WspSystem &system, const CrashSchedule &schedule)
    {
        (void)system;
        (void)schedule;
    }

    /** Back-end recovery hook for same-system train cycles. */
    virtual void onBackendRecovery(WspSystem &system) { (void)system; }

    /**
     * Judge the revived system. @p crashed is the original machine
     * (post-outage, power off), @p revived the fresh chassis that
     * booted from the captured image.
     */
    virtual void check(WspSystem &crashed, WspSystem &revived,
                       const RestoreReport &restore, bool backend_ran,
                       std::vector<std::string> *violations) = 0;
};

/**
 * Valid-marker atomicity: a marker that decodes as valid must imply
 * the stamp step actually executed, and a WSP restore must imply the
 * caches were flushed before the crash. Also checks the structural
 * identity usedWsp == (flashValid && markerValid && checksumOk) and
 * that exactly one recovery path ran.
 */
class MarkerAtomicityChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "marker-atomicity"; }
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;
};

/**
 * Device reinit completeness: after a WSP restore with devices
 * attached, every device must have been restarted or explicitly
 * reported unsupported — none silently skipped.
 */
class DeviceReinitChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "device-reinit"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override;
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

  private:
    size_t deviceCount_ = 0;
};

/** One planned silent flash fault of a salvage schedule. */
struct PlannedMediaFault
{
    size_t module = 0; ///< crashed-system module index
    uint64_t addr = 0; ///< module-local flash address
    MediaFaultKind kind = MediaFaultKind::BitFlip;

    bool operator==(const PlannedMediaFault &other) const = default;
};

/**
 * The deterministic fault set a salvage schedule injects into the
 * captured image: a pure function of the schedule, so checkers
 * re-derive exactly what the explorer injected. Fault 0 always lands
 * inside the KV region, guaranteeing the sweep exercises at least one
 * quarantine. Empty unless schedule.salvage.
 */
std::vector<PlannedMediaFault>
plannedMediaFaults(const CrashSchedule &schedule, size_t module_count,
                   uint64_t module_capacity);

/**
 * Salvage soundness: a region the directory says was saved, whose
 * bytes every module actually programmed to flash, and that no
 * planned media fault touched, must be salvaged — the restore may
 * never discard intact data. Conversely a region the save never
 * persisted must not come back as salvaged.
 */
class SalvageSoundChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "salvage-sound"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override;
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

  private:
    CrashSchedule schedule_;
};

/**
 * No silent corruption: every region reported salvaged must, in the
 * revived machine's NVRAM, still match the CRC the save recorded for
 * it (this is what catches a restore that trusts the directory and
 * skips re-verification), and every quarantined region must have been
 * handed to the recovery hook rather than left scrubbed.
 */
class NoSilentCorruptionChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "no-silent-corruption"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override;
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

  private:
    CrashSchedule schedule_;
};

/**
 * Incremental-save soundness: with verifySaves enabled every module
 * self-checks that a completed save left flash byte-identical to DRAM
 * (contentEquals) and that a failed save's claimed suffix still
 * matches (rangeEquals) — delta or full. Any recorded mismatch on the
 * crashed or revived machine means the incremental engine produced an
 * image a full save would not have.
 */
class IncrementalSaveSoundChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "incremental-save-sound"; }
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;
};

/**
 * Byte reader over a captured image: addresses span the concatenated
 * module flashes, and reads are refused outside each module's
 * programmed suffix [capacity - savedBytes, capacity) — bytes below
 * the suffix are residue of an older save the image does not claim.
 * The closure borrows @p image; it must outlive the reader.
 */
trace::FrByteReader imageByteReader(const NvramImage &image);

/**
 * Locate (magic scan down from the top of the concatenated space) and
 * decode the black-box flight-recorder ring surviving in @p image.
 * headerFound stays false when no recorder header survived.
 */
trace::FrDecodeResult decodeBlackBox(const NvramImage &image);

/**
 * Black-box soundness: the NVRAM ring a crash leaves behind must obey
 * the publish discipline — every record the header vouches for
 * decodes intact, with at most the single in-flight tail slot torn.
 * A torn slot strictly inside the published window means a record was
 * claimed published before its line reached NVRAM, the exact analogue
 * of a marker stamped before the flush.
 */
class BlackBoxSoundChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "black-box-sound"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override;
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

  private:
    CrashSchedule schedule_;
};

/** The standard checker set for system-level sweeps. */
std::vector<std::unique_ptr<InvariantChecker>> standardCheckers();

} // namespace wsp::crashsim
