#include "crashsim/pheap_crash.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "crashsim/conditions/conditions.h"
#include "crashsim/invariants.h"
#include "pheap/policies.h"
#include "util/rng.h"

namespace wsp::crashsim {

namespace {

using pmem::LogRecord;
using pmem::LogRecordType;
using pmem::Offset;
using pmem::PersistentRegion;
using pmem::PHeap;
using pmem::PHeapConfig;
using pmem::RedoWrite;
using pmem::StmPolicy;
using pmem::TornBitLog;
using pmem::UndoPolicy;

constexpr uint64_t kRegionSize = 32ull * 1024 * 1024;
constexpr int kCells = 4;
constexpr uint64_t kPhaseBit = 1ull << 63;

std::string
scratchPath(const std::string &dir, const char *name, int index)
{
    return dir + "/wsp_crashsim_" + name + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(index) +
           ".img";
}

PHeapConfig
heapConfig(const std::string &path, unsigned truncate_every)
{
    PHeapConfig config;
    config.regionSize = kRegionSize;
    config.path = path;
    config.durableLogs = true;
    config.redoTruncateEvery = truncate_every;
    return config;
}

uint64_t
cellValue(PHeap &heap, Offset cells, int index)
{
    return *heap.region().at<uint64_t>(cells +
                                       static_cast<uint64_t>(index) * 8);
}

void
checkCells(PHeap &heap, Offset cells, uint64_t expected,
           const char *what, PheapSweepReport *report)
{
    for (int c = 0; c < kCells; ++c) {
        const uint64_t got = cellValue(heap, cells, c);
        if (got != expected)
            addViolation(&report->violations,
                         "%s: cell %d holds %llu, expected %llu", what,
                         c, static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(expected));
    }
}

/**
 * The pheap sweeps model each transaction as one operation on a
 * single logical key (the cell quad, which always moves in lockstep):
 * transaction k is put(1, value_k). Op 0 is the initial format —
 * responded and persisted by construction — so "all transactions
 * rolled back" is a real state, not an absent key.
 */
conditions::HistoryOp
pheapOp(uint64_t id, uint64_t value, bool responded, bool persisted)
{
    conditions::HistoryOp op;
    op.id = id;
    op.key = 1;
    op.value = value;
    op.invoked = true;
    op.applied = true;
    op.responded = responded;
    op.persisted = persisted;
    return op;
}

// undo ---------------------------------------------------------------

PheapSweepReport
sweepUndo(int txns, const std::string &dir)
{
    PheapSweepReport report;
    for (int committed = 0; committed <= txns; ++committed) {
        for (bool midtxn : {false, true}) {
            const std::string path = scratchPath(
                dir, "undo", committed * 2 + (midtxn ? 1 : 0));
            std::remove(path.c_str());
            Offset cells = 0;
            std::vector<std::pair<uint64_t, bool>> persist_events;
            {
                PHeap heap(heapConfig(path, 64));
                heap.undoLog().setPersistObserver(
                    [&persist_events](uint64_t txn_id, bool ok) {
                        persist_events.emplace_back(txn_id, ok);
                    });
                cells = heap.region().header().heapStart;
                for (int i = 0; i < committed; ++i) {
                    UndoPolicy::run(heap, [&](UndoPolicy::Tx &tx) {
                        for (int c = 0; c < kCells; ++c) {
                            auto *word = heap.region().at<uint64_t>(
                                cells + static_cast<uint64_t>(c) * 8);
                            tx.write(word, tx.read(word) + 1);
                        }
                    });
                }
                if (midtxn) {
                    // Crash with a transaction in flight: the dirty
                    // cells must be rolled back on recovery.
                    heap.undoLog().txBegin();
                    UndoPolicy::Tx tx(heap);
                    for (int c = 0; c < kCells; ++c) {
                        auto *word = heap.region().at<uint64_t>(
                            cells + static_cast<uint64_t>(c) * 8);
                        tx.write(word, uint64_t{0xdeadbeef});
                    }
                }
            }
            {
                PHeap heap(heapConfig(path, 64));
                ++report.recoveries;
                char what[64];
                std::snprintf(what, sizeof(what),
                              "undo k=%d midtxn=%d", committed,
                              midtxn ? 1 : 0);
                checkCells(heap, cells,
                           static_cast<uint64_t>(committed), what,
                           &report);

                // The formal view of the same run: every committed
                // transaction hit its persist point (the log's
                // observer fired at the commit-marker fence), the
                // in-flight one did not.
                if (static_cast<int>(persist_events.size()) != committed)
                    addViolation(&report.violations,
                                 "%s: persist observer fired %zu "
                                 "times, expected %d",
                                 what, persist_events.size(), committed);
                std::vector<conditions::HistoryOp> history;
                history.push_back(pheapOp(0, 0, true, true));
                for (int k = 1; k <= committed; ++k)
                    history.push_back(pheapOp(
                        static_cast<uint64_t>(k),
                        static_cast<uint64_t>(k), true, true));
                const uint64_t midtxn_id =
                    static_cast<uint64_t>(committed) + 1;
                if (midtxn)
                    history.push_back(
                        pheapOp(midtxn_id, 0xdeadbeef, false, false));
                const conditions::KvState state{
                    {1, cellValue(heap, cells, 0)}};

                const conditions::ConditionResult dl =
                    conditions::checkDurableLinearizable(history, state);
                for (const std::string &violation : dl.violations)
                    addViolation(&report.violations, "%s: %s", what,
                                 violation.c_str());
                std::vector<std::pair<uint64_t, conditions::OpVerdict>>
                    verdicts;
                const conditions::ConditionResult det =
                    conditions::checkDetectableExecution(history, state,
                                                         &verdicts);
                for (const std::string &violation : det.violations)
                    addViolation(&report.violations, "%s: %s", what,
                                 violation.c_str());
                // Undo recovery promises more than explainability: the
                // in-flight transaction must come back *aborted* — a
                // rollback that left 0xdeadbeef behind would instead
                // read as a committed in-flight op.
                if (midtxn && det.ok) {
                    for (const auto &[id, verdict] : verdicts) {
                        if (id == midtxn_id &&
                            verdict != conditions::OpVerdict::Aborted)
                            addViolation(&report.violations,
                                         "%s: in-flight transaction "
                                         "was not rolled back (verdict "
                                         "committed)",
                                         what);
                    }
                }
            }
            ++report.crashPoints;
            std::remove(path.c_str());
        }
    }
    return report;
}

// stm ----------------------------------------------------------------

PheapSweepReport
sweepStm(int txns, const std::string &dir)
{
    PheapSweepReport report;
    // Two truncation regimes: one with the boundary out of reach (the
    // ring always holds every commit), one crossing boundaries every
    // 4 commits (mirroring StmCrashSweep's modular expectation).
    for (const unsigned truncate_every :
         {static_cast<unsigned>(txns) + 1, 4u}) {
        for (int committed = 0; committed <= txns; ++committed) {
            const std::string path = scratchPath(
                dir, "stm",
                static_cast<int>(truncate_every) * 1000 + committed);
            std::remove(path.c_str());
            Offset cells = 0;
            {
                PHeap heap(heapConfig(path, truncate_every));
                cells = heap.region().header().heapStart;
                for (int i = 0; i < committed; ++i) {
                    StmPolicy::run(heap, [&](StmPolicy::Tx &tx) {
                        for (int c = 0; c < kCells; ++c) {
                            auto *word = heap.region().at<uint64_t>(
                                cells + static_cast<uint64_t>(c) * 8);
                            tx.write(word, tx.read(word) + 1);
                        }
                    });
                }
                // Model losing the un-flushed in-place lines.
                for (int c = 0; c < kCells; ++c)
                    *heap.region().at<uint64_t>(
                        cells + static_cast<uint64_t>(c) * 8) = 0;
            }
            {
                PHeap heap(heapConfig(path, truncate_every));
                ++report.recoveries;
                // Commits since the last truncation are replayable
                // from the ring; at an exact boundary the ring is
                // empty and the destroyed lines stay destroyed (a
                // real cache loss cannot hit flushed lines — seeing
                // zero confirms no stale replay).
                const uint64_t expected =
                    committed % static_cast<int>(truncate_every) == 0
                        ? 0
                        : static_cast<uint64_t>(committed);
                char what[64];
                std::snprintf(what, sizeof(what),
                              "stm k=%d trunc=%u", committed,
                              truncate_every);
                checkCells(heap, cells, expected, what, &report);

                // Formal view, away from truncation boundaries (at a
                // boundary the zeroed cells model an impossible loss
                // of flushed lines, so the history would be fiction):
                // every commit persisted via the ring, so the full
                // history is the only legal BDL cut.
                if (committed % static_cast<int>(truncate_every) != 0) {
                    std::vector<conditions::HistoryOp> history;
                    history.push_back(pheapOp(0, 0, true, true));
                    for (int k = 1; k <= committed; ++k)
                        history.push_back(pheapOp(
                            static_cast<uint64_t>(k),
                            static_cast<uint64_t>(k), true, true));
                    const conditions::KvState state{
                        {1, cellValue(heap, cells, 0)}};
                    const conditions::ConditionResult bdl =
                        conditions::checkBufferedDurableLinearizable(
                            history, state);
                    for (const std::string &violation : bdl.violations)
                        addViolation(&report.violations, "%s: %s",
                                     what, violation.c_str());
                }
            }
            ++report.crashPoints;
            std::remove(path.c_str());
        }
    }
    return report;
}

// redo ---------------------------------------------------------------

/** Run @p txns absolute-value commits; record ring position after
 *  each. Returns the cell base offset. */
Offset
buildRedoHeap(PHeap &heap, int txns, std::vector<uint64_t> *end_pos)
{
    const Offset cells = heap.region().header().heapStart;
    for (int k = 1; k <= txns; ++k) {
        std::vector<RedoWrite> writes;
        for (int c = 0; c < kCells; ++c) {
            RedoWrite write;
            write.target = cells + static_cast<uint64_t>(c) * 8;
            write.len = 8;
            write.bytes.resize(8);
            const auto value = static_cast<uint64_t>(k);
            std::memcpy(write.bytes.data(), &value, 8);
            writes.push_back(std::move(write));
        }
        heap.redoLog().commit(writes);
        if (end_pos != nullptr)
            end_pos->push_back(heap.redoLog().log().position());
    }
    return cells;
}

PheapSweepReport
sweepRedo(int txns, const std::string &dir)
{
    PheapSweepReport report;

    // Reference run to learn where each commit ends in the ring.
    std::vector<uint64_t> end_pos;
    const std::string ref_path = scratchPath(dir, "redo_ref", 0);
    std::remove(ref_path.c_str());
    {
        PHeap heap(heapConfig(ref_path,
                              static_cast<unsigned>(txns) + 2));
        buildRedoHeap(heap, txns, &end_pos);
    }
    std::remove(ref_path.c_str());
    const uint64_t final_pos = end_pos.empty() ? 0 : end_pos.back();

    // Tear the ring at every word (w == final_pos: no tear at all).
    for (uint64_t tear = 0; tear <= final_pos; ++tear) {
        const std::string path =
            scratchPath(dir, "redo", static_cast<int>(tear));
        std::remove(path.c_str());
        Offset cells = 0;
        size_t persist_points = 0;
        {
            PHeap heap(heapConfig(path,
                                  static_cast<unsigned>(txns) + 2));
            heap.redoLog().setPersistObserver(
                [&persist_points](uint64_t, bool ok) {
                    persist_points += ok ? 1 : 0;
                });
            cells = buildRedoHeap(heap, txns, nullptr);
            if (tear < final_pos) {
                // A power failure mid-append leaves the word with the
                // previous pass's phase: flip the phase bit.
                auto *words = reinterpret_cast<uint64_t *>(
                    heap.region().base() +
                    heap.region().header().redoLogStart);
                words[tear] ^= kPhaseBit;
            }
            // The in-place lines never reached NVRAM.
            for (int c = 0; c < kCells; ++c)
                *heap.region().at<uint64_t>(
                    cells + static_cast<uint64_t>(c) * 8) = 0;
        }
        {
            PHeap heap(heapConfig(path,
                                  static_cast<unsigned>(txns) + 2));
            ++report.recoveries;
            // Exactly the commits wholly inside the intact prefix
            // replay; the last one's absolute value wins.
            const uint64_t expected = static_cast<uint64_t>(
                std::count_if(end_pos.begin(), end_pos.end(),
                              [tear](uint64_t end) {
                                  return end <= tear;
                              }));
            char what[64];
            std::snprintf(what, sizeof(what), "redo tear=%llu",
                          static_cast<unsigned long long>(tear));
            checkCells(heap, cells, expected, what, &report);

            if (persist_points != static_cast<size_t>(txns))
                addViolation(&report.violations,
                             "%s: persist observer fired %zu times, "
                             "expected %d",
                             what, persist_points, txns);

            // Formally: every commit responded before the crash, but
            // only the ones wholly inside the intact ring prefix
            // persisted. The torn suffix loses *responded* work, so
            // the redo discipline promises buffered durable
            // linearizability, not DL — the surviving state must be
            // the persisted prefix, nothing less.
            std::vector<conditions::HistoryOp> history;
            history.push_back(pheapOp(0, 0, true, true));
            for (int k = 1; k <= txns; ++k)
                history.push_back(
                    pheapOp(static_cast<uint64_t>(k),
                            static_cast<uint64_t>(k), true,
                            end_pos[static_cast<size_t>(k) - 1] <= tear));
            const conditions::KvState state{
                {1, cellValue(heap, cells, 0)}};
            const conditions::ConditionResult bdl =
                conditions::checkBufferedDurableLinearizable(history,
                                                             state);
            for (const std::string &violation : bdl.violations)
                addViolation(&report.violations, "%s: %s", what,
                             violation.c_str());
            // No detectability check here: that condition is
            // DL-flavored (a responded op must commit), and losing a
            // responded-but-torn commit is exactly what the redo
            // discipline is allowed to do.
        }
        ++report.crashPoints;
        std::remove(path.c_str());
    }
    return report;
}

// tornbit ------------------------------------------------------------

PheapSweepReport
sweepTornBit(uint64_t seed, int txns, const std::string &dir)
{
    (void)dir; // anonymous region; nothing touches the filesystem
    PheapSweepReport report;

    PersistentRegion region(kRegionSize);
    TornBitLog log(region, region.header().undoLogStart, 16 * 1024,
                   &region.header().undoCheckpointPos,
                   &region.header().undoCheckpointPass, true);

    struct Written
    {
        LogRecordType type = LogRecordType::None;
        uint64_t id = 0;
        Offset target = 0;
        std::vector<uint8_t> payload;
    };
    std::vector<Written> written;
    std::vector<uint64_t> pos_after;

    Rng rng(seed);
    const int records = std::max(8, txns * 3);
    for (int i = 0; i < records; ++i) {
        if (rng.chance(0.35)) {
            Written w;
            w.type = rng.chance(0.5) ? LogRecordType::TxnBegin
                                     : LogRecordType::TxnCommit;
            w.id = rng.next(1000);
            log.appendMarker(w.type, w.id);
            written.push_back(std::move(w));
        } else {
            Written w;
            w.type = LogRecordType::Data;
            w.target = rng.next(kRegionSize);
            w.payload.resize(1 + rng.next(40));
            for (auto &b : w.payload)
                b = static_cast<uint8_t>(rng());
            log.appendData(w.target, w.payload.data(),
                           static_cast<uint32_t>(w.payload.size()));
            written.push_back(std::move(w));
        }
        pos_after.push_back(log.position());
    }

    auto *words = reinterpret_cast<uint64_t *>(
        region.base() + region.header().undoLogStart);
    for (uint64_t tear = 0; tear < log.position(); ++tear) {
        words[tear] ^= kPhaseBit;
        const std::vector<LogRecord> scanned = log.scan();
        words[tear] ^= kPhaseBit;
        ++report.crashPoints;
        ++report.recoveries;

        // Exact-prefix property: the scan must return precisely the
        // records wholly before the torn word, each intact.
        const auto expected = static_cast<size_t>(std::count_if(
            pos_after.begin(), pos_after.end(),
            [tear](uint64_t end) { return end <= tear; }));
        if (scanned.size() != expected) {
            addViolation(&report.violations,
                         "tornbit tear=%llu: scanned %zu records, "
                         "expected %zu",
                         static_cast<unsigned long long>(tear),
                         scanned.size(), expected);
            continue;
        }
        for (size_t i = 0; i < scanned.size(); ++i) {
            const Written &want = written[i];
            if (scanned[i].type != want.type ||
                (want.type == LogRecordType::Data
                     ? (scanned[i].target != want.target ||
                        scanned[i].payload != want.payload)
                     : scanned[i].txnId != want.id))
                addViolation(&report.violations,
                             "tornbit tear=%llu: record %zu decoded "
                             "wrong",
                             static_cast<unsigned long long>(tear), i);
        }
    }
    return report;
}

} // namespace

const char *
pheapDisciplineName(PheapDiscipline discipline)
{
    switch (discipline) {
      case PheapDiscipline::Undo:
        return "undo";
      case PheapDiscipline::Stm:
        return "stm";
      case PheapDiscipline::Redo:
        return "redo";
      case PheapDiscipline::TornBit:
        return "tornbit";
    }
    return "unknown";
}

std::optional<PheapDiscipline>
parsePheapDiscipline(const std::string &name)
{
    for (PheapDiscipline discipline : allPheapDisciplines()) {
        if (name == pheapDisciplineName(discipline))
            return discipline;
    }
    return std::nullopt;
}

std::vector<PheapDiscipline>
allPheapDisciplines()
{
    return {PheapDiscipline::Undo, PheapDiscipline::Stm,
            PheapDiscipline::Redo, PheapDiscipline::TornBit};
}

PheapSweepReport
sweepPheapCrashPoints(PheapDiscipline discipline, uint64_t seed,
                      int txns, const std::string &scratch_dir)
{
    switch (discipline) {
      case PheapDiscipline::Undo:
        return sweepUndo(txns, scratch_dir);
      case PheapDiscipline::Stm:
        return sweepStm(txns, scratch_dir);
      case PheapDiscipline::Redo:
        return sweepRedo(txns, scratch_dir);
      case PheapDiscipline::TornBit:
        return sweepTornBit(seed, txns, scratch_dir);
    }
    return {};
}

} // namespace wsp::crashsim
