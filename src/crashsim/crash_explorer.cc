#include "crashsim/crash_explorer.h"

#include <algorithm>
#include <set>

#include "core/failure_injector.h"
#include "crashsim/conditions/kv_conditions.h"
#include "trace/stat_registry.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace wsp::crashsim {

namespace {

/** Reference-run residual window: longer than the whole pipeline. */
constexpr Tick kHugeWindow = fromSeconds(2.0);

/** How far past the AC failure the enumeration run observes. */
constexpr Tick kObserveSpan = fromMillis(500.0);

} // namespace

SystemConfig
CrashExplorer::configFor(const CrashSchedule &schedule)
{
    SystemConfig config;
    config.seed = schedule.seed;
    config.nvdimmCount = 2;
    config.nvdimm.capacityBytes = 4 * kMiB;
    config.nvdimm.flashChannels = 1;
    if (!schedule.withDevices)
        config.devices.clear();
    config.wsp.firmwareBootLatency = fromMillis(50.0);
    config.wsp.osResumeLatency = fromMillis(1.0);
    config.wsp.hostStackBootLatency = fromMillis(50.0);
    config.wsp.saveOrder = schedule.saveOrder;
    config.wsp.parallelFlush = schedule.parallelSave;
    if (schedule.degradeTier >= 0) {
        config.wsp.forceDegradedSave = true;
        config.wsp.degradedTierCut =
            static_cast<SaveTier>(schedule.degradeTier);
    }
    config.wsp.trustSalvageDirectory = schedule.trustDirectory;
    config.nvdimm.incrementalSave = schedule.incrementalSave;
    config.nvdimm.lazyRestore = schedule.lazyRestore;
    // Every completed (or failed) save self-checks that flash is
    // byte-identical to what a full save would have produced; the
    // IncrementalSaveSound checker reads the mismatch counts. Cheap
    // at crashsim module sizes thanks to the COW page comparison.
    config.nvdimm.verifySaves = true;
    // Black-box recorder: NVRAM-backed so the ring rides the save and
    // every failing schedule decodes to a timeline. When the schedule
    // opts out (equivalence sweep), keep a volatile ring — the events
    // still flow, just never into flash.
    config.wsp.flightRecorder = schedule.blackBox
                                    ? trace::FrMode::Nvram
                                    : trace::FrMode::Volatile;
    if (schedule.salvage && schedule.drainModule >= 0) {
        // A drained bank under the salvage regime also exercises the
        // health monitor: the periodic self-test notices the missing
        // energy margin and the next save starts out degraded.
        config.wsp.healthCheckPeriod = fromMillis(1.0);
    }
    config = FailureInjector::withExactWindow(std::move(config),
                                              schedule.window);
    if (schedule.undersizedCaps)
        config = FailureInjector::withUndersizedUltracaps(
            std::move(config));
    return config;
}

CrashPointResult
CrashExplorer::runSchedule(const CrashSchedule &schedule)
{
    return runSchedule(schedule, nullptr);
}

CrashPointResult
CrashExplorer::runSchedule(const CrashSchedule &schedule,
                           NvramImage *captured_image)
{
    CrashPointResult result;
    result.schedule = schedule;

    // The machine that crashes.
    WspSystem crashed(configFor(schedule));
    crashed.start();

    auto checkers = standardCheckers();
    auto *kv = dynamic_cast<conditions::KvConditionsChecker *>(
        checkers.front().get());
    for (auto &checker : checkers)
        checker->prepare(crashed, schedule);

    if (schedule.salvage && kv != nullptr) {
        // Per-shard recovery for train-cycle restores on this chassis.
        crashed.setRegionRecovery(
            [kv, &crashed](const RegionOutcome &region) {
                kv->onRegionRecovery(crashed, region);
            });
    }

    FailureInjector injector(crashed);
    if (schedule.drainModule >= 0 &&
        static_cast<size_t>(schedule.drainModule) <
            crashed.memory().moduleCount())
        injector.drainUltracap(
            static_cast<size_t>(schedule.drainModule),
            schedule.drainVoltage);
    if (schedule.dropSaveCommands > 0)
        injector.dropSaveCommands(schedule.dropSaveCommands);

    const auto backendOnCrashed = [&checkers, &crashed]() {
        for (auto &checker : checkers)
            checker->onBackendRecovery(crashed);
    };

    // Optional same-system outage train before the captured crash.
    for (unsigned cycle = 1; cycle < schedule.trainCycles; ++cycle)
        crashed.powerFailAndRestore(schedule.trainSpacing,
                                    schedule.outage, backendOnCrashed);

    // The final failure: power never comes back on this chassis.
    crashed.psu().failInputAt(crashed.queue().now() +
                              schedule.failDelay);
    crashed.runFor(schedule.failDelay + schedule.outage);

    // A module still mid-save runs on its ultracapacitor; let it
    // conclude (finish or exhaust) before pulling the DIMMs.
    unsigned guard = 0;
    while (!crashed.nvdimms().allIdle() && guard++ < 1000)
        crashed.runFor(fromMillis(10.0));
    WSP_CHECKF(crashed.nvdimms().allIdle(),
               "NVDIMMs never settled after the crash");

    // Silent flash media faults land on the at-rest image, after the
    // save concluded and before the DIMMs are pulled.
    for (const PlannedMediaFault &fault :
         plannedMediaFaults(schedule, crashed.memory().moduleCount(),
                            crashed.memory().module(0).capacity()))
        crashed.memory().module(fault.module).injectFlashFault(
            fault.kind, fault.addr);

    // Pull the DIMMs and socket them into a fresh chassis.
    const NvramImage image = crashed.captureNvramImage();
    if (captured_image != nullptr)
        *captured_image = crashed.captureNvramImage();
    WspSystem revived(configFor(schedule));
    if (schedule.salvage && kv != nullptr) {
        revived.setRegionRecovery(
            [kv, &revived](const RegionOutcome &region) {
                kv->onRegionRecovery(revived, region);
            });
    }
    bool backend_ran = false;
    result.restore = revived.bootFromImage(
        image, [&checkers, &revived, &backend_ran]() {
            backend_ran = true;
            for (auto &checker : checkers)
                checker->onBackendRecovery(revived);
        });
    result.backendRan = backend_ran;
    result.appliedOps = kv != nullptr ? kv->appliedOps() : 0;

    for (auto &checker : checkers)
        checker->check(crashed, revived, result.restore, backend_ran,
                       &result.violations);

    // Post-mortem forensics: a failing schedule carries the decoded
    // black-box timeline from the image that survived the crash.
    if (!result.held() && schedule.blackBox) {
        const trace::FrDecodeResult decode = decodeBlackBox(image);
        result.timeline = trace::frFormatTimeline(decode);
        if (!decode.headerFound)
            result.timeline.push_back(
                "(no flight-recorder header survived the crash)");
    }

    auto &stats = trace::StatRegistry::instance();
    stats.counter("crashsim.points_explored").add();
    if (result.restore.usedWsp)
        stats.counter("crashsim.wsp_recoveries").add();
    else
        stats.counter("crashsim.fallbacks").add();
    if (!result.held()) {
        stats.counter("crashsim.violations")
            .add(result.violations.size());
        TRACE_INSTANT(Crashsim, "invariant VIOLATED");
    }
    return result;
}

std::vector<Tick>
CrashExplorer::enumerateCrashPoints(size_t max_points)
{
    // Reference run: same scenario, but the residual window is far
    // longer than the save pipeline, so every step dispatches and the
    // observer sees the complete event-boundary set.
    CrashSchedule reference = base_;
    reference.window = kHugeWindow;
    reference.trainCycles = 1;

    WspSystem system(configFor(reference));
    system.start();
    auto checkers = standardCheckers();
    for (auto &checker : checkers)
        checker->prepare(system, reference);

    const Tick fail_at = system.queue().now() + reference.failDelay;
    std::vector<Tick> dispatches;
    system.queue().setDispatchObserver(
        [&dispatches, fail_at](Tick when) {
            if (when >= fail_at)
                dispatches.push_back(when);
        });
    system.psu().failInputAt(fail_at);
    system.runFor(reference.failDelay + kObserveSpan);
    system.queue().setDispatchObserver(nullptr);

    // Windows to sweep: just-before (the hard-loss event at an equal
    // tick was scheduled first, so it fires first) and just-after
    // every observed dispatch, plus gap midpoints, plus the edges.
    std::set<Tick> points{0, 1};
    Tick prev = fail_at;
    for (Tick when : dispatches) {
        const Tick offset = when - fail_at;
        points.insert(offset);
        points.insert(offset + 1);
        if (when > prev + 1)
            points.insert(((prev - fail_at) + offset) / 2);
        prev = when;
    }

    std::vector<Tick> all(points.begin(), points.end());
    if (all.size() <= max_points)
        return all;
    std::vector<Tick> thinned;
    thinned.reserve(max_points);
    for (size_t i = 0; i < max_points; ++i)
        thinned.push_back(all[i * all.size() / max_points]);
    thinned.back() = all.back(); // always sweep "save completed"
    inform("crashsim: thinned %zu crash points to %zu",
           all.size(), thinned.size());
    return thinned;
}

SweepReport
CrashExplorer::sweepEnumerated(bool stop_on_first_violation,
                               size_t max_points)
{
    SweepReport report;
    for (Tick window : enumerateCrashPoints(max_points)) {
        CrashSchedule schedule = base_;
        schedule.window = window;
        CrashPointResult result = runSchedule(schedule);
        ++report.points;
        if (result.restore.usedWsp)
            ++report.wspRecoveries;
        else
            ++report.fallbacks;
        if (!result.held()) {
            report.failures.push_back(std::move(result));
            if (stop_on_first_violation)
                break;
        }
    }
    return report;
}

CrashExplorer::EquivalenceReport
CrashExplorer::incrementalEquivalenceSweep(size_t max_points)
{
    // Enumerate on the delta-save timeline — that is the pipeline
    // under test; each window is then a legal crash instant for the
    // full-save run too.
    CrashSchedule reference = base_;
    reference.incrementalSave = true;
    // Recorder content legitimately differs between the two pipelines
    // (wall-clock stamps, full-vs-delta event arguments), so the ring
    // must stay out of the compared flash for this sweep.
    reference.blackBox = false;
    EquivalenceReport report;
    for (Tick window :
         CrashExplorer(reference).enumerateCrashPoints(max_points)) {
        CrashSchedule inc = base_;
        inc.window = window;
        inc.incrementalSave = true;
        inc.blackBox = false;
        CrashSchedule full = inc;
        full.incrementalSave = false;

        NvramImage inc_image;
        NvramImage full_image;
        runSchedule(inc, &inc_image);
        runSchedule(full, &full_image);
        ++report.points;

        bool equal = inc_image.moduleCount() == full_image.moduleCount();
        bool complete = equal;
        for (size_t m = 0; equal && m < inc_image.moduleCount(); ++m) {
            const auto &a = inc_image.module(m);
            const auto &b = full_image.module(m);
            // The valid flags may legitimately differ: the delta save
            // programs fewer bytes and completes earlier, so some
            // windows catch only the full save mid-flight. Only the
            // *bytes both claim programmed* must agree.
            complete = complete && a.valid && b.valid;
            // Both runs saw identical pre-crash histories, so DRAM at
            // save time was identical; each image's claimed suffix
            // equals that DRAM, hence the *common* suffix must match
            // byte for byte — and the whole image when both saves
            // completed.
            const uint64_t capacity = a.flash.capacity();
            const uint64_t covered =
                std::min(a.savedBytes, b.savedBytes);
            equal = a.flash.rangeEquals(b.flash, capacity - covered,
                                        covered);
        }
        if (complete)
            ++report.bothComplete;
        if (!equal)
            report.mismatchWindows.push_back(window);
    }
    return report;
}

SweepReport
CrashExplorer::fuzz(unsigned runs, uint64_t seed)
{
    SweepReport report;
    Rng rng(seed);
    for (unsigned i = 0; i < runs; ++i) {
        CrashSchedule schedule = base_;
        schedule.seed = rng();
        schedule.window = rng.next(fromMillis(40.0) + 1);
        schedule.ops = 16 + static_cast<unsigned>(rng.next(96));
        schedule.outage = fromMillis(200.0) + rng.next(fromSeconds(2.0));
        if (rng.chance(0.25)) {
            schedule.trainCycles =
                2 + static_cast<unsigned>(rng.next(3));
        }
        if (rng.chance(0.15)) {
            schedule.drainModule = static_cast<int>(rng.next(2));
            schedule.drainVoltage = rng.uniform(4.0, 9.0);
        }
        if (rng.chance(0.10))
            schedule.undersizedCaps = true;
        if (rng.chance(0.30)) {
            // Exercise the parallel regime: striped store and/or the
            // per-core flush path.
            schedule.shards = 1u << rng.next(4); // 1, 2, 4, or 8
            schedule.parallelSave = rng.chance(0.67);
        }
        if (rng.chance(0.35)) {
            // The salvage regime: tiered regions, media faults on the
            // captured image, forced degraded saves, dropped commands.
            schedule.salvage = true;
            if (rng.chance(0.6)) {
                schedule.mediaFaults =
                    1 + static_cast<unsigned>(rng.next(4));
                schedule.mediaFaultSeed = rng();
            }
            if (rng.chance(0.3))
                schedule.degradeTier = static_cast<int>(rng.next(2));
            if (rng.chance(0.2))
                schedule.dropSaveCommands =
                    1 + static_cast<unsigned>(rng.next(2));
        }
        // Flip the persistence-engine modes so the fuzz campaign
        // covers full-save-only and lazy-restore timelines too.
        if (rng.chance(0.25))
            schedule.incrementalSave = false;
        if (rng.chance(0.25))
            schedule.lazyRestore = true;
        // Vary the respond offset so crash points land on both sides
        // of each operation's completion boundary (must stay below
        // opSpacing to keep the history sequential).
        schedule.ackDelay = fromMicros(5.0) + rng.next(fromMicros(40.0));

        CrashPointResult result = runSchedule(schedule);
        ++report.points;
        if (result.restore.usedWsp)
            ++report.wspRecoveries;
        else
            ++report.fallbacks;
        if (!result.held())
            report.failures.push_back(std::move(result));
    }
    return report;
}

CrashSchedule
CrashExplorer::minimize(CrashSchedule failing, unsigned budget)
{
    const auto stillFails = [&budget](const CrashSchedule &candidate) {
        if (budget == 0)
            return false;
        --budget;
        return !runSchedule(candidate).held();
    };

    if (!stillFails(failing))
        return failing; // not (or no longer) a failing schedule

    // Greedy shrink to fixpoint: accept any simplification that
    // preserves the violation.
    bool changed = true;
    while (changed && budget > 0) {
        changed = false;
        const auto tryAccept = [&](CrashSchedule candidate) {
            if (candidate == failing)
                return;
            if (stillFails(candidate)) {
                failing = candidate;
                changed = true;
            }
        };

        {
            CrashSchedule c = failing;
            c.trainCycles = 1;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.drainModule = -1;
            c.drainVoltage = 0.0;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.undersizedCaps = false;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.withDevices = false;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.mediaFaults = 0;
            c.mediaFaultSeed = 0;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.degradeTier = -1;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.dropSaveCommands = 0;
            tryAccept(c);
        }
        {
            // Simpler pipeline: every save full, eager restore. A
            // failure that survives this is not an incremental-engine
            // bug.
            CrashSchedule c = failing;
            c.incrementalSave = false;
            c.lazyRestore = false;
            tryAccept(c);
        }
        {
            CrashSchedule c = failing;
            c.salvage = false;
            c.mediaFaults = 0;
            c.mediaFaultSeed = 0;
            c.degradeTier = -1;
            c.trustDirectory = false;
            tryAccept(c);
        }
        if (failing.ops > 8) {
            CrashSchedule c = failing;
            c.ops /= 2;
            tryAccept(c);
        }
        if (failing.outage > fromMillis(200.0)) {
            CrashSchedule c = failing;
            c.outage = fromMillis(200.0);
            tryAccept(c);
        }
        for (Tick grid : {fromMillis(1.0), fromMicros(100.0),
                          fromMicros(10.0)}) {
            CrashSchedule c = failing;
            c.window = c.window / grid * grid;
            tryAccept(c);
        }
    }
    return failing;
}

} // namespace wsp::crashsim
