/**
 * @file
 * One fully-specified crash scenario, serializable for replay.
 *
 * A CrashSchedule pins down everything that makes a crash run
 * deterministic: the RNG seed, the workload size, the instant of the
 * AC failure, the exact residual-energy window (which is where the
 * hard power loss lands relative to the save sequence), the outage
 * length, and the sabotage knobs (outage trains, drained or
 * undersized ultracapacitors, the deliberately broken save order).
 * The explorer enumerates and fuzzes over schedules; any failing one
 * is minimized and written to a small text file that tools/crash_replay
 * re-executes bit-for-bit.
 */

#pragma once

#include <optional>
#include <string>

#include "core/wsp_config.h"
#include "util/units.h"

namespace wsp::crashsim {

/**
 * Which formal correctness condition(s) the conditions battery
 * evaluates at each crash point (see src/crashsim/conditions/). All
 * runs every checker; the narrower modes are for sweeps that isolate
 * one condition (e.g. a buffered-only sweep to show a bug violates
 * durable linearizability but not buffered durable linearizability).
 */
enum class ConditionMode : uint8_t
{
    All = 0,
    DurableLin,
    BufferedDurableLin,
    Detectable,
};

/** "all" / "durable-lin" / "buffered" / "detectable". */
const char *conditionModeName(ConditionMode mode);

/** Inverse of conditionModeName. @return nullopt on unknown name. */
std::optional<ConditionMode> conditionModeFromName(const std::string &name);

/** Deterministic description of one crash/recovery scenario. */
struct CrashSchedule
{
    /** Seed for the system and the workload stream. */
    uint64_t seed = 0x43524153ull; // "CRAS"

    /** AC input failure, this long after the workload starts. */
    Tick failDelay = fromMillis(5.0);

    /**
     * Exact residual window: the hard power loss lands this long
     * after the PWR_OK drop. This is the crash instant being swept.
     */
    Tick window = fromMillis(33.0);

    /** Outage length before power returns. */
    Tick outage = fromSeconds(2.0);

    /** KV workload operations scheduled onto the event queue. */
    unsigned ops = 64;

    /** Spacing between successive workload operations. */
    Tick opSpacing = fromMicros(50.0);

    /** Same-system outage/restore cycles before the final captured
     *  crash (1 = no train, just the one crash). */
    unsigned trainCycles = 1;

    /** Uptime between train cycles. */
    Tick trainSpacing = fromMillis(5.0);

    /** Pre-drain this module's ultracapacitor (-1 = none). */
    int drainModule = -1;

    /** Target voltage of the pre-drain. */
    double drainVoltage = 0.0;

    /** Undersize every module's ultracapacitor bank. */
    bool undersizedCaps = false;

    /** Attach the paper's device set (slower, more crash points). */
    bool withDevices = false;

    /** Marker-vs-flush ordering (the broken one is the planted bug). */
    SaveOrder saveOrder = SaveOrder::MarkerAfterFlush;

    /** KV shards the workload stripes over (power of two). */
    unsigned shards = 1;

    /** Run the save with the parallel per-core flush path. */
    bool parallelSave = false;

    /**
     * Salvage regime: register the KV shards as tiered salvage
     * regions and wire per-shard recovery hooks, so degraded saves
     * and media faults recover region by region.
     */
    bool salvage = false;

    /** Silent flash media faults injected into the captured image. */
    unsigned mediaFaults = 0;

    /** Fault kind (-1 = mixed, else a MediaFaultKind value 0..2). */
    int mediaFaultKind = -1;

    /** Extra seed for the deterministic fault placement. */
    uint64_t mediaFaultSeed = 0;

    /** Force a degraded save at this tier cut (-1 = no forcing). */
    int degradeTier = -1;

    /** Drop the next N NVDIMM commands on the I2C bus. */
    unsigned dropSaveCommands = 0;

    /** Planted bug: restore trusts the directory, skipping the CRCs. */
    bool trustDirectory = false;

    /**
     * Allow delta saves: modules program only pages dirtied since
     * their last completed save (first save is always full). Off
     * forces every save to program the whole capacity.
     */
    bool incrementalSave = true;

    /** Boot restores map the flash image lazily instead of streaming. */
    bool lazyRestore = false;

    /**
     * NVRAM-backed black-box flight recorder during the run. On by
     * default so every failing schedule carries a decodable forensic
     * timeline; the incremental-equivalence sweep turns it off because
     * recorder content (wall-clock stamps, full-vs-delta event args)
     * legitimately differs between otherwise equivalent images.
     */
    bool blackBox = true;

    /** Correctness condition(s) the conditions battery evaluates. */
    ConditionMode condition = ConditionMode::All;

    /**
     * Delay between a KV operation taking effect and its response
     * reaching the caller. Kept under opSpacing so the workload stays
     * sequential (at most one operation in flight at any instant).
     */
    Tick ackDelay = fromMicros(20.0);

    /**
     * Planted bug: acknowledge each operation *before* it applies
     * (response at t, mutation at t + ackDelay). A crash landing in
     * that gap leaves a completed operation with no surviving effect —
     * a durable-linearizability violation that buffered durable
     * linearizability, by design, forgives.
     */
    bool ackBeforeApply = false;

    /**
     * Fleet mode: run the schedule against a replicated fleet of this
     * many nodes instead of one machine (0 = single-machine schedule,
     * the default; everything below is ignored then). See
     * src/fleet/fleet_sweep.h for the fleet interpretation of the
     * shared fields (window, outage, trainCycles, ops, salvage).
     */
    unsigned fleetNodes = 0;

    /** Replication factor R (clamped to fleetNodes at run time). */
    unsigned fleetReplication = 3;

    /**
     * Bitmask of nodes each outage-train cycle kills (bit i = node i);
     * 0 means "kill every node" (whole-datacenter outage). Masked
     * against the node count at run time.
     */
    uint64_t fleetKillMask = 0;

    /**
     * Recovery policy for killed nodes: 0 = WSP-local restore,
     * 1 = backend refill, 2 = WSP restore + degraded read-only tier
     * until anti-entropy certifies convergence.
     */
    int fleetPolicy = 0;

    /** Replay-file serialization (text, one key=value per line). */
    std::string serialize() const;

    /** Parse serialize() output. @return nullopt on malformed input. */
    static std::optional<CrashSchedule> parse(const std::string &text);

    /** Write the serialized schedule to @p path. */
    bool writeFile(const std::string &path) const;

    /** Read and parse a schedule file. */
    static std::optional<CrashSchedule> readFile(const std::string &path);

    /** One-line human summary ("window=2.95ms ops=64 train=1 ..."). */
    std::string summary() const;

    bool operator==(const CrashSchedule &other) const = default;
};

} // namespace wsp::crashsim
