/**
 * @file
 * Exhaustive crash-point sweeps for the persistent-heap disciplines.
 *
 * The system-level explorer (crash_explorer.h) kills a whole machine;
 * these sweeps attack the NV-heap's own recovery logic at finer
 * grain, one discipline at a time:
 *
 *  - undo:    crash after every committed-transaction count, with and
 *             without an uncommitted transaction in flight; recovery
 *             must roll back to exactly the committed prefix,
 *  - stm:     crash with the un-flushed in-place lines destroyed
 *             after every transaction count (including right at a
 *             truncation boundary); the redo ring must win,
 *  - redo:    tear the redo ring at *every word* (flip the phase bit,
 *             as a power failure mid-append leaves it) and verify the
 *             replay applies exactly the commits wholly inside the
 *             intact prefix,
 *  - tornbit: tear the raw ring at every word and verify the scan
 *             returns exactly the records wholly before the tear.
 *
 * All sweeps report violations as strings rather than asserting, so
 * both the GTest suite and tools/crash_sweep can consume them.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

namespace wsp::crashsim {

/** Which pheap recovery mechanism a sweep exercises. */
enum class PheapDiscipline {
    Undo,
    Stm,
    Redo,
    TornBit,
};

/** Short name ("undo", "stm", "redo", "tornbit"). */
const char *pheapDisciplineName(PheapDiscipline discipline);

/** Parse a short name; nullopt when unknown. */
std::optional<PheapDiscipline>
parsePheapDiscipline(const std::string &name);

/** All four disciplines, for sweep-everything loops. */
std::vector<PheapDiscipline> allPheapDisciplines();

/** Outcome of one discipline's sweep. */
struct PheapSweepReport
{
    size_t crashPoints = 0; ///< distinct crash scenarios executed
    size_t recoveries = 0;  ///< recovery runs (region reopens/scans)
    std::vector<std::string> violations;

    bool allHeld() const { return violations.empty(); }
};

/**
 * Run the exhaustive sweep for @p discipline. @p txns bounds the
 * transaction counts swept; @p scratch_dir holds the file-backed
 * region images (removed afterwards).
 */
PheapSweepReport sweepPheapCrashPoints(PheapDiscipline discipline,
                                       uint64_t seed, int txns,
                                       const std::string &scratch_dir);

} // namespace wsp::crashsim
