/**
 * @file
 * Formal persistency correctness conditions over operation histories.
 *
 * The crash harness's original invariants (KvPrefix and friends) were
 * ad-hoc per-subsystem predicates. This library replaces the KV side
 * with instances of the conditions the persistent-memory literature
 * converged on (survey: arXiv 2208.11114), decided over explicit
 * history records — invocation, response, persist point — emitted
 * through the FliT-style tracker (util/flit.h):
 *
 *  - Durable linearizability (DL): every operation that *responded*
 *    before the crash must have its effect in the surviving state;
 *    operations in flight at the crash may surface or vanish whole.
 *
 *  - Buffered durable linearizability (BDL): the surviving state must
 *    be *some consistent cut* (a prefix of the history, since our
 *    workload is sequential), and every operation whose persist point
 *    passed must be inside the cut — but a recent suffix, responded
 *    or not, may be lost. DL ⊂ BDL: WSP's flush-on-fail promises DL
 *    (response ⇒ will be flushed at failure); an explicit-flush
 *    design only promises BDL between flushes.
 *
 *  - Detectable execution: on reboot, *every* operation — including
 *    the in-flight ones — must be classifiable as committed (effect
 *    present, whole) or aborted (no trace). A half-applied operation
 *    (torn slot) is the violation this catches.
 *
 * The histories here are sequential: operations are totally ordered
 * by invocation and at most one is unresponded at any instant (the
 * workload enforces ackDelay < opSpacing). That makes the checkers
 * exact and fast — per key, the admissible final values are the value
 * after the last responded operation plus the value after each later
 * in-flight one — and lets a brute-force linearization searcher
 * (subset enumeration) differentially validate them on small
 * histories.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wsp::crashsim::conditions {

/** One KV operation of a (sequential) history, in invocation order. */
struct HistoryOp
{
    uint64_t id = 0;
    bool isErase = false; ///< put(key, value) otherwise
    uint64_t key = 0;
    uint64_t value = 0;

    bool invoked = false;   ///< started executing before the crash
    bool applied = false;   ///< mutation reached the data structure
    bool responded = false; ///< caller observed the result

    /**
     * Persist point passed: the operation applied AND every line it
     * dirtied reached the surviving image. Never true for an
     * operation that did not apply.
     */
    bool persisted = false;
};

/** Surviving KV state: key -> value (absent = erased / never put). */
using KvState = std::map<uint64_t, uint64_t>;

/** Verdict of one checker over one (history, state) pair. */
struct ConditionResult
{
    bool ok = true;
    std::vector<std::string> violations;
};

/**
 * Replay the invoked operations of @p ops for which @p include(op)
 * holds, in history order, from the empty state.
 */
template <typename Pred>
KvState
replay(const std::vector<HistoryOp> &ops, Pred include)
{
    KvState state;
    for (const HistoryOp &op : ops) {
        if (!op.invoked || !include(op))
            continue;
        if (op.isErase)
            state.erase(op.key);
        else
            state[op.key] = op.value;
    }
    return state;
}

/**
 * Durable linearizability: does a subset S of the invoked operations
 * exist, with every responded operation in S, whose replay equals
 * @p state? Exact per-key decision procedure (O(n + keys)); failure
 * messages name the offending key and the admissible values.
 */
ConditionResult checkDurableLinearizable(const std::vector<HistoryOp> &ops,
                                         const KvState &state);

/**
 * Buffered durable linearizability: does a prefix cut of the history
 * exist whose replay equals @p state, with every persisted operation
 * inside the cut? O(n · keys-per-compare) incremental prefix scan.
 */
ConditionResult
checkBufferedDurableLinearizable(const std::vector<HistoryOp> &ops,
                                 const KvState &state);

/** Reboot-time verdict for one operation. */
enum class OpVerdict : uint8_t { Committed, Aborted };

/**
 * Detectable execution: classify every invoked operation as committed
 * or aborted against @p state. Fails when some operation is neither —
 * a partial effect survived (e.g. a torn slot) — or when the state is
 * not explainable by any commit/abort assignment at all. On success
 * @p verdicts (if non-null) receives one entry per invoked operation.
 */
ConditionResult
checkDetectableExecution(const std::vector<HistoryOp> &ops,
                         const KvState &state,
                         std::vector<std::pair<uint64_t, OpVerdict>>
                             *verdicts = nullptr);

/**
 * Brute-force durable-linearizability oracle for differential tests:
 * enumerate every subset S with {responded} ⊆ S ⊆ {invoked}, replay
 * in history order, accept if any replay equals @p state. Exponential
 * in the in-flight count; callers keep histories small (≤ ~16 ops).
 */
bool bruteForceDurablyLinearizable(const std::vector<HistoryOp> &ops,
                                   const KvState &state);

/**
 * Brute-force buffered-durable-linearizability oracle: try every
 * prefix cut containing all persisted operations.
 */
bool bruteForceBufferedDurablyLinearizable(
    const std::vector<HistoryOp> &ops, const KvState &state);

} // namespace wsp::crashsim::conditions
