/**
 * @file
 * The KV correctness-conditions battery: the crash harness's standard
 * workload, re-grounded in formal persistency conditions.
 *
 * KvConditionsChecker drives the same sharded KV workload the old
 * KvPrefixChecker did — pre-drawn put/erase stream, one event per
 * operation, tiered salvage regions, per-shard recovery — but instead
 * of the bespoke "store equals applied prefix" predicate it emits a
 * formal operation history through a FliT tracker (invocation,
 * response, persist point; util/flit.h) and judges the revived store
 * with the durable-linearizability and buffered-durable-
 * linearizability checkers of conditions.h.
 *
 * Each operation is two events: apply at t_i (mutation + history
 * invocation) and respond at t_i + ackDelay (the caller observes the
 * result). schedule.ackBeforeApply swaps them — the planted
 * persist-before-response bug: a crash in the gap leaves an operation
 * that completed at the caller but never touched the store, which
 * violates durable linearizability while buffered durable
 * linearizability (correctly) forgives it.
 *
 * DetectableExecutionChecker rides on the battery's history and
 * asserts every operation — in-flight ones included — can report
 * committed or aborted on reboot, i.e. no partial effect survived.
 */

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "crashsim/conditions/conditions.h"
#include "crashsim/invariants.h"
#include "util/flit.h"

namespace wsp::crashsim::conditions {

/** The standard KV workload judged by the formal conditions. */
class KvConditionsChecker : public InvariantChecker
{
  public:
    static constexpr uint64_t kBase = 0;
    static constexpr uint64_t kCapacity = 512; ///< total across shards

    const char *name() const override { return "kv-conditions"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override;
    void onBackendRecovery(WspSystem &system) override;
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

    /**
     * Per-shard back-end recovery: a quarantined "kv<i>.meta" or
     * "kv<i>.data" region reformats exactly shard i and replays its
     * keys from the applied model — sibling shards stay untouched.
     * Wired as the system's region-recovery hook under
     * schedule.salvage.
     */
    void onRegionRecovery(WspSystem &system, const RegionOutcome &region);

    uint64_t appliedOps() const { return appliedOps_; }

    /**
     * The formal history and surviving state check() derived, for the
     * companion DetectableExecutionChecker (valid only after check()
     * populated them; historyValid() says so).
     */
    bool historyValid() const { return historyValid_; }
    const std::vector<HistoryOp> &history() const { return history_; }
    const KvState &survivingState() const { return survivingState_; }

  private:
    std::map<uint64_t, uint64_t> model_; ///< applied ops (backend)
    uint64_t appliedOps_ = 0;
    unsigned shards_ = 1;
    ConditionMode condition_ = ConditionMode::All;

    /// Shared so the cache write-back observer outlives this checker.
    std::shared_ptr<util::FlitTracker> flit_;

    bool historyValid_ = false;
    std::vector<HistoryOp> history_;
    KvState survivingState_;
};

/**
 * Detectable execution over the battery's history: on reboot every
 * operation must classify as committed or aborted against the
 * surviving store — a torn or half-applied effect is a violation.
 * Must run after the battery's check() (standardCheckers orders it
 * so); skips silently when the battery produced no history.
 */
class DetectableExecutionChecker : public InvariantChecker
{
  public:
    explicit DetectableExecutionChecker(const KvConditionsChecker *battery)
        : battery_(battery)
    {
    }

    const char *name() const override { return "detectable-execution"; }
    void prepare(WspSystem &system, const CrashSchedule &schedule) override
    {
        (void)system;
        condition_ = schedule.condition;
    }
    void check(WspSystem &crashed, WspSystem &revived,
               const RestoreReport &restore, bool backend_ran,
               std::vector<std::string> *violations) override;

  private:
    const KvConditionsChecker *battery_;
    ConditionMode condition_ = ConditionMode::All;
};

} // namespace wsp::crashsim::conditions
